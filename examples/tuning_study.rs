//! The paper's central practical lesson, §4/§8: "It is vital to take the
//! time to measure and optimize the performance of the OS and
//! message-passing system when dealing with gigabit speed hardware."
//!
//! This example walks a cluster admin's tuning session: start with every
//! default, watch the throughput, turn one knob at a time.
//!
//! ```sh
//! cargo run --release --example tuning_study
//! ```

use netpipe_rs::prelude::*;

fn plateau(spec: hwmodel::ClusterSpec, lib: MpLib) -> f64 {
    let mut driver = SimDriver::new(spec, lib);
    run(&mut driver, &RunOptions::default())
        .unwrap()
        .final_mbps()
}

fn step(n: u32, what: &str, mbps: f64, note: &str) {
    println!("{n}. {what:<58} {mbps:>7.0} Mbps   {note}");
}

fn main() {
    println!("A tuning session on the TrendNet ($55 copper GigE) cluster\n");
    let spec = pcs_trendnet();

    step(
        1,
        "raw TCP, kernel-default 64 kB socket buffers",
        plateau(spec.clone(), raw_tcp(kib(64))),
        "the out-of-box experience",
    );
    step(
        2,
        "raw TCP, 512 kB socket buffers (sysctl + SO_SNDBUF)",
        plateau(spec.clone(), raw_tcp(kib(512))),
        "\"doubling the raw throughput\" (§4)",
    );
    step(
        3,
        "MPICH, default P4_SOCKBUFSIZE=32k",
        plateau(spec.clone(), mpich(MpichConfig::default())),
        "the delayed-ACK collapse (§4.1)",
    );
    step(
        4,
        "MPICH, P4_SOCKBUFSIZE=256k",
        plateau(spec.clone(), mpich(MpichConfig::tuned())),
        "the five-fold fix",
    );
    step(
        5,
        "PVM as shipped (routing via pvmd daemons)",
        plateau(spec.clone(), pvm(PvmConfig::default())),
        "stop-and-wait through two daemons (§4.5)",
    );
    step(
        6,
        "PVM + pvm_setopt(PvmRouteDirect)",
        plateau(
            spec.clone(),
            pvm(PvmConfig {
                direct_route: true,
                in_place: false,
            }),
        ),
        "bypass the daemons: ~4x",
    );
    step(
        7,
        "PVM + PvmDataInPlace",
        plateau(spec.clone(), pvm(PvmConfig::tuned())),
        "skip the packing copy",
    );
    step(
        8,
        "LAM/MPI without -O",
        plateau(spec.clone(), lammpi(LamConfig::default())),
        "heterogeneous checks on every byte",
    );
    step(
        9,
        "LAM/MPI with -O (homogeneous)",
        plateau(spec.clone(), lammpi(LamConfig::tuned())),
        "still capped by its fixed buffers on this NIC",
    );
    step(
        10,
        "MP_Lite (system-max buffers, SIGIO progress)",
        plateau(spec.clone(), mp_lite(&spec.kernel)),
        "within a few % of raw TCP (§4.4)",
    );

    println!(
        "\nMoral (§8): every deficiency above is a default, not a hardware limit; \n\
         \"tuning a few simple parameters can increase the communication \n\
         performance by as much as a factor of 5\"."
    );
}
