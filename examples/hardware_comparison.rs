//! Price/performance across the paper's interconnects (§2, §7): from the
//! $55 TrendNet card to the $1000+ Myrinet fabric, what does a dollar
//! buy, and where does the money go?
//!
//! ```sh
//! cargo run --release --example hardware_comparison
//! ```

use netpipe_rs::prelude::*;
use protosim::{RawParams, RecvMode};

struct RowSpec {
    cluster: hwmodel::ClusterSpec,
    lib: MpLib,
    /// NIC + per-node switch cost, USD per node (paper §2/§5/§6 prices).
    interconnect_usd: u32,
}

fn main() {
    let rows: Vec<RowSpec> = vec![
        RowSpec {
            cluster: pcs_trendnet(),
            lib: raw_tcp(kib(512)),
            interconnect_usd: 55,
        },
        RowSpec {
            cluster: pcs_ga620(),
            lib: raw_tcp(kib(512)),
            interconnect_usd: 220,
        },
        RowSpec {
            cluster: pcs_syskonnect_jumbo(),
            lib: raw_tcp(kib(512)),
            interconnect_usd: 565,
        },
        RowSpec {
            cluster: ds20s_syskonnect_jumbo(),
            lib: raw_tcp(kib(512)),
            interconnect_usd: 565,
        },
        RowSpec {
            cluster: pcs_myrinet(),
            lib: raw_gm(RecvMode::Polling),
            interconnect_usd: 1000 + 400, // card + switch port
        },
        RowSpec {
            cluster: pcs_giganet(),
            lib: mp_lite_via(RawParams::giganet()),
            interconnect_usd: 650 + 800, // card + cLAN switch port
        },
    ];

    println!("| interconnect | host | lat (us) | plateau (Mbps) | $/node | Mbps per $100 |");
    println!("|---|---|---:|---:|---:|---:|");
    for row in rows {
        let mut driver = SimDriver::new(row.cluster.clone(), row.lib.clone());
        let sig = run(&mut driver, &RunOptions::default()).unwrap();
        println!(
            "| {} | {} | {:.0} | {:.0} | {} | {:.0} |",
            row.cluster.nic.name,
            if row.cluster.host.name.contains("DS20") {
                "Alpha DS20"
            } else {
                "P4 PC"
            },
            sig.latency_us,
            sig.final_mbps(),
            row.interconnect_usd,
            sig.final_mbps() / f64::from(row.interconnect_usd) * 100.0
        );
    }

    println!(
        "\nThe paper's §7 verdict, in numbers: \"Custom hardware, while expensive,\n\
         does provide better performance than Gigabit Ethernet\" — but commodity\n\
         GigE wins every Mbps-per-dollar comparison, and the premium buys latency\n\
         more than it buys bandwidth."
    );
}
