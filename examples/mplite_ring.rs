//! A real parallel program on the real `mplite` library: a ring halo
//! exchange plus global reductions — the communication skeleton of the
//! stencil codes the paper's introduction motivates ("the ability of
//! applications to scale to large numbers of processors").
//!
//! Six ranks run in this process over genuine loopback TCP sockets.
//!
//! ```sh
//! cargo run --release --example mplite_ring
//! ```

use netpipe_rs::prelude::*;

const RANKS: usize = 6;
const CELLS_PER_RANK: usize = 1 << 14;
const STEPS: usize = 50;

fn main() {
    println!("mplite ring halo-exchange, {RANKS} ranks x {CELLS_PER_RANK} cells, {STEPS} steps\n");

    let results = Universe::run(RANKS, |comm| {
        let me = comm.rank();
        let n = comm.nprocs();
        let left = (me + n - 1) % n;
        let right = (me + 1) % n;

        // A 1-D diffusion strip: interior cells plus one halo cell each side.
        let mut field = vec![me as f64 + 1.0; CELLS_PER_RANK + 2];
        let started = std::time::Instant::now();

        for step in 0..STEPS {
            // Exchange halos with both neighbours (tags keyed by step).
            let tag = step as i32 + 1;
            let to_left = field[1].to_le_bytes();
            let to_right = field[CELLS_PER_RANK].to_le_bytes();
            let rx_l = comm.irecv(left as i32, tag);
            let rx_r = comm.irecv(right as i32, tag);
            let tx_l = comm.isend(left, tag, to_left.to_vec()).unwrap();
            let tx_r = comm.isend(right, tag, to_right.to_vec()).unwrap();
            let (from_left, _) = rx_l.wait().unwrap();
            let (from_right, _) = rx_r.wait().unwrap();
            tx_l.wait().unwrap();
            tx_r.wait().unwrap();
            field[0] = f64::from_le_bytes(from_left[..8].try_into().unwrap());
            field[CELLS_PER_RANK + 1] = f64::from_le_bytes(from_right[..8].try_into().unwrap());

            // Jacobi relaxation sweep.
            let prev = field.clone();
            for i in 1..=CELLS_PER_RANK {
                field[i] = 0.5 * prev[i] + 0.25 * (prev[i - 1] + prev[i + 1]);
            }
        }

        // Global diagnostics: total mass and extrema via allreduce.
        let local_sum: f64 = field[1..=CELLS_PER_RANK].iter().sum();
        let total = comm.allreduce(&[local_sum], ReduceOp::Sum).unwrap()[0];
        let max = comm
            .allreduce(
                &[field[1..=CELLS_PER_RANK]
                    .iter()
                    .cloned()
                    .fold(f64::MIN, f64::max)],
                ReduceOp::Max,
            )
            .unwrap()[0];
        comm.barrier().unwrap();
        (me, started.elapsed().as_secs_f64(), total, max)
    })
    .expect("job failed");

    let mut total_mass = 0.0;
    for (rank, secs, total, max) in &results {
        println!(
            "rank {rank}: {:.1} ms   global mass {total:.3}   global max {max:.4}",
            secs * 1e3
        );
        total_mass = *total;
    }
    // Diffusion with these stencil weights conserves mass exactly up to
    // floating-point rounding; every rank must agree on the reduction.
    let expected: f64 = (1..=RANKS).map(|r| r as f64 * CELLS_PER_RANK as f64).sum();
    println!("\nmass conservation: computed {total_mass:.3}, expected {expected:.3}");
    assert!((total_mass - expected).abs() / expected < 1e-9);
    assert!(results
        .iter()
        .all(|(_, _, t, _)| (*t - total_mass).abs() < 1e-9));
    println!("all ranks agree; halo exchange and collectives are consistent.");
}
