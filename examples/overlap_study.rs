//! The §7 hypothesis as an experiment: which libraries keep data flowing
//! while the application computes?
//!
//! The paper: "A message-passing library like MPI/Pro that has a message
//! progress thread, or MP_Lite that is SIGIO interrupt driven, will keep
//! data flowing more readily" — predicted, never measured. Here a 1 MB
//! message races 0–40 ms of receiver-side computation.
//!
//! ```sh
//! cargo run --release --example overlap_study
//! ```

use netpipe_rs::prelude::*;
use simcore::SimDuration;

fn main() {
    let spec = pcs_ga620();
    let bytes = mib(1);
    let libs: Vec<MpLib> = vec![
        raw_tcp(kib(512)),
        mpich(MpichConfig::tuned()),
        mpipro(MpiProConfig::tuned()),
        mp_lite(&spec.kernel),
        pvm(PvmConfig::tuned()),
    ];

    println!("total time (ms) for a 1 MB receive vs receiver compute time, GA620 cluster\n");
    print!("{:<28}", "compute (ms):");
    let busies = [0u64, 5, 10, 20, 40];
    for b in busies {
        print!("{b:>8}");
    }
    println!("\n{}", "-".repeat(28 + 8 * busies.len()));

    for lib in &libs {
        print!("{:<28}", lib.name());
        for b in busies {
            let p = clusterlab::measure_overlap(&spec, lib, bytes, SimDuration::from_millis(b));
            print!("{:>8.1}", p.total_s * 1e3);
        }
        let eff = clusterlab::measure_overlap(&spec, lib, bytes, SimDuration::from_millis(20))
            .efficiency();
        println!("   overlap {:>3.0}%", eff * 100.0);
    }

    println!(
        "\nReading the table: with full overlap the totals track max(compute,\n\
         transfer); in-call libraries (MPICH, PVM) pay compute *plus* most of\n\
         the transfer — the paper's closing prediction, quantified."
    );
}
