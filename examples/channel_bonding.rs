//! MP_Lite channel bonding: striping one message across multiple NICs —
//! the headline feature of the authors' companion MP_Lite paper, rebuilt
//! on the simulated testbed.
//!
//! Two configurations tell the whole story:
//!
//! * **dual Fast Ethernet** — two 100 Mb/s wires on an otherwise idle PCI
//!   bus: bonding buys almost exactly 2x;
//! * **dual Gigabit Ethernet** — two 1 Gb/s wires behind one shared
//!   32-bit 33 MHz PCI bus: the bus saturates first and bonding buys
//!   almost nothing. Hardware balance, not wire count, sets the ceiling.
//!
//! ```sh
//! cargo run --release --example channel_bonding
//! ```

use netpipe_rs::prelude::*;

fn measure(spec: hwmodel::ClusterSpec, lib: MpLib) -> netpipe::Signature {
    let mut driver = SimDriver::new(spec, lib);
    run(&mut driver, &RunOptions::default()).unwrap()
}

fn main() {
    println!("MP_Lite channel bonding on the simulated testbed\n");
    println!("| configuration | single NIC (Mbps) | 2-way bonded (Mbps) | speedup |");
    println!("|---|---:|---:|---:|");

    for (label, spec) in [
        ("dual Fast Ethernet (PCs)", pcs_fast_ethernet_dual()),
        ("dual Netgear GA620 GigE (PCs)", pcs_ga620_dual()),
    ] {
        let kernel = spec.kernel.clone();
        let single = measure(spec.clone(), mp_lite(&kernel));
        let bonded = measure(spec.clone(), mp_lite_bonded(&kernel, 2));
        println!(
            "| {label} | {:.0} | {:.0} | {:.2}x |",
            single.final_mbps(),
            bonded.final_mbps(),
            bonded.final_mbps() / single.final_mbps()
        );
    }

    println!(
        "\nThe 100 Mb/s wires double because the 32-bit PCI bus (~720 Mbps\n\
         effective) has room for both; the Gigabit wires cannot, because one\n\
         card already pushes the shared bus near saturation. Exactly the\n\
         balance §7 of the paper warns about when comparing interconnects."
    );
}
