//! Multi-process mplite: one OS process per rank, bootstrapped from the
//! environment exactly like a minimal MP_Lite `.nodes` launch.
//!
//! The parent invocation spawns NPROCS copies of itself with
//! `MPLITE_RANK`/`MPLITE_NPROCS`/`MPLITE_PORT_BASE` set; each child joins
//! the mesh via [`Universe::from_env`], runs a ring token pass and an
//! allreduce, and exits. The parent checks every child's exit status.
//!
//! ```sh
//! cargo run --release --example mplite_multiprocess
//! ```

use netpipe_rs::mplite::{ReduceOp, Universe};

const NPROCS: usize = 4;

fn child() {
    let comm = Universe::from_env().expect("mesh bootstrap failed");
    let me = comm.rank();
    let n = comm.nprocs();

    // Token ring: rank 0 injects, each rank increments and forwards.
    if me == 0 {
        comm.send(1 % n, 1, &0u64.to_le_bytes()).unwrap();
        let (data, _) = comm.recv(((n - 1) % n) as i32, 1).unwrap();
        let token = u64::from_le_bytes(data[..].try_into().unwrap());
        assert_eq!(token, (n - 1) as u64, "token accumulated one per hop");
        println!("rank 0: token returned with value {token}");
    } else {
        let (data, _) = comm.recv((me - 1) as i32, 1).unwrap();
        let token = u64::from_le_bytes(data[..].try_into().unwrap()) + 1;
        comm.send((me + 1) % n, 1, &token.to_le_bytes()).unwrap();
    }

    // A collective across processes.
    let sum = comm.allreduce(&[(me + 1) as i64], ReduceOp::Sum).unwrap()[0];
    assert_eq!(sum, (n * (n + 1) / 2) as i64);
    println!(
        "rank {me}: allreduce sum = {sum} (pid {})",
        std::process::id()
    );
}

fn main() {
    if std::env::var("MPLITE_RANK").is_ok() {
        child();
        return;
    }

    // Parent: spawn one process per rank.
    let exe = std::env::current_exe().expect("own path");
    // An uncommon base port to avoid collisions on busy machines.
    let port_base = 28_431u16;
    println!("spawning {NPROCS} rank processes from {}\n", exe.display());
    let children: Vec<std::process::Child> = (0..NPROCS)
        .map(|rank| {
            std::process::Command::new(&exe)
                .env("MPLITE_RANK", rank.to_string())
                .env("MPLITE_NPROCS", NPROCS.to_string())
                .env("MPLITE_PORT_BASE", port_base.to_string())
                .spawn()
                .expect("spawn rank process")
        })
        .collect();

    let mut failures = 0;
    for (rank, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output().expect("wait for rank");
        if !status.status.success() {
            eprintln!("rank {rank} failed: {:?}", status.status);
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures} ranks failed");
    println!(
        "\nall {NPROCS} processes joined the mesh, passed the token, and agreed on the allreduce."
    );
}
