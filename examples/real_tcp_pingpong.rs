//! NetPIPE over *real* kernel TCP on loopback — the measurement the paper
//! runs, alive on today's machine, including the socket-buffer experiment
//! of §4.
//!
//! ```sh
//! cargo run --release --example real_tcp_pingpong
//! ```

use netpipe_rs::prelude::*;

fn main() {
    println!("NetPIPE over real loopback TCP on this machine\n");

    let mut sigs = Vec::new();
    for (label, sockbuf) in [
        ("default buffers", 0u32),
        ("16 kB buffers", 16 * 1024),
        ("512 kB buffers", 512 * 1024),
    ] {
        let mut driver = RealTcpDriver::new(RealTcpOptions {
            sockbuf,
            nodelay: true,
            ..Default::default()
        })
        .expect("echo server failed to start");
        let (snd, rcv) = driver.effective_buffers();
        let sig = run(
            &mut driver,
            &RunOptions {
                schedule: netpipe::ScheduleOptions {
                    max: 4 * 1024 * 1024,
                    ..Default::default()
                },
                trials: 5,
                warmup: 3,
                ..Default::default()
            },
        )
        .expect("measurement failed");
        println!(
            "{label:<16} granted snd/rcv = {snd}/{rcv} B    latency {:>7.1} us    peak {:>8.0} Mbps",
            sig.latency_us, sig.max_mbps
        );
        sigs.push(sig);
    }

    println!();
    println!(
        "{}",
        ascii_figure("real loopback TCP vs socket buffers", &sigs, 88, 18)
    );
    println!(
        "Loopback has no NIC, so absolute numbers dwarf the paper's — but the\n\
         *shape* of the socket-buffer effect survives two decades: the kernel\n\
         clamps requests to wmem_max exactly as §3.4 describes, and undersized\n\
         buffers still cost real throughput."
    );
}
