//! Quickstart: measure one library on one simulated cluster and print
//! its NetPIPE signature.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netpipe_rs::prelude::*;

fn main() {
    // The paper's fig-1 testbed: two 1.8 GHz P4 PCs, Netgear GA620 fiber
    // Gigabit Ethernet, back to back, Linux 2.4.
    let cluster = pcs_ga620();
    println!("cluster: {}\n", cluster.name);

    // Raw TCP is the ceiling every library is judged against.
    let mut tcp = SimDriver::new(cluster.clone(), raw_tcp(kib(512)));
    let tcp_sig = run(&mut tcp, &RunOptions::default()).unwrap();

    // MPICH with the vital P4_SOCKBUFSIZE tuning applied.
    let mut mpich_drv = SimDriver::new(cluster, mpich(MpichConfig::tuned()));
    let mpich_sig = run(&mut mpich_drv, &RunOptions::default()).unwrap();

    println!(
        "{}",
        ascii_figure(
            "raw TCP vs tuned MPICH (GA620 GigE, two P4 PCs)",
            &[tcp_sig.clone(), mpich_sig.clone()],
            88,
            18,
        )
    );
    println!("{}", summary_table(&[tcp_sig.clone(), mpich_sig.clone()]));

    // The headline of the paper in two numbers:
    let loss = 1.0 - mpich_sig.final_mbps() / tcp_sig.final_mbps();
    println!(
        "MPICH passes on {:.0}% of raw TCP — the paper's 25-30% p4 memcpy loss. \
         (dip at its 128 kB rendezvous threshold: ratio {:.2})",
        (1.0 - loss) * 100.0,
        mpich_sig.dip_ratio(128 * 1024),
    );

    let a = analyze(&tcp_sig);
    println!(
        "raw TCP fit: t0 = {:.1} us, r_inf = {:.0} Mbps, n1/2 = {} bytes",
        a.t0_s * 1e6,
        a.r_inf_bps * 8.0 / 1e6,
        a.n_half
    );
}
