//! Session-typed protocol state machines.
//!
//! The repo's message-passing protocols (eager→rendezvous handshakes,
//! RTO/retransmit lifecycles, connection boot/steady/poisoned phases)
//! started life as informal state machines scattered across match arms.
//! This crate makes them explicit and machine-checkable, twice over:
//!
//! * **compile time** — the [`protocol!`] macro emits a *typestate* API:
//!   one zero-sized struct per state whose transition methods consume
//!   `self` and return the next state's type, so an illegal transition
//!   is a type error, not a 3 a.m. debugging session;
//! * **run/analyze time** — the same invocation emits a `const`
//!   [`ProtocolSpec`] transition table (states, events, send/recv
//!   direction, terminal states, dual role), queryable at runtime and
//!   re-parsed from source by `xtask analyze`'s `protocol-*` rules,
//!   which cross-check the *code* against the declared spec.
//!
//! The crate is std-only with zero dependencies, like the rest of the
//! workspace.
//!
//! # Declaring a protocol
//!
//! ```
//! mod sender {
//!     protospec::protocol! {
//!         /// Sender half of the eager→rendezvous handshake.
//!         pub RndvSendState of rendezvous.sender dual rendezvous.receiver;
//!         states Idle, AwaitCts, Streaming;
//!         terminal Idle;
//!         Idle --rts!--> AwaitCts;
//!         AwaitCts --cts?--> Streaming;
//!         Streaming --fin!--> Idle;
//!     }
//! }
//!
//! // Typestate: transitions consume `self`; out-of-order calls do not
//! // compile (`Idle.cts()` is not a method).
//! let s = sender::Idle;
//! let s = s.rts();
//! let _idle = s.cts().fin();
//!
//! // Runtime table: same machine, queryable.
//! let spec = sender::RndvSendState::spec();
//! assert_eq!(spec.step("Idle", "rts"), Some("AwaitCts"));
//! assert_eq!(spec.step("Idle", "cts"), None);
//! assert!(spec.check().is_empty());
//! ```
//!
//! Event names carry a polarity suffix: `!` sends, `?` receives, `~` is
//! an internal (τ) step. Two role machines declared `dual` of each
//! other must agree: every message one side sends, the other receives
//! (checked by [`ProtocolSpec::check_dual`] and, statically, by the
//! `protocol-duality` analyzer rule).

use std::collections::BTreeSet;
use std::fmt;

/// Polarity of a protocol event, from the session-types tradition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The role emits a message (`event!`).
    Send,
    /// The role consumes a message (`event?`).
    Recv,
    /// Internal step, invisible to the peer (`event~`).
    Internal,
}

impl Dir {
    /// Suffix character used in the spec grammar.
    pub fn suffix(self) -> char {
        match self {
            Dir::Send => '!',
            Dir::Recv => '?',
            Dir::Internal => '~',
        }
    }
}

/// One edge of a protocol state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state name.
    pub from: &'static str,
    /// Event (message) name.
    pub event: &'static str,
    /// Send/recv polarity of the event.
    pub dir: Dir,
    /// Destination state name.
    pub to: &'static str,
}

/// A declared protocol role: the runtime-queryable transition table
/// emitted by [`protocol!`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Dotted `namespace.role` name (`"rendezvous.sender"`).
    pub name: &'static str,
    /// Name of the peer role this machine must be dual to, if any.
    pub dual: Option<&'static str>,
    /// Declared states; the first is the initial state.
    pub states: &'static [&'static str],
    /// Quiescent states: the machine may legitimately rest here. A
    /// terminal state may still have outgoing edges (e.g. an `Idle`
    /// that both starts and ends every exchange).
    pub terminal: &'static [&'static str],
    /// The transition table.
    pub transitions: &'static [Transition],
}

impl ProtocolSpec {
    /// The initial state (first declared), or `None` for a stateless
    /// (malformed) spec.
    pub fn initial(&self) -> Option<&'static str> {
        self.states.first().copied()
    }

    /// Is `state` a declared state?
    pub fn has_state(&self, state: &str) -> bool {
        self.states.contains(&state)
    }

    /// Is `state` a declared terminal (quiescent) state?
    pub fn is_terminal(&self, state: &str) -> bool {
        self.terminal.contains(&state)
    }

    /// Destination of `event` out of `from`, or `None` when the spec
    /// declares no such edge.
    pub fn step(&self, from: &str, event: &str) -> Option<&'static str> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.event == event)
            .map(|t| t.to)
    }

    /// Every edge leaving `from`.
    pub fn edges_from<'a>(&'a self, from: &'a str) -> impl Iterator<Item = &'a Transition> {
        self.transitions.iter().filter(move |t| t.from == from)
    }

    /// Is there *any* declared edge `from -> to`?
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.transitions
            .iter()
            .any(|t| t.from == from && t.to == to)
    }

    /// Event names with the given polarity.
    pub fn events_with_dir(&self, dir: Dir) -> BTreeSet<&'static str> {
        self.transitions
            .iter()
            .filter(|t| t.dir == dir)
            .map(|t| t.event)
            .collect()
    }

    /// States reachable from the initial state (including it).
    pub fn reachable(&self) -> BTreeSet<&'static str> {
        let mut seen = BTreeSet::new();
        let mut work: Vec<&'static str> = self.initial().into_iter().collect();
        while let Some(s) = work.pop() {
            if !seen.insert(s) {
                continue;
            }
            for t in self.transitions.iter().filter(|t| t.from == s) {
                work.push(t.to);
            }
        }
        seen
    }

    /// States from which some terminal state can be reached (terminal
    /// states themselves included). The complement — reachable states
    /// missing from this set — are live-lock traps.
    pub fn can_finish(&self) -> BTreeSet<&'static str> {
        // Reverse reachability from the terminal set.
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        let mut work: Vec<&'static str> = self.terminal.to_vec();
        while let Some(s) = work.pop() {
            if !seen.insert(s) {
                continue;
            }
            for t in self.transitions.iter().filter(|t| t.to == s) {
                work.push(t.from);
            }
        }
        seen
    }

    /// Internal consistency of one role's table. Returns one message
    /// per problem; an empty vector means the spec is well-formed.
    pub fn check(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.states.is_empty() {
            out.push(format!("{}: declares no states", self.name));
            return out;
        }
        for t in self.transitions {
            for endpoint in [t.from, t.to] {
                if !self.has_state(endpoint) {
                    out.push(format!(
                        "{}: transition {} --{}{}--> {} references undeclared state {endpoint}",
                        self.name,
                        t.from,
                        t.event,
                        t.dir.suffix(),
                        t.to
                    ));
                }
            }
        }
        for s in self.terminal {
            if !self.has_state(s) {
                out.push(format!("{}: terminal state {s} is undeclared", self.name));
            }
        }
        let mut seen_edges = BTreeSet::new();
        for t in self.transitions {
            if !seen_edges.insert((t.from, t.event)) {
                out.push(format!(
                    "{}: duplicate transition on ({}, {})",
                    self.name, t.from, t.event
                ));
            }
        }
        let reachable = self.reachable();
        for s in self.states {
            if !reachable.contains(s) {
                out.push(format!(
                    "{}: state {s} is unreachable from initial state {}",
                    self.name,
                    self.initial().unwrap_or("?")
                ));
            }
        }
        if self.terminal.is_empty() {
            out.push(format!(
                "{}: declares no terminal state; the machine can never rest",
                self.name
            ));
        } else {
            let finish = self.can_finish();
            for s in &reachable {
                if !finish.contains(s) {
                    out.push(format!(
                        "{}: no terminal state is reachable from {s}",
                        self.name
                    ));
                }
            }
        }
        out
    }

    /// Message-set duality against a peer role: every message this role
    /// sends, the peer must receive, and vice versa. Internal events
    /// are invisible and exempt.
    pub fn check_dual(&self, peer: &ProtocolSpec) -> Vec<String> {
        let mut out = Vec::new();
        for (mine, theirs, what) in [
            (Dir::Send, Dir::Recv, "send"),
            (Dir::Recv, Dir::Send, "recv"),
        ] {
            let ours = self.events_with_dir(mine);
            let peers = peer.events_with_dir(theirs);
            for ev in ours.difference(&peers) {
                out.push(format!(
                    "{}: {what} of {ev} has no matching {} in dual {}",
                    self.name,
                    match theirs {
                        Dir::Send => "send",
                        _ => "recv",
                    },
                    peer.name
                ));
            }
        }
        out
    }
}

impl fmt::Display for ProtocolSpec {
    /// Render the table back in the spec grammar (one edge per line).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol {}", self.name)?;
        for t in self.transitions {
            writeln!(
                f,
                "  {} --{}{}--> {}",
                t.from,
                t.event,
                t.dir.suffix(),
                t.to
            )?;
        }
        Ok(())
    }
}

/// Error returned by the generated `step` when the spec declares no
/// edge for `(from, event)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    /// Protocol the step was attempted on.
    pub protocol: &'static str,
    /// State the machine was in.
    pub from: String,
    /// Event that had no declared edge.
    pub event: String,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal transition in {}: no edge for event `{}` out of state {}",
            self.protocol, self.event, self.from
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// A set of registered specs, so callers (tests, doctors, debug
/// tooling) can cross-check every declared machine in one sweep.
#[derive(Debug, Default)]
pub struct Registry {
    specs: Vec<&'static ProtocolSpec>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a spec. Duplicate names are rejected — two machines
    /// claiming the same `namespace.role` would make duality lookups
    /// ambiguous.
    pub fn register(&mut self, spec: &'static ProtocolSpec) -> Result<(), String> {
        if self.get(spec.name).is_some() {
            return Err(format!("duplicate protocol spec {}", spec.name));
        }
        self.specs.push(spec);
        Ok(())
    }

    /// Look a spec up by dotted name.
    pub fn get(&self, name: &str) -> Option<&'static ProtocolSpec> {
        self.specs.iter().copied().find(|s| s.name == name)
    }

    /// All registered specs, in registration order.
    pub fn specs(&self) -> &[&'static ProtocolSpec] {
        &self.specs
    }

    /// Run [`ProtocolSpec::check`] on every spec and
    /// [`ProtocolSpec::check_dual`] on every declared pairing. A
    /// declared dual that is not registered is itself a finding.
    pub fn check_all(&self) -> Vec<String> {
        let mut out = Vec::new();
        for spec in &self.specs {
            out.extend(spec.check());
            if let Some(dual) = spec.dual {
                match self.get(dual) {
                    Some(peer) => out.extend(spec.check_dual(peer)),
                    None => out.push(format!(
                        "{}: declared dual {dual} is not registered",
                        spec.name
                    )),
                }
            }
        }
        out
    }
}

/// Maps an event's polarity suffix token to a [`Dir`] value; used by
/// [`protocol!`] expansions, not user code.
#[doc(hidden)]
#[macro_export]
macro_rules! __dir {
    (!) => {
        $crate::Dir::Send
    };
    (?) => {
        $crate::Dir::Recv
    };
    (~) => {
        $crate::Dir::Internal
    };
}

/// Renders an optional `dual namespace.role` clause; used by
/// [`protocol!`] expansions, not user code.
#[doc(hidden)]
#[macro_export]
macro_rules! __opt_dual {
    () => {
        None
    };
    ($ns:ident . $role:ident) => {
        Some(concat!(stringify!($ns), ".", stringify!($role)))
    };
}

/// Declare one protocol role: typestate API + runtime table.
///
/// ```text
/// protocol! {
///     /// docs…
///     pub <EnumName> of <namespace>.<role> [dual <namespace>.<role>];
///     states S1, S2, …;      // first state is initial
///     terminal T1, …;        // quiescent states
///     S1 --event!--> S2;     // ! send, ? recv, ~ internal
///     …
/// }
/// ```
///
/// Emits, in the enclosing module (one invocation per module):
///
/// * `enum <EnumName> { S1, S2, … }` — the runtime state enum, with
///   `SPEC`/`spec()`, `initial()`, `is_terminal()`, `name_str()`,
///   `from_name()` and a spec-checked `step(event)`;
/// * one zero-sized `struct S;` per state, whose transition methods
///   consume `self` and return the next state's type;
/// * `impl From<S> for <EnumName>` for each state, so a typestate value
///   can be stored/traced as the runtime enum.
///
/// The `xtask analyze` protocol pass re-parses this exact grammar from
/// source, so the declaration *is* the specification of record.
#[macro_export]
macro_rules! protocol {
    (
        $(#[$meta:meta])*
        $vis:vis $name:ident of $pns:ident . $prole:ident $(dual $dns:ident . $drole:ident)? ;
        states $($st:ident),+ ;
        terminal $($term:ident),+ ;
        $( $from:ident - - $ev:ident $dir:tt - -> $to:ident ; )+
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        $vis enum $name {
            $(
                #[doc = concat!("Spec state `", stringify!($st), "`.")]
                $st,
            )+
        }

        // Generated scaffolding: a machine may use only part of the
        // emitted API (e.g. typestate chains but never runtime steps),
        // so the unused remainder is not a dead-code signal.
        #[allow(dead_code)]
        impl $name {
            /// The declared transition table.
            $vis const SPEC: $crate::ProtocolSpec = $crate::ProtocolSpec {
                name: concat!(stringify!($pns), ".", stringify!($prole)),
                dual: $crate::__opt_dual!($($dns . $drole)?),
                states: &[$(stringify!($st)),+],
                terminal: &[$(stringify!($term)),+],
                transitions: &[$(
                    $crate::Transition {
                        from: stringify!($from),
                        event: stringify!($ev),
                        dir: $crate::__dir!($dir),
                        to: stringify!($to),
                    }
                ),+],
            };

            /// The declared transition table.
            $vis fn spec() -> &'static $crate::ProtocolSpec {
                &Self::SPEC
            }

            /// The initial state (first declared).
            $vis fn initial() -> Self {
                const FIRST: &[$name] = &[$($name::$st),+];
                FIRST[0]
            }

            /// Spec-level state name.
            $vis fn name_str(self) -> &'static str {
                match self {
                    $($name::$st => stringify!($st)),+
                }
            }

            /// Parse a spec-level state name.
            $vis fn from_name(name: &str) -> Option<Self> {
                match name {
                    $(stringify!($st) => Some($name::$st),)+
                    _ => None,
                }
            }

            /// Is this a declared terminal (quiescent) state?
            $vis fn is_terminal(self) -> bool {
                Self::SPEC.is_terminal(self.name_str())
            }

            /// Take `event` against the spec table. Unlike the
            /// typestate API this is checked at run time — use it where
            /// the current state is data (e.g. one slot per peer).
            $vis fn step(self, event: &str) -> Result<Self, $crate::IllegalTransition> {
                match Self::SPEC.step(self.name_str(), event).and_then(Self::from_name) {
                    Some(next) => Ok(next),
                    None => Err($crate::IllegalTransition {
                        protocol: Self::SPEC.name,
                        from: self.name_str().to_string(),
                        event: event.to_string(),
                    }),
                }
            }
        }

        $(
            #[doc = concat!("Typestate for spec state `", stringify!($st), "`.")]
            #[derive(Debug, PartialEq, Eq)]
            $vis struct $st;

            impl From<$st> for $name {
                fn from(_: $st) -> $name {
                    $name::$st
                }
            }
        )+

        $(
            #[allow(dead_code)]
            impl $from {
                #[doc = concat!(
                    "Transition `", stringify!($from), " --", stringify!($ev),
                    "--> ", stringify!($to), "`."
                )]
                $vis fn $ev(self) -> $to {
                    $to
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    mod sender {
        crate::protocol! {
            /// Sender half of a toy rendezvous.
            pub RndvSendState of rendezvous.sender dual rendezvous.receiver;
            states Idle, AwaitCts, Streaming;
            terminal Idle;
            Idle --rts!--> AwaitCts;
            AwaitCts --cts?--> Streaming;
            Streaming --fin!--> Idle;
        }
    }

    mod receiver {
        crate::protocol! {
            /// Receiver half of a toy rendezvous.
            pub RndvRecvState of rendezvous.receiver dual rendezvous.sender;
            states Idle, CtsSent;
            terminal Idle;
            Idle --rts?--> CtsSent;
            CtsSent --cts!--> CtsSent;
            CtsSent --fin?--> Idle;
        }
    }

    #[test]
    fn typestate_transitions_compose() {
        let s = sender::Idle;
        let s = s.rts().cts().fin();
        assert_eq!(sender::RndvSendState::from(s), sender::RndvSendState::Idle);
        // The dual role steps through the mirror-image chain.
        let r = receiver::Idle;
        let r = r.rts().cts().fin();
        assert_eq!(
            receiver::RndvRecvState::from(r),
            receiver::RndvRecvState::Idle
        );
    }

    #[test]
    fn runtime_step_follows_the_table() {
        use sender::RndvSendState as S;
        let s = S::initial();
        assert_eq!(s, S::Idle);
        assert!(s.is_terminal());
        let s = s.step("rts").expect("declared edge");
        assert_eq!(s, S::AwaitCts);
        assert!(!s.is_terminal());
        let err = s.step("rts").expect_err("undeclared edge");
        assert_eq!(err.protocol, "rendezvous.sender");
        assert_eq!(err.from, "AwaitCts");
        assert!(err.to_string().contains("illegal transition"));
    }

    #[test]
    fn spec_table_is_queryable() {
        let spec = sender::RndvSendState::spec();
        assert_eq!(spec.name, "rendezvous.sender");
        assert_eq!(spec.dual, Some("rendezvous.receiver"));
        assert_eq!(spec.initial(), Some("Idle"));
        assert_eq!(spec.step("Idle", "rts"), Some("AwaitCts"));
        assert_eq!(spec.step("Idle", "cts"), None);
        assert!(spec.has_edge("Streaming", "Idle"));
        assert!(spec.check().is_empty(), "{:?}", spec.check());
    }

    #[test]
    fn duality_holds_for_the_toy_pair() {
        let s = sender::RndvSendState::spec();
        let r = receiver::RndvRecvState::spec();
        assert!(s.check_dual(r).is_empty(), "{:?}", s.check_dual(r));
        assert!(r.check_dual(s).is_empty(), "{:?}", r.check_dual(s));
    }

    #[test]
    fn duality_violation_is_reported() {
        static LONELY: ProtocolSpec = ProtocolSpec {
            name: "toy.sender",
            dual: Some("toy.receiver"),
            states: &["A", "B"],
            terminal: &["A"],
            transitions: &[Transition {
                from: "A",
                event: "extra",
                dir: Dir::Send,
                to: "B",
            }],
        };
        static PEER: ProtocolSpec = ProtocolSpec {
            name: "toy.receiver",
            dual: Some("toy.sender"),
            states: &["A"],
            terminal: &["A"],
            transitions: &[Transition {
                from: "A",
                event: "other",
                dir: Dir::Recv,
                to: "A",
            }],
        };
        let issues = LONELY.check_dual(&PEER);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("send of extra has no matching recv"));
    }

    #[test]
    fn check_flags_malformed_specs() {
        static BAD: ProtocolSpec = ProtocolSpec {
            name: "bad.role",
            dual: None,
            states: &["A", "B", "C"],
            terminal: &[],
            transitions: &[
                Transition {
                    from: "A",
                    event: "go",
                    dir: Dir::Internal,
                    to: "Ghost",
                },
                Transition {
                    from: "A",
                    event: "go",
                    dir: Dir::Internal,
                    to: "B",
                },
            ],
        };
        let issues = BAD.check();
        let text = issues.join("\n");
        assert!(text.contains("undeclared state Ghost"), "{text}");
        assert!(text.contains("duplicate transition"), "{text}");
        assert!(text.contains("state C is unreachable"), "{text}");
        assert!(text.contains("no terminal state"), "{text}");
    }

    #[test]
    fn check_flags_states_that_cannot_finish() {
        static TRAP: ProtocolSpec = ProtocolSpec {
            name: "trap.role",
            dual: None,
            states: &["Start", "Done", "Pit"],
            terminal: &["Done"],
            transitions: &[
                Transition {
                    from: "Start",
                    event: "ok",
                    dir: Dir::Internal,
                    to: "Done",
                },
                Transition {
                    from: "Start",
                    event: "oops",
                    dir: Dir::Internal,
                    to: "Pit",
                },
                Transition {
                    from: "Pit",
                    event: "spin",
                    dir: Dir::Internal,
                    to: "Pit",
                },
            ],
        };
        let issues = TRAP.check();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("no terminal state is reachable from Pit"));
    }

    #[test]
    fn registry_cross_checks_pairs() {
        let mut reg = Registry::new();
        reg.register(sender::RndvSendState::spec())
            .expect("first registration");
        assert!(
            reg.register(sender::RndvSendState::spec()).is_err(),
            "duplicate name must be rejected"
        );
        // Dual declared but missing from the registry.
        let issues = reg.check_all();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("dual rendezvous.receiver is not registered"));

        reg.register(receiver::RndvRecvState::spec())
            .expect("second registration");
        assert!(reg.check_all().is_empty(), "{:?}", reg.check_all());
    }
}
