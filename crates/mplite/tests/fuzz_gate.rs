//! The fuzzing gate: the in-tree decoder fuzzer must clear at least
//! 10 000 mutated frames per seed, with every input accounted for (typed
//! rejection or clean decode — never a panic, hang, or over-cap
//! allocation) and bit-identical reports on rerun.

use mplite::fuzz::{run_seed, FUZZ_MAX_MESSAGE};

const FRAMES_PER_SEED: u64 = 10_000;
const SEEDS: [u64; 3] = [0xC0FFEE, 2002, 7];

#[test]
fn ten_thousand_mutated_frames_per_seed_never_break_the_decoder() {
    for seed in SEEDS {
        let r = run_seed(seed, FRAMES_PER_SEED);
        assert_eq!(r.frames, FRAMES_PER_SEED);
        assert!(r.accounted(), "seed {seed}: unaccounted inputs: {r:?}");
        assert_eq!(r.cap_violations, 0, "seed {seed}: {r:?}");
        // A healthy corpus + mutator exercises both verdicts heavily.
        assert!(r.clean > 100, "seed {seed}: mutator too destructive: {r:?}");
        assert!(r.rejected > 100, "seed {seed}: mutator too gentle: {r:?}");
        // The typed-error taxonomy is actually exercised, not just one
        // catch-all kind.
        assert!(
            r.by_error.len() >= 3,
            "seed {seed}: error diversity too low: {:?}",
            r.by_error
        );
    }
}

#[test]
fn fuzz_reports_are_reproducible() {
    for seed in SEEDS {
        let a = run_seed(seed, FRAMES_PER_SEED);
        let b = run_seed(seed, FRAMES_PER_SEED);
        assert_eq!(a, b, "seed {seed} must reproduce bit-identically");
    }
}

#[test]
fn control_paths_get_fuzz_coverage_too() {
    // FIN/POISON frames are in the corpus; across seeds the control
    // parser must see both classifiable and ignorable survivors.
    let mut classified = 0u64;
    let mut ignored = 0u64;
    for seed in SEEDS {
        let r = run_seed(seed, FRAMES_PER_SEED);
        classified += r.control_classified;
        ignored += r.control_ignored;
    }
    assert!(classified > 0, "no control frame survived classification");
    assert!(ignored > 0, "no mangled control payload was exercised");
    // And the cap the fuzzer enforces matches what it advertises.
    assert_eq!(FUZZ_MAX_MESSAGE, 1 << 16);
}
