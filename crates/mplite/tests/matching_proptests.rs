//! Property tests for the MPI-style matching engine: for any interleaving
//! of posted receives and arriving messages, matching must be complete
//! (nothing lost), exclusive (nothing double-delivered), and FIFO per
//! (source, tag) pair.

use bytes::Bytes;
use mplite::message::{InMsg, MatchEngine, ANY_SOURCE, ANY_TAG};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Deliver a message (src, tag, seq payload).
    Deliver(u8, u8),
    /// Post a receive with optional wildcards.
    Post(Option<u8>, Option<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u8..3).prop_map(|(s, t)| Op::Deliver(s, t)),
        (proptest::option::of(0u8..3), proptest::option::of(0u8..3))
            .prop_map(|(s, t)| Op::Post(s, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matching_is_complete_exclusive_and_fifo(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let engine = MatchEngine::new();
        let mut seq = 0u32;
        let mut delivered = 0u32;
        let mut slots = Vec::new();
        for op in &ops {
            match *op {
                Op::Deliver(src, tag) => {
                    engine.deliver(InMsg {
                        src: src as usize,
                        tag: i32::from(tag),
                        data: Bytes::from(seq.to_le_bytes().to_vec()),
                    });
                    seq += 1;
                    delivered += 1;
                }
                Op::Post(src, tag) => {
                    slots.push((
                        engine.post(
                            src.map_or(ANY_SOURCE, i32::from),
                            tag.map_or(ANY_TAG, i32::from),
                        ),
                        src,
                        tag,
                    ));
                }
            }
        }
        // Count completions; each completed slot's message must match its
        // pattern, and no payload may appear twice.
        let mut seen = std::collections::HashSet::new();
        let mut completed = 0u32;
        let mut per_pair_last: std::collections::HashMap<(usize, i32, Option<u8>, Option<u8>), u32> =
            std::collections::HashMap::new();
        for (slot, want_src, want_tag) in &slots {
            if let Some(Ok(msg)) = slot.try_take() {
                completed += 1;
                let payload = u32::from_le_bytes(msg.data[..4].try_into().unwrap());
                prop_assert!(seen.insert(payload), "payload {payload} delivered twice");
                if let Some(s) = want_src {
                    prop_assert_eq!(msg.src, *s as usize);
                }
                if let Some(t) = want_tag {
                    prop_assert_eq!(msg.tag, i32::from(*t));
                }
                // FIFO per (src, tag, pattern): for slots with the same
                // fully-specified pattern, payload sequence must ascend.
                if want_src.is_some() && want_tag.is_some() {
                    let key = (msg.src, msg.tag, *want_src, *want_tag);
                    if let Some(&prev) = per_pair_last.get(&key) {
                        prop_assert!(payload > prev, "FIFO violated: {payload} after {prev}");
                    }
                    per_pair_last.insert(key, payload);
                }
            }
        }
        // Conservation: completions + still-queued unexpected == delivered
        // (a completed slot consumed exactly one message).
        prop_assert_eq!(completed + engine.unexpected_len() as u32, delivered);
    }

    /// Probe never changes state and agrees with a subsequent post.
    #[test]
    fn probe_is_pure(srcs in proptest::collection::vec(0u8..3, 1..20)) {
        let engine = MatchEngine::new();
        for (i, &s) in srcs.iter().enumerate() {
            engine.deliver(InMsg {
                src: s as usize,
                tag: 1,
                data: Bytes::from(vec![i as u8]),
            });
        }
        let before = engine.unexpected_len();
        let p1 = engine.probe(ANY_SOURCE, ANY_TAG);
        let p2 = engine.probe(ANY_SOURCE, ANY_TAG);
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(engine.unexpected_len(), before);
        // The probed message is what a wildcard post receives next.
        let (src, tag, len) = p1.unwrap();
        let got = engine.post(ANY_SOURCE, ANY_TAG).wait().unwrap();
        prop_assert_eq!(got.src, src);
        prop_assert_eq!(got.tag, tag);
        prop_assert_eq!(got.data.len(), len);
    }
}
