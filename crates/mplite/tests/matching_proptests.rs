//! Property tests for the MPI-style matching engine: for any interleaving
//! of posted receives and arriving messages, matching must be complete
//! (nothing lost), exclusive (nothing double-delivered), and FIFO per
//! (source, tag) pair.
//!
//! Cases come from a tiny seeded splitmix64 generator, keeping the crate
//! dependency-free while exploring the same randomized interleavings on
//! every run.

use mplite::message::{InMsg, MatchEngine, ANY_SOURCE, ANY_TAG};
use mplite::Bytes;

/// Minimal deterministic generator (splitmix64).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Deliver a message (src, tag, seq payload).
    Deliver(u8, u8),
    /// Post a receive with optional wildcards.
    Post(Option<u8>, Option<u8>),
}

fn random_ops(rng: &mut TestRng) -> Vec<Op> {
    let n = 1 + rng.below(119);
    (0..n)
        .map(|_| {
            if rng.below(2) == 0 {
                Op::Deliver(rng.below(3) as u8, rng.below(3) as u8)
            } else {
                let src = (rng.below(2) == 0).then(|| rng.below(3) as u8);
                let tag = (rng.below(2) == 0).then(|| rng.below(3) as u8);
                Op::Post(src, tag)
            }
        })
        .collect()
}

#[test]
fn matching_is_complete_exclusive_and_fifo() {
    for case in 0..64u64 {
        let mut rng = TestRng(0x4D41_7443 ^ case);
        let ops = random_ops(&mut rng);
        let engine = MatchEngine::new();
        let mut seq = 0u32;
        let mut delivered = 0u32;
        let mut slots = Vec::new();
        for op in &ops {
            match *op {
                Op::Deliver(src, tag) => {
                    engine.deliver(InMsg {
                        src: src as usize,
                        tag: i32::from(tag),
                        data: Bytes::from(seq.to_le_bytes().to_vec()),
                    });
                    seq += 1;
                    delivered += 1;
                }
                Op::Post(src, tag) => {
                    slots.push((
                        engine.post(
                            src.map_or(ANY_SOURCE, i32::from),
                            tag.map_or(ANY_TAG, i32::from),
                        ),
                        src,
                        tag,
                    ));
                }
            }
        }
        // Count completions; each completed slot's message must match its
        // pattern, and no payload may appear twice.
        let mut seen = std::collections::HashSet::new();
        let mut completed = 0u32;
        let mut per_pair_last: std::collections::HashMap<
            (usize, i32, Option<u8>, Option<u8>),
            u32,
        > = std::collections::HashMap::new();
        for (slot, want_src, want_tag) in &slots {
            if let Some(Ok(msg)) = slot.try_take() {
                completed += 1;
                let payload = u32::from_le_bytes(msg.data[..4].try_into().expect("4-byte payload"));
                assert!(seen.insert(payload), "payload {payload} delivered twice");
                if let Some(s) = want_src {
                    assert_eq!(msg.src, *s as usize);
                }
                if let Some(t) = want_tag {
                    assert_eq!(msg.tag, i32::from(*t));
                }
                // FIFO per (src, tag, pattern): for slots with the same
                // fully-specified pattern, payload sequence must ascend.
                if want_src.is_some() && want_tag.is_some() {
                    let key = (msg.src, msg.tag, *want_src, *want_tag);
                    if let Some(&prev) = per_pair_last.get(&key) {
                        assert!(payload > prev, "FIFO violated: {payload} after {prev}");
                    }
                    per_pair_last.insert(key, payload);
                }
            }
        }
        // Conservation: completions + still-queued unexpected == delivered
        // (a completed slot consumed exactly one message).
        assert_eq!(completed + engine.unexpected_len() as u32, delivered);
    }
}

/// Probe never changes state and agrees with a subsequent post.
#[test]
fn probe_is_pure() {
    for case in 0..32u64 {
        let mut rng = TestRng(0xBEEF ^ case);
        let n = 1 + rng.below(19);
        let srcs: Vec<u8> = (0..n).map(|_| rng.below(3) as u8).collect();
        let engine = MatchEngine::new();
        for (i, &s) in srcs.iter().enumerate() {
            engine.deliver(InMsg {
                src: s as usize,
                tag: 1,
                data: Bytes::from(vec![i as u8]),
            });
        }
        let before = engine.unexpected_len();
        let p1 = engine.probe(ANY_SOURCE, ANY_TAG);
        let p2 = engine.probe(ANY_SOURCE, ANY_TAG);
        assert_eq!(p1, p2);
        assert_eq!(engine.unexpected_len(), before);
        // The probed message is what a wildcard post receives next.
        let (src, tag, len) = p1.expect("at least one message queued");
        let got = engine
            .post(ANY_SOURCE, ANY_TAG)
            .wait()
            .expect("wildcard post completes");
        assert_eq!(got.src, src);
        assert_eq!(got.tag, tag);
        assert_eq!(got.data.len(), len);
    }
}
