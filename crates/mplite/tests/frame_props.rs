//! Property tests for the v2 wire framing: encode↔decode round-trips
//! across the field extremes, the pre-allocation length bound, and the
//! CRC's answer to every possible single-bit flip.

use mplite::frame::{
    build_header, decode_any_header, FrameDecoder, FrameError, DEFAULT_MAX_MESSAGE, V2_HEADER_LEN,
    WIRE_V2,
};

/// Wire bytes of one complete v2 frame.
fn encode(src: u32, tag: i32, payload: &[u8]) -> Vec<u8> {
    let (hdr, n) = build_header(WIRE_V2, src, tag, payload);
    let mut out = hdr[..n].to_vec();
    out.extend_from_slice(payload);
    out
}

#[test]
fn header_round_trips_across_the_extremes() {
    let srcs = [0u32, 1, u32::MAX];
    let tags = [i32::MIN, -1, 0, 1, i32::MAX];
    let payloads: [&[u8]; 3] = [b"", b"x", &[0xA5; 4096]];
    for &src in &srcs {
        for &tag in &tags {
            for &payload in &payloads {
                let (hdr, n) = build_header(WIRE_V2, src, tag, payload);
                assert_eq!(n, V2_HEADER_LEN);
                let pf = decode_any_header(WIRE_V2, &hdr[..n], DEFAULT_MAX_MESSAGE)
                    .unwrap_or_else(|e| panic!("src={src} tag={tag}: {e}"));
                assert_eq!(pf.src, src);
                assert_eq!(pf.tag, tag);
                assert_eq!(pf.len, payload.len() as u64);
                pf.verify(payload)
                    .unwrap_or_else(|e| panic!("src={src} tag={tag}: {e}"));
            }
        }
    }
}

#[test]
fn whole_frames_round_trip_through_the_decoder() {
    for (src, tag, payload) in [
        (0u32, 0i32, Vec::new()),
        (u32::MAX, i32::MIN, vec![0u8; 1]),
        (9, i32::MAX, (0..=255u8).cycle().take(10_000).collect()),
    ] {
        let wire = encode(src, tag, &payload);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_MESSAGE);
        let frames = dec.feed(&wire).expect("valid frame decodes");
        dec.finish().expect("no leftover bytes");
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].src, src);
        assert_eq!(frames[0].tag, tag);
        assert_eq!(frames[0].payload, payload);
    }
}

#[test]
fn absurd_length_is_rejected_before_any_allocation() {
    let (mut hdr, n) = build_header(WIRE_V2, 1, 2, b"abc");
    hdr[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    match decode_any_header(WIRE_V2, &hdr[..n], DEFAULT_MAX_MESSAGE) {
        Err(FrameError::Oversized { len, max }) => {
            assert_eq!(len, u64::MAX);
            assert_eq!(max, DEFAULT_MAX_MESSAGE);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// The hard property: flip ANY single bit of a valid frame and the
/// decoder must reject it — a typed error from `feed` or from `finish`
/// (a length-field flip can leave the stream short, which only EOF can
/// prove). No flip may yield the original clean message.
#[test]
fn every_single_bit_flip_of_a_valid_frame_is_rejected() {
    let payload = b"protocol-dependent bytes";
    let wire = encode(3, 17, payload);
    let mut rejected_by_feed = 0u32;
    let mut rejected_by_finish = 0u32;
    for bit in 0..wire.len() * 8 {
        let mut mutant = wire.clone();
        mutant[bit / 8] ^= 1 << (bit % 8);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_MESSAGE);
        match dec.feed(&mutant) {
            Err(_) => rejected_by_feed += 1,
            Ok(frames) => {
                // Any frame that does come out must not be the original.
                for f in &frames {
                    assert!(
                        f.src != 3 || f.tag != 17 || f.payload != payload,
                        "bit {bit}: flip survived as the clean message"
                    );
                }
                match dec.finish() {
                    Err(_) => rejected_by_finish += 1,
                    Ok(()) => panic!("bit {bit}: flipped frame decoded cleanly: {frames:?}"),
                }
            }
        }
    }
    // Both rejection paths must actually fire across the sweep: CRC /
    // header checks catch most flips, EOF-on-short-stream catches
    // length-field flips that shrink the declared payload.
    assert!(rejected_by_feed > 0);
    assert!(rejected_by_finish > 0, "no flip exercised the finish path");
}

#[test]
fn chunk_boundaries_never_change_the_verdict() {
    let wire = [
        encode(1, 1, b"alpha"),
        encode(2, 2, b""),
        encode(3, 3, &[9u8; 777]),
    ]
    .concat();
    for chunk in [1usize, 2, 3, 7, 16, 23, 64, wire.len()] {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_MESSAGE);
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            frames.extend(dec.feed(piece).expect("valid stream"));
        }
        dec.finish().expect("stream ends on a frame boundary");
        assert_eq!(frames.len(), 3, "chunk={chunk}");
        assert_eq!(frames[2].payload.len(), 777, "chunk={chunk}");
    }
}
