//! In-tree protocol fuzzer for the v2 frame decoder and control paths.
//!
//! No external fuzzing engine, no process forking: a [`simcore::SimRng`]
//! mutates a corpus of valid frames (bit flips, splices, truncations,
//! length tampering, garbage) and pushes the bytes through
//! [`FrameDecoder`] in randomly sized chunks, plus every decoded control
//! frame through [`crate::comm`]'s FIN/POISON parser. The contract under
//! test is the one the reader threads rely on:
//!
//! * every input yields verified frames or a typed [`FrameError`] —
//!   never a panic, never a hang;
//! * no payload buffer larger than the configured cap is ever handed
//!   back (the length check precedes allocation);
//! * the run is a pure function of the seed, so a failing seed *is* the
//!   reproducer.
//!
//! The harness style follows the microbench convention: a library entry
//! point ([`run_seed`]) returning a stats struct, driven by tests and by
//! `bench`'s `wire_chaos` binary (which serializes the stats as JSON for
//! CI artifacts).

use std::collections::BTreeMap;

use simcore::SimRng;

use crate::comm;
use crate::frame::{self, FrameDecoder, FrameError};

/// Payload cap the fuzz decoders enforce. Deliberately small so length
/// tampering actually crosses it, and so a cap violation (a returned
/// payload bigger than this) is unmistakable.
pub const FUZZ_MAX_MESSAGE: u64 = 1 << 16;

/// Aggregated result of one fuzzing seed. Field-for-field deterministic
/// given (`seed`, `frames`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Mutated frames pushed through the decoder.
    pub frames: u64,
    /// Inputs that decoded to one or more verified frames.
    pub clean: u64,
    /// Inputs rejected with a typed [`FrameError`].
    pub rejected: u64,
    /// Verified control frames (FIN/POISON tags) that the control
    /// parser classified.
    pub control_classified: u64,
    /// Verified control frames the control parser ignored (unusable
    /// payload) — allowed, as long as it returns.
    pub control_ignored: u64,
    /// Rejections by [`FrameError::kind`].
    pub by_error: BTreeMap<&'static str, u64>,
    /// Contract violations: payloads returned over the cap. Always 0 on
    /// a passing run; counted instead of asserted so the caller owns
    /// the verdict.
    pub cap_violations: u64,
}

impl FuzzReport {
    /// `clean + rejected` must account for every input.
    pub fn accounted(&self) -> bool {
        self.clean + self.rejected == self.frames
    }
}

/// One corpus entry: a valid v2 frame as raw wire bytes.
fn corpus() -> Vec<Vec<u8>> {
    let fin = crate::comm::FIN_TAG;
    let poison = crate::comm::POISON_TAG;
    let mut out = Vec::new();
    let cases: &[(u32, i32, Vec<u8>)] = &[
        (0, 0, Vec::new()),
        (1, 5, b"hello wire".to_vec()),
        (u32::MAX, i32::MAX, vec![0xAB; 64]),
        (7, i32::MIN, vec![0x00; 1]),
        (2, -1, (0..=255u8).collect()),
        (3, fin, Vec::new()),
        (4, poison, 3u64.to_le_bytes().to_vec()),
        (5, poison, vec![1, 2, 3]), // wrong-length verdict: ignorable
        (6, 1_000, vec![0x55; 4096]),
    ];
    for (src, tag, payload) in cases {
        let (h, n) = frame::build_header(frame::WIRE_V2, *src, *tag, payload);
        let mut bytes = h[..n].to_vec();
        bytes.extend_from_slice(payload);
        out.push(bytes);
    }
    out
}

/// Apply one seeded mutation to `bytes`.
fn mutate(rng: &mut SimRng, bytes: &mut Vec<u8>) {
    match rng.next_below(6) {
        // Flip a single bit anywhere in the frame.
        0 if !bytes.is_empty() => {
            let bit = rng.next_below(bytes.len() as u64 * 8) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        // Overwrite a byte with garbage.
        1 if !bytes.is_empty() => {
            let i = rng.next_below(bytes.len() as u64) as usize;
            bytes[i] = rng.next_u64() as u8;
        }
        // Truncate to a seeded prefix.
        2 if !bytes.is_empty() => {
            let keep = rng.next_below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        // Append garbage (desyncs whatever follows).
        3 => {
            let extra = rng.next_below(16) + 1;
            for _ in 0..extra {
                bytes.push(rng.next_u64() as u8);
            }
        }
        // Tamper with the declared length field.
        4 if bytes.len() >= frame::V2_HEADER_LEN => {
            let len = match rng.next_below(3) {
                0 => u64::MAX,
                1 => FUZZ_MAX_MESSAGE + 1 + rng.next_below(1 << 20),
                _ => rng.next_below(FUZZ_MAX_MESSAGE),
            };
            bytes[12..20].copy_from_slice(&len.to_le_bytes());
        }
        // Splice in a chunk of another corpus entry's bytes.
        _ => {
            let at = rng.next_below(bytes.len() as u64 + 1) as usize;
            let n = rng.next_below(8) as usize;
            for k in 0..n {
                bytes.insert(at, (k as u8).wrapping_mul(0x9D));
            }
        }
    }
}

/// Fuzz the decoder with `frames` mutated inputs derived from `seed`.
/// Deterministic: identical arguments give an identical report.
pub fn run_seed(seed: u64, frames: u64) -> FuzzReport {
    let base = corpus();
    let mut rng = SimRng::new(seed);
    let mut report = FuzzReport {
        seed,
        frames,
        clean: 0,
        rejected: 0,
        control_classified: 0,
        control_ignored: 0,
        by_error: BTreeMap::new(),
        cap_violations: 0,
    };
    for _ in 0..frames {
        let mut bytes = base[rng.next_below(base.len() as u64) as usize].clone();
        let mutations = rng.next_below(4) + 1;
        for _ in 0..mutations {
            mutate(&mut rng, &mut bytes);
        }
        let outcome = push_through_decoder(&mut rng, &bytes);
        match outcome {
            Ok(decoded) => {
                report.clean += 1;
                for f in decoded {
                    if f.payload.len() as u64 > FUZZ_MAX_MESSAGE {
                        report.cap_violations += 1;
                    }
                    if f.tag == comm::FIN_TAG || f.tag == comm::POISON_TAG {
                        match comm::parse_control(f.tag, &f.payload) {
                            Some(_) => report.control_classified += 1,
                            None => report.control_ignored += 1,
                        }
                    }
                }
            }
            Err(e) => {
                report.rejected += 1;
                *report.by_error.entry(e.kind()).or_insert(0) += 1;
            }
        }
    }
    report
}

/// Feed `bytes` through a fresh decoder in seeded chunk sizes, then
/// signal EOF. Either every byte is consumed into verified frames, or
/// the first typed error wins.
fn push_through_decoder(
    rng: &mut SimRng,
    bytes: &[u8],
) -> std::result::Result<Vec<frame::Frame>, FrameError> {
    let mut dec = FrameDecoder::new(FUZZ_MAX_MESSAGE);
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let chunk = (rng.next_below(64) as usize + 1).min(bytes.len() - off);
        out.extend(dec.feed(&bytes[off..off + chunk])?);
        off += chunk;
    }
    dec.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_deterministic_per_seed() {
        let a = run_seed(42, 500);
        let b = run_seed(42, 500);
        assert_eq!(a, b);
        let c = run_seed(43, 500);
        assert_ne!(a, c, "different seeds explore different inputs");
    }

    #[test]
    fn every_input_is_accounted_and_bounded() {
        for seed in [1, 2, 3] {
            let r = run_seed(seed, 1_000);
            assert!(r.accounted(), "{r:?}");
            assert_eq!(r.cap_violations, 0, "{r:?}");
        }
    }

    #[test]
    fn the_fuzzer_actually_exercises_both_outcomes() {
        let r = run_seed(7, 2_000);
        assert!(r.clean > 0, "some mutations must survive: {r:?}");
        assert!(r.rejected > 0, "some mutations must be caught: {r:?}");
        assert!(!r.by_error.is_empty(), "{r:?}");
    }
}
