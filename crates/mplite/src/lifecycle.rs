//! The communicator connection lifecycle, as an explicit protocol
//! specification.
//!
//! An MP_Lite-style communicator boots (full-mesh connect + hello
//! exchange in [`crate::universe`], reader/writer threads spawned in
//! [`crate::comm`]), runs steady-state, and leaves the steady state
//! exactly one way per cause: a peer dying mid-message *poisons* the
//! match engine (every posted and future receive fails fast, the sweep
//! survives), and finalization — clean or after poison — retires it
//! for good. [`crate::message::MatchEngine`] holds the live state and
//! steps it through the match arms that `xtask analyze`'s `protocol-*`
//! rules check against this table.

protospec::protocol! {
    /// Connection lifecycle: boot → steady, with poison and finalize
    /// exits. `Finalized` is the only rest state — a communicator that
    /// never finalizes is a leaked mesh.
    pub ConnLifeState of mplite.connection;
    states Booting, Steady, Poisoned, Finalized;
    terminal Finalized;
    Booting --ready~--> Steady;
    Booting --poison~--> Poisoned;
    Booting --finalize~--> Finalized;
    Steady --poison~--> Poisoned;
    Steady --finalize~--> Finalized;
    Poisoned --finalize~--> Finalized;
}

#[cfg(test)]
mod tests {
    use super::ConnLifeState;

    #[test]
    fn spec_is_well_formed() {
        let spec = ConnLifeState::spec();
        assert!(spec.check().is_empty(), "{:?}", spec.check());
        assert_eq!(ConnLifeState::initial(), ConnLifeState::Booting);
        assert!(ConnLifeState::Finalized.is_terminal());
    }

    #[test]
    fn lifecycle_paths_follow_the_table() {
        // Clean life: boot → steady → finalized.
        let s = ConnLifeState::initial()
            .step("ready")
            .and_then(|s| s.step("finalize"))
            .expect("clean path");
        assert_eq!(s, ConnLifeState::Finalized);
        // Peer death: steady → poisoned → finalized.
        let s = ConnLifeState::Steady
            .step("poison")
            .and_then(|s| s.step("finalize"))
            .expect("poisoned path");
        assert_eq!(s, ConnLifeState::Finalized);
        // A finalized communicator cannot come back.
        assert!(ConnLifeState::Finalized.step("ready").is_err());
    }
}
