//! Wire format and tag matching.
//!
//! Every message carries a fixed 16-byte header — source rank, tag,
//! payload length — followed by the payload. The matching engine pairs
//! incoming messages with posted receives the way MP_Lite (and MPI) do:
//! a receive may name a specific source or [`ANY_SOURCE`], a specific tag
//! or [`ANY_TAG`]; unmatched arrivals queue as *unexpected* messages and
//! are consumed in arrival order.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::buf::Bytes;
use crate::sync::{Condvar, Mutex};

use crate::error::{MpError, Result};
use crate::lifecycle::ConnLifeState;

/// Wildcard source for receives.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag for receives.
pub const ANY_TAG: i32 = -1;

/// Size of the wire header.
pub const HEADER_LEN: usize = 16;

/// Encode a message header.
pub fn encode_header(src: u32, tag: i32, len: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&src.to_le_bytes());
    h[4..8].copy_from_slice(&tag.to_le_bytes());
    h[8..16].copy_from_slice(&len.to_le_bytes());
    h
}

/// Decode a message header into `(src, tag, len)`.
pub fn decode_header(h: &[u8; HEADER_LEN]) -> (u32, i32, u64) {
    let src = u32::from_le_bytes(le_bytes(&h[0..4]));
    let tag = i32::from_le_bytes(le_bytes(&h[4..8]));
    let len = u64::from_le_bytes(le_bytes(&h[8..16]));
    (src, tag, len)
}

/// Copy the first `N` bytes of a slice into a fixed array. Callers index
/// with a range of at least `N` bytes, so the copy cannot fail.
pub(crate) fn le_bytes<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&s[..N]);
    out
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct InMsg {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Bytes,
}

/// Completion slot shared between a posted receive and the reader threads.
#[derive(Debug)]
pub struct RecvSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Waiting,
    Done(InMsg),
    Failed(String),
}

impl RecvSlot {
    fn new() -> Arc<RecvSlot> {
        Arc::new(RecvSlot {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        })
    }

    /// Fulfil the slot with a message.
    pub fn fulfil(&self, msg: InMsg) {
        let mut st = self.state.lock();
        *st = SlotState::Done(msg);
        self.cv.notify_all();
    }

    /// Fail the slot (peer disconnected, shutdown).
    pub fn fail(&self, why: String) {
        let mut st = self.state.lock();
        if matches!(*st, SlotState::Waiting) {
            *st = SlotState::Failed(why);
            self.cv.notify_all();
        }
    }

    /// Non-blocking completion test.
    pub fn try_take(&self) -> Option<Result<InMsg>> {
        let mut st = self.state.lock();
        match std::mem::replace(&mut *st, SlotState::Waiting) {
            SlotState::Waiting => None,
            SlotState::Done(m) => Some(Ok(m)),
            SlotState::Failed(w) => Some(Err(MpError::Io(std::io::Error::other(w)))),
        }
    }

    /// Block until the slot completes or `deadline` elapses. `None`
    /// means the deadline expired with the receive still outstanding —
    /// the caller decides what that implies (the collective executor
    /// declares the awaited peer dead).
    pub fn wait_deadline(&self, deadline: std::time::Duration) -> Option<Result<InMsg>> {
        let start = std::time::Instant::now(); // lint:allow(nondet-wall-clock) -- real-mode deadline primitive: the slot owns its wait clock
        let mut st = self.state.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Waiting) {
                SlotState::Waiting => {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        return None;
                    }
                    // Timeout and spurious wakes both re-loop; the
                    // elapsed check above terminates.
                    let _ = self.cv.wait_timeout(&mut st, deadline - elapsed);
                }
                SlotState::Done(m) => return Some(Ok(m)),
                SlotState::Failed(w) => return Some(Err(MpError::Io(std::io::Error::other(w)))),
            }
        }
    }

    /// Block until the slot completes.
    pub fn wait(&self) -> Result<InMsg> {
        let mut st = self.state.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Waiting) {
                SlotState::Waiting => self.cv.wait(&mut st),
                SlotState::Done(m) => return Ok(m),
                SlotState::Failed(w) => return Err(MpError::Io(std::io::Error::other(w))),
            }
        }
    }
}

/// A receive posted before its message arrived.
struct PostedRecv {
    src: i32,
    tag: i32,
    slot: Arc<RecvSlot>,
}

/// MPI-style matching: posted receives vs. unexpected messages.
///
/// Thread-safe: reader threads call [`MatchEngine::deliver`], application
/// threads call [`MatchEngine::post`].
///
/// The engine also owns the communicator's connection lifecycle state
/// ([`ConnLifeState`], spec of record: `mplite.connection`): it is the
/// one object every thread of a communicator shares, so poison/finalize
/// transitions serialize under its lock.
pub struct MatchEngine {
    inner: Mutex<MatchInner>,
}

struct MatchInner {
    unexpected: VecDeque<InMsg>,
    posted: VecDeque<PostedRecv>,
    life: ConnLifeState,
}

impl Default for MatchInner {
    fn default() -> MatchInner {
        MatchInner {
            unexpected: VecDeque::new(),
            posted: VecDeque::new(),
            life: ConnLifeState::initial(),
        }
    }
}

fn matches(want_src: i32, want_tag: i32, msg: &InMsg) -> bool {
    (want_src == ANY_SOURCE || want_src as usize == msg.src)
        && (want_tag == ANY_TAG || want_tag == msg.tag)
}

impl MatchEngine {
    /// An empty matching engine.
    pub fn new() -> MatchEngine {
        MatchEngine {
            inner: Mutex::new(MatchInner::default()),
        }
    }

    /// Reader-thread entry: route an arrived message to a posted receive
    /// or queue it as unexpected.
    pub fn deliver(&self, msg: InMsg) {
        let slot = {
            let mut inner = self.inner.lock();
            match inner
                .posted
                .iter()
                .position(|p| matches(p.src, p.tag, &msg))
            {
                Some(i) => inner.posted.remove(i).map(|p| p.slot),
                None => {
                    inner.unexpected.push_back(msg.clone());
                    None
                }
            }
        };
        if let Some(slot) = slot {
            slot.fulfil(msg);
        }
    }

    /// Post a receive for `(src, tag)`; returns a slot that completes when
    /// a matching message is (or already was) available.
    pub fn post(&self, src: i32, tag: i32) -> Arc<RecvSlot> {
        let slot = RecvSlot::new();
        let ready = {
            let mut inner = self.inner.lock();
            if !matches!(inner.life, ConnLifeState::Booting | ConnLifeState::Steady) {
                slot.fail("communicator shut down".into());
                None
            } else if let Some(i) = inner.unexpected.iter().position(|m| matches(src, tag, m)) {
                inner.unexpected.remove(i)
            } else {
                inner.posted.push_back(PostedRecv {
                    src,
                    tag,
                    slot: Arc::clone(&slot),
                });
                None
            }
        };
        if let Some(msg) = ready {
            slot.fulfil(msg);
        }
        slot
    }

    /// Probe without consuming: is a matching message queued?
    pub fn probe(&self, src: i32, tag: i32) -> Option<(usize, i32, usize)> {
        let inner = self.inner.lock();
        inner
            .unexpected
            .iter()
            .find(|m| matches(src, tag, m))
            .map(|m| (m.src, m.tag, m.data.len()))
    }

    /// Boot complete: the mesh is connected and the service threads are
    /// up. A no-op if a reader already poisoned the engine — poison must
    /// not be papered over by a late `ready`.
    pub fn ready(&self) {
        let mut inner = self.inner.lock();
        inner.life = match inner.life {
            ConnLifeState::Booting => ConnLifeState::Steady,
            other => other,
        };
    }

    /// Fail every posted receive and refuse future posts (peer-death
    /// path). The engine stays usable for draining already-queued
    /// unexpected messages until [`MatchEngine::finalize`].
    pub fn poison(&self, why: &str) {
        let posted: Vec<Arc<RecvSlot>> = {
            let mut inner = self.inner.lock();
            inner.life = match inner.life {
                ConnLifeState::Booting | ConnLifeState::Steady | ConnLifeState::Poisoned => {
                    ConnLifeState::Poisoned
                }
                ConnLifeState::Finalized => ConnLifeState::Finalized,
            };
            inner.posted.drain(..).map(|p| p.slot).collect()
        };
        for slot in posted {
            slot.fail(why.to_string());
        }
    }

    /// Retire the engine for good (communicator drop). Terminal: every
    /// prior state finalizes, and nothing leaves `Finalized`.
    pub fn finalize(&self, why: &str) {
        let posted: Vec<Arc<RecvSlot>> = {
            let mut inner = self.inner.lock();
            inner.life = ConnLifeState::Finalized;
            inner.posted.drain(..).map(|p| p.slot).collect()
        };
        for slot in posted {
            slot.fail(why.to_string());
        }
    }

    /// Number of unexpected messages held (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.inner.lock().unexpected.len()
    }
}

impl Default for MatchEngine {
    fn default() -> Self {
        MatchEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, tag: i32, data: &[u8]) -> InMsg {
        InMsg {
            src,
            tag,
            data: Bytes::copy_from_slice(data),
        }
    }

    #[test]
    fn header_round_trips() {
        let h = encode_header(7, -3, 123_456_789);
        assert_eq!(decode_header(&h), (7, -3, 123_456_789));
    }

    #[test]
    fn unexpected_then_post() {
        let m = MatchEngine::new();
        m.deliver(msg(1, 5, b"hello"));
        let slot = m.post(1, 5);
        let got = slot.wait().unwrap();
        assert_eq!(&got.data[..], b"hello");
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn post_then_deliver() {
        let m = MatchEngine::new();
        let slot = m.post(0, 9);
        assert!(slot.try_take().is_none());
        m.deliver(msg(0, 9, b"x"));
        assert_eq!(&slot.wait().unwrap().data[..], b"x");
    }

    #[test]
    fn wildcards_match_anything() {
        let m = MatchEngine::new();
        m.deliver(msg(3, 42, b"w"));
        let got = m.post(ANY_SOURCE, ANY_TAG).wait().unwrap();
        assert_eq!(got.src, 3);
        assert_eq!(got.tag, 42);
    }

    #[test]
    fn specific_recv_skips_nonmatching() {
        let m = MatchEngine::new();
        m.deliver(msg(0, 1, b"a"));
        m.deliver(msg(0, 2, b"b"));
        let got = m.post(0, 2).wait().unwrap();
        assert_eq!(&got.data[..], b"b");
        // "a" is still there for a wildcard.
        let got = m.post(ANY_SOURCE, ANY_TAG).wait().unwrap();
        assert_eq!(&got.data[..], b"a");
    }

    #[test]
    fn arrival_order_preserved_for_same_match() {
        let m = MatchEngine::new();
        m.deliver(msg(0, 1, b"first"));
        m.deliver(msg(0, 1, b"second"));
        assert_eq!(&m.post(0, 1).wait().unwrap().data[..], b"first");
        assert_eq!(&m.post(0, 1).wait().unwrap().data[..], b"second");
    }

    #[test]
    fn posted_order_preserved_for_same_match() {
        let m = MatchEngine::new();
        let s1 = m.post(0, 1);
        let s2 = m.post(0, 1);
        m.deliver(msg(0, 1, b"first"));
        m.deliver(msg(0, 1, b"second"));
        assert_eq!(&s1.wait().unwrap().data[..], b"first");
        assert_eq!(&s2.wait().unwrap().data[..], b"second");
    }

    #[test]
    fn probe_does_not_consume() {
        let m = MatchEngine::new();
        m.deliver(msg(2, 7, b"xyz"));
        assert_eq!(m.probe(ANY_SOURCE, ANY_TAG), Some((2, 7, 3)));
        assert_eq!(m.probe(ANY_SOURCE, ANY_TAG), Some((2, 7, 3)));
        assert_eq!(m.probe(1, ANY_TAG), None);
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn wait_deadline_times_out_then_still_completes() {
        let m = MatchEngine::new();
        let slot = m.post(0, 1);
        assert!(
            slot.wait_deadline(std::time::Duration::from_millis(30))
                .is_none(),
            "nothing delivered: the deadline must expire"
        );
        m.deliver(msg(0, 1, b"late"));
        let got = slot
            .wait_deadline(std::time::Duration::from_secs(1))
            .expect("delivered")
            .expect("ok");
        assert_eq!(&got.data[..], b"late");
    }

    #[test]
    fn poison_fails_posted_and_future() {
        let m = MatchEngine::new();
        let slot = m.post(0, 0);
        m.poison("bye");
        assert!(slot.wait().is_err());
        assert!(m.post(0, 0).wait().is_err());
    }

    #[test]
    fn finalize_fails_posted_and_future() {
        let m = MatchEngine::new();
        m.ready();
        let slot = m.post(0, 0);
        m.finalize("done");
        assert!(slot.wait().is_err());
        assert!(m.post(0, 0).wait().is_err());
    }

    #[test]
    fn ready_does_not_resurrect_a_poisoned_engine() {
        let m = MatchEngine::new();
        m.poison("peer died during boot");
        m.ready();
        assert!(m.post(0, 0).wait().is_err());
    }

    #[test]
    fn concurrent_deliver_and_post() {
        let m = Arc::new(MatchEngine::new());
        let m2 = Arc::clone(&m);
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                m2.deliver(msg(0, 1, &i.to_le_bytes()));
            }
        });
        let mut seen = Vec::new();
        for _ in 0..1000 {
            let got = m.post(0, 1).wait().unwrap();
            seen.push(u32::from_le_bytes(got.data[..].try_into().unwrap()));
        }
        producer.join().unwrap();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(seen, expect, "FIFO per (src, tag) must hold");
    }
}
