//! Collective operations over the point-to-point layer.
//!
//! MP_Lite supported "many common global operations" (§3.4); this module
//! provides the same set: barrier, broadcast, reduce / allreduce over
//! numeric slices, gather / allgather, scatter and all-to-all.
//!
//! All collectives use reserved negative tags derived from a per-job
//! sequence number, so they never collide with user traffic and
//! back-to-back collectives never collide with each other. As in MPI,
//! every rank must call the same collectives in the same order.

use std::sync::atomic::Ordering;

use crate::buf::Bytes;

use crate::comm::Comm;
use crate::error::{MpError, Result};

/// Reduction operators for [`Comm::reduce`] / [`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

/// Element types usable in reductions.
pub trait ReduceElem: Copy + Send + 'static {
    /// Serialized size of one element.
    const WIDTH: usize;
    /// Append the little-endian encoding of `self`.
    fn write(self, out: &mut Vec<u8>);
    /// Decode one element.
    fn read(bytes: &[u8]) -> Self;
    /// Combine two elements under `op`.
    fn combine(self, other: Self, op: ReduceOp) -> Self;
}

macro_rules! impl_reduce_elem {
    ($t:ty) => {
        impl ReduceElem for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(crate::message::le_bytes(bytes))
            }
            fn combine(self, other: Self, op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => self + other,
                    ReduceOp::Min => {
                        if other < self {
                            other
                        } else {
                            self
                        }
                    }
                    ReduceOp::Max => {
                        if other > self {
                            other
                        } else {
                            self
                        }
                    }
                    ReduceOp::Prod => self * other,
                }
            }
        }
    };
}

impl_reduce_elem!(f64);
impl_reduce_elem!(f32);
impl_reduce_elem!(i64);
impl_reduce_elem!(i32);
impl_reduce_elem!(u64);

fn encode_slice<T: ReduceElem>(xs: &[T]) -> Bytes {
    let mut out = Vec::with_capacity(xs.len() * T::WIDTH);
    for &x in xs {
        x.write(&mut out);
    }
    Bytes::from(out)
}

fn decode_slice<T: ReduceElem>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpError::Truncated {
            got: bytes.len(),
            want: bytes.len() / T::WIDTH * T::WIDTH,
        });
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::read).collect())
}

impl Comm {
    /// Reserve a fresh block of collective tags; all ranks call the
    /// collectives in the same order, so the sequence numbers agree.
    fn coll_tag(&self) -> i32 {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        // Tags below -2 are reserved: leave room for 2^20 in-flight rounds.
        -1_000_000 + (seq % 1_000_000)
    }

    /// Block until every rank has entered the barrier (dissemination
    /// algorithm: ⌈log₂ n⌉ rounds).
    pub fn barrier(&self) -> Result<()> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if n == 1 {
            return Ok(());
        }
        let mut step = 1usize;
        while step < n {
            let to = (self.rank() + step) % n;
            let from = (self.rank() + n - step % n) % n;
            let send = self.isend_internal(to, tag, Bytes::new())?;
            let (_, _) = self.recv_internal(from as i32, tag)?;
            send.wait()?;
            step <<= 1;
        }
        Ok(())
    }

    /// Broadcast `data` from `root`; every rank returns the payload.
    /// Binomial tree: ⌈log₂ n⌉ rounds.
    pub fn bcast(&self, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        let vrank = (self.rank() + n - root) % n;
        let payload = if vrank == 0 {
            data.ok_or(MpError::BadArg("root must supply the broadcast payload"))?
        } else {
            // Receive from the parent: clear the highest set bit.
            let high = 1usize << (usize::BITS - 1 - vrank.leading_zeros());
            let parent = (vrank - high + root) % n;
            let (bytes, _) = self.recv_internal(parent as i32, tag)?;
            bytes
        };
        // Forward to children: add each power of two above our highest bit.
        let mut bit = if vrank == 0 {
            1
        } else {
            1usize << (usize::BITS - vrank.leading_zeros())
        };
        let mut sends = Vec::new();
        while vrank + bit < n {
            let child = (vrank + bit + root) % n;
            sends.push(self.isend_internal(child, tag, payload.clone())?);
            bit <<= 1;
        }
        for s in sends {
            s.wait()?;
        }
        Ok(payload)
    }

    /// Elementwise reduction to `root`. Returns `Some(result)` on root,
    /// `None` elsewhere. All ranks must pass equal-length slices.
    pub fn reduce<T: ReduceElem>(
        &self,
        root: usize,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        let vrank = (self.rank() + n - root) % n;
        let mut acc: Vec<T> = data.to_vec();
        // Binomial tree, mirrored from bcast: children send up.
        let mut bit = 1usize;
        while bit < n {
            if vrank & bit != 0 {
                // Send to the parent and leave.
                let parent = ((vrank & !bit) + root) % n;
                self.isend_internal(parent, tag, encode_slice(&acc))?
                    .wait()?;
                return Ok(None);
            }
            if vrank + bit < n {
                let child = (vrank + bit + root) % n;
                let (bytes, _) = self.recv_internal(child as i32, tag)?;
                let theirs: Vec<T> = decode_slice(&bytes)?;
                assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a = a.combine(b, op);
                }
            }
            bit <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduction delivered to every rank (reduce to rank 0 + broadcast).
    pub fn allreduce<T: ReduceElem>(&self, data: &[T], op: ReduceOp) -> Result<Vec<T>> {
        let reduced = self.reduce(0, data, op)?;
        let bytes = self.bcast(0, reduced.map(|v| encode_slice(&v)))?;
        decode_slice(&bytes)
    }

    /// Allreduce by recursive doubling: log₂ n rounds of pairwise
    /// exchange, each rank combining as it goes — half the rounds of
    /// reduce+bcast for latency-bound sizes. Non-power-of-two jobs fold
    /// the excess ranks into the power-of-two core first (the standard
    /// construction).
    pub fn allreduce_rd<T: ReduceElem>(&self, data: &[T], op: ReduceOp) -> Result<Vec<T>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        let me = self.rank();
        let mut acc: Vec<T> = data.to_vec();
        if n == 1 {
            return Ok(acc);
        }
        // Largest power of two <= n.
        let core = 1usize << (usize::BITS - 1 - n.leading_zeros());
        let excess = n - core;
        // Phase 1: ranks >= core send their data into the core.
        if me >= core {
            let partner = me - core;
            self.isend_internal(partner, tag, encode_slice(&acc))?
                .wait()?;
        } else if me < excess {
            let partner = me + core;
            let (bytes, _) = self.recv_internal(partner as i32, tag)?;
            let theirs: Vec<T> = decode_slice(&bytes)?;
            assert_eq!(theirs.len(), acc.len(), "allreduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = a.combine(b, op);
            }
        }
        // Phase 2: recursive doubling inside the core.
        if me < core {
            let mut bit = 1usize;
            while bit < core {
                let partner = me ^ bit;
                // Symmetric exchange; post receive first to avoid ordering
                // sensitivity.
                let rx = self.post_internal(partner as i32, tag + 1);
                self.isend_internal(partner, tag + 1, encode_slice(&acc))?
                    .wait()?;
                let msg = rx.wait()?;
                let theirs: Vec<T> = decode_slice(&msg.data)?;
                assert_eq!(theirs.len(), acc.len(), "allreduce length mismatch");
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a = a.combine(b, op);
                }
                bit <<= 1;
            }
        }
        // Phase 3: results flow back out to the excess ranks.
        if me >= core {
            let partner = me - core;
            let (bytes, _) = self.recv_internal(partner as i32, tag + 2)?;
            acc = decode_slice(&bytes)?;
        } else if me < excess {
            let partner = me + core;
            self.isend_internal(partner, tag + 2, encode_slice(&acc))?
                .wait()?;
        }
        // Recursive doubling consumed three tags; keep the global
        // collective ordering consistent across ranks.
        let _ = self.coll_tag();
        let _ = self.coll_tag();
        Ok(acc)
    }

    /// Ring allgather: n−1 rounds, each rank forwarding the block it just
    /// received — bandwidth-optimal for large payloads where the
    /// gather+bcast tree retransmits everything through rank 0.
    pub fn allgather_ring(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        let me = self.rank();
        let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
        parts[me] = data.to_vec();
        if n == 1 {
            return Ok(parts);
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        // Round k: send the block that originated at (me - k), receive the
        // block that originated at (me - k - 1).
        let mut outgoing = me;
        for _ in 0..n - 1 {
            let rx = self.post_internal(left as i32, tag);
            self.isend_internal(right, tag, Bytes::from(parts[outgoing].clone()))?
                .wait()?;
            let msg = rx.wait()?;
            let incoming = (outgoing + n - 1) % n;
            parts[incoming] = msg.data.to_vec();
            outgoing = incoming;
        }
        Ok(parts)
    }

    /// Gather every rank's payload at `root` (rank order). Returns
    /// `Some(parts)` on root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        if self.rank() == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
            parts[root] = data.to_vec();
            for _ in 0..n - 1 {
                let (bytes, st) = self.recv_internal(crate::message::ANY_SOURCE, tag)?;
                parts[st.src] = bytes.to_vec();
            }
            Ok(Some(parts))
        } else {
            self.isend_internal(root, tag, Bytes::copy_from_slice(data))?
                .wait()?;
            Ok(None)
        }
    }

    /// Gather every rank's payload everywhere (gather at 0 + broadcast of
    /// the concatenation with a length prefix table).
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let gathered = self.gather(0, data)?;
        let packed = gathered.map(|parts| {
            let mut out = Vec::new();
            out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
            for p in &parts {
                out.extend_from_slice(&(p.len() as u64).to_le_bytes());
            }
            for p in &parts {
                out.extend_from_slice(p);
            }
            Bytes::from(out)
        });
        let bytes = self.bcast(0, packed)?;
        // Unpack.
        let count = u32::from_le_bytes(crate::message::le_bytes(&bytes[0..4])) as usize;
        let mut lens = Vec::with_capacity(count);
        let mut off = 4;
        for _ in 0..count {
            lens.push(u64::from_le_bytes(crate::message::le_bytes(&bytes[off..off + 8])) as usize);
            off += 8;
        }
        let mut parts = Vec::with_capacity(count);
        for len in lens {
            parts.push(bytes[off..off + len].to_vec());
            off += len;
        }
        Ok(parts)
    }

    /// Distribute one slice per rank from `root`. On root, `parts` must
    /// have exactly `nprocs` entries; elsewhere pass `None`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        if self.rank() == root {
            let parts = parts.ok_or(MpError::BadArg("root must supply scatter parts"))?;
            if parts.len() != n {
                return Err(MpError::BadArg("scatter needs one part per rank"));
            }
            let mine = parts[root].clone();
            let mut sends = Vec::new();
            for (dst, part) in parts.into_iter().enumerate() {
                if dst != root {
                    sends.push(self.isend_internal(dst, tag, part)?);
                }
            }
            for s in sends {
                s.wait()?;
            }
            Ok(mine)
        } else {
            let (bytes, _) = self.recv_internal(root as i32, tag)?;
            Ok(bytes)
        }
    }

    /// Personalized all-to-all exchange: `parts[j]` goes to rank `j`;
    /// returns what every rank sent to this one, in rank order.
    pub fn alltoall(&self, parts: Vec<Bytes>) -> Result<Vec<Vec<u8>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        assert_eq!(parts.len(), n, "alltoall needs one part per rank");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[self.rank()] = parts[self.rank()].to_vec();
        let mut sends = Vec::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst != self.rank() {
                sends.push(self.isend_internal(dst, tag, part)?);
            }
        }
        for _ in 0..n - 1 {
            let (bytes, st) = self.recv_internal(crate::message::ANY_SOURCE, tag)?;
            out[st.src] = bytes.to_vec();
        }
        for s in sends {
            s.wait()?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn barrier_synchronizes_all_sizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            Universe::run(n, |comm| {
                for _ in 0..5 {
                    comm.barrier().unwrap();
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2, 3, 5, 8] {
            for root in 0..n {
                Universe::run(n, move |comm| {
                    let data =
                        (comm.rank() == root).then(|| Bytes::from(format!("payload-from-{root}")));
                    let got = comm.bcast(root, data).unwrap();
                    assert_eq!(&got[..], format!("payload-from-{root}").as_bytes());
                })
                .unwrap();
            }
        }
    }

    #[test]
    fn reduce_sum_matches_reference() {
        for n in [2, 3, 4, 7] {
            Universe::run(n, move |comm| {
                let mine: Vec<f64> = (0..8).map(|i| (comm.rank() * 8 + i) as f64).collect();
                let got = comm.reduce(0, &mine, ReduceOp::Sum).unwrap();
                if comm.rank() == 0 {
                    let got = got.unwrap();
                    for (i, &v) in got.iter().enumerate() {
                        let expect: f64 = (0..n).map(|r| (r * 8 + i) as f64).sum();
                        assert_eq!(v, expect, "n={n} elem {i}");
                    }
                } else {
                    assert!(got.is_none());
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn allreduce_min_max_prod() {
        Universe::run(4, |comm| {
            let r = comm.rank() as i64 + 1;
            let mine = [r, -r, 2 * r];
            let min = comm.allreduce(&mine, ReduceOp::Min).unwrap();
            assert_eq!(min, vec![1, -4, 2]);
            let max = comm.allreduce(&mine, ReduceOp::Max).unwrap();
            assert_eq!(max, vec![4, -1, 8]);
            let prod = comm.allreduce(&[r], ReduceOp::Prod).unwrap();
            assert_eq!(prod, vec![24]);
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_in_rank_order() {
        Universe::run(4, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let got = comm.gather(2, &mine).unwrap();
            if comm.rank() == 2 {
                let parts = got.unwrap();
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![r as u8; r + 1]);
                }
            } else {
                assert!(got.is_none());
            }
        })
        .unwrap();
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        Universe::run(3, |comm| {
            let mine = format!("rank{}", comm.rank());
            let got = comm.allgather(mine.as_bytes()).unwrap();
            assert_eq!(got.len(), 3);
            for (r, p) in got.iter().enumerate() {
                assert_eq!(p, format!("rank{r}").as_bytes());
            }
        })
        .unwrap();
    }

    #[test]
    fn scatter_distributes_parts() {
        Universe::run(4, |comm| {
            let parts = (comm.rank() == 1).then(|| {
                (0..4)
                    .map(|i| Bytes::from(vec![i as u8; 4]))
                    .collect::<Vec<_>>()
            });
            let mine = comm.scatter(1, parts).unwrap();
            assert_eq!(&mine[..], &[comm.rank() as u8; 4]);
        })
        .unwrap();
    }

    #[test]
    fn alltoall_transposes() {
        Universe::run(3, |comm| {
            let parts: Vec<Bytes> = (0..3)
                .map(|dst| Bytes::from(format!("{}->{}", comm.rank(), dst)))
                .collect();
            let got = comm.alltoall(parts).unwrap();
            for (src, p) in got.iter().enumerate() {
                assert_eq!(p, format!("{}->{}", src, comm.rank()).as_bytes());
            }
        })
        .unwrap();
    }

    #[test]
    fn allreduce_rd_matches_tree_allreduce() {
        // Both algorithms must produce identical results for every job
        // size, including non-powers-of-two.
        for n in [1, 2, 3, 4, 5, 6, 8] {
            Universe::run(n, move |comm| {
                let mine: Vec<f64> = (0..16)
                    .map(|i| (comm.rank() * 31 + i * 7) as f64 * 0.5)
                    .collect();
                let tree = comm.allreduce(&mine, ReduceOp::Sum).unwrap();
                let rd = comm.allreduce_rd(&mine, ReduceOp::Sum).unwrap();
                for (a, b) in tree.iter().zip(&rd) {
                    assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
                }
                let tree_max = comm.allreduce(&mine, ReduceOp::Max).unwrap();
                let rd_max = comm.allreduce_rd(&mine, ReduceOp::Max).unwrap();
                assert_eq!(tree_max, rd_max, "n={n}");
            })
            .unwrap();
        }
    }

    #[test]
    fn allgather_ring_matches_tree_allgather() {
        for n in [1, 2, 3, 5, 7] {
            Universe::run(n, move |comm| {
                let mine = format!("payload-from-rank-{}", comm.rank());
                let tree = comm.allgather(mine.as_bytes()).unwrap();
                let ring = comm.allgather_ring(mine.as_bytes()).unwrap();
                assert_eq!(tree, ring, "n={n}");
                for (r, p) in ring.iter().enumerate() {
                    assert_eq!(p, format!("payload-from-rank-{r}").as_bytes());
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn mixed_algorithm_sequences_stay_in_sync() {
        // Interleaving the algorithm families must not desynchronize the
        // collective tag sequence.
        Universe::run(4, |comm| {
            for round in 0..10i64 {
                let a = comm.allreduce(&[round], ReduceOp::Sum).unwrap();
                let b = comm.allreduce_rd(&[round], ReduceOp::Sum).unwrap();
                assert_eq!(a, b);
                let g = comm.allgather_ring(&round.to_le_bytes()).unwrap();
                assert_eq!(g.len(), 4);
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 1, b"before").unwrap();
            comm.barrier().unwrap();
            let sum = comm.allreduce(&[1i64], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2]);
            let (data, _) = comm.recv(peer as i32, 1).unwrap();
            assert_eq!(&data[..], b"before");
        })
        .unwrap();
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        Universe::run(1, |comm| {
            comm.barrier().unwrap();
            let b = comm.bcast(0, Some(Bytes::from_static(b"solo"))).unwrap();
            assert_eq!(&b[..], b"solo");
            let r = comm.allreduce(&[5.0f64], ReduceOp::Sum).unwrap();
            assert_eq!(r, vec![5.0]);
            let g = comm.allgather(b"x").unwrap();
            assert_eq!(g, vec![b"x".to_vec()]);
        })
        .unwrap();
    }
}
