//! Collective operations over the point-to-point layer.
//!
//! MP_Lite supported "many common global operations" (§3.4); this module
//! provides the same set: barrier, broadcast, reduce / allreduce over
//! numeric slices, gather / allgather, scatter and all-to-all.
//!
//! The algorithms themselves live in the `collectives` crate as data —
//! a [`Schedule`](::collectives::Schedule) of per-rank rounds built by
//! [`::collectives::plan::build`] — and run here through
//! [`run_blocking`] over [`Comm`]'s tagged point-to-point layer. The
//! same schedules drive the simulated N-rank backend, so the real and
//! simulated collectives are byte-identical by construction. Every
//! entry point has a `*_with` variant taking an explicit
//! [`Algorithm`]; the plain names use the deterministic default from
//! [`auto_algorithm`] (which depends only on the op and the job size,
//! so ranks can never disagree on it). Gather, scatter and all-to-all
//! remain hand-rolled: they are personalized (per-peer payloads), which
//! the schedule vocabulary does not model.
//!
//! All collectives use reserved negative tags derived from a per-job
//! sequence number, so they never collide with user traffic and
//! back-to-back collectives never collide with each other. As in MPI,
//! every rank must call the same collectives in the same order.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ::collectives::exec::{run_blocking, CollTransport, ExecCtx};
use ::collectives::plan::{auto_algorithm, build, PlanError};
use ::collectives::state::{CollOutput, Reduction};
use ::collectives::{CollOp, Dtype};

use crate::buf::Bytes;
use crate::comm::Comm;
use crate::error::{MpError, Result};
use crate::message::RecvSlot;

/// Reduction operators for [`Comm::reduce`] / [`Comm::allreduce`]
/// (shared with the simulated backend).
pub use ::collectives::ReduceOp;

/// Algorithm families accepted by the `*_with` entry points.
pub use ::collectives::Algorithm;

/// Element types usable in reductions.
pub trait ReduceElem: Copy + Send + 'static {
    /// Serialized size of one element.
    const WIDTH: usize;
    /// The byte-level encoding the schedule executor combines under.
    const DTYPE: Dtype;
    /// Append the little-endian encoding of `self`.
    fn write(self, out: &mut Vec<u8>);
    /// Decode one element.
    fn read(bytes: &[u8]) -> Self;
}

macro_rules! impl_reduce_elem {
    ($t:ty, $dtype:expr) => {
        impl ReduceElem for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const DTYPE: Dtype = $dtype;
            fn write(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(crate::message::le_bytes(bytes))
            }
        }
    };
}

impl_reduce_elem!(f64, Dtype::F64);
impl_reduce_elem!(f32, Dtype::F32);
impl_reduce_elem!(i64, Dtype::I64);
impl_reduce_elem!(i32, Dtype::I32);
impl_reduce_elem!(u64, Dtype::U64);

fn encode_slice<T: ReduceElem>(xs: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * T::WIDTH);
    for &x in xs {
        x.write(&mut out);
    }
    out
}

fn decode_slice<T: ReduceElem>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpError::Truncated {
            got: bytes.len(),
            want: bytes.len() / T::WIDTH * T::WIDTH,
        });
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::read).collect())
}

fn plan_err(e: PlanError) -> MpError {
    MpError::BadArg(match e {
        PlanError::Unsupported { .. } => "algorithm does not support this collective",
        PlanError::NeedsPowerOfTwo { .. } => "algorithm requires a power-of-two rank count",
        PlanError::NoRanks => "collective over zero ranks",
    })
}

/// [`Comm`] as a schedule transport: posted receives are raw
/// [`RecvSlot`]s (post-then-send keeps symmetric exchanges
/// deadlock-free), sends are blocking internal isends.
///
/// Every receive completion runs under the communicator's collective
/// round deadline: a peer that stops making progress is declared dead
/// ([`MpError::RankDead`]), the verdict is broadcast so every survivor
/// fails the same way, and the collective returns instead of hanging.
struct CommTransport<'a> {
    comm: &'a Comm,
    deadline: std::time::Duration,
}

impl CollTransport for CommTransport<'_> {
    type Err = MpError;
    /// The awaited source rank rides along so a deadline expiry can be
    /// pinned on the rank that failed to deliver.
    type Pending = (usize, Arc<RecvSlot>);

    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn nranks(&self) -> usize {
        self.comm.nprocs()
    }

    fn post(&self, from: usize, tag: i32) -> (usize, Arc<RecvSlot>) {
        (from, self.comm.post_internal(from as i32, tag))
    }

    fn complete(&self, (from, slot): (usize, Arc<RecvSlot>)) -> Result<Vec<u8>> {
        match slot.wait_deadline(self.deadline) {
            Some(Ok(msg)) => Ok(msg.data.to_vec()),
            Some(Err(e)) => Err(self.comm.classify_peer_error(e)),
            None => {
                self.comm.report_dead(
                    from,
                    &format!("rank {from} presumed dead: collective round deadline expired"),
                );
                Err(MpError::RankDead { rank: from })
            }
        }
    }

    fn send(&self, to: usize, tag: i32, payload: Vec<u8>) -> Result<()> {
        self.comm
            .isend_internal(to, tag, Bytes::from(payload))?
            .wait()
            .map_err(|e| self.comm.classify_peer_error(e))
    }
}

impl Comm {
    /// Reserve the next collective tag; all ranks call the collectives
    /// in the same order, so the sequence numbers agree. `rem_euclid`
    /// keeps the tag inside the reserved `[-1_000_000, -1]` window even
    /// after the `i32` sequence counter overflows (a plain `%` would go
    /// below the window once `fetch_add` wraps the counter negative).
    fn coll_tag(&self) -> i32 {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        // Tags below -2 are reserved: leave room for 2^20 in-flight rounds.
        -1_000_000 + seq.rem_euclid(1_000_000)
    }

    /// Build and run one schedule over this communicator. Exactly one
    /// collective tag is consumed regardless of algorithm, so mixed
    /// algorithm sequences stay tag-synchronized across ranks.
    fn run_schedule(
        &self,
        op: CollOp,
        algorithm: Algorithm,
        root: usize,
        reduction: Option<Reduction>,
        contribution: &[u8],
    ) -> Result<CollOutput> {
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        let schedule = build(op, algorithm, n).map_err(plan_err)?;
        let tag = self.coll_tag();
        run_blocking(
            &CommTransport {
                comm: self,
                deadline: self.coll_deadline(),
            },
            &schedule,
            ExecCtx { root, reduction },
            tag,
            contribution,
        )
    }

    /// Block until every rank has entered the barrier (dissemination
    /// algorithm: ⌈log₂ n⌉ rounds).
    pub fn barrier(&self) -> Result<()> {
        self.barrier_with(auto_algorithm(CollOp::Barrier, self.nprocs()))
    }

    /// [`Comm::barrier`] with an explicit algorithm.
    pub fn barrier_with(&self, algorithm: Algorithm) -> Result<()> {
        self.run_schedule(CollOp::Barrier, algorithm, 0, None, &[])?;
        Ok(())
    }

    /// Broadcast `data` from `root`; every rank returns the payload.
    /// Binomial tree: ⌈log₂ n⌉ rounds.
    pub fn bcast(&self, root: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.bcast_with(Algorithm::Tree, root, data)
    }

    /// [`Comm::bcast`] with an explicit algorithm.
    pub fn bcast_with(
        &self,
        algorithm: Algorithm,
        root: usize,
        data: Option<Bytes>,
    ) -> Result<Bytes> {
        let contribution = if self.rank() == root {
            data.ok_or(MpError::BadArg("root must supply the broadcast payload"))?
        } else {
            Bytes::new()
        };
        let out = self.run_schedule(CollOp::Bcast, algorithm, root, None, &contribution)?;
        Ok(Bytes::from(out.acc))
    }

    /// Elementwise reduction to `root`. Returns `Some(result)` on root,
    /// `None` elsewhere. All ranks must pass equal-length slices.
    pub fn reduce<T: ReduceElem>(
        &self,
        root: usize,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>> {
        self.reduce_with(Algorithm::Tree, root, data, op)
    }

    /// [`Comm::reduce`] with an explicit algorithm.
    pub fn reduce_with<T: ReduceElem>(
        &self,
        algorithm: Algorithm,
        root: usize,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>> {
        let out = self.run_schedule(
            CollOp::Reduce,
            algorithm,
            root,
            Some(Reduction {
                dtype: T::DTYPE,
                op,
            }),
            &encode_slice(data),
        )?;
        if self.rank() == root {
            Ok(Some(decode_slice(&out.acc)?))
        } else {
            Ok(None)
        }
    }

    /// Reduction delivered to every rank (binomial reduce + broadcast).
    pub fn allreduce<T: ReduceElem>(&self, data: &[T], op: ReduceOp) -> Result<Vec<T>> {
        self.allreduce_with(Algorithm::Tree, data, op)
    }

    /// Allreduce by recursive doubling: log₂ n rounds of pairwise
    /// exchange, each rank combining as it goes — half the rounds of
    /// reduce+bcast for latency-bound sizes. Non-power-of-two jobs fold
    /// the excess ranks into the power-of-two core first (the standard
    /// construction).
    pub fn allreduce_rd<T: ReduceElem>(&self, data: &[T], op: ReduceOp) -> Result<Vec<T>> {
        self.allreduce_with(Algorithm::RecursiveDoubling, data, op)
    }

    /// [`Comm::allreduce`] with an explicit algorithm.
    pub fn allreduce_with<T: ReduceElem>(
        &self,
        algorithm: Algorithm,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Vec<T>> {
        let out = self.run_schedule(
            CollOp::Allreduce,
            algorithm,
            0,
            Some(Reduction {
                dtype: T::DTYPE,
                op,
            }),
            &encode_slice(data),
        )?;
        decode_slice(&out.acc)
    }

    /// Gather every rank's payload everywhere. The algorithm selector
    /// picks the binomial gather+bcast tree for small jobs and the
    /// bandwidth-optimal ring once the job is wide enough for the root
    /// to bottleneck; both produce identical results.
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        self.allgather_with(auto_algorithm(CollOp::Allgather, self.nprocs()), data)
    }

    /// Ring allgather: n−1 rounds, each rank forwarding the block it just
    /// received — bandwidth-optimal for large payloads where the
    /// gather+bcast tree retransmits everything through rank 0.
    pub fn allgather_ring(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        self.allgather_with(Algorithm::Ring, data)
    }

    /// [`Comm::allgather`] with an explicit algorithm.
    pub fn allgather_with(&self, algorithm: Algorithm, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let out = self.run_schedule(CollOp::Allgather, algorithm, 0, None, data)?;
        Ok(out.blocks)
    }

    /// Gather every rank's payload at `root` (rank order). Returns
    /// `Some(parts)` on root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        if self.rank() == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); n];
            parts[root] = data.to_vec();
            for _ in 0..n - 1 {
                let (bytes, st) = self.recv_internal(crate::message::ANY_SOURCE, tag)?;
                parts[st.src] = bytes.to_vec();
            }
            Ok(Some(parts))
        } else {
            self.isend_internal(root, tag, Bytes::copy_from_slice(data))?
                .wait()?;
            Ok(None)
        }
    }

    /// Distribute one slice per rank from `root`. On root, `parts` must
    /// have exactly `nprocs` entries; elsewhere pass `None`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        if root >= n {
            return Err(MpError::BadRank {
                rank: root,
                nprocs: n,
            });
        }
        if self.rank() == root {
            let parts = parts.ok_or(MpError::BadArg("root must supply scatter parts"))?;
            if parts.len() != n {
                return Err(MpError::BadArg("scatter needs one part per rank"));
            }
            let mine = parts[root].clone();
            let mut sends = Vec::new();
            for (dst, part) in parts.into_iter().enumerate() {
                if dst != root {
                    sends.push(self.isend_internal(dst, tag, part)?);
                }
            }
            for s in sends {
                s.wait()?;
            }
            Ok(mine)
        } else {
            let (bytes, _) = self.recv_internal(root as i32, tag)?;
            Ok(bytes)
        }
    }

    /// Personalized all-to-all exchange: `parts[j]` goes to rank `j`;
    /// returns what every rank sent to this one, in rank order.
    pub fn alltoall(&self, parts: Vec<Bytes>) -> Result<Vec<Vec<u8>>> {
        let tag = self.coll_tag();
        let n = self.nprocs();
        assert_eq!(parts.len(), n, "alltoall needs one part per rank");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[self.rank()] = parts[self.rank()].to_vec();
        let mut sends = Vec::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst != self.rank() {
                sends.push(self.isend_internal(dst, tag, part)?);
            }
        }
        for _ in 0..n - 1 {
            let (bytes, st) = self.recv_internal(crate::message::ANY_SOURCE, tag)?;
            out[st.src] = bytes.to_vec();
        }
        for s in sends {
            s.wait()?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn barrier_synchronizes_all_sizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            Universe::run(n, |comm| {
                for _ in 0..5 {
                    comm.barrier().unwrap();
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn barrier_works_under_every_algorithm() {
        for alg in Algorithm::all() {
            for n in [2, 3, 5, 8] {
                Universe::run(n, move |comm| {
                    for _ in 0..3 {
                        comm.barrier_with(alg).unwrap();
                    }
                })
                .unwrap();
            }
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2, 3, 5, 8] {
            for root in 0..n {
                Universe::run(n, move |comm| {
                    let data =
                        (comm.rank() == root).then(|| Bytes::from(format!("payload-from-{root}")));
                    let got = comm.bcast(root, data).unwrap();
                    assert_eq!(&got[..], format!("payload-from-{root}").as_bytes());
                })
                .unwrap();
            }
        }
    }

    #[test]
    fn bcast_ring_matches_tree() {
        for n in [2, 4, 6] {
            for root in 0..n {
                Universe::run(n, move |comm| {
                    let mk = || (comm.rank() == root).then(|| Bytes::from(vec![root as u8; 64]));
                    let tree = comm.bcast_with(Algorithm::Tree, root, mk()).unwrap();
                    let ring = comm.bcast_with(Algorithm::Ring, root, mk()).unwrap();
                    let lin = comm.bcast_with(Algorithm::Linear, root, mk()).unwrap();
                    assert_eq!(&tree[..], &ring[..]);
                    assert_eq!(&tree[..], &lin[..]);
                })
                .unwrap();
            }
        }
    }

    #[test]
    fn reduce_sum_matches_reference() {
        for n in [2, 3, 4, 7] {
            Universe::run(n, move |comm| {
                let mine: Vec<f64> = (0..8).map(|i| (comm.rank() * 8 + i) as f64).collect();
                let got = comm.reduce(0, &mine, ReduceOp::Sum).unwrap();
                if comm.rank() == 0 {
                    let got = got.unwrap();
                    for (i, &v) in got.iter().enumerate() {
                        let expect: f64 = (0..n).map(|r| (r * 8 + i) as f64).sum();
                        assert_eq!(v, expect, "n={n} elem {i}");
                    }
                } else {
                    assert!(got.is_none());
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn allreduce_min_max_prod() {
        Universe::run(4, |comm| {
            let r = comm.rank() as i64 + 1;
            let mine = [r, -r, 2 * r];
            let min = comm.allreduce(&mine, ReduceOp::Min).unwrap();
            assert_eq!(min, vec![1, -4, 2]);
            let max = comm.allreduce(&mine, ReduceOp::Max).unwrap();
            assert_eq!(max, vec![4, -1, 8]);
            let prod = comm.allreduce(&[r], ReduceOp::Prod).unwrap();
            assert_eq!(prod, vec![24]);
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_in_rank_order() {
        Universe::run(4, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let got = comm.gather(2, &mine).unwrap();
            if comm.rank() == 2 {
                let parts = got.unwrap();
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![r as u8; r + 1]);
                }
            } else {
                assert!(got.is_none());
            }
        })
        .unwrap();
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        Universe::run(3, |comm| {
            let mine = format!("rank{}", comm.rank());
            let got = comm.allgather(mine.as_bytes()).unwrap();
            assert_eq!(got.len(), 3);
            for (r, p) in got.iter().enumerate() {
                assert_eq!(p, format!("rank{r}").as_bytes());
            }
        })
        .unwrap();
    }

    #[test]
    fn scatter_distributes_parts() {
        Universe::run(4, |comm| {
            let parts = (comm.rank() == 1).then(|| {
                (0..4)
                    .map(|i| Bytes::from(vec![i as u8; 4]))
                    .collect::<Vec<_>>()
            });
            let mine = comm.scatter(1, parts).unwrap();
            assert_eq!(&mine[..], &[comm.rank() as u8; 4]);
        })
        .unwrap();
    }

    #[test]
    fn alltoall_transposes() {
        Universe::run(3, |comm| {
            let parts: Vec<Bytes> = (0..3)
                .map(|dst| Bytes::from(format!("{}->{}", comm.rank(), dst)))
                .collect();
            let got = comm.alltoall(parts).unwrap();
            for (src, p) in got.iter().enumerate() {
                assert_eq!(p, format!("{}->{}", src, comm.rank()).as_bytes());
            }
        })
        .unwrap();
    }

    #[test]
    fn allreduce_rd_matches_tree_allreduce() {
        // Both algorithms must produce identical results for every job
        // size, including non-powers-of-two.
        for n in [1, 2, 3, 4, 5, 6, 8] {
            Universe::run(n, move |comm| {
                let mine: Vec<f64> = (0..16)
                    .map(|i| (comm.rank() * 31 + i * 7) as f64 * 0.5)
                    .collect();
                let tree = comm.allreduce(&mine, ReduceOp::Sum).unwrap();
                let rd = comm.allreduce_rd(&mine, ReduceOp::Sum).unwrap();
                for (a, b) in tree.iter().zip(&rd) {
                    assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
                }
                let tree_max = comm.allreduce(&mine, ReduceOp::Max).unwrap();
                let rd_max = comm.allreduce_rd(&mine, ReduceOp::Max).unwrap();
                assert_eq!(tree_max, rd_max, "n={n}");
            })
            .unwrap();
        }
    }

    #[test]
    fn allgather_ring_matches_tree_allgather() {
        for n in [1, 2, 3, 5, 7] {
            Universe::run(n, move |comm| {
                let mine = format!("payload-from-rank-{}", comm.rank());
                let tree = comm
                    .allgather_with(Algorithm::Tree, mine.as_bytes())
                    .unwrap();
                let ring = comm.allgather_ring(mine.as_bytes()).unwrap();
                assert_eq!(tree, ring, "n={n}");
                for (r, p) in ring.iter().enumerate() {
                    assert_eq!(p, format!("payload-from-rank-{r}").as_bytes());
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn allgather_bruck_matches_ring() {
        for n in [2, 3, 5, 6, 8] {
            Universe::run(n, move |comm| {
                let mine = vec![comm.rank() as u8 + 1; comm.rank() % 3 + 1];
                let bruck = comm
                    .allgather_with(Algorithm::Dissemination, &mine)
                    .unwrap();
                let ring = comm.allgather_ring(&mine).unwrap();
                assert_eq!(bruck, ring, "n={n}");
            })
            .unwrap();
        }
    }

    #[test]
    fn mixed_algorithm_sequences_stay_in_sync() {
        // Interleaving the algorithm families must not desynchronize the
        // collective tag sequence.
        Universe::run(4, |comm| {
            for round in 0..10i64 {
                let a = comm.allreduce(&[round], ReduceOp::Sum).unwrap();
                let b = comm.allreduce_rd(&[round], ReduceOp::Sum).unwrap();
                assert_eq!(a, b);
                let g = comm.allgather_ring(&round.to_le_bytes()).unwrap();
                assert_eq!(g.len(), 4);
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 1, b"before").unwrap();
            comm.barrier().unwrap();
            let sum = comm.allreduce(&[1i64], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2]);
            let (data, _) = comm.recv(peer as i32, 1).unwrap();
            assert_eq!(&data[..], b"before");
        })
        .unwrap();
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        Universe::run(1, |comm| {
            comm.barrier().unwrap();
            let b = comm.bcast(0, Some(Bytes::from_static(b"solo"))).unwrap();
            assert_eq!(&b[..], b"solo");
            let r = comm.allreduce(&[5.0f64], ReduceOp::Sum).unwrap();
            assert_eq!(r, vec![5.0]);
            let g = comm.allgather(b"x").unwrap();
            assert_eq!(g, vec![b"x".to_vec()]);
        })
        .unwrap();
    }

    #[test]
    fn severed_rank_is_classified_rank_dead_and_poisons_survivors() {
        // Rank 2 "crashes" (no FIN); ranks 0 and 1 attempt an allreduce.
        // Neither may hang: both must get MpError::RankDead { rank: 2 },
        // whether they observe the EOF directly or learn it from the
        // POISON broadcast.
        let mut comms = Universe::local(3).expect("mesh");
        for c in &comms {
            c.set_coll_deadline(std::time::Duration::from_secs(2));
        }
        let c2 = comms.pop().expect("rank 2");
        let c1 = comms.pop().expect("rank 1");
        let c0 = comms.pop().expect("rank 0");
        let killer = std::thread::spawn(move || {
            c2.sever();
            drop(c2);
        });
        let survivors: Vec<_> = [c0, c1]
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let r = c.allreduce(&[1i64], ReduceOp::Sum);
                    let dead = c.dead_ranks();
                    (r, dead)
                })
            })
            .collect();
        killer.join().expect("killer");
        for (rank, t) in survivors.into_iter().enumerate() {
            let (r, dead) = t.join().expect("survivor thread");
            let err = r.expect_err("collective with a dead rank must fail");
            assert!(
                matches!(err, MpError::RankDead { rank: 2 }),
                "rank {rank}: got {err}"
            );
            assert_eq!(dead, vec![2], "rank {rank} records the verdict");
        }
    }

    #[test]
    fn silent_peer_hits_the_round_deadline_as_rank_dead() {
        // Rank 1 stays connected but never enters the collective: the
        // EOF path can't fire, so only the round deadline can save rank
        // 0 from hanging.
        let mut comms = Universe::local(2).expect("mesh");
        let c1 = comms.pop().expect("rank 1");
        let c0 = comms.pop().expect("rank 0");
        c0.set_coll_deadline(std::time::Duration::from_millis(200));
        let waiter = std::thread::spawn(move || c0.barrier());
        let err = waiter
            .join()
            .expect("waiter thread")
            .expect_err("deadline must fire");
        assert!(matches!(err, MpError::RankDead { rank: 1 }), "{err}");
        drop(c1);
    }

    #[test]
    fn coll_tag_stays_in_reserved_window_across_overflow() {
        // The i32 sequence counter wraps negative at i32::MAX; rem_euclid
        // must keep every tag inside [-1_000_000, -1] regardless.
        Universe::run(1, |comm| {
            comm.coll_seq.store(i32::MAX - 2, Ordering::Relaxed);
            for _ in 0..6 {
                let tag = comm.coll_tag();
                assert!(
                    (-1_000_000..0).contains(&tag),
                    "tag {tag} escaped the reserved window"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn collectives_survive_sequence_overflow() {
        // Live collectives across the wrap: tags on both sides of the
        // overflow must keep matching across ranks.
        Universe::run(3, |comm| {
            comm.coll_seq.store(i32::MAX - 2, Ordering::Relaxed);
            for round in 0..6i64 {
                let s = comm.allreduce(&[round], ReduceOp::Sum).unwrap();
                assert_eq!(s, vec![3 * round]);
                let g = comm.allgather(&round.to_le_bytes()).unwrap();
                assert_eq!(g.len(), 3);
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }
}
