//! Typed convenience layer: send/receive numeric slices without manual
//! byte packing, and request combinators.
//!
//! MP_Lite's C API shipped `MP_Send`/`MP_dSend`/`MP_iSend` variants per
//! element type; Rust gets the same ergonomics from one generic over the
//! element encoding already defined for reductions
//! ([`ReduceElem`](crate::ReduceElem)).

use crate::buf::Bytes;

use crate::collectives::ReduceElem;
use crate::comm::{Comm, RecvRequest, SendRequest, Status};
use crate::error::{MpError, Result};

fn encode<T: ReduceElem>(xs: &[T]) -> Bytes {
    let mut out = Vec::with_capacity(xs.len() * T::WIDTH);
    for &x in xs {
        x.write(&mut out);
    }
    Bytes::from(out)
}

fn decode<T: ReduceElem>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpError::Truncated {
            got: bytes.len(),
            want: bytes.len() / T::WIDTH * T::WIDTH,
        });
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::read).collect())
}

impl Comm {
    /// Blocking send of a numeric slice.
    pub fn send_slice<T: ReduceElem>(&self, dst: usize, tag: i32, data: &[T]) -> Result<()> {
        self.isend(dst, tag, encode(data))?.wait()
    }

    /// Asynchronous send of a numeric slice.
    pub fn isend_slice<T: ReduceElem>(
        &self,
        dst: usize,
        tag: i32,
        data: &[T],
    ) -> Result<SendRequest> {
        self.isend(dst, tag, encode(data))
    }

    /// Blocking receive of a numeric vector.
    pub fn recv_vec<T: ReduceElem>(&self, src: i32, tag: i32) -> Result<(Vec<T>, Status)> {
        let (bytes, st) = self.recv(src, tag)?;
        Ok((decode(&bytes)?, st))
    }

    /// Combined send-to-`dst` and receive-from-`src` with the same tag —
    /// the halo-exchange workhorse. Posts the receive first, so the
    /// symmetric exchange `a.sendrecv(b) || b.sendrecv(a)` cannot
    /// deadlock.
    pub fn sendrecv(&self, dst: usize, src: i32, tag: i32, data: &[u8]) -> Result<(Bytes, Status)> {
        let rx = self.irecv(src, tag);
        let tx = self.isend(dst, tag, Bytes::copy_from_slice(data))?;
        let got = rx.wait()?;
        tx.wait()?;
        Ok(got)
    }
}

/// Wait on every send request, surfacing the first error.
pub fn wait_all_sends(reqs: Vec<SendRequest>) -> Result<()> {
    for r in reqs {
        r.wait()?;
    }
    Ok(())
}

/// Wait on every receive request, returning payloads in posting order.
pub fn wait_all_recvs(reqs: Vec<RecvRequest>) -> Result<Vec<(Bytes, Status)>> {
    reqs.into_iter().map(|r| r.wait()).collect()
}

/// Poll a set of receive requests until one completes; returns its index
/// and payload alongside the survivors (an `MPI_Waitany` analogue built
/// on the non-blocking `test`).
pub fn wait_any_recv(
    mut reqs: Vec<RecvRequest>,
) -> Result<(usize, Bytes, Status, Vec<RecvRequest>)> {
    assert!(!reqs.is_empty(), "wait_any on an empty set");
    loop {
        for i in 0..reqs.len() {
            if let Some(done) = reqs[i].test() {
                let (bytes, st) = done?;
                let _completed = reqs.remove(i); // already drained by test()
                return Ok((i, bytes, st, reqs));
            }
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn typed_slices_round_trip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_slice(1, 1, &[1.5f64, -2.25, 1e300]).unwrap();
                comm.send_slice(1, 2, &[-7i64, i64::MAX]).unwrap();
            } else {
                let (f, st) = comm.recv_vec::<f64>(0, 1).unwrap();
                assert_eq!(f, vec![1.5, -2.25, 1e300]);
                assert_eq!(st.len, 24);
                let (i, _) = comm.recv_vec::<i64>(0, 2).unwrap();
                assert_eq!(i, vec![-7, i64::MAX]);
            }
        })
        .unwrap();
    }

    #[test]
    fn decode_rejects_misaligned_payloads() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 10]).unwrap(); // not a multiple of 8
            } else {
                let r = comm.recv_vec::<f64>(0, 1);
                assert!(matches!(r, Err(MpError::Truncated { .. })));
            }
        })
        .unwrap();
    }

    #[test]
    fn symmetric_sendrecv_does_not_deadlock() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            let mine = vec![comm.rank() as u8; 100_000];
            let (theirs, st) = comm.sendrecv(peer, peer as i32, 5, &mine).unwrap();
            assert_eq!(st.src, peer);
            assert_eq!(&theirs[..], &vec![peer as u8; 100_000][..]);
        })
        .unwrap();
    }

    #[test]
    fn wait_all_and_wait_any() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                // Two outstanding receives; the senders race.
                let reqs = vec![comm.irecv(1, 7), comm.irecv(2, 7)];
                let (_, bytes, st, rest) = wait_any_recv(reqs).unwrap();
                assert_eq!(bytes.len(), 4);
                assert!(st.src == 1 || st.src == 2);
                let remaining = wait_all_recvs(rest).unwrap();
                assert_eq!(remaining.len(), 1);
                assert_ne!(remaining[0].1.src, st.src);
            } else {
                let sends = vec![comm
                    .isend(0, 7, (comm.rank() as u32).to_le_bytes().to_vec())
                    .unwrap()];
                wait_all_sends(sends).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn typed_all_widths() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_slice(1, 1, &[1.5f32, 2.5]).unwrap();
                comm.send_slice(1, 2, &[3i32, -4]).unwrap();
                comm.send_slice(1, 3, &[5u64]).unwrap();
            } else {
                assert_eq!(comm.recv_vec::<f32>(0, 1).unwrap().0, vec![1.5, 2.5]);
                assert_eq!(comm.recv_vec::<i32>(0, 2).unwrap().0, vec![3, -4]);
                assert_eq!(comm.recv_vec::<u64>(0, 3).unwrap().0, vec![5]);
            }
        })
        .unwrap();
    }
}
