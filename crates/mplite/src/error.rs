//! Error types.

use std::fmt;
use std::io;

use crate::frame::FrameError;

/// Errors surfaced by the message-passing API.
#[derive(Debug)]
pub enum MpError {
    /// An underlying socket operation failed.
    Io(io::Error),
    /// A peer closed its connection while traffic was still expected.
    Disconnected {
        /// The peer whose link dropped.
        peer: usize,
    },
    /// An argument referenced a rank outside the job.
    BadRank {
        /// The offending rank.
        rank: usize,
        /// Number of ranks in the job.
        nprocs: usize,
    },
    /// A receive matched a message longer than the provided buffer.
    Truncated {
        /// Bytes available in the matched message.
        got: usize,
        /// Capacity of the receive buffer.
        want: usize,
    },
    /// A peer rank was declared dead: its connection closed without the
    /// shutdown handshake, or it stopped making progress past the
    /// collective round deadline. Unlike [`MpError::Disconnected`]
    /// (a link-level observation), this is a membership verdict — the
    /// rank is gone and the judgment has been propagated to survivors.
    RankDead {
        /// The dead peer's world rank.
        rank: usize,
    },
    /// A peer put malformed bytes on the wire: bad magic, an
    /// unsupported version, a length over the cap, a truncated frame,
    /// or a checksum mismatch. Unlike [`MpError::RankDead`], this names
    /// *what* the peer sent, not just that it vanished.
    Frame {
        /// The rank at the other end of the malformed frame.
        peer: usize,
        /// What exactly was wrong with the bytes.
        err: FrameError,
    },
    /// The communicator has been shut down.
    Finalized,
    /// A call violated the API's calling convention (e.g. a collective
    /// root that supplied no payload).
    BadArg(&'static str),
}

impl MpError {
    /// Wrap an I/O error from operation `op`, keeping the kind so
    /// timeout/disconnect classification still works upstream.
    pub fn from_io(op: &'static str, e: io::Error) -> MpError {
        MpError::Io(io::Error::new(e.kind(), format!("{op}: {e}")))
    }
}

impl fmt::Display for MpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpError::Io(e) => write!(f, "socket error: {e}"),
            MpError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            MpError::BadRank { rank, nprocs } => {
                write!(f, "rank {rank} out of range (nprocs={nprocs})")
            }
            MpError::Truncated { got, want } => {
                write!(f, "message of {got} bytes truncated to buffer of {want}")
            }
            MpError::RankDead { rank } => {
                write!(
                    f,
                    "rank {rank} is dead (unannounced exit or missed deadline)"
                )
            }
            MpError::Frame { peer, err } => {
                write!(f, "rank {peer} sent a malformed frame: {err}")
            }
            MpError::Finalized => write!(f, "communicator already finalized"),
            MpError::BadArg(what) => write!(f, "bad argument: {what}"),
        }
    }
}

impl std::error::Error for MpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MpError {
    fn from(e: io::Error) -> Self {
        MpError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MpError::BadRank { rank: 9, nprocs: 4 };
        assert!(e.to_string().contains("rank 9"));
        let e = MpError::Truncated { got: 10, want: 4 };
        assert!(e.to_string().contains("10"));
        let io = MpError::from(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(matches!(io, MpError::Io(_)));
        let dead = MpError::RankDead { rank: 5 };
        assert!(dead.to_string().contains("rank 5 is dead"));
        let frame = MpError::Frame {
            peer: 3,
            err: FrameError::ChecksumMismatch {
                expect: 0xAB,
                got: 0xCD,
            },
        };
        let text = frame.to_string();
        assert!(text.contains("rank 3"), "{text}");
        assert!(text.contains("checksum"), "{text}");
    }
}
