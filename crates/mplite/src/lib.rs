//! # mplite — a real lightweight message-passing library over TCP
//!
//! A from-scratch Rust analogue of **MP_Lite** (Ames Laboratory), the
//! lightweight message-passing library the paper's authors built and
//! measure in §3.4/§4.4: "a restricted set of the MPI commands, including
//! blocking and asynchronous send and receive functions, and many common
//! global operations" — with progress maintained at all times by
//! dedicated reader/writer threads (the modern equivalent of MP_Lite's
//! SIGIO module).
//!
//! ```
//! use mplite::{Universe, ReduceOp};
//!
//! let sums = Universe::run(4, |comm| {
//!     // Each rank contributes its rank id; everyone gets the total.
//!     comm.allreduce(&[comm.rank() as i64], ReduceOp::Sum).unwrap()[0]
//! }).unwrap();
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```
//!
//! Features:
//!
//! * tagged blocking/asynchronous point-to-point ([`Comm::send`],
//!   [`Comm::isend`], [`Comm::recv`], [`Comm::irecv`], [`Comm::probe`])
//!   with MPI-style matching (wildcards, FIFO per source/tag);
//! * collectives: [`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::gather`], [`Comm::allgather`],
//!   [`Comm::scatter`], [`Comm::alltoall`];
//! * in-process jobs ([`Universe::local`] / [`Universe::run`]) and
//!   multi-process jobs bootstrapped from the environment
//!   ([`Universe::from_env`]).

#![warn(missing_docs)]

pub mod buf;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod frame;
pub mod fuzz;
pub mod lifecycle;
pub mod message;
pub mod sync;
pub mod trace;
pub mod typed;
pub mod universe;

pub use crate::collectives::{Algorithm, ReduceElem, ReduceOp};
pub use buf::Bytes;
pub use comm::{Comm, RecvRequest, SendRequest, Status};
pub use error::{MpError, Result};
pub use frame::{FrameDecodeState, FrameDecoder, FrameError};
pub use lifecycle::ConnLifeState;
pub use message::{ANY_SOURCE, ANY_TAG};
pub use typed::{wait_all_recvs, wait_all_sends, wait_any_recv};
pub use universe::Universe;
