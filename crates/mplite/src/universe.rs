//! Job bootstrap: building the full TCP mesh.
//!
//! Two launch modes, mirroring how MP_Lite jobs started:
//!
//! * [`Universe::local`] — all ranks in the current process (each on its
//!   own thread), connected over loopback TCP. This is what the test
//!   suite, the examples and the NetPIPE driver use.
//! * [`Universe::from_env`] — one rank per OS process, coordinates read
//!   from `MPLITE_RANK`, `MPLITE_NPROCS`, `MPLITE_PORT_BASE` and
//!   `MPLITE_HOSTS` (comma-separated, defaults to loopback), like a
//!   minimal `.nodes` file.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use faultlab::io::{accept_deadline, connect_retry, read_exact_deadline, write_all_deadline};
use faultlab::RetryPolicy;

use crate::comm::Comm;
use crate::error::{MpError, Result};

/// Deadline on each mesh-building handshake step. Boot is the one phase
/// where a long wait is legitimate (peers may still be starting), so this
/// is generous — but a vanished peer still cannot hang the job forever.
const BOOT_STEP: Duration = Duration::from_secs(30);

/// Job construction entry points.
pub struct Universe;

impl Universe {
    /// Build an `n`-rank job inside this process. Returns one [`Comm`] per
    /// rank; hand each to its own thread.
    pub fn local(n: usize) -> Result<Vec<Comm>> {
        Universe::local_via(n, |_, _, addr| Ok(addr))
    }

    /// [`Universe::local`] with an interposer: before rank `j` dials rank
    /// `i`, `via(j, i, addr)` may substitute the connect target — e.g. a
    /// `faultlab` chaos proxy front that forwards (and injures) the
    /// bytes on their way to `addr`. The identity function reproduces
    /// `local` exactly.
    pub fn local_via(
        n: usize,
        mut via: impl FnMut(usize, usize, std::net::SocketAddr) -> std::io::Result<std::net::SocketAddr>,
    ) -> Result<Vec<Comm>> {
        assert!(n >= 1, "need at least one rank");
        // Listeners first, so every connect target exists.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<_> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;

        // streams[i][j]: socket rank i uses to talk to rank j.
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for i in 0..n {
            // Indexing both [j][i] and [i][j] rules out an iterator here.
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..n {
                // j "dials" i; both ends live in this process, so short
                // deadlines suffice — a failure here is a local bug, not
                // a slow-booting peer.
                let target = via(j, i, addrs[i]).map_err(|e| MpError::from_io("mesh via", e))?;
                let client = connect_retry(target, Duration::from_secs(1), &RetryPolicy::default())
                    .map_err(|e| MpError::from_io("mesh connect", e))?;
                let server = accept_deadline(&listeners[i], Duration::from_secs(5), || true)
                    .map_err(|e| MpError::from_io("mesh accept", e))?;
                streams[j][i] = Some(client);
                streams[i][j] = Some(server);
            }
        }
        streams
            .into_iter()
            .enumerate()
            .map(|(rank, mesh)| Comm::from_mesh(rank, mesh))
            .collect()
    }

    /// Run `f` once per rank on `n` in-process ranks and collect the
    /// results in rank order. Panics in a rank propagate.
    pub fn run<F, T>(n: usize, f: F) -> Result<Vec<T>>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        let comms = Universe::local(n)?;
        let f = &f;
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        Ok(results)
    }

    /// Build this process's rank from the environment (multi-process
    /// launch). Rank `r` listens on `MPLITE_PORT_BASE + r`; lower ranks
    /// are dialled with retry, higher ranks are accepted.
    pub fn from_env() -> Result<Comm> {
        let rank: usize = env_parse("MPLITE_RANK")?;
        let nprocs: usize = env_parse("MPLITE_NPROCS")?;
        let port_base: u16 = env_parse("MPLITE_PORT_BASE").unwrap_or(17650);
        let hosts_raw = std::env::var("MPLITE_HOSTS").unwrap_or_default();
        let hosts: Vec<String> = if hosts_raw.is_empty() {
            vec!["127.0.0.1".to_string(); nprocs]
        } else {
            let h: Vec<String> = hosts_raw.split(',').map(|s| s.trim().to_string()).collect();
            if h.len() != nprocs {
                return Err(MpError::Io(std::io::Error::other(format!(
                    "MPLITE_HOSTS has {} entries for {} ranks",
                    h.len(),
                    nprocs
                ))));
            }
            h
        };
        if rank >= nprocs {
            return Err(MpError::BadRank { rank, nprocs });
        }

        let listener = TcpListener::bind(("0.0.0.0", port_base + rank as u16))?;
        let mut mesh: Vec<Option<TcpStream>> = (0..nprocs).map(|_| None).collect();

        // Dial every lower rank, with bounded exponential backoff while
        // it boots (~30 s of patience, like the old fixed-interval loop).
        let boot_retry = RetryPolicy {
            max_attempts: 12,
            base: Duration::from_millis(100),
            factor: 2.0,
            cap: Duration::from_secs(5),
        };
        for peer in 0..rank {
            let addr = (hosts[peer].as_str(), port_base + peer as u16)
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| {
                    MpError::Io(std::io::Error::other(format!(
                        "host {} did not resolve",
                        hosts[peer]
                    )))
                })?;
            let stream = connect_retry(addr, Duration::from_secs(2), &boot_retry)
                .map_err(|e| MpError::from_io("boot connect", e))?;
            let mut s = stream.try_clone()?;
            write_all_deadline(&mut s, &(rank as u32).to_le_bytes(), BOOT_STEP)
                .map_err(|e| MpError::from_io("boot hello", e))?;
            mesh[peer] = Some(stream);
        }
        // Accept every higher rank; they identify themselves.
        for _ in (rank + 1)..nprocs {
            let stream = accept_deadline(&listener, BOOT_STEP, || true)
                .map_err(|e| MpError::from_io("boot accept", e))?;
            let mut id = [0u8; 4];
            let mut s = stream.try_clone()?;
            read_exact_deadline(&mut s, &mut id, BOOT_STEP)
                .map_err(|e| MpError::from_io("boot hello", e))?;
            let peer = u32::from_le_bytes(id) as usize;
            if peer <= rank || peer >= nprocs {
                return Err(MpError::BadRank { rank: peer, nprocs });
            }
            mesh[peer] = Some(stream);
        }
        Comm::from_mesh(rank, mesh)
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Result<T> {
    std::env::var(key)
        .map_err(|_| MpError::Io(std::io::Error::other(format!("{key} not set"))))?
        .parse()
        .map_err(|_| MpError::Io(std::io::Error::other(format!("{key} unparsable"))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ANY_SOURCE, ANY_TAG};

    #[test]
    fn two_rank_pingpong() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping").unwrap();
                let (data, st) = comm.recv(1, 7).unwrap();
                assert_eq!(st.src, 1);
                data.to_vec()
            } else {
                let (data, _) = comm.recv(0, 7).unwrap();
                assert_eq!(&data[..], b"ping");
                comm.send(0, 7, b"pong").unwrap();
                data.to_vec()
            }
        })
        .unwrap();
        assert_eq!(results[0], b"pong");
        assert_eq!(results[1], b"ping");
    }

    #[test]
    fn rank_and_size_reported() {
        let results = Universe::run(4, |comm| (comm.rank(), comm.nprocs())).unwrap();
        for (i, &(r, n)) in results.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn large_message_integrity() {
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        Universe::run(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &payload).unwrap();
            } else {
                let (data, st) = comm.recv(0, 0).unwrap();
                assert_eq!(st.len, expect.len());
                assert_eq!(&data[..], &expect[..]);
            }
        })
        .unwrap();
    }

    #[test]
    fn wildcard_receive_from_all_peers() {
        Universe::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let (data, st) = comm.recv(ANY_SOURCE, ANY_TAG).unwrap();
                    assert_eq!(data.len(), 4);
                    seen[st.src] = true;
                }
                assert!(seen[1] && seen[2] && seen[3]);
            } else {
                comm.send(0, comm.rank() as i32, &(comm.rank() as u32).to_le_bytes())
                    .unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn isend_irecv_overlap() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            // Post the receive before sending: exercises the posted path.
            let r = comm.irecv(peer as i32, 3);
            let s = comm.isend(peer, 3, &b"overlap"[..]).unwrap();
            let (data, _) = r.wait().unwrap();
            s.wait().unwrap();
            assert_eq!(&data[..], b"overlap");
        })
        .unwrap();
    }

    #[test]
    fn many_small_messages_fifo_per_pair() {
        Universe::run(2, |comm| {
            const N: u32 = 2000;
            if comm.rank() == 0 {
                for i in 0..N {
                    comm.send(1, 1, &i.to_le_bytes()).unwrap();
                }
            } else {
                for i in 0..N {
                    let (data, _) = comm.recv(0, 1).unwrap();
                    assert_eq!(u32::from_le_bytes(data[..].try_into().unwrap()), i);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn probe_sees_pending_message() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, b"peek").unwrap();
                // Wait for the ack so rank 1 has definitely seen it.
                let _ = comm.recv(1, 6).unwrap();
            } else {
                // Spin until the message is visible to probe.
                let st = loop {
                    if let Some(st) = comm.probe(0, 5) {
                        break st;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(st.len, 4);
                let (data, _) = comm.recv(0, 5).unwrap();
                assert_eq!(&data[..], b"peek");
                comm.send(0, 6, b"ok").unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn bad_rank_rejected() {
        Universe::run(2, |comm| {
            assert!(matches!(
                comm.send(5, 0, b"x"),
                Err(MpError::BadRank { .. })
            ));
            assert!(matches!(
                comm.send(comm.rank(), 0, b"x"),
                Err(MpError::BadRank { .. })
            ));
        })
        .unwrap();
    }

    #[test]
    fn zero_length_messages() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, b"").unwrap();
            } else {
                let (data, st) = comm.recv(0, 9).unwrap();
                assert_eq!(data.len(), 0);
                assert_eq!(st.len, 0);
            }
        })
        .unwrap();
    }

    #[test]
    fn from_env_requires_variables() {
        // Isolated check that missing env yields a clean error (no panic).
        std::env::remove_var("MPLITE_RANK");
        assert!(Universe::from_env().is_err());
    }
}
