//! Wire v2 framing: versioned, checksummed, bounded frames.
//!
//! The v1 wire format ([`crate::message::encode_header`]) trusts the
//! network completely: no magic, no version, no checksum, and an
//! unbounded `len` field that was allocated before validation. One
//! flipped bit meant a silent wrong answer, a multi-gigabyte
//! allocation, or a hang. Wire v2 fixes all three:
//!
//! ```text
//!  offset  size  field
//!  0       2     magic  "MP"
//!  2       1     version (2)
//!  3       1     flags (must be 0; reserved)
//!  4       4     src rank, u32 LE
//!  8       4     tag, i32 LE
//!  12      8     payload length, u64 LE  (checked against max *before*
//!                                         any allocation)
//!  20      4     CRC32C over bytes 0..20 chained with the payload, LE
//!  24      …     payload
//! ```
//!
//! Every decode failure is a typed [`FrameError`], so survivors can name
//! the malformed peer instead of hanging or OOMing. A 4-byte `MPv<n>`
//! preamble exchanged at boot negotiates the version per connection
//! (`min` of the two preferences), which keeps v1 peers — and old
//! byte-level goldens — interoperable.
//!
//! The push-based [`FrameDecoder`] steps the `mplite.frame_decoder`
//! protocol machine (`Magic → Header → Payload → Verified`), declared
//! with [`protospec::protocol!`] so `xtask analyze`'s conformance passes
//! check it like every other protocol in the tree. The in-tree fuzzer
//! ([`crate::fuzz`]) hammers this exact decoder.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

use faultlab::io::{read_exact_deadline, write_all_deadline};

use crate::message;

/// First two bytes of every v2 frame.
pub const MAGIC: [u8; 2] = *b"MP";

/// The legacy 16-byte header format (no magic, no checksum).
pub const WIRE_V1: u8 = 1;

/// The current framed format described in the module docs.
pub const WIRE_V2: u8 = 2;

/// Size of a v2 frame header.
pub const V2_HEADER_LEN: usize = 24;

/// Size of the boot-time `MPv<n>` negotiation preamble.
pub const PREAMBLE_LEN: usize = 4;

/// Default cap on a single message's payload: 256 MiB. Anything larger
/// is rejected *before* allocation with [`FrameError::Oversized`].
pub const DEFAULT_MAX_MESSAGE: u64 = 1 << 28;

/// Effective payload cap: `MPLITE_MAX_MSG_BYTES` or
/// [`DEFAULT_MAX_MESSAGE`].
pub fn max_message_size() -> u64 {
    std::env::var("MPLITE_MAX_MSG_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_MESSAGE)
}

/// Preferred wire version for new connections:
/// `MPLITE_WIRE_VERSION` (1 or 2) or [`WIRE_V2`]. The negotiated
/// version of a connection is the `min` of the two ends' preferences.
pub fn wire_version_default() -> u8 {
    match std::env::var("MPLITE_WIRE_VERSION")
        .ok()
        .and_then(|v| v.parse::<u8>().ok())
    {
        Some(1) => WIRE_V1,
        _ => WIRE_V2,
    }
}

/// Header size of the given wire version.
pub fn header_len(version: u8) -> usize {
    if version <= WIRE_V1 {
        message::HEADER_LEN
    } else {
        V2_HEADER_LEN
    }
}

// ---------------------------------------------------------------- CRC32C

/// Castagnoli polynomial, reflected form (the CRC32C used by iSCSI,
/// ext4 and SCTP — better error-detection spectrum than CRC-32/zlib).
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32c_table();

/// Incremental CRC32C state, so header and payload can be chained
/// without concatenating them in memory.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Crc32c {
        Crc32c { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ CRC_TABLE[((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

// ------------------------------------------------------------ FrameError

/// Everything that can be wrong with a frame coming off the wire. Each
/// variant is `Copy` so verdicts travel through shared health tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`] — the stream is not
    /// speaking this protocol (or has lost sync).
    BadMagic {
        /// The bytes found where the magic should be.
        got: [u8; 2],
    },
    /// The version byte named a protocol revision we do not speak.
    VersionMismatch {
        /// The version byte found.
        got: u8,
    },
    /// The reserved flags byte was non-zero.
    BadFlags {
        /// The flags byte found.
        got: u8,
    },
    /// The declared payload length exceeds the configured cap; rejected
    /// *before* any allocation.
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The cap in force ([`max_message_size`]).
        max: u64,
    },
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated {
        /// Bytes actually available.
        got: usize,
        /// Bytes the frame required.
        want: usize,
    },
    /// The CRC32C over header and payload did not match.
    ChecksumMismatch {
        /// Checksum declared in the frame.
        expect: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {:02x}{:02x} (want 4d50 \"MP\")",
                    got[0], got[1]
                )
            }
            FrameError::VersionMismatch { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (speak {WIRE_V1} or {WIRE_V2})"
                )
            }
            FrameError::BadFlags { got } => {
                write!(f, "reserved frame flags set: {got:#04x}")
            }
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "frame declares {len} payload bytes, over the {max}-byte cap"
                )
            }
            FrameError::Truncated { got, want } => {
                write!(f, "frame truncated: {got} of {want} bytes")
            }
            FrameError::ChecksumMismatch { expect, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expect:#010x}, bytes say {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Short machine-stable label for a frame error, used by fuzz stats and
/// fault summaries.
impl FrameError {
    /// The variant's stable name.
    pub fn kind(&self) -> &'static str {
        match self {
            FrameError::BadMagic { .. } => "bad-magic",
            FrameError::VersionMismatch { .. } => "version-mismatch",
            FrameError::BadFlags { .. } => "bad-flags",
            FrameError::Oversized { .. } => "oversized",
            FrameError::Truncated { .. } => "truncated",
            FrameError::ChecksumMismatch { .. } => "checksum-mismatch",
        }
    }
}

// ------------------------------------------------------------- encoding

/// Encode a frame header for `version`. Returns the header buffer and
/// the number of valid bytes in it (16 for v1, 24 for v2). For v2 the
/// trailing CRC32C covers the header prefix chained with `payload`.
// analyze: hot
pub fn build_header(
    version: u8,
    src: u32,
    tag: i32,
    payload: &[u8],
) -> ([u8; V2_HEADER_LEN], usize) {
    let mut h = [0u8; V2_HEADER_LEN];
    if version <= WIRE_V1 {
        let legacy = message::encode_header(src, tag, payload.len() as u64);
        h[..message::HEADER_LEN].copy_from_slice(&legacy);
        return (h, message::HEADER_LEN);
    }
    h[0..2].copy_from_slice(&MAGIC);
    h[2] = WIRE_V2;
    h[3] = 0;
    h[4..8].copy_from_slice(&src.to_le_bytes());
    h[8..12].copy_from_slice(&tag.to_le_bytes());
    h[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    let mut crc = Crc32c::new();
    crc.update(&h[..20]);
    crc.update(payload);
    h[20..24].copy_from_slice(&crc.finish().to_le_bytes());
    (h, V2_HEADER_LEN)
}

// ------------------------------------------------------------- decoding

/// Validate the 4-byte v2 prologue (magic, version, flags).
pub fn check_prologue(p: &[u8]) -> Result<(), FrameError> {
    if p.len() < 4 {
        return Err(FrameError::Truncated {
            got: p.len(),
            want: 4,
        });
    }
    if p[0..2] != MAGIC {
        return Err(FrameError::BadMagic { got: [p[0], p[1]] });
    }
    if p[2] != WIRE_V2 {
        return Err(FrameError::VersionMismatch { got: p[2] });
    }
    if p[3] != 0 {
        return Err(FrameError::BadFlags { got: p[3] });
    }
    Ok(())
}

/// A validated header whose payload has not arrived yet. The receiver
/// reads exactly [`PendingFrame::len`] more bytes (already bounded by
/// the cap) and then calls [`PendingFrame::verify`].
#[derive(Debug, Clone, Copy)]
pub struct PendingFrame {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload length, already checked against the cap.
    pub len: u64,
    version: u8,
    /// CRC state after folding the header prefix (v2 only).
    crc: Crc32c,
    /// Checksum the header declared (v2 only).
    expect: u32,
}

/// Decode and validate a header of the negotiated `version`, bounding
/// the declared length against `max` *before* the caller allocates
/// anything. `hdr` must hold at least [`header_len`]`(version)` bytes.
// analyze: hot
pub fn decode_any_header(version: u8, hdr: &[u8], max: u64) -> Result<PendingFrame, FrameError> {
    if version <= WIRE_V1 {
        if hdr.len() < message::HEADER_LEN {
            return Err(FrameError::Truncated {
                got: hdr.len(),
                want: message::HEADER_LEN,
            });
        }
        let mut fixed = [0u8; message::HEADER_LEN];
        fixed.copy_from_slice(&hdr[..message::HEADER_LEN]);
        let (src, tag, len) = message::decode_header(&fixed);
        if len > max {
            return Err(FrameError::Oversized { len, max });
        }
        return Ok(PendingFrame {
            src,
            tag,
            len,
            version: WIRE_V1,
            crc: Crc32c::new(),
            expect: 0,
        });
    }
    if hdr.len() < V2_HEADER_LEN {
        return Err(FrameError::Truncated {
            got: hdr.len(),
            want: V2_HEADER_LEN,
        });
    }
    check_prologue(&hdr[..4])?;
    let src = u32::from_le_bytes(message::le_bytes(&hdr[4..8]));
    let tag = i32::from_le_bytes(message::le_bytes(&hdr[8..12]));
    let len = u64::from_le_bytes(message::le_bytes(&hdr[12..20]));
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let expect = u32::from_le_bytes(message::le_bytes(&hdr[20..24]));
    let mut crc = Crc32c::new();
    crc.update(&hdr[..20]);
    Ok(PendingFrame {
        src,
        tag,
        len,
        version: WIRE_V2,
        crc,
        expect,
    })
}

impl PendingFrame {
    /// Check the received payload against the header's declared length
    /// and checksum. A no-op under v1, which carries no checksum.
    pub fn verify(&self, payload: &[u8]) -> Result<(), FrameError> {
        if self.version <= WIRE_V1 {
            return Ok(());
        }
        if payload.len() as u64 != self.len {
            return Err(FrameError::Truncated {
                got: payload.len(),
                want: self.len as usize,
            });
        }
        let mut crc = self.crc;
        crc.update(payload);
        let got = crc.finish();
        if got != self.expect {
            return Err(FrameError::ChecksumMismatch {
                expect: self.expect,
                got,
            });
        }
        Ok(())
    }
}

// ----------------------------------------------------------- negotiation

/// The `MPv<n>` preamble a connection sends before its first frame.
pub fn preamble(version: u8) -> [u8; PREAMBLE_LEN] {
    [b'M', b'P', b'v', version]
}

/// Parse a received preamble into the peer's preferred version.
pub fn parse_preamble(p: &[u8; PREAMBLE_LEN]) -> Result<u8, FrameError> {
    if p[0..3] != [b'M', b'P', b'v'] {
        return Err(FrameError::BadMagic { got: [p[0], p[1]] });
    }
    if !(WIRE_V1..=WIRE_V2).contains(&p[3]) {
        return Err(FrameError::VersionMismatch { got: p[3] });
    }
    Ok(p[3])
}

/// The version a connection speaks, given both ends' preferences: the
/// older of the two, so a v1 peer keeps its byte format.
pub fn negotiate(local: u8, peer: u8) -> u8 {
    local.min(peer)
}

/// Symmetric boot-time exchange on an established stream: send our
/// preamble, read the peer's, return the negotiated version. Both ends
/// write first (4 bytes always fit in the socket buffer), so the
/// exchange cannot deadlock regardless of construction order.
pub fn negotiate_wire(stream: &mut TcpStream, deadline: Duration, prefer: u8) -> io::Result<u8> {
    write_all_deadline(stream, &preamble(prefer), deadline)?;
    let mut buf = [0u8; PREAMBLE_LEN];
    read_exact_deadline(stream, &mut buf, deadline)?;
    let peer = parse_preamble(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(negotiate(prefer, peer))
}

// --------------------------------------------------------- FrameDecoder

/// The frame-decode lifecycle as a protocol machine, in its own module
/// because `protocol!` emits one ZST per state name.
pub mod decoder_spec {
    protospec::protocol! {
        /// One v2 frame's trip through the decoder: prologue validated,
        /// fixed fields validated (length bounded), payload checksummed,
        /// frame emitted. `Magic` (between frames) and `Verified` (frame
        /// complete) are the quiescent states.
        pub FrameDecodeState of mplite.frame_decoder;
        states Magic, Header, Payload, Verified;
        terminal Magic, Verified;
        Magic --prologue?--> Header;
        Header --fields?--> Payload;
        Payload --checksum~--> Verified;
        Verified --emit~--> Magic;
    }
}

pub use decoder_spec::FrameDecodeState;

/// A fully validated, decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Verified payload.
    pub payload: Vec<u8>,
}

/// Push-based v2 frame decoder: feed it arbitrary byte chunks, get back
/// verified frames or a typed [`FrameError`]. Never allocates a payload
/// buffer before the declared length clears the cap, and never panics on
/// malformed input — the in-tree fuzzer ([`crate::fuzz`]) holds it to
/// that. After an error the stream has lost sync and the decoder must
/// be discarded.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max: u64,
    state: FrameDecodeState,
    pending: Option<PendingFrame>,
}

impl FrameDecoder {
    /// A decoder enforcing the `max` payload cap.
    pub fn new(max: u64) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max,
            state: FrameDecodeState::initial(),
            pending: None,
        }
    }

    /// Current protocol state (spec of record: `mplite.frame_decoder`).
    pub fn state(&self) -> FrameDecodeState {
        self.state
    }

    fn step(&mut self, event: &str) {
        self.state = self
            .state
            .step(event)
            .expect("frame decoder stepped outside its spec") // lint:allow(expect) -- every edge driven here is declared in the protocol! table; an illegal step is a decoder bug, not a wire condition
    }

    /// Feed a chunk; returns every frame completed by it. The first
    /// error is final for this decoder.
    // analyze: hot
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            match self.state {
                FrameDecodeState::Magic => {
                    if self.buf.len() < 4 {
                        break;
                    }
                    check_prologue(&self.buf[..4])?;
                    self.step("prologue");
                }
                FrameDecodeState::Header => {
                    if self.buf.len() < V2_HEADER_LEN {
                        break;
                    }
                    let pf = decode_any_header(WIRE_V2, &self.buf[..V2_HEADER_LEN], self.max)?;
                    self.pending = Some(pf);
                    self.step("fields");
                }
                FrameDecodeState::Payload => {
                    let Some(pf) = self.pending else { break };
                    let need = V2_HEADER_LEN + pf.len as usize;
                    if self.buf.len() < need {
                        break;
                    }
                    let payload = self.buf[V2_HEADER_LEN..need].to_vec();
                    pf.verify(&payload)?;
                    self.step("checksum");
                    out.push(Frame {
                        src: pf.src,
                        tag: pf.tag,
                        payload,
                    });
                    self.buf.drain(..need);
                    self.pending = None;
                    self.step("emit");
                }
                // `checksum` and `emit` are driven back-to-back above,
                // so the loop never observes `Verified`; rest here.
                FrameDecodeState::Verified => break,
            }
        }
        Ok(out)
    }

    /// Signal end-of-stream. Leftover bytes mean the stream died
    /// mid-frame: a typed truncation naming how much was missing.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.buf.is_empty() && self.state == FrameDecodeState::Magic {
            return Ok(());
        }
        let want = match self.pending {
            Some(pf) => V2_HEADER_LEN + pf.len as usize,
            None => V2_HEADER_LEN,
        };
        Err(FrameError::Truncated {
            got: self.buf.len(),
            want,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(src: u32, tag: i32, payload: &[u8]) -> Vec<u8> {
        let (h, n) = build_header(WIRE_V2, src, tag, payload);
        let mut out = h[..n].to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn crc32c_known_vector() {
        // The canonical CRC-32C check value ("123456789").
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32c::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32c(data));
    }

    #[test]
    fn v2_header_round_trips() {
        let payload = b"hello wire";
        let (h, n) = build_header(WIRE_V2, 7, -3, payload);
        assert_eq!(n, V2_HEADER_LEN);
        let pf = decode_any_header(WIRE_V2, &h, DEFAULT_MAX_MESSAGE).expect("valid header");
        assert_eq!((pf.src, pf.tag, pf.len), (7, -3, payload.len() as u64));
        pf.verify(payload).expect("checksum holds");
    }

    #[test]
    fn v1_header_is_byte_identical_to_legacy() {
        let (h, n) = build_header(WIRE_V1, 9, 42, &[0u8; 100]);
        assert_eq!(n, message::HEADER_LEN);
        assert_eq!(h[..n], message::encode_header(9, 42, 100));
        let pf = decode_any_header(WIRE_V1, &h[..n], DEFAULT_MAX_MESSAGE).expect("valid");
        assert_eq!((pf.src, pf.tag, pf.len), (9, 42, 100));
        pf.verify(&[1, 2, 3]).expect("v1 carries no checksum");
    }

    #[test]
    fn oversized_is_rejected_before_any_allocation() {
        let mut h = [0u8; V2_HEADER_LEN];
        h[0..2].copy_from_slice(&MAGIC);
        h[2] = WIRE_V2;
        h[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_any_header(WIRE_V2, &h, 1024).expect_err("must reject");
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u64::MAX,
                max: 1024
            }
        );
    }

    #[test]
    fn corrupted_payload_is_a_checksum_mismatch() {
        let payload = b"payload".to_vec();
        let (h, _) = build_header(WIRE_V2, 0, 0, &payload);
        let pf = decode_any_header(WIRE_V2, &h, 1 << 20).expect("header ok");
        let mut bad = payload.clone();
        bad[3] ^= 0x10;
        assert!(matches!(
            pf.verify(&bad),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn prologue_errors_are_typed() {
        assert!(matches!(
            check_prologue(b"XYzz"),
            Err(FrameError::BadMagic { .. })
        ));
        assert!(matches!(
            check_prologue(&[b'M', b'P', 9, 0]),
            Err(FrameError::VersionMismatch { got: 9 })
        ));
        assert!(matches!(
            check_prologue(&[b'M', b'P', WIRE_V2, 1]),
            Err(FrameError::BadFlags { got: 1 })
        ));
    }

    #[test]
    fn preamble_round_trips_and_negotiates_down() {
        assert_eq!(parse_preamble(&preamble(WIRE_V2)), Ok(WIRE_V2));
        assert_eq!(parse_preamble(&preamble(WIRE_V1)), Ok(WIRE_V1));
        assert!(parse_preamble(b"MPv\x09").is_err());
        assert!(parse_preamble(b"XXv\x02").is_err());
        assert_eq!(negotiate(WIRE_V2, WIRE_V1), WIRE_V1);
        assert_eq!(negotiate(WIRE_V2, WIRE_V2), WIRE_V2);
    }

    #[test]
    fn decoder_reassembles_frames_across_arbitrary_chunks() {
        let mut wire = frame_bytes(1, 5, b"first");
        wire.extend_from_slice(&frame_bytes(2, -9, b""));
        wire.extend_from_slice(&frame_bytes(3, 0, &[7u8; 300]));
        let mut dec = FrameDecoder::new(1 << 20);
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            got.extend(dec.feed(chunk).expect("valid stream"));
        }
        dec.finish().expect("stream ended between frames");
        assert_eq!(got.len(), 3);
        assert_eq!(
            (got[0].src, got[0].tag, got[0].payload.as_slice()),
            (1, 5, &b"first"[..])
        );
        assert_eq!(got[1].payload.len(), 0);
        assert_eq!(got[2].payload, vec![7u8; 300]);
        assert_eq!(dec.state(), FrameDecodeState::Magic);
    }

    #[test]
    fn decoder_reports_midframe_eof_as_truncation() {
        let wire = frame_bytes(1, 5, b"never finishes");
        let mut dec = FrameDecoder::new(1 << 20);
        let frames = dec.feed(&wire[..wire.len() - 3]).expect("no error yet");
        assert!(frames.is_empty());
        let err = dec.finish().expect_err("mid-frame EOF");
        assert!(matches!(err, FrameError::Truncated { .. }), "{err}");
    }

    #[test]
    fn decoder_rejects_garbage_at_frame_start() {
        let mut dec = FrameDecoder::new(1 << 20);
        let err = dec.feed(b"GARBAGE!").expect_err("bad magic");
        assert!(matches!(err, FrameError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn decoder_spec_is_well_formed() {
        let spec = FrameDecodeState::spec();
        assert!(spec.check().is_empty(), "{:?}", spec.check());
        assert_eq!(FrameDecodeState::initial(), FrameDecodeState::Magic);
        assert!(FrameDecodeState::Verified.is_terminal());
    }

    #[test]
    fn negotiate_wire_exchanges_preambles() {
        use faultlab::io::accept_deadline;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            negotiate_wire(&mut c, Duration::from_secs(2), WIRE_V1).expect("client side")
        });
        let mut s = accept_deadline(&listener, Duration::from_secs(2), || true).expect("accept");
        let server_v =
            negotiate_wire(&mut s, Duration::from_secs(2), WIRE_V2).expect("server side");
        let client_v = t.join().expect("client thread");
        assert_eq!(server_v, WIRE_V1);
        assert_eq!(client_v, WIRE_V1);
    }
}
