//! A cheaply-clonable immutable byte buffer.
//!
//! Message payloads are handed from application threads to the writer
//! thread and from reader threads to application threads; an
//! `Arc<[u8]>`-backed buffer makes every hand-off a refcount bump
//! instead of a copy, which is what keeps `isend` O(1) in payload size.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (clone is O(1)).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wrap a static slice (copies; kept for API familiarity).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(&Bytes::from("hi")[..], b"hi");
        assert_eq!(&Bytes::from_static(b"s")[..], b"s");
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::copy_from_slice(&[9])[..], &[9]);
    }
}
