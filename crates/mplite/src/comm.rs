//! The communicator: ranks, tagged point-to-point messaging, requests.
//!
//! Architecture (after MP_Lite's SIGIO design, §3.4 of the paper —
//! "message progress is therefore maintained at all times"):
//!
//! * one **reader thread per peer** drains that peer's socket as soon as
//!   bytes arrive and hands messages to the [`MatchEngine`];
//! * one **writer thread** per communicator serializes outgoing messages,
//!   so `isend` returns immediately and progress never depends on the
//!   application re-entering the library;
//! * the application threads only touch the matching engine and the
//!   writer queue — never the sockets.
//!
//! Failure semantics: teardown is announced. `Drop` sends a `FIN`
//! control message ([`FIN_TAG`]) to every peer before closing sockets,
//! so a clean EOF *with* a prior FIN is a normal end of job, while an
//! EOF *without* one is an unannounced death — the reader marks the
//! peer dead, poisons the matching engine, and broadcasts a `POISON`
//! control message ([`POISON_TAG`], payload: the dead rank) so
//! survivors that never talk to the dead rank learn the verdict too.
//! Collective receives additionally run under a per-round deadline
//! ([`Comm::set_coll_deadline`]); a peer that stays connected but stops
//! making progress is classified [`MpError::RankDead`] the same way
//! instead of hanging the job.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use faultlab::io::{is_timeout, read_exact_counted, write_all_deadline};

use crate::buf::Bytes;
use crate::sync::{Condvar, Mutex};
use std::sync::mpsc::{channel, Sender};

use crate::error::{MpError, Result};
use crate::frame::{self, FrameError};
use crate::message::{InMsg, MatchEngine, RecvSlot, ANY_SOURCE, ANY_TAG};
use crate::trace;
use tracelab::stages;

/// Delivery status of a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload length in bytes.
    pub len: usize,
}

/// Completion state shared between an `isend` and the writer thread.
#[derive(Debug)]
pub struct SendSlot {
    state: Mutex<SendState>,
    cv: Condvar,
}

#[derive(Debug)]
enum SendState {
    Pending,
    Ok,
    Err(String),
}

impl SendSlot {
    fn new() -> Arc<SendSlot> {
        Arc::new(SendSlot {
            state: Mutex::new(SendState::Pending),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: std::result::Result<(), String>) {
        let mut st = self.state.lock();
        *st = match result {
            Ok(()) => SendState::Ok,
            Err(e) => SendState::Err(e),
        };
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                SendState::Pending => self.cv.wait(&mut st),
                SendState::Ok => return Ok(()),
                SendState::Err(e) => return Err(MpError::Io(std::io::Error::other(e.clone()))),
            }
        }
    }

    fn is_done(&self) -> bool {
        !matches!(*self.state.lock(), SendState::Pending)
    }
}

/// Handle for an asynchronous send.
#[must_use = "wait on the request to guarantee completion"]
pub struct SendRequest {
    slot: Arc<SendSlot>,
}

impl SendRequest {
    /// Block until the message has been handed to the kernel.
    pub fn wait(self) -> Result<()> {
        self.slot.wait()
    }

    /// Non-blocking completion test.
    pub fn test(&self) -> bool {
        self.slot.is_done()
    }
}

/// Handle for an asynchronous receive.
#[must_use = "wait on the request to obtain the message"]
pub struct RecvRequest {
    slot: Arc<RecvSlot>,
}

impl RecvRequest {
    /// Block until a matching message arrives; returns payload and status.
    pub fn wait(self) -> Result<(Bytes, Status)> {
        let msg = self.slot.wait()?;
        Ok((
            msg.data.clone(),
            Status {
                src: msg.src,
                tag: msg.tag,
                len: msg.data.len(),
            },
        ))
    }

    /// Non-blocking test; returns the message if it has arrived.
    pub fn test(&self) -> Option<Result<(Bytes, Status)>> {
        self.slot.try_take().map(|r| {
            r.map(|msg| {
                (
                    msg.data.clone(),
                    Status {
                        src: msg.src,
                        tag: msg.tag,
                        len: msg.data.len(),
                    },
                )
            })
        })
    }
}

enum SendJob {
    Msg {
        dst: usize,
        tag: i32,
        data: Bytes,
        slot: Arc<SendSlot>,
    },
    Quit,
}

/// Control tag announcing a clean shutdown; sent by `Drop` to every
/// peer before the sockets close. Outside both the user tag space
/// (`>= 0`) and the collective window (`[-1_000_000, -1]`).
pub(crate) const FIN_TAG: i32 = -2_000_000;

/// Control tag carrying the membership verdict for a dead rank; the
/// 8-byte little-endian payload is the dead rank's number.
pub(crate) const POISON_TAG: i32 = -2_000_001;

/// Per-rank liveness bookkeeping shared by the readers and the
/// application threads.
struct Health {
    /// `fin[p]`: peer `p` announced a clean shutdown.
    fin: Vec<AtomicBool>,
    /// `dead[r]`: rank `r` has been declared dead (locally observed or
    /// learned via a `POISON` broadcast).
    dead: Vec<AtomicBool>,
    /// `frame_errs[p]`: the first malformed-frame verdict recorded
    /// against peer `p` — what exactly it put on the wire (bad magic,
    /// truncation, checksum mismatch, …). Lets
    /// [`Comm::classify_peer_error`] name the lie instead of reporting a
    /// generic death.
    frame_errs: Vec<Mutex<Option<FrameError>>>,
}

impl Health {
    fn new(nprocs: usize) -> Health {
        Health {
            fin: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
            dead: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
            frame_errs: (0..nprocs).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Record the first frame-level verdict against `peer`; later ones
    /// are consequences of the first desync and are dropped.
    fn record_frame(&self, peer: usize, err: FrameError) {
        let mut slot = self.frame_errs[peer].lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// The lowest-ranked peer with a frame verdict on record, if any.
    fn first_frame_err(&self) -> Option<(usize, FrameError)> {
        for (p, slot) in self.frame_errs.iter().enumerate() {
            if let Some(e) = *slot.lock() {
                return Some((p, e));
            }
        }
        None
    }
}

/// Per-peer negotiated wire version, published by each reader thread
/// once it has parsed the peer's `MPv<n>` preamble. The writer thread
/// blocks on [`WireTable::wait`] before its first frame to a peer, so it
/// never guesses a byte format. `0` means "not yet negotiated".
struct WireTable {
    versions: Mutex<Vec<u8>>,
    cv: Condvar,
}

impl WireTable {
    fn new(nprocs: usize) -> WireTable {
        WireTable {
            versions: Mutex::new(vec![0; nprocs]),
            cv: Condvar::new(),
        }
    }

    /// First publication wins; the readers' exit-path fallback uses this
    /// so a real negotiation is never overwritten.
    fn publish(&self, peer: usize, version: u8) {
        let mut v = self.versions.lock();
        if v[peer] == 0 {
            v[peer] = version;
        }
        self.cv.notify_all();
    }

    /// The negotiated version for `peer`, waiting up to `deadline` for
    /// the reader to publish it. `None` means the peer never completed
    /// the preamble exchange in time.
    fn wait(&self, peer: usize, deadline: Duration) -> Option<u8> {
        let start = std::time::Instant::now(); // lint:allow(nondet-wall-clock) -- real-mode negotiation deadline; the table owns its wait clock
        let mut v = self.versions.lock();
        loop {
            if v[peer] != 0 {
                return Some(v[peer]);
            }
            let left = deadline.checked_sub(start.elapsed())?;
            if left.is_zero() {
                return None;
            }
            self.cv.wait_timeout(&mut v, left);
        }
    }
}

/// Reader-exit insurance: publish our own preference as the fallback
/// version so the writer thread can never stall waiting on a verdict a
/// dead reader will no longer deliver. First-publication-wins makes this
/// a no-op after a real negotiation.
struct PublishOnExit<'a> {
    wire: &'a WireTable,
    peer: usize,
    prefer: u8,
}

impl Drop for PublishOnExit<'_> {
    fn drop(&mut self) {
        self.wire.publish(self.peer, self.prefer);
    }
}

/// Declare `dead` dead exactly once: poison the local engine and
/// broadcast the verdict to every other live peer. Idempotent — the
/// `swap` dedups repeat verdicts, so propagation cannot storm.
fn announce_death(
    engine: &MatchEngine,
    health: &Health,
    tx: &Sender<SendJob>,
    self_rank: usize,
    dead: usize,
    why: &str,
) {
    if health.dead[dead].swap(true, Ordering::AcqRel) {
        return;
    }
    engine.poison(why);
    let payload = Bytes::from((dead as u64).to_le_bytes().to_vec());
    for p in 0..health.dead.len() {
        if p != self_rank && p != dead && !health.dead[p].load(Ordering::Acquire) {
            let slot = SendSlot::new();
            let _ = tx.send(SendJob::Msg {
                dst: p,
                tag: POISON_TAG,
                data: payload.clone(),
                slot,
            });
        }
    }
}

/// A member of a message-passing job: rank `rank` of `nprocs`.
pub struct Comm {
    rank: usize,
    nprocs: usize,
    engine: Arc<MatchEngine>,
    tx: Sender<SendJob>,
    writer: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    /// Read-halves kept so `Drop` can unblock the reader threads.
    streams: Vec<Option<TcpStream>>,
    shutting_down: Arc<AtomicBool>,
    health: Arc<Health>,
    /// Payload cap enforced on both sides of the wire
    /// ([`frame::max_message_size`], frozen at construction).
    max_msg: u64,
    /// Collective per-round receive deadline, nanoseconds.
    coll_deadline_ns: AtomicU64,
    /// Set by [`Comm::sever`]: crash simulation, skip the FIN handshake.
    severed: AtomicBool,
    pub(crate) coll_seq: AtomicI32,
}

impl Comm {
    /// Assemble a communicator from an established full mesh:
    /// `streams[p]` is the socket to peer `p` (`None` at index `rank`).
    pub fn from_mesh(rank: usize, streams: Vec<Option<TcpStream>>) -> Result<Comm> {
        Comm::from_mesh_with_deadline(rank, streams, io_deadline())
    }

    /// `from_mesh` with an explicit per-operation socket deadline
    /// (tests shrink it to exercise the timeout paths quickly).
    pub(crate) fn from_mesh_with_deadline(
        rank: usize,
        streams: Vec<Option<TcpStream>>,
        deadline: Duration,
    ) -> Result<Comm> {
        let nprocs = streams.len();
        assert!(rank < nprocs, "rank out of range");
        assert!(streams[rank].is_none(), "no self-connection expected");
        let engine = Arc::new(MatchEngine::new());
        let shutting_down = Arc::new(AtomicBool::new(false));
        let health = Arc::new(Health::new(nprocs));
        let prefer = frame::wire_version_default();
        let max_msg = frame::max_message_size();
        let wire = Arc::new(WireTable::new(nprocs));
        let (tx, rx) = channel::<SendJob>();

        // Reader thread per peer.
        let mut readers = Vec::new();
        for (peer, s) in streams.iter().enumerate() {
            let Some(s) = s else { continue };
            s.set_nodelay(true).ok();
            // MP_Lite's §3.4 behaviour: raise the socket buffers toward
            // the system maximum (tunable via MPLITE_SOCKBUF; the kernel
            // clamps to net.core.{r,w}mem_max exactly as the paper
            // describes).
            let _ = raise_socket_buffers(s, sockbuf_request());
            // Version negotiation, sending side: our `MPv<n>` preamble is
            // the first thing on every connection. Written inline — four
            // bytes always fit in the socket buffer, so this cannot
            // block even though peers construct their Comms one at a
            // time. The peer's preamble is consumed by our reader thread
            // below, which publishes the negotiated version for the
            // writer to pick up.
            let mut pre = s.try_clone()?;
            write_all_deadline(&mut pre, &frame::preamble(prefer), deadline)?;
            let stream = s.try_clone()?;
            let ctx = ReaderCtx {
                rank,
                peer,
                engine: Arc::clone(&engine),
                shutting_down: Arc::clone(&shutting_down),
                deadline,
                health: Arc::clone(&health),
                tx: tx.clone(),
                prefer,
                max_msg,
                wire: Arc::clone(&wire),
            };
            readers.push(
                std::thread::Builder::new()
                    .name(format!("mplite-r{rank}<-{peer}"))
                    .spawn(move || reader_loop(stream, ctx))?,
            );
        }

        // Single writer thread owning the write halves.
        let mut write_halves: Vec<Option<TcpStream>> = Vec::with_capacity(nprocs);
        for s in &streams {
            write_halves.push(match s {
                Some(s) => Some(s.try_clone()?),
                None => None,
            });
        }
        let my_rank = rank as u32;
        let writer_wire = Arc::clone(&wire);
        let writer = std::thread::Builder::new()
            .name(format!("mplite-w{rank}"))
            .spawn(move || {
                // Cache of negotiated versions so steady-state sends
                // skip the table lock; 0 = not yet looked up.
                let mut versions = vec![0u8; write_halves.len()];
                while let Ok(job) = rx.recv() {
                    match job {
                        SendJob::Quit => break,
                        SendJob::Msg {
                            dst,
                            tag,
                            data,
                            slot,
                        } => {
                            let t0 = trace::installed().map(|t| t.now_wall());
                            let result = (|| -> std::io::Result<()> {
                                let s = write_halves[dst].as_mut().ok_or_else(|| {
                                    std::io::Error::new(
                                        std::io::ErrorKind::NotConnected,
                                        "no socket to destination",
                                    )
                                })?;
                                if versions[dst] == 0 {
                                    versions[dst] =
                                        writer_wire.wait(dst, deadline).ok_or_else(|| {
                                            std::io::Error::new(
                                                std::io::ErrorKind::TimedOut,
                                                format!(
                                                    "wire negotiation with rank {dst} timed out"
                                                ),
                                            )
                                        })?;
                                }
                                let (hdr, n) =
                                    frame::build_header(versions[dst], my_rank, tag, &data);
                                write_all_deadline(s, &hdr[..n], deadline)?;
                                write_all_deadline(s, &data, deadline)?;
                                Ok(())
                            })();
                            if let (Some(t), Some(start)) = (trace::installed(), t0) {
                                t.span_wall(
                                    stages::SEND,
                                    trace::track(my_rank as usize, trace::ROLE_WRITER),
                                    start,
                                    data.len() as u64,
                                    trace::next_msg(),
                                );
                            }
                            slot.complete(result.map_err(|e| e.to_string()));
                        }
                    }
                }
            })?;

        // Mesh connected, service threads up: boot is over. If a reader
        // already poisoned the engine this is a no-op by design.
        engine.ready();

        Ok(Comm {
            rank,
            nprocs,
            engine,
            tx,
            writer: Some(writer),
            readers,
            streams,
            shutting_down,
            health,
            max_msg,
            coll_deadline_ns: AtomicU64::new(coll_deadline_default().as_nanos() as u64),
            severed: AtomicBool::new(false),
            coll_seq: AtomicI32::new(0),
        })
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn check_rank(&self, r: usize) -> Result<()> {
        if r >= self.nprocs || r == self.rank {
            return Err(MpError::BadRank {
                rank: r,
                nprocs: self.nprocs,
            });
        }
        Ok(())
    }

    /// Reject a payload over the wire cap *before* it is queued — the
    /// peer would refuse the frame anyway ([`FrameError::Oversized`]),
    /// so fail fast on the sending side with the same typed verdict.
    fn check_payload(&self, dst: usize, len: usize) -> Result<()> {
        if len as u64 > self.max_msg {
            return Err(MpError::Frame {
                peer: dst,
                err: FrameError::Oversized {
                    len: len as u64,
                    max: self.max_msg,
                },
            });
        }
        Ok(())
    }

    /// Largest payload this communicator will send or accept
    /// (`MPLITE_MAX_MSG_BYTES`, frozen at construction).
    pub fn max_message(&self) -> u64 {
        self.max_msg
    }

    /// Asynchronous tagged send. The returned request completes once the
    /// writer thread has handed the bytes to the kernel.
    pub fn isend(&self, dst: usize, tag: i32, data: impl Into<Bytes>) -> Result<SendRequest> {
        self.check_rank(dst)?;
        assert!(tag >= 0, "negative tags are reserved for collectives");
        let data = data.into();
        self.check_payload(dst, data.len())?;
        let slot = SendSlot::new();
        self.tx
            .send(SendJob::Msg {
                dst,
                tag,
                data,
                slot: Arc::clone(&slot),
            })
            .map_err(|_| MpError::Finalized)?;
        Ok(SendRequest { slot })
    }

    /// Blocking tagged send.
    pub fn send(&self, dst: usize, tag: i32, data: &[u8]) -> Result<()> {
        self.isend(dst, tag, Bytes::copy_from_slice(data))?.wait()
    }

    /// Asynchronous tagged receive; `src`/`tag` may be [`ANY_SOURCE`] /
    /// [`ANY_TAG`].
    pub fn irecv(&self, src: i32, tag: i32) -> RecvRequest {
        RecvRequest {
            slot: self.engine.post(src, tag),
        }
    }

    /// Blocking tagged receive.
    pub fn recv(&self, src: i32, tag: i32) -> Result<(Bytes, Status)> {
        self.irecv(src, tag).wait()
    }

    /// Non-destructive probe for a queued message.
    pub fn probe(&self, src: i32, tag: i32) -> Option<Status> {
        self.engine
            .probe(src, tag)
            .map(|(src, tag, len)| Status { src, tag, len })
    }

    pub(crate) fn isend_internal(&self, dst: usize, tag: i32, data: Bytes) -> Result<SendRequest> {
        self.check_rank(dst)?;
        self.check_payload(dst, data.len())?;
        let slot = SendSlot::new();
        self.tx
            .send(SendJob::Msg {
                dst,
                tag,
                data,
                slot: Arc::clone(&slot),
            })
            .map_err(|_| MpError::Finalized)?;
        Ok(SendRequest { slot })
    }

    /// Post an internal receive (reserved tags) and return the raw slot —
    /// lets collectives post-then-send for deadlock-free symmetric
    /// exchanges.
    pub(crate) fn post_internal(
        &self,
        src: i32,
        tag: i32,
    ) -> std::sync::Arc<crate::message::RecvSlot> {
        self.engine.post(src, tag)
    }

    /// The per-round receive deadline collectives run under.
    pub fn coll_deadline(&self) -> Duration {
        Duration::from_nanos(self.coll_deadline_ns.load(Ordering::Relaxed))
    }

    /// Change the collective round deadline (default 5 s, or
    /// `MPLITE_COLL_DEADLINE_MS`). Tests and chaos harnesses shrink it
    /// to get fast verdicts.
    pub fn set_coll_deadline(&self, d: Duration) {
        self.coll_deadline_ns
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Ranks that have been declared dead, in rank order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.nprocs)
            .filter(|&r| self.health.dead[r].load(Ordering::Acquire))
            .collect()
    }

    /// Declare `rank` dead (deadline expiry on the application side):
    /// poison local receives and broadcast the verdict to survivors.
    pub(crate) fn report_dead(&self, rank: usize, why: &str) {
        announce_death(&self.engine, &self.health, &self.tx, self.rank, rank, why);
    }

    /// Sharpen a link-level error into its most specific verdict. A
    /// frame-level verdict ([`MpError::Frame`]) wins over the generic
    /// [`MpError::RankDead`]: a peer whose stream was *truncated or
    /// corrupted mid-frame* is reported as exactly that, not as an
    /// unannounced death. Callers see *what happened*, not just that a
    /// socket or slot failed.
    pub(crate) fn classify_peer_error(&self, e: MpError) -> MpError {
        if let Some((peer, err)) = self.health.first_frame_err() {
            return MpError::Frame { peer, err };
        }
        match self.dead_ranks().first() {
            Some(&rank) => MpError::RankDead { rank },
            None => e,
        }
    }

    /// Simulate a crash of this rank: no FIN handshake, sockets
    /// hard-closed. Peers observe an unannounced death — exactly what a
    /// killed process looks like from the outside. Chaos/test hook.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::Release);
        self.shutting_down.store(true, Ordering::Release);
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    pub(crate) fn recv_internal(&self, src: i32, tag: i32) -> Result<(Bytes, Status)> {
        let msg = self.engine.post(src, tag).wait()?;
        Ok((
            msg.data.clone(),
            Status {
                src: msg.src,
                tag: msg.tag,
                len: msg.data.len(),
            },
        ))
    }
}

/// Requested per-socket buffer size: `MPLITE_SOCKBUF` or a 1 MiB default
/// (MP_Lite "increases the TCP socket buffer sizes up to the maximum
/// level allowed", §3.4).
fn sockbuf_request() -> u32 {
    std::env::var("MPLITE_SOCKBUF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20)
}

/// Default collective per-round receive deadline:
/// `MPLITE_COLL_DEADLINE_MS` or 5 s.
fn coll_deadline_default() -> Duration {
    std::env::var("MPLITE_COLL_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// Per-operation socket deadline once a transfer is underway:
/// `MPLITE_IO_DEADLINE_MS` or 5 s. Idle links are never timed out —
/// only a peer that stops making progress *mid-message*.
fn io_deadline() -> Duration {
    std::env::var("MPLITE_IO_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// Decoded control frame (reserved tags below the collective window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Control {
    /// Clean-shutdown announcement ([`FIN_TAG`]).
    Fin,
    /// Membership verdict ([`POISON_TAG`]): `dead` has died.
    Poison {
        /// The rank being declared dead.
        dead: usize,
    },
}

/// Interpret a control frame's tag and payload. `None` means the tag is
/// not a control tag, or the payload is unusable (a poison verdict that
/// is not exactly 8 bytes) — classify or ignore, never panic; the
/// in-tree fuzzer ([`crate::fuzz`]) holds this path to that contract.
pub(crate) fn parse_control(tag: i32, payload: &[u8]) -> Option<Control> {
    match tag {
        FIN_TAG => Some(Control::Fin),
        POISON_TAG => {
            let bytes = <[u8; 8]>::try_from(payload).ok()?;
            Some(Control::Poison {
                dead: u64::from_le_bytes(bytes) as usize,
            })
        }
        _ => None,
    }
}

/// Record a malformed-frame verdict against `peer` and declare it dead:
/// once a byte stream has lost framing integrity there is no way to
/// resynchronize it, so the connection is condemned with a verdict that
/// names exactly what the peer sent.
fn fail_frame(
    engine: &MatchEngine,
    health: &Health,
    tx: &Sender<SendJob>,
    rank: usize,
    peer: usize,
    err: FrameError,
) {
    health.record_frame(peer, err);
    announce_death(
        engine,
        health,
        tx,
        rank,
        peer,
        &format!("rank {peer} sent a malformed frame: {err}"),
    );
}

// Linux socket-option constants (see <sys/socket.h>).
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const core::ffi::c_void,
        optlen: u32,
    ) -> i32;
}

/// Best-effort `SO_SNDBUF`/`SO_RCVBUF` raise; the kernel clamps to its
/// sysctl ceiling, exactly the behaviour the paper tunes around.
pub(crate) fn raise_socket_buffers(stream: &TcpStream, bytes: u32) -> std::io::Result<()> {
    use std::os::fd::AsRawFd;
    let fd = stream.as_raw_fd();
    let v = bytes as i32;
    unsafe {
        for opt in [SO_SNDBUF, SO_RCVBUF] {
            if setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
    }
    Ok(())
}

/// Everything one reader thread needs, bundled so the spawn site stays
/// readable.
struct ReaderCtx {
    rank: usize,
    peer: usize,
    engine: Arc<MatchEngine>,
    shutting_down: Arc<AtomicBool>,
    deadline: Duration,
    health: Arc<Health>,
    tx: Sender<SendJob>,
    /// Our preferred wire version (the one our preamble announced).
    prefer: u8,
    /// Payload cap enforced before any allocation.
    max_msg: u64,
    /// Where the negotiated version is published for the writer.
    wire: Arc<WireTable>,
}

/// Wait for the first byte of `buf` with no deadline — an idle link is
/// healthy. Returns `false` if the reader should exit: a clean EOF after
/// the peer announced FIN (or during our own shutdown) is the normal
/// end-of-job teardown; an EOF *without* one is an unannounced death.
fn read_first_byte_idle(stream: &mut TcpStream, ctx: &ReaderCtx, buf: &mut [u8]) -> bool {
    loop {
        match stream.read(&mut buf[..1]) {
            Ok(0) => {
                if !ctx.health.fin[ctx.peer].load(Ordering::Acquire)
                    && !ctx.shutting_down.load(Ordering::Acquire)
                {
                    announce_death(
                        &ctx.engine,
                        &ctx.health,
                        &ctx.tx,
                        ctx.rank,
                        ctx.peer,
                        &format!("rank {} died (connection closed without FIN)", ctx.peer),
                    );
                }
                return false;
            }
            Ok(_) => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Finish reading a frame section whose first byte already arrived.
/// Distinguishes the two ways it can fail: a *stall* (deadline expiry —
/// the peer is connected but stopped making progress) poisons the
/// engine; everything else (EOF, reset) is a *truncation* — the peer
/// died mid-frame, and the verdict says how many bytes it still owed.
fn read_rest_or_condemn(
    stream: &mut TcpStream,
    ctx: &ReaderCtx,
    buf: &mut [u8],
    already: usize,
    what: &str,
) -> bool {
    let want = already + buf.len();
    if let Err((got, e)) = read_exact_counted(stream, buf, ctx.deadline) {
        if !ctx.shutting_down.load(Ordering::Acquire) {
            if is_timeout(&e) {
                ctx.engine
                    .poison(&format!("peer {} timed out mid-{what}", ctx.peer));
            } else {
                fail_frame(
                    &ctx.engine,
                    &ctx.health,
                    &ctx.tx,
                    ctx.rank,
                    ctx.peer,
                    FrameError::Truncated {
                        got: already + got,
                        want,
                    },
                );
            }
        }
        return false;
    }
    true
}

fn reader_loop(mut stream: TcpStream, ctx: ReaderCtx) {
    // Insurance against every exit path below: publish *some* version so
    // the writer thread never deadlocks on a negotiation that will no
    // longer happen (first-publication-wins keeps real verdicts intact).
    let _fallback = PublishOnExit {
        wire: &ctx.wire,
        peer: ctx.peer,
        prefer: ctx.prefer,
    };

    // Version negotiation, receiving side: the peer's `MPv<n>` preamble
    // is its first four bytes. Block without a deadline for the first
    // byte — the peer's Comm may not be constructed yet.
    let mut pre = [0u8; frame::PREAMBLE_LEN];
    if !read_first_byte_idle(&mut stream, &ctx, &mut pre) {
        return;
    }
    if !read_rest_or_condemn(&mut stream, &ctx, &mut pre[1..], 1, "preamble") {
        return;
    }
    let peer_version = match frame::parse_preamble(&pre) {
        Ok(v) => v,
        Err(fe) => {
            if !ctx.shutting_down.load(Ordering::Acquire) {
                fail_frame(&ctx.engine, &ctx.health, &ctx.tx, ctx.rank, ctx.peer, fe);
            }
            return;
        }
    };
    let version = frame::negotiate(ctx.prefer, peer_version);
    ctx.wire.publish(ctx.peer, version);
    let hdr_len = frame::header_len(version);

    loop {
        // Idle wait for the next frame, then the rest of the header
        // under the deadline: a peer that stalls mid-frame is dead, not
        // idle.
        let mut hdr = [0u8; frame::V2_HEADER_LEN];
        if !read_first_byte_idle(&mut stream, &ctx, &mut hdr) {
            return;
        }
        if !read_rest_or_condemn(&mut stream, &ctx, &mut hdr[1..hdr_len], 1, "header") {
            return;
        }
        // Validate everything — magic, version, flags, and the length
        // against the cap — *before* allocating a payload buffer.
        let pf = match frame::decode_any_header(version, &hdr[..hdr_len], ctx.max_msg) {
            Ok(pf) => pf,
            Err(fe) => {
                if !ctx.shutting_down.load(Ordering::Acquire) {
                    fail_frame(&ctx.engine, &ctx.health, &ctx.tx, ctx.rank, ctx.peer, fe);
                }
                return;
            }
        };
        if pf.tag == FIN_TAG || pf.tag == POISON_TAG {
            // Control frames never reach the matching engine — but a
            // membership verdict is only trusted once its checksum
            // holds.
            let mut buf = vec![0u8; pf.len as usize];
            if !read_rest_or_condemn(&mut stream, &ctx, &mut buf, hdr_len, "control") {
                return;
            }
            if let Err(fe) = pf.verify(&buf) {
                if !ctx.shutting_down.load(Ordering::Acquire) {
                    fail_frame(&ctx.engine, &ctx.health, &ctx.tx, ctx.rank, ctx.peer, fe);
                }
                return;
            }
            match parse_control(pf.tag, &buf) {
                Some(Control::Fin) => {
                    ctx.health.fin[ctx.peer].store(true, Ordering::Release);
                }
                Some(Control::Poison { dead }) => {
                    if dead < ctx.health.dead.len() && dead != ctx.rank {
                        announce_death(
                            &ctx.engine,
                            &ctx.health,
                            &ctx.tx,
                            ctx.rank,
                            dead,
                            &format!("rank {dead} dead (reported by peer {})", ctx.peer),
                        );
                    }
                }
                None => {}
            }
            continue;
        }
        // The progress-thread span covers pulling the payload out of the
        // socket *and* handing it to the matching engine — the work the
        // paper's §3.4 progress discussion attributes to the library.
        let t0 = trace::installed().map(|t| t.now_wall());
        let mut buf = vec![0u8; pf.len as usize];
        if !read_rest_or_condemn(&mut stream, &ctx, &mut buf, hdr_len, "message") {
            return;
        }
        if let Err(fe) = pf.verify(&buf) {
            if !ctx.shutting_down.load(Ordering::Acquire) {
                fail_frame(&ctx.engine, &ctx.health, &ctx.tx, ctx.rank, ctx.peer, fe);
            }
            return;
        }
        engine_deliver(&ctx, pf.src, pf.tag, buf, t0);
    }
}

fn engine_deliver(
    ctx: &ReaderCtx,
    src: u32,
    tag: i32,
    buf: Vec<u8>,
    t0: Option<tracelab::WallStamp>,
) {
    let len = buf.len() as u64;
    ctx.engine.deliver(InMsg {
        src: src as usize,
        tag,
        data: Bytes::from(buf),
    });
    if let (Some(t), Some(start)) = (trace::installed(), t0) {
        let track = trace::track(ctx.rank, trace::ROLE_READER);
        t.span_wall(stages::PROGRESS_THREAD, track, start, len, 0);
        t.instant_wall(stages::RECV, track, len, 0);
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        if !self.severed.load(Ordering::Acquire) {
            // Announce a clean shutdown so peers can tell planned
            // teardown from a crash (best-effort; a failed write just
            // means the peer is already gone).
            for p in 0..self.nprocs {
                if p != self.rank {
                    let slot = SendSlot::new();
                    let _ = self.tx.send(SendJob::Msg {
                        dst: p,
                        tag: FIN_TAG,
                        data: Bytes::new(),
                        slot,
                    });
                }
            }
        }
        let _ = self.tx.send(SendJob::Quit);
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        // Shut the sockets down so reader threads unblock.
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        self.engine.finalize("communicator finalized");
    }
}

// Silence unused-import warnings for wildcard constants used only by
// callers of the public API.
const _: (i32, i32) = (ANY_SOURCE, ANY_TAG);

#[cfg(test)]
mod tests {
    use super::*;
    use faultlab::io::accept_deadline;
    use std::net::TcpListener;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let server = accept_deadline(&listener, Duration::from_secs(5), || true).expect("accept");
        (client, server)
    }

    /// What a well-behaved v2 peer sends first.
    fn send_preamble(client: &mut TcpStream) {
        write_all_deadline(
            client,
            &frame::preamble(frame::WIRE_V2),
            Duration::from_secs(1),
        )
        .expect("preamble");
    }

    /// A complete, checksummed v2 frame as raw wire bytes.
    fn v2_frame(src: u32, tag: i32, payload: &[u8]) -> Vec<u8> {
        let (h, n) = frame::build_header(frame::WIRE_V2, src, tag, payload);
        let mut out = h[..n].to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn writer_deadline_times_out_on_stalled_peer() {
        let (client, mut peer_side) = socket_pair();
        let comm =
            Comm::from_mesh_with_deadline(0, vec![None, Some(client)], Duration::from_millis(150))
                .expect("mesh");
        // The peer completes negotiation but never reads afterwards.
        send_preamble(&mut peer_side);
        // Far more than the kernel buffers absorb; the peer never reads,
        // so the writer thread must hit its deadline, not hang forever.
        let req = comm.isend(1, 0, vec![0u8; 64 << 20]).expect("queued");
        let err = req.wait().expect_err("peer is stalled");
        assert!(err.to_string().contains("deadline"), "{err}");
        drop(peer_side);
    }

    #[test]
    fn oversized_send_is_rejected_before_queueing() {
        let (client, mut peer_side) = socket_pair();
        let comm =
            Comm::from_mesh_with_deadline(0, vec![None, Some(client)], Duration::from_secs(1))
                .expect("mesh");
        send_preamble(&mut peer_side);
        let too_big = (comm.max_message() + 1) as usize;
        let err = match comm.isend(1, 0, vec![0u8; too_big]) {
            Err(e) => e,
            Ok(_) => panic!("oversized payload must be refused"),
        };
        assert!(
            matches!(
                err,
                MpError::Frame {
                    peer: 1,
                    err: FrameError::Oversized { .. }
                }
            ),
            "{err}"
        );
    }

    fn test_ctx(engine: &Arc<MatchEngine>, deadline: Duration) -> (ReaderCtx, Arc<Health>) {
        let health = Arc::new(Health::new(2));
        let (tx, _rx) = channel::<SendJob>();
        (
            ReaderCtx {
                rank: 0,
                peer: 1,
                engine: Arc::clone(engine),
                shutting_down: Arc::new(AtomicBool::new(false)),
                deadline,
                health: Arc::clone(&health),
                tx,
                prefer: frame::WIRE_V2,
                max_msg: frame::DEFAULT_MAX_MESSAGE,
                wire: Arc::new(WireTable::new(2)),
            },
            health,
        )
    }

    #[test]
    fn reader_poisons_with_timeout_on_midmessage_stall() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, _health) = test_ctx(&engine, Duration::from_millis(80));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        // Header promises 100 payload bytes; only 10 ever arrive.
        send_preamble(&mut client);
        let wire = v2_frame(1, 0, &[7u8; 100]);
        write_all_deadline(
            &mut client,
            &wire[..frame::V2_HEADER_LEN + 10],
            Duration::from_secs(1),
        )
        .expect("partial frame");
        let err = engine
            .post(ANY_SOURCE, ANY_TAG)
            .wait()
            .expect_err("message can never complete");
        assert!(err.to_string().contains("timed out mid-message"), "{err}");
        reader.join().expect("reader exits");
    }

    #[test]
    fn midmessage_eof_is_a_typed_truncation_not_a_plain_death() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        send_preamble(&mut client);
        let wire = v2_frame(1, 0, &[7u8; 100]);
        write_all_deadline(
            &mut client,
            &wire[..frame::V2_HEADER_LEN],
            Duration::from_secs(1),
        )
        .expect("header");
        drop(client); // EOF mid-message, not a stall
        let err = engine
            .post(ANY_SOURCE, ANY_TAG)
            .wait()
            .expect_err("message can never complete");
        assert!(err.to_string().contains("malformed frame"), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        reader.join().expect("reader exits");
        // The satellite fix: the verdict on record is a *truncation*,
        // so classification will name it instead of a generic RankDead.
        let (peer, fe) = health.first_frame_err().expect("verdict recorded");
        assert_eq!(peer, 1);
        assert!(matches!(fe, FrameError::Truncated { .. }), "{fe}");
        assert!(health.dead[1].load(Ordering::Acquire));
    }

    #[test]
    fn garbage_preamble_is_a_typed_frame_error() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        write_all_deadline(&mut client, b"HTTP", Duration::from_secs(1)).expect("garbage");
        reader.join().expect("reader exits");
        let (peer, fe) = health.first_frame_err().expect("verdict recorded");
        assert_eq!(peer, 1);
        assert!(matches!(fe, FrameError::BadMagic { .. }), "{fe}");
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        send_preamble(&mut client);
        // A syntactically valid header declaring an absurd length. The
        // length check fires before the checksum is even consulted, so
        // no payload buffer is ever allocated.
        let mut wire = v2_frame(1, 0, &[]);
        wire[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        write_all_deadline(&mut client, &wire, Duration::from_secs(1)).expect("header");
        reader.join().expect("reader exits");
        let (_, fe) = health.first_frame_err().expect("verdict recorded");
        assert!(matches!(fe, FrameError::Oversized { .. }), "{fe}");
    }

    #[test]
    fn corrupted_payload_is_a_checksum_verdict() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        send_preamble(&mut client);
        let mut wire = v2_frame(1, 0, b"integrity matters");
        let last = wire.len() - 1;
        wire[last] ^= 0x40; // one flipped bit in the payload
        write_all_deadline(&mut client, &wire, Duration::from_secs(1)).expect("frame");
        reader.join().expect("reader exits");
        let (_, fe) = health.first_frame_err().expect("verdict recorded");
        assert!(matches!(fe, FrameError::ChecksumMismatch { .. }), "{fe}");
        assert!(health.dead[1].load(Ordering::Acquire));
    }

    #[test]
    fn eof_without_fin_is_an_unannounced_death() {
        let (client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let pending = engine.post(ANY_SOURCE, ANY_TAG);
        drop(client); // idle-link EOF with no FIN ever sent
        reader.join().expect("reader exits");
        assert!(health.dead[1].load(Ordering::Acquire), "peer 1 marked dead");
        let err = pending.wait().expect_err("poisoned");
        assert!(err.to_string().contains("without FIN"), "{err}");
    }

    #[test]
    fn eof_after_fin_is_a_clean_teardown() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        send_preamble(&mut client);
        let fin = v2_frame(1, FIN_TAG, &[]);
        write_all_deadline(&mut client, &fin, Duration::from_secs(1)).expect("fin");
        drop(client);
        reader.join().expect("reader exits");
        assert!(!health.dead[1].load(Ordering::Acquire), "clean teardown");
        assert!(health.fin[1].load(Ordering::Acquire));
    }

    #[test]
    fn poison_broadcast_marks_the_reported_rank_dead() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let health = Arc::new(Health::new(4));
        let (tx, _rx) = channel::<SendJob>();
        let ctx = ReaderCtx {
            rank: 0,
            peer: 1,
            engine: Arc::clone(&engine),
            shutting_down: Arc::new(AtomicBool::new(false)),
            deadline: Duration::from_secs(5),
            health: Arc::clone(&health),
            tx,
            prefer: frame::WIRE_V2,
            max_msg: frame::DEFAULT_MAX_MESSAGE,
            wire: Arc::new(WireTable::new(4)),
        };
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let pending = engine.post(ANY_SOURCE, ANY_TAG);
        // Peer 1 reports rank 3 dead, then shuts down cleanly.
        send_preamble(&mut client);
        let poison = v2_frame(1, POISON_TAG, &3u64.to_le_bytes());
        write_all_deadline(&mut client, &poison, Duration::from_secs(1)).expect("poison");
        let fin = v2_frame(1, FIN_TAG, &[]);
        write_all_deadline(&mut client, &fin, Duration::from_secs(1)).expect("fin");
        drop(client);
        reader.join().expect("reader exits");
        assert!(health.dead[3].load(Ordering::Acquire), "verdict recorded");
        let err = pending.wait().expect_err("poisoned");
        assert!(err.to_string().contains("rank 3 dead"), "{err}");
    }

    #[test]
    fn parse_control_classifies_or_ignores_never_panics() {
        assert_eq!(parse_control(FIN_TAG, &[]), Some(Control::Fin));
        assert_eq!(parse_control(FIN_TAG, &[1, 2, 3]), Some(Control::Fin));
        assert_eq!(
            parse_control(POISON_TAG, &7u64.to_le_bytes()),
            Some(Control::Poison { dead: 7 })
        );
        // Wrong-length poison payloads are unusable, not fatal.
        assert_eq!(parse_control(POISON_TAG, &[1, 2, 3]), None);
        assert_eq!(parse_control(POISON_TAG, &[0; 16]), None);
        assert_eq!(parse_control(0, b"data"), None);
        assert_eq!(parse_control(-5, &[]), None);
    }
}
