//! The communicator: ranks, tagged point-to-point messaging, requests.
//!
//! Architecture (after MP_Lite's SIGIO design, §3.4 of the paper —
//! "message progress is therefore maintained at all times"):
//!
//! * one **reader thread per peer** drains that peer's socket as soon as
//!   bytes arrive and hands messages to the [`MatchEngine`];
//! * one **writer thread** per communicator serializes outgoing messages,
//!   so `isend` returns immediately and progress never depends on the
//!   application re-entering the library;
//! * the application threads only touch the matching engine and the
//!   writer queue — never the sockets.
//!
//! Failure semantics: teardown is announced. `Drop` sends a `FIN`
//! control message ([`FIN_TAG`]) to every peer before closing sockets,
//! so a clean EOF *with* a prior FIN is a normal end of job, while an
//! EOF *without* one is an unannounced death — the reader marks the
//! peer dead, poisons the matching engine, and broadcasts a `POISON`
//! control message ([`POISON_TAG`], payload: the dead rank) so
//! survivors that never talk to the dead rank learn the verdict too.
//! Collective receives additionally run under a per-round deadline
//! ([`Comm::set_coll_deadline`]); a peer that stays connected but stops
//! making progress is classified [`MpError::RankDead`] the same way
//! instead of hanging the job.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use faultlab::io::{is_timeout, read_exact_deadline, write_all_deadline};

use crate::buf::Bytes;
use crate::sync::{Condvar, Mutex};
use std::sync::mpsc::{channel, Sender};

use crate::error::{MpError, Result};
use crate::message::{
    decode_header, encode_header, InMsg, MatchEngine, RecvSlot, ANY_SOURCE, ANY_TAG, HEADER_LEN,
};
use crate::trace;
use tracelab::stages;

/// Delivery status of a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload length in bytes.
    pub len: usize,
}

/// Completion state shared between an `isend` and the writer thread.
#[derive(Debug)]
pub struct SendSlot {
    state: Mutex<SendState>,
    cv: Condvar,
}

#[derive(Debug)]
enum SendState {
    Pending,
    Ok,
    Err(String),
}

impl SendSlot {
    fn new() -> Arc<SendSlot> {
        Arc::new(SendSlot {
            state: Mutex::new(SendState::Pending),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: std::result::Result<(), String>) {
        let mut st = self.state.lock();
        *st = match result {
            Ok(()) => SendState::Ok,
            Err(e) => SendState::Err(e),
        };
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                SendState::Pending => self.cv.wait(&mut st),
                SendState::Ok => return Ok(()),
                SendState::Err(e) => return Err(MpError::Io(std::io::Error::other(e.clone()))),
            }
        }
    }

    fn is_done(&self) -> bool {
        !matches!(*self.state.lock(), SendState::Pending)
    }
}

/// Handle for an asynchronous send.
#[must_use = "wait on the request to guarantee completion"]
pub struct SendRequest {
    slot: Arc<SendSlot>,
}

impl SendRequest {
    /// Block until the message has been handed to the kernel.
    pub fn wait(self) -> Result<()> {
        self.slot.wait()
    }

    /// Non-blocking completion test.
    pub fn test(&self) -> bool {
        self.slot.is_done()
    }
}

/// Handle for an asynchronous receive.
#[must_use = "wait on the request to obtain the message"]
pub struct RecvRequest {
    slot: Arc<RecvSlot>,
}

impl RecvRequest {
    /// Block until a matching message arrives; returns payload and status.
    pub fn wait(self) -> Result<(Bytes, Status)> {
        let msg = self.slot.wait()?;
        Ok((
            msg.data.clone(),
            Status {
                src: msg.src,
                tag: msg.tag,
                len: msg.data.len(),
            },
        ))
    }

    /// Non-blocking test; returns the message if it has arrived.
    pub fn test(&self) -> Option<Result<(Bytes, Status)>> {
        self.slot.try_take().map(|r| {
            r.map(|msg| {
                (
                    msg.data.clone(),
                    Status {
                        src: msg.src,
                        tag: msg.tag,
                        len: msg.data.len(),
                    },
                )
            })
        })
    }
}

enum SendJob {
    Msg {
        dst: usize,
        tag: i32,
        data: Bytes,
        slot: Arc<SendSlot>,
    },
    Quit,
}

/// Control tag announcing a clean shutdown; sent by `Drop` to every
/// peer before the sockets close. Outside both the user tag space
/// (`>= 0`) and the collective window (`[-1_000_000, -1]`).
pub(crate) const FIN_TAG: i32 = -2_000_000;

/// Control tag carrying the membership verdict for a dead rank; the
/// 8-byte little-endian payload is the dead rank's number.
pub(crate) const POISON_TAG: i32 = -2_000_001;

/// Per-rank liveness bookkeeping shared by the readers and the
/// application threads.
struct Health {
    /// `fin[p]`: peer `p` announced a clean shutdown.
    fin: Vec<AtomicBool>,
    /// `dead[r]`: rank `r` has been declared dead (locally observed or
    /// learned via a `POISON` broadcast).
    dead: Vec<AtomicBool>,
}

impl Health {
    fn new(nprocs: usize) -> Health {
        Health {
            fin: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
            dead: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

/// Declare `dead` dead exactly once: poison the local engine and
/// broadcast the verdict to every other live peer. Idempotent — the
/// `swap` dedups repeat verdicts, so propagation cannot storm.
fn announce_death(
    engine: &MatchEngine,
    health: &Health,
    tx: &Sender<SendJob>,
    self_rank: usize,
    dead: usize,
    why: &str,
) {
    if health.dead[dead].swap(true, Ordering::AcqRel) {
        return;
    }
    engine.poison(why);
    let payload = Bytes::from((dead as u64).to_le_bytes().to_vec());
    for p in 0..health.dead.len() {
        if p != self_rank && p != dead && !health.dead[p].load(Ordering::Acquire) {
            let slot = SendSlot::new();
            let _ = tx.send(SendJob::Msg {
                dst: p,
                tag: POISON_TAG,
                data: payload.clone(),
                slot,
            });
        }
    }
}

/// A member of a message-passing job: rank `rank` of `nprocs`.
pub struct Comm {
    rank: usize,
    nprocs: usize,
    engine: Arc<MatchEngine>,
    tx: Sender<SendJob>,
    writer: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    /// Read-halves kept so `Drop` can unblock the reader threads.
    streams: Vec<Option<TcpStream>>,
    shutting_down: Arc<AtomicBool>,
    health: Arc<Health>,
    /// Collective per-round receive deadline, nanoseconds.
    coll_deadline_ns: AtomicU64,
    /// Set by [`Comm::sever`]: crash simulation, skip the FIN handshake.
    severed: AtomicBool,
    pub(crate) coll_seq: AtomicI32,
}

impl Comm {
    /// Assemble a communicator from an established full mesh:
    /// `streams[p]` is the socket to peer `p` (`None` at index `rank`).
    pub fn from_mesh(rank: usize, streams: Vec<Option<TcpStream>>) -> Result<Comm> {
        Comm::from_mesh_with_deadline(rank, streams, io_deadline())
    }

    /// `from_mesh` with an explicit per-operation socket deadline
    /// (tests shrink it to exercise the timeout paths quickly).
    pub(crate) fn from_mesh_with_deadline(
        rank: usize,
        streams: Vec<Option<TcpStream>>,
        deadline: Duration,
    ) -> Result<Comm> {
        let nprocs = streams.len();
        assert!(rank < nprocs, "rank out of range");
        assert!(streams[rank].is_none(), "no self-connection expected");
        let engine = Arc::new(MatchEngine::new());
        let shutting_down = Arc::new(AtomicBool::new(false));
        let health = Arc::new(Health::new(nprocs));
        let (tx, rx) = channel::<SendJob>();

        // Reader thread per peer.
        let mut readers = Vec::new();
        for (peer, s) in streams.iter().enumerate() {
            let Some(s) = s else { continue };
            s.set_nodelay(true).ok();
            // MP_Lite's §3.4 behaviour: raise the socket buffers toward
            // the system maximum (tunable via MPLITE_SOCKBUF; the kernel
            // clamps to net.core.{r,w}mem_max exactly as the paper
            // describes).
            let _ = raise_socket_buffers(s, sockbuf_request());
            let stream = s.try_clone()?;
            let ctx = ReaderCtx {
                rank,
                peer,
                engine: Arc::clone(&engine),
                shutting_down: Arc::clone(&shutting_down),
                deadline,
                health: Arc::clone(&health),
                tx: tx.clone(),
            };
            readers.push(
                std::thread::Builder::new()
                    .name(format!("mplite-r{rank}<-{peer}"))
                    .spawn(move || reader_loop(stream, ctx))?,
            );
        }

        // Single writer thread owning the write halves.
        let mut write_halves: Vec<Option<TcpStream>> = Vec::with_capacity(nprocs);
        for s in &streams {
            write_halves.push(match s {
                Some(s) => Some(s.try_clone()?),
                None => None,
            });
        }
        let my_rank = rank as u32;
        let writer = std::thread::Builder::new()
            .name(format!("mplite-w{rank}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        SendJob::Quit => break,
                        SendJob::Msg {
                            dst,
                            tag,
                            data,
                            slot,
                        } => {
                            let t0 = trace::installed().map(|t| t.now_wall());
                            let result = (|| -> std::io::Result<()> {
                                let s = write_halves[dst].as_mut().ok_or_else(|| {
                                    std::io::Error::new(
                                        std::io::ErrorKind::NotConnected,
                                        "no socket to destination",
                                    )
                                })?;
                                let hdr = encode_header(my_rank, tag, data.len() as u64);
                                write_all_deadline(s, &hdr, deadline)?;
                                write_all_deadline(s, &data, deadline)?;
                                Ok(())
                            })();
                            if let (Some(t), Some(start)) = (trace::installed(), t0) {
                                t.span_wall(
                                    stages::SEND,
                                    trace::track(my_rank as usize, trace::ROLE_WRITER),
                                    start,
                                    data.len() as u64,
                                    trace::next_msg(),
                                );
                            }
                            slot.complete(result.map_err(|e| e.to_string()));
                        }
                    }
                }
            })?;

        // Mesh connected, service threads up: boot is over. If a reader
        // already poisoned the engine this is a no-op by design.
        engine.ready();

        Ok(Comm {
            rank,
            nprocs,
            engine,
            tx,
            writer: Some(writer),
            readers,
            streams,
            shutting_down,
            health,
            coll_deadline_ns: AtomicU64::new(coll_deadline_default().as_nanos() as u64),
            severed: AtomicBool::new(false),
            coll_seq: AtomicI32::new(0),
        })
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn check_rank(&self, r: usize) -> Result<()> {
        if r >= self.nprocs || r == self.rank {
            return Err(MpError::BadRank {
                rank: r,
                nprocs: self.nprocs,
            });
        }
        Ok(())
    }

    /// Asynchronous tagged send. The returned request completes once the
    /// writer thread has handed the bytes to the kernel.
    pub fn isend(&self, dst: usize, tag: i32, data: impl Into<Bytes>) -> Result<SendRequest> {
        self.check_rank(dst)?;
        assert!(tag >= 0, "negative tags are reserved for collectives");
        let slot = SendSlot::new();
        self.tx
            .send(SendJob::Msg {
                dst,
                tag,
                data: data.into(),
                slot: Arc::clone(&slot),
            })
            .map_err(|_| MpError::Finalized)?;
        Ok(SendRequest { slot })
    }

    /// Blocking tagged send.
    pub fn send(&self, dst: usize, tag: i32, data: &[u8]) -> Result<()> {
        self.isend(dst, tag, Bytes::copy_from_slice(data))?.wait()
    }

    /// Asynchronous tagged receive; `src`/`tag` may be [`ANY_SOURCE`] /
    /// [`ANY_TAG`].
    pub fn irecv(&self, src: i32, tag: i32) -> RecvRequest {
        RecvRequest {
            slot: self.engine.post(src, tag),
        }
    }

    /// Blocking tagged receive.
    pub fn recv(&self, src: i32, tag: i32) -> Result<(Bytes, Status)> {
        self.irecv(src, tag).wait()
    }

    /// Non-destructive probe for a queued message.
    pub fn probe(&self, src: i32, tag: i32) -> Option<Status> {
        self.engine
            .probe(src, tag)
            .map(|(src, tag, len)| Status { src, tag, len })
    }

    pub(crate) fn isend_internal(&self, dst: usize, tag: i32, data: Bytes) -> Result<SendRequest> {
        self.check_rank(dst)?;
        let slot = SendSlot::new();
        self.tx
            .send(SendJob::Msg {
                dst,
                tag,
                data,
                slot: Arc::clone(&slot),
            })
            .map_err(|_| MpError::Finalized)?;
        Ok(SendRequest { slot })
    }

    /// Post an internal receive (reserved tags) and return the raw slot —
    /// lets collectives post-then-send for deadlock-free symmetric
    /// exchanges.
    pub(crate) fn post_internal(
        &self,
        src: i32,
        tag: i32,
    ) -> std::sync::Arc<crate::message::RecvSlot> {
        self.engine.post(src, tag)
    }

    /// The per-round receive deadline collectives run under.
    pub fn coll_deadline(&self) -> Duration {
        Duration::from_nanos(self.coll_deadline_ns.load(Ordering::Relaxed))
    }

    /// Change the collective round deadline (default 5 s, or
    /// `MPLITE_COLL_DEADLINE_MS`). Tests and chaos harnesses shrink it
    /// to get fast verdicts.
    pub fn set_coll_deadline(&self, d: Duration) {
        self.coll_deadline_ns
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Ranks that have been declared dead, in rank order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.nprocs)
            .filter(|&r| self.health.dead[r].load(Ordering::Acquire))
            .collect()
    }

    /// Declare `rank` dead (deadline expiry on the application side):
    /// poison local receives and broadcast the verdict to survivors.
    pub(crate) fn report_dead(&self, rank: usize, why: &str) {
        announce_death(&self.engine, &self.health, &self.tx, self.rank, rank, why);
    }

    /// Sharpen a link-level error into [`MpError::RankDead`] when a
    /// membership verdict is on record — callers see *who* died, not
    /// just that a socket or slot failed.
    pub(crate) fn classify_peer_error(&self, e: MpError) -> MpError {
        match self.dead_ranks().first() {
            Some(&rank) => MpError::RankDead { rank },
            None => e,
        }
    }

    /// Simulate a crash of this rank: no FIN handshake, sockets
    /// hard-closed. Peers observe an unannounced death — exactly what a
    /// killed process looks like from the outside. Chaos/test hook.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::Release);
        self.shutting_down.store(true, Ordering::Release);
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    pub(crate) fn recv_internal(&self, src: i32, tag: i32) -> Result<(Bytes, Status)> {
        let msg = self.engine.post(src, tag).wait()?;
        Ok((
            msg.data.clone(),
            Status {
                src: msg.src,
                tag: msg.tag,
                len: msg.data.len(),
            },
        ))
    }
}

/// Requested per-socket buffer size: `MPLITE_SOCKBUF` or a 1 MiB default
/// (MP_Lite "increases the TCP socket buffer sizes up to the maximum
/// level allowed", §3.4).
fn sockbuf_request() -> u32 {
    std::env::var("MPLITE_SOCKBUF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20)
}

/// Default collective per-round receive deadline:
/// `MPLITE_COLL_DEADLINE_MS` or 5 s.
fn coll_deadline_default() -> Duration {
    std::env::var("MPLITE_COLL_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// Per-operation socket deadline once a transfer is underway:
/// `MPLITE_IO_DEADLINE_MS` or 5 s. Idle links are never timed out —
/// only a peer that stops making progress *mid-message*.
fn io_deadline() -> Duration {
    std::env::var("MPLITE_IO_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// "timed out" / "disconnected", for poison messages.
fn stall_kind(e: &std::io::Error) -> &'static str {
    if is_timeout(e) {
        "timed out"
    } else {
        "disconnected"
    }
}

// Linux socket-option constants (see <sys/socket.h>).
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const core::ffi::c_void,
        optlen: u32,
    ) -> i32;
}

/// Best-effort `SO_SNDBUF`/`SO_RCVBUF` raise; the kernel clamps to its
/// sysctl ceiling, exactly the behaviour the paper tunes around.
pub(crate) fn raise_socket_buffers(stream: &TcpStream, bytes: u32) -> std::io::Result<()> {
    use std::os::fd::AsRawFd;
    let fd = stream.as_raw_fd();
    let v = bytes as i32;
    unsafe {
        for opt in [SO_SNDBUF, SO_RCVBUF] {
            if setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
    }
    Ok(())
}

/// Everything one reader thread needs, bundled so the spawn site stays
/// readable.
struct ReaderCtx {
    rank: usize,
    peer: usize,
    engine: Arc<MatchEngine>,
    shutting_down: Arc<AtomicBool>,
    deadline: Duration,
    health: Arc<Health>,
    tx: Sender<SendJob>,
}

fn reader_loop(mut stream: TcpStream, ctx: ReaderCtx) {
    let ReaderCtx {
        rank,
        peer,
        engine,
        shutting_down,
        deadline,
        health,
        tx,
    } = ctx;
    loop {
        // Block indefinitely for the *first* header byte — an idle link is
        // healthy, and a clean EOF here after the peer announced FIN (it
        // finished its work and dropped its Comm — every byte it sent is
        // already in our kernel buffer or delivered) is the normal
        // end-of-job teardown. An EOF *without* a FIN is an unannounced
        // death. Once a message has started, every subsequent read runs
        // under the deadline: a peer that stalls mid-message is dead,
        // not idle.
        let mut hdr = [0u8; HEADER_LEN];
        loop {
            match stream.read(&mut hdr[..1]) {
                Ok(0) => {
                    if !health.fin[peer].load(Ordering::Acquire)
                        && !shutting_down.load(Ordering::Acquire)
                    {
                        announce_death(
                            &engine,
                            &health,
                            &tx,
                            rank,
                            peer,
                            &format!("rank {peer} died (connection closed without FIN)"),
                        );
                    }
                    return;
                }
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
        if let Err(e) = read_exact_deadline(&mut stream, &mut hdr[1..], deadline) {
            if !shutting_down.load(Ordering::Acquire) {
                engine.poison(&format!("peer {peer} {} mid-header", stall_kind(&e)));
            }
            return;
        }
        let (src, tag, len) = decode_header(&hdr);
        if tag == FIN_TAG || tag == POISON_TAG {
            // Control messages never reach the matching engine.
            let mut buf = vec![0u8; len as usize];
            if read_exact_deadline(&mut stream, &mut buf, deadline).is_err() {
                return;
            }
            if tag == FIN_TAG {
                health.fin[peer].store(true, Ordering::Release);
            } else if let Ok(bytes) = <[u8; 8]>::try_from(&buf[..]) {
                let dead = u64::from_le_bytes(bytes) as usize;
                if dead < health.dead.len() && dead != rank {
                    announce_death(
                        &engine,
                        &health,
                        &tx,
                        rank,
                        dead,
                        &format!("rank {dead} dead (reported by peer {peer})"),
                    );
                }
            }
            continue;
        }
        // The progress-thread span covers pulling the payload out of the
        // socket *and* handing it to the matching engine — the work the
        // paper's §3.4 progress discussion attributes to the library.
        let t0 = trace::installed().map(|t| t.now_wall());
        let mut buf = vec![0u8; len as usize];
        if let Err(e) = read_exact_deadline(&mut stream, &mut buf, deadline) {
            if !shutting_down.load(Ordering::Acquire) {
                engine.poison(&format!("peer {peer} {} mid-message", stall_kind(&e)));
            }
            return;
        }
        engine.deliver(InMsg {
            src: src as usize,
            tag,
            data: Bytes::from(buf),
        });
        if let (Some(t), Some(start)) = (trace::installed(), t0) {
            let track = trace::track(rank, trace::ROLE_READER);
            t.span_wall(stages::PROGRESS_THREAD, track, start, len, 0);
            t.instant_wall(stages::RECV, track, len, 0);
        }
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        if !self.severed.load(Ordering::Acquire) {
            // Announce a clean shutdown so peers can tell planned
            // teardown from a crash (best-effort; a failed write just
            // means the peer is already gone).
            for p in 0..self.nprocs {
                if p != self.rank {
                    let slot = SendSlot::new();
                    let _ = self.tx.send(SendJob::Msg {
                        dst: p,
                        tag: FIN_TAG,
                        data: Bytes::new(),
                        slot,
                    });
                }
            }
        }
        let _ = self.tx.send(SendJob::Quit);
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        // Shut the sockets down so reader threads unblock.
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        self.engine.finalize("communicator finalized");
    }
}

// Silence unused-import warnings for wildcard constants used only by
// callers of the public API.
const _: (i32, i32) = (ANY_SOURCE, ANY_TAG);

#[cfg(test)]
mod tests {
    use super::*;
    use faultlab::io::accept_deadline;
    use std::net::TcpListener;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let server = accept_deadline(&listener, Duration::from_secs(5), || true).expect("accept");
        (client, server)
    }

    #[test]
    fn writer_deadline_times_out_on_stalled_peer() {
        let (client, peer_side) = socket_pair();
        let comm =
            Comm::from_mesh_with_deadline(0, vec![None, Some(client)], Duration::from_millis(150))
                .expect("mesh");
        // Far more than the kernel buffers absorb; the peer never reads,
        // so the writer thread must hit its deadline, not hang forever.
        let req = comm.isend(1, 0, vec![0u8; 64 << 20]).expect("queued");
        let err = req.wait().expect_err("peer is stalled");
        assert!(err.to_string().contains("deadline"), "{err}");
        drop(peer_side);
    }

    fn test_ctx(engine: &Arc<MatchEngine>, deadline: Duration) -> (ReaderCtx, Arc<Health>) {
        let health = Arc::new(Health::new(2));
        let (tx, _rx) = channel::<SendJob>();
        (
            ReaderCtx {
                rank: 0,
                peer: 1,
                engine: Arc::clone(engine),
                shutting_down: Arc::new(AtomicBool::new(false)),
                deadline,
                health: Arc::clone(&health),
                tx,
            },
            health,
        )
    }

    #[test]
    fn reader_poisons_with_timeout_on_midmessage_stall() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, _health) = test_ctx(&engine, Duration::from_millis(80));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        // Header promises 100 payload bytes; only 10 ever arrive.
        let hdr = encode_header(1, 0, 100);
        write_all_deadline(&mut client, &hdr, Duration::from_secs(1)).expect("header");
        write_all_deadline(&mut client, &[7u8; 10], Duration::from_secs(1)).expect("partial");
        let err = engine
            .post(ANY_SOURCE, ANY_TAG)
            .wait()
            .expect_err("message can never complete");
        assert!(err.to_string().contains("timed out mid-message"), "{err}");
        reader.join().expect("reader exits");
    }

    #[test]
    fn reader_poisons_with_disconnect_on_midmessage_eof() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        let (ctx, _health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let hdr = encode_header(1, 0, 100);
        write_all_deadline(&mut client, &hdr, Duration::from_secs(1)).expect("header");
        drop(client); // EOF mid-message, not a stall
        let err = engine
            .post(ANY_SOURCE, ANY_TAG)
            .wait()
            .expect_err("message can never complete");
        assert!(
            err.to_string().contains("disconnected mid-message"),
            "{err}"
        );
        reader.join().expect("reader exits");
    }

    #[test]
    fn eof_without_fin_is_an_unannounced_death() {
        let (client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let pending = engine.post(ANY_SOURCE, ANY_TAG);
        drop(client); // idle-link EOF with no FIN ever sent
        reader.join().expect("reader exits");
        assert!(health.dead[1].load(Ordering::Acquire), "peer 1 marked dead");
        let err = pending.wait().expect_err("poisoned");
        assert!(err.to_string().contains("without FIN"), "{err}");
    }

    #[test]
    fn eof_after_fin_is_a_clean_teardown() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let (ctx, health) = test_ctx(&engine, Duration::from_secs(5));
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let fin = encode_header(1, FIN_TAG, 0);
        write_all_deadline(&mut client, &fin, Duration::from_secs(1)).expect("fin");
        drop(client);
        reader.join().expect("reader exits");
        assert!(!health.dead[1].load(Ordering::Acquire), "clean teardown");
        assert!(health.fin[1].load(Ordering::Acquire));
    }

    #[test]
    fn poison_broadcast_marks_the_reported_rank_dead() {
        let (mut client, server) = socket_pair();
        let engine = Arc::new(MatchEngine::new());
        engine.ready();
        let health = Arc::new(Health::new(4));
        let (tx, _rx) = channel::<SendJob>();
        let ctx = ReaderCtx {
            rank: 0,
            peer: 1,
            engine: Arc::clone(&engine),
            shutting_down: Arc::new(AtomicBool::new(false)),
            deadline: Duration::from_secs(5),
            health: Arc::clone(&health),
            tx,
        };
        let reader = std::thread::spawn(move || {
            reader_loop(server, ctx);
        });
        let pending = engine.post(ANY_SOURCE, ANY_TAG);
        // Peer 1 reports rank 3 dead, then shuts down cleanly.
        let hdr = encode_header(1, POISON_TAG, 8);
        write_all_deadline(&mut client, &hdr, Duration::from_secs(1)).expect("hdr");
        write_all_deadline(&mut client, &3u64.to_le_bytes(), Duration::from_secs(1))
            .expect("payload");
        let fin = encode_header(1, FIN_TAG, 0);
        write_all_deadline(&mut client, &fin, Duration::from_secs(1)).expect("fin");
        drop(client);
        reader.join().expect("reader exits");
        assert!(health.dead[3].load(Ordering::Acquire), "verdict recorded");
        let err = pending.wait().expect_err("poisoned");
        assert!(err.to_string().contains("rank 3 dead"), "{err}");
    }
}
