//! Poison-free synchronization primitives over `std::sync`.
//!
//! The library's internal invariants never depend on observing a
//! panicked critical section (slot state machines are single-assignment
//! and the match engine re-checks under the lock), so lock poisoning is
//! recovered rather than propagated — giving the ergonomics of
//! `parking_lot` with zero dependencies.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutex whose `lock` recovers from poisoning instead of panicking.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner `Option` is `Some` for the guard's whole life; it exists
/// only so [`Condvar::wait`] can move the std guard out and back in
/// through a `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering the data if a holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // Unreachable by construction: `inner` is only ever `None`
            // transiently inside `Condvar::wait`, which holds the sole
            // `&mut` borrow for that whole window.
            None => unreachable!("guard vacated outside Condvar::wait"), // lint:allow(panic) -- invariant: inner is Some outside wait()
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard vacated outside Condvar::wait"), // lint:allow(panic) -- invariant: inner is Some outside wait()
        }
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(g) = guard.inner.take() {
            guard.inner = Some(
                self.inner
                    .wait(g)
                    .unwrap_or_else(sync::PoisonError::into_inner),
            );
        }
    }

    /// Atomically release the guard's lock and block until notified or
    /// `dur` elapses. Returns `true` if the wait timed out (the caller
    /// must still re-check its predicate either way — wakes can race
    /// with the timeout).
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        let mut timed_out = false;
        if let Some(g) = guard.inner.take() {
            let (g, res) = self
                .inner
                .wait_timeout(g, dur)
                .unwrap_or_else(sync::PoisonError::into_inner);
            timed_out = res.timed_out();
            guard.inner = Some(g);
        }
        timed_out
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn wait_timeout_reports_expiry_and_keeps_the_lock() {
        let m = Mutex::new(7);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(20)));
        assert_eq!(*g, 7, "guard must still be usable after a timeout");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().expect("waiter exits");
    }
}
