//! Optional wall-clock tracing for the real library.
//!
//! `mplite` is real multi-threaded code, so its tracer is the
//! process-global [`WallTracer`]: install one with [`install`] before
//! creating a [`crate::Comm`] and every writer/reader thread records
//! its sends, progress-thread work, and deliveries into it. When no
//! tracer is installed (the default) the hooks reduce to one relaxed
//! atomic load — the library stays allocation- and syscall-identical.
//!
//! Track layout mirrors the simulated fabric's convention (one timeline
//! per actor): rank `r`'s application thread is track `4r`, its writer
//! thread `4r + 1`, and its reader (progress) threads `4r + 2`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use tracelab::WallTracer;

/// Application-thread role for [`track`].
pub const ROLE_APP: u32 = 0;
/// Writer-thread role for [`track`].
pub const ROLE_WRITER: u32 = 1;
/// Reader-(progress-)thread role for [`track`].
pub const ROLE_READER: u32 = 2;

static TRACER: OnceLock<Arc<WallTracer>> = OnceLock::new();

/// Install the process-global tracer. Returns `false` if one was already
/// installed (the first install wins; tracing cannot be swapped
/// mid-flight because running threads hold no reference of their own).
pub fn install(tracer: Arc<WallTracer>) -> bool {
    TRACER.set(tracer).is_ok()
}

/// The installed tracer, if any. Cheap enough for per-message paths.
pub fn installed() -> Option<&'static Arc<WallTracer>> {
    TRACER.get()
}

static NEXT_MSG: AtomicU64 = AtomicU64::new(0);

/// Allocate the next message-correlation id (1-based, process-global so
/// loopback jobs running several ranks in one process never collide).
pub fn next_msg() -> u64 {
    NEXT_MSG.fetch_add(1, Ordering::Relaxed) + 1
}

/// The trace track (timeline) for `role` of rank `rank`.
pub fn track(rank: usize, role: u32) -> u32 {
    rank as u32 * 4 + role
}

/// Human label for a track id produced by [`track`].
pub fn track_label(t: u32) -> String {
    let rank = t / 4;
    match t % 4 {
        ROLE_APP => format!("rank{rank} app"),
        ROLE_WRITER => format!("rank{rank} writer"),
        ROLE_READER => format!("rank{rank} progress"),
        _ => format!("rank{rank} track{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_scheme_is_stable() {
        assert_eq!(track(0, ROLE_APP), 0);
        assert_eq!(track(1, ROLE_WRITER), 5);
        assert_eq!(track(2, ROLE_READER), 10);
        assert_eq!(track_label(5), "rank1 writer");
        assert_eq!(track_label(10), "rank2 progress");
        assert_eq!(track_label(0), "rank0 app");
    }

    #[test]
    fn install_is_first_wins() {
        // Single shared OnceLock across the test binary: the second set
        // must report failure regardless of which test installed first.
        let a = WallTracer::new();
        let first = install(Arc::clone(&a));
        let second = install(WallTracer::new());
        assert!(!second || first);
        assert!(installed().is_some());
    }
}
