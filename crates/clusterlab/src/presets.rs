//! One experiment preset per figure and narrative table of the paper.
//!
//! Each [`Experiment`] lists the library configurations measured in that
//! figure, each with the value the paper reports (reconstructed where the
//! scraped text truncated digits — flagged in DESIGN.md). The sweep
//! runner measures them; the comparison report prints paper-vs-measured.

use hwmodel::presets::{
    ds20s_ga622, ds20s_syskonnect_jumbo, pcs_ga620, pcs_giganet, pcs_mvia_syskonnect, pcs_myrinet,
    pcs_trendnet,
};
use hwmodel::ClusterSpec;
use mpsim::libs::{
    ip_over_gm, lammpi, mp_lite, mp_lite_via, mpich, mpich_gm, mpipro, mpipro_gm, mpipro_via,
    mvich, pvm, raw_gm, raw_tcp, tcgmsg, tcgmsg_default, LamConfig, MpiProConfig, MpichConfig,
    MvichConfig, PvmConfig,
};
use mpsim::MpLib;
use protosim::{RawParams, RecvMode};
use simcore::units::kib;

/// What the paper reports for one curve (for the comparison table).
#[derive(Debug, Clone, Default)]
pub struct PaperValues {
    /// Large-message throughput the paper quotes, Mbps.
    pub max_mbps: Option<f64>,
    /// Small-message latency the paper quotes, µs.
    pub latency_us: Option<f64>,
    /// Where in the paper the number comes from.
    pub note: &'static str,
}

/// One measured curve within an experiment.
pub struct Entry {
    /// The library configuration to measure.
    pub lib: MpLib,
    /// Cluster to run on when it differs from the experiment default
    /// (e.g. fig. 4's GigE reference curve, fig. 5's M-VIA curves).
    pub spec_override: Option<ClusterSpec>,
    /// The paper's reported values.
    pub paper: PaperValues,
}

impl Entry {
    fn new(lib: MpLib, paper: PaperValues) -> Entry {
        Entry {
            lib,
            spec_override: None,
            paper,
        }
    }

    fn on(spec: ClusterSpec, lib: MpLib, paper: PaperValues) -> Entry {
        Entry {
            lib,
            spec_override: Some(spec),
            paper,
        }
    }
}

/// A figure or table of the paper, as a runnable experiment.
pub struct Experiment {
    /// Identifier: `fig1` … `fig5`, `t1_tuning`, ….
    pub id: &'static str,
    /// Human title (matches the paper's caption).
    pub title: &'static str,
    /// Default cluster configuration.
    pub spec: ClusterSpec,
    /// Curves to measure.
    pub entries: Vec<Entry>,
}

/// The Myrinet cluster as seen by the kernel's IP-over-GM driver: the
/// ip_gm module crosses the kernel/GM boundary per packet, capping the
/// stream well below native GM (the paper: "offers little more than TCP
/// over Gigabit Ethernet on these systems").
pub fn pcs_myrinet_ip() -> ClusterSpec {
    let mut spec = pcs_myrinet();
    spec.nic.driver_cap_bps = Some(simcore::units::mbps_to_bytes_per_sec(640.0));
    spec.name = "2x P4 PC, Myrinet PCI64A-2 (IP-over-GM driver)";
    spec
}

fn pv(max: f64, note: &'static str) -> PaperValues {
    PaperValues {
        max_mbps: Some(max),
        latency_us: None,
        note,
    }
}

fn pv_full(max: f64, lat: f64, note: &'static str) -> PaperValues {
    PaperValues {
        max_mbps: Some(max),
        latency_us: Some(lat),
        note,
    }
}

/// Figure 1: Netgear GA620 fiber GigE between PCs, all libraries tuned.
pub fn fig1() -> Experiment {
    let kernel = pcs_ga620().kernel;
    Experiment {
        id: "fig1",
        title: "Message-passing performance across Netgear GA620 fiber GigE between PCs",
        spec: pcs_ga620(),
        entries: vec![
            Entry::new(
                raw_tcp(kib(512)),
                pv_full(
                    550.0,
                    120.0,
                    "§4: 550 Mbps max; 2.4-kernel latency (†truncated numeral)",
                ),
            ),
            Entry::new(
                mpich(MpichConfig::tuned()),
                pv(400.0, "§4.1: ~25-30% loss, dip at 128 kB"),
            ),
            Entry::new(
                lammpi(LamConfig::tuned()),
                pv(520.0, "§4.2: -O brings it nearly to raw TCP"),
            ),
            Entry::new(
                mpipro(MpiProConfig::tuned()),
                pv(522.0, "§4.3: within 5% of raw TCP"),
            ),
            Entry::new(
                pvm(PvmConfig::tuned()),
                pv(415.0, "§4.5: direct+InPlace reaches 415 Mbps"),
            ),
            Entry::new(
                mp_lite(&kernel),
                pv(545.0, "§4.4: within a few % of raw TCP"),
            ),
            Entry::new(
                tcgmsg_default(),
                pv(535.0, "§4.6: within a few % of raw TCP"),
            ),
        ],
    }
}

/// Figure 2: TrendNet TEG-PCITX copper GigE between PCs.
pub fn fig2() -> Experiment {
    let kernel = pcs_trendnet().kernel;
    Experiment {
        id: "fig2",
        title: "Message-passing performance across TrendNet TEG-PCITX copper GigE between PCs",
        spec: pcs_trendnet(),
        entries: vec![
            Entry::new(
                raw_tcp(kib(512)),
                pv_full(
                    550.0,
                    105.0,
                    "§4: 550 Mbps with 512 kB buffers (†latency truncated)",
                ),
            ),
            Entry::new(
                mp_lite(&kernel),
                pv(540.0, "§4.4: matches raw TCP (system-max buffers)"),
            ),
            Entry::new(
                mpich(MpichConfig::tuned()),
                pv(400.0, "§7: only MP_Lite and MPICH worked well"),
            ),
            Entry::new(lammpi(LamConfig::tuned()), pv(275.0, "§4.2: ~50% loss")),
            Entry::new(
                mpipro(MpiProConfig::tuned()),
                pv(250.0, "§4.3: flattens at 250 Mbps"),
            ),
            Entry::new(tcgmsg_default(), pv(250.0, "§4.6: limited to 250 Mbps")),
            Entry::new(
                pvm(PvmConfig::tuned()),
                pv(190.0, "§4.5: limited to 190 Mbps"),
            ),
        ],
    }
}

/// Figure 3: SysKonnect SK-9843 with 9000-byte jumbo frames between DS20s.
pub fn fig3() -> Experiment {
    let kernel = ds20s_syskonnect_jumbo().kernel;
    Experiment {
        id: "fig3",
        title: "Performance with 9000-byte MTU across SysKonnect GigE between Compaq DS20s",
        spec: ds20s_syskonnect_jumbo(),
        entries: vec![
            Entry::new(
                raw_tcp(kib(512)),
                pv_full(900.0, 48.0, "§4: up to 900 Mbps (†), 48 us latency"),
            ),
            Entry::new(
                mp_lite(&kernel),
                pv(880.0, "§4.4: matches raw TCP within a few %"),
            ),
            Entry::new(
                mpich(MpichConfig::tuned()),
                pv(650.0, "§4.1/§7: 25-30% loss"),
            ),
            Entry::new(
                lammpi(LamConfig::tuned()),
                pv(675.0, "§4.2: loses about 25%"),
            ),
            Entry::new(
                tcgmsg_default(),
                pv(600.0, "§7: 600 Mbps (†) with hardwired 32 kB buffer"),
            ),
            Entry::new(pvm(PvmConfig::tuned()), pv(500.0, "§4.5: ~500 Mbps (†)")),
        ],
    }
}

/// Figure 4: Myrinet PCI64A-2 between PCs.
pub fn fig4() -> Experiment {
    Experiment {
        id: "fig4",
        title: "Message-passing performance across Myrinet PCI64A-2 cards between PCs",
        spec: pcs_myrinet(),
        entries: vec![
            Entry::new(
                raw_gm(RecvMode::Polling),
                pv_full(800.0, 16.0, "§5: raw GM 800 Mbps, 16 us"),
            ),
            Entry::new(
                mpich_gm(RecvMode::Hybrid),
                pv(780.0, "§5: loses only a few percent"),
            ),
            Entry::new(
                mpipro_gm(RecvMode::Hybrid),
                pv(780.0, "§5: nearly identical to MPICH-GM"),
            ),
            Entry::on(
                pcs_myrinet_ip(),
                ip_over_gm(kib(512)),
                pv_full(600.0, 48.0, "§5: IP-GM: 48 us, like TCP-GigE otherwise"),
            ),
            Entry::on(
                pcs_ga620(),
                raw_tcp(kib(512)),
                pv(550.0, "§5: TCP-over-GigE reference curve"),
            ),
        ],
    }
}

/// Figure 5: Giganet cLAN and M-VIA over SysKonnect between PCs.
pub fn fig5() -> Experiment {
    Experiment {
        id: "fig5",
        title: "VIA performance: Giganet cLAN and M-VIA over SysKonnect between PCs",
        spec: pcs_giganet(),
        entries: vec![
            Entry::new(
                mvich(MvichConfig::tuned(), RawParams::giganet()),
                pv_full(800.0, 10.0, "§6.2: ~800 Mbps, 10 us"),
            ),
            Entry::new(
                mp_lite_via(RawParams::giganet()),
                pv_full(800.0, 10.0, "§6.2: ~800 Mbps, 10 us"),
            ),
            Entry::new(
                mpipro_via(RawParams::giganet()),
                pv_full(800.0, 42.0, "§6.2: ~800 Mbps but 42 us latency"),
            ),
            Entry::on(
                pcs_mvia_syskonnect(),
                mvich(MvichConfig::tuned(), RawParams::mvia_sk98lin()),
                pv_full(425.0, 42.0, "§6.2: M-VIA: 425 Mbps, 42 us"),
            ),
            Entry::on(
                pcs_mvia_syskonnect(),
                mp_lite_via(RawParams::mvia_sk98lin()),
                pv_full(425.0, 42.0, "§6.2: M-VIA: 425 Mbps, 42 us"),
            ),
        ],
    }
}

/// Narrative table T1 (§4): each tuning knob's before→after effect.
pub fn t1_tuning() -> Experiment {
    let kernel = pcs_ga620().kernel;
    let _ = kernel;
    Experiment {
        id: "t1_tuning",
        title: "Tuning effects: default vs optimized settings (paper §4 narrative)",
        spec: pcs_ga620(),
        entries: vec![
            Entry::new(
                mpich(MpichConfig::default()),
                pv(75.0, "§4.1: P4_SOCKBUFSIZE=32k default: 75 Mbps"),
            ),
            Entry::new(
                mpich(MpichConfig::tuned()),
                pv(400.0, "§4.1: 256k: five-fold improvement"),
            ),
            Entry::on(
                pcs_trendnet(),
                raw_tcp(kib(64)),
                pv(290.0, "§4: TrendNet default buffers flatten at 290 (†)"),
            ),
            Entry::on(
                pcs_trendnet(),
                raw_tcp(kib(512)),
                pv(550.0, "§4: 512 kB doubles the raw throughput"),
            ),
            Entry::new(
                lammpi(LamConfig::default()),
                pv(350.0, "§4.2: no -O: tops out at 350 Mbps"),
            ),
            Entry::new(
                lammpi(LamConfig::tuned()),
                pv(520.0, "§4.2: -O: nearly raw TCP"),
            ),
            Entry::new(
                lammpi(LamConfig {
                    optimized_o: true,
                    use_lamd: true,
                }),
                pv_full(
                    260.0,
                    245.0,
                    "§4.2: -lamd: 260 Mbps, latency doubles to 245 us",
                ),
            ),
            Entry::new(
                pvm(PvmConfig::default()),
                pv(90.0, "§4.5: via pvmd daemons: ~90 Mbps (†)"),
            ),
            Entry::new(
                pvm(PvmConfig {
                    direct_route: true,
                    in_place: false,
                }),
                pv(330.0, "§4.5: PvmRouteDirect: 330 Mbps"),
            ),
            Entry::new(
                pvm(PvmConfig::tuned()),
                pv(415.0, "§4.5: +PvmDataInPlace: 415 Mbps"),
            ),
            Entry::on(
                ds20s_syskonnect_jumbo(),
                tcgmsg(kib(32)),
                pv(600.0, "§7: TCGMSG 32k hardwired: 600 Mbps (†)"),
            ),
            Entry::on(
                ds20s_syskonnect_jumbo(),
                tcgmsg(kib(128)),
                pv(900.0, "§7: recompiled 128k: 900 Mbps, matching raw TCP"),
            ),
        ],
    }
}

/// Narrative table T2 (§4–§6): small-message latencies per configuration.
pub fn t2_latency() -> Experiment {
    Experiment {
        id: "t2_latency",
        title: "Small-message latencies across configurations (paper §4-§6 narrative)",
        spec: pcs_ga620(),
        entries: vec![
            Entry::new(
                raw_tcp(kib(512)),
                pv_full(550.0, 120.0, "§4: GA620 under 2.4 kernel (†)"),
            ),
            Entry::on(
                pcs_trendnet(),
                raw_tcp(kib(512)),
                pv_full(550.0, 105.0, "§4: TrendNet (†)"),
            ),
            Entry::on(
                ds20s_syskonnect_jumbo(),
                raw_tcp(kib(512)),
                pv_full(900.0, 48.0, "§4: SysKonnect jumbo on DS20s: 48 us"),
            ),
            Entry::on(
                pcs_myrinet(),
                raw_gm(RecvMode::Polling),
                pv_full(800.0, 16.0, "§5: GM polling"),
            ),
            Entry::on(
                pcs_myrinet(),
                raw_gm(RecvMode::Blocking),
                pv_full(800.0, 36.0, "§5: GM blocking"),
            ),
            Entry::on(
                pcs_myrinet_ip(),
                ip_over_gm(kib(512)),
                pv_full(600.0, 48.0, "§5: IP over GM"),
            ),
            Entry::on(
                pcs_giganet(),
                mp_lite_via(RawParams::giganet()),
                pv_full(800.0, 10.0, "§6.2: Giganet, lean libraries"),
            ),
            Entry::on(
                pcs_giganet(),
                mpipro_via(RawParams::giganet()),
                pv_full(800.0, 42.0, "§6.2: Giganet, MPI/Pro progress thread"),
            ),
            Entry::on(
                pcs_mvia_syskonnect(),
                mvich(MvichConfig::tuned(), RawParams::mvia_sk98lin()),
                pv_full(425.0, 42.0, "§6.2: M-VIA software"),
            ),
            Entry::new(
                lammpi(LamConfig {
                    optimized_o: true,
                    use_lamd: true,
                }),
                pv_full(260.0, 245.0, "§4.2: lamd doubles latency to 245 us"),
            ),
        ],
    }
}

/// Narrative table T3 (§3–§6): rendezvous/RDMA threshold placement.
pub fn t3_rendezvous() -> Experiment {
    Experiment {
        id: "t3_rendezvous",
        title: "Rendezvous-threshold dips: default vs tuned thresholds",
        spec: pcs_ga620(),
        entries: vec![
            Entry::new(
                mpich(MpichConfig::tuned()),
                pv(400.0, "§4.1: sharp dip at the 128 kB rendezvous"),
            ),
            Entry::new(
                mpipro(MpiProConfig::default()),
                pv(480.0, "§4.3: tcp_long=32k default dips"),
            ),
            Entry::new(
                mpipro(MpiProConfig::tuned()),
                pv(522.0, "§4.3: tcp_long=128k removes the dip"),
            ),
            Entry::on(
                pcs_giganet(),
                mvich(MvichConfig::default(), RawParams::giganet()),
                pv(600.0, "§6.1: default via_long=16k dips; no RPUT copies"),
            ),
            Entry::on(
                pcs_giganet(),
                mvich(MvichConfig::tuned(), RawParams::giganet()),
                pv(800.0, "§6.1: via_long=64k + RPUT"),
            ),
        ],
    }
}

/// Narrative table T4 (§2, §7): kernel and driver comparisons.
pub fn t4_kernel_driver() -> Experiment {
    let mut ga620_on_22 = pcs_ga620();
    ga620_on_22.kernel = hwmodel::presets::linux_2_2().with_raised_sockbuf_max();
    let mut ga622_new = ds20s_ga622();
    ga622_new.nic = hwmodel::presets::netgear_ga622_new_driver();
    Experiment {
        id: "t4_kernel_driver",
        title: "Kernel 2.4-vs-2.2 latency and GA622 driver maturity (paper §2/§7)",
        spec: pcs_ga620(),
        entries: vec![
            Entry::new(
                raw_tcp(kib(512)),
                pv_full(550.0, 120.0, "§4: Linux 2.4: poor latency (†)"),
            ),
            Entry::on(
                ga620_on_22,
                raw_tcp(kib(512)),
                pv(550.0, "§2: older kernel for comparison"),
            ),
            Entry::on(
                ds20s_ga622(),
                raw_tcp(kib(512)),
                pv(300.0, "§7: GA622: poor even for raw TCP"),
            ),
            Entry::on(
                ga622_new,
                raw_tcp(kib(512)),
                pv(550.0, "§7: newer ns83820/gam drivers improve it"),
            ),
        ],
    }
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        t1_tuning(),
        t2_latency(),
        t3_rendezvous(),
        t4_kernel_driver(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_cover_all_figures_and_tables() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for want in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "t1_tuning",
            "t2_latency",
            "t3_rendezvous",
            "t4_kernel_driver",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn every_entry_has_paper_numbers() {
        for exp in all_experiments() {
            assert!(!exp.entries.is_empty(), "{} empty", exp.id);
            for e in &exp.entries {
                assert!(
                    e.paper.max_mbps.is_some() || e.paper.latency_us.is_some(),
                    "{}: {} lacks paper values",
                    exp.id,
                    e.lib.name()
                );
                assert!(!e.paper.note.is_empty());
            }
        }
    }

    #[test]
    fn fig1_measures_seven_curves() {
        assert_eq!(fig1().entries.len(), 7);
    }

    #[test]
    fn fig4_includes_cross_spec_reference() {
        let f = fig4();
        assert!(f.entries.iter().any(|e| e.spec_override.is_some()));
    }
}
