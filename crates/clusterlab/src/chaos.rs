//! Graceful-degradation sweeps: how a library's signature erodes as the
//! simulated fabric loses packets.
//!
//! The paper's measurements repeatedly ran into runs that "simply die"
//! on flaky gigabit hardware; `faultlab` reproduces that failure mode
//! deterministically. A [`degradation_sweep`] measures one library at a
//! ladder of packet-loss rates (same seed ⇒ byte-identical results),
//! recording for each rung the (possibly partial) signature and the
//! fault counters — so "how much loss until the curve collapses?" is a
//! runnable experiment instead of an anecdote.

use faultlab::{FaultCounters, FaultPlan};
use hwmodel::ClusterSpec;
use mpsim::MpLib;
use netpipe::{run, RunOptions, Signature, SimDriver};

/// One rung of a degradation ladder.
pub struct ChaosPoint {
    /// Per-segment packet-loss probability injected on the wire.
    pub loss: f64,
    /// The measured (possibly partial) signature under that loss rate.
    pub signature: Signature,
    /// Fault-injection counters accumulated over the sweep.
    pub counters: FaultCounters,
}

/// Measure `lib` on `spec` at each loss rate, under a seeded fault plan.
///
/// Every rung runs with the plan's [`faultlab::SweepPolicy`], so a loss
/// rate high enough to kill the modeled connection yields a partial,
/// annotated signature rather than an error. The ladder is fully
/// deterministic: the same `seed` and rates reproduce every byte.
pub fn degradation_sweep(
    spec: &ClusterSpec,
    lib: &MpLib,
    loss_rates: &[f64],
    seed: u64,
    opts: &RunOptions,
) -> Vec<ChaosPoint> {
    loss_rates
        .iter()
        .map(|&loss| {
            let plan = FaultPlan::parse(&format!("seed={seed},loss={loss},rto=2ms"))
                .expect("generated plan string is valid");
            let resilience = plan.sweep.clone();
            let mut driver = SimDriver::new(spec.clone(), lib.clone());
            driver.set_fault_plan(plan);
            let sig = run(&mut driver, &opts.clone().with_resilience(resilience))
                .expect("resilient sweep reports failures in-band");
            ChaosPoint {
                loss,
                signature: sig,
                counters: driver.fault_counters().unwrap_or_default(),
            }
        })
        .collect()
}

/// Render a degradation ladder as an aligned text table.
pub fn chaos_table(points: &[ChaosPoint]) -> String {
    let mut out = String::from(
        "loss      peak Mbps   latency us   degraded   failed   drops   retrans   deaths\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<8}  {:>9.1}   {:>10.1}   {:>8}   {:>6}   {:>5}   {:>7}   {:>6}\n",
            format!("{:.3}", p.loss),
            p.signature.max_mbps,
            p.signature.latency_us,
            p.signature.degraded_count(),
            p.signature.failed_count(),
            p.counters.dropped,
            p.counters.retransmits,
            p.counters.conn_deaths,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::pcs_ga620;
    use mpsim::libs::raw_tcp;
    use simcore::units::kib;

    #[test]
    fn ladder_is_deterministic_and_degrades_monotonically() {
        let spec = pcs_ga620();
        let lib = raw_tcp(kib(512));
        let rates = [0.0, 0.02];
        let opts = RunOptions::quick(1 << 17);
        let a = degradation_sweep(&spec, &lib, &rates, 42, &opts);
        let b = degradation_sweep(&spec, &lib, &rates, 42, &opts);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.signature.points.len(), y.signature.points.len());
            for (p, q) in x.signature.points.iter().zip(&y.signature.points) {
                assert_eq!(p.seconds, q.seconds, "seeded ladder must reproduce");
            }
            assert_eq!(x.counters.dropped, y.counters.dropped);
        }
        // Loss only hurts: the lossless rung is the performance ceiling.
        assert_eq!(a[0].counters.dropped, 0);
        assert!(a[1].counters.dropped > 0);
        assert!(a[1].signature.max_mbps < a[0].signature.max_mbps);

        let table = chaos_table(&a);
        assert!(table.contains("0.020"));
        assert!(table.lines().count() == rates.len() + 1);
    }

    #[test]
    fn lethal_loss_yields_partial_not_error() {
        let spec = pcs_ga620();
        let lib = raw_tcp(kib(512));
        let points = degradation_sweep(&spec, &lib, &[1.0], 7, &RunOptions::quick(1 << 12));
        let sig = &points[0].signature;
        assert!(sig.failed_count() > 0, "certain loss must kill points");
        assert!(sig.is_partial());
        assert!(points[0].counters.conn_deaths > 0);
    }
}
