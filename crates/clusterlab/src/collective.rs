//! Collective-scaling sweeps: latency of schedule-driven collectives
//! versus rank count and message size, per algorithm × library profile.
//!
//! The paper measures point-to-point curves; applications pay for
//! *collectives*, whose cost scales with the job size. This module
//! sweeps the `collectives` schedules over the simulated N-rank fabric
//! ([`collectives::run_sim`]) and renders the results next to the
//! ping-pong figures: latency vs ranks at a fixed payload, and latency
//! vs payload at a fixed rank count, one curve per algorithm. A seeded
//! chaos variant injects a dead or degraded rank and reports the
//! (annotated, partial) outcome instead of hanging — the same
//! graceful-degradation contract the ping-pong chaos sweeps enforce.

use std::fmt::Write as _;

use collectives::{
    build, run_sim, Algorithm, CollOp, Dtype, ExecCtx, RankFault, RecoveryPolicy, ReduceOp,
    Reduction, Schedule, SimOptions,
};
use faultlab::FaultPlan;
use hwmodel::ClusterSpec;
use mpsim::LibProfile;
use simcore::{units, SimRng};

/// One collective measurement configuration.
#[derive(Clone)]
pub struct CollConfig {
    /// Per-node hardware description.
    pub spec: ClusterSpec,
    /// Library per-message cost profile.
    pub profile: LibProfile,
    /// The collective to measure.
    pub op: CollOp,
    /// The algorithm family to plan with.
    pub algorithm: Algorithm,
    /// Per-rank payload bytes (rounded up to whole u64 elements for
    /// reducing ops; ignored by barrier).
    pub bytes: u64,
}

/// One measured point of a collective-scaling curve.
#[derive(Debug, Clone)]
pub struct CollPoint {
    /// Rank count.
    pub ranks: usize,
    /// Per-rank payload bytes.
    pub bytes: u64,
    /// Completion latency (last rank finished), microseconds.
    pub latency_us: f64,
    /// Simulation events executed (work proxy).
    pub events: u64,
}

/// A labeled curve of collective measurements.
#[derive(Debug, Clone)]
pub struct CollCurve {
    /// Legend label, e.g. `"allreduce/ring"`.
    pub label: String,
    /// Measured points in sweep order.
    pub points: Vec<CollPoint>,
}

/// Deterministic per-rank contribution: `bytes` rounded up to whole
/// u64 elements, each element a rank-and-index mix, so reductions have
/// non-trivial, reproducible inputs.
fn contribution(rank: usize, bytes: u64) -> Vec<u8> {
    let elems = (bytes.max(8)).div_ceil(8);
    let mut out = Vec::with_capacity((elems * 8) as usize);
    for i in 0..elems {
        let v = (rank as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn reduction_for(op: CollOp) -> Option<Reduction> {
    match op {
        CollOp::Reduce | CollOp::Allreduce => Some(Reduction {
            dtype: Dtype::U64,
            op: ReduceOp::Sum,
        }),
        CollOp::Barrier | CollOp::Bcast | CollOp::Allgather => None,
    }
}

fn contributions_for(op: CollOp, n: usize, bytes: u64) -> Vec<Vec<u8>> {
    match op {
        CollOp::Barrier => vec![Vec::new(); n],
        CollOp::Bcast => (0..n)
            .map(|r| {
                if r == 0 {
                    contribution(0, bytes)
                } else {
                    Vec::new()
                }
            })
            .collect(),
        _ => (0..n).map(|r| contribution(r, bytes)).collect(),
    }
}

fn plan(cfg: &CollConfig, n: usize) -> Option<Schedule> {
    build(cfg.op, cfg.algorithm, n).ok()
}

/// Measure one (config, rank-count) point; `None` when the algorithm
/// does not support the combination (e.g. recursive-doubling allgather
/// at a non-power-of-two size).
pub fn measure(cfg: &CollConfig, n: usize) -> Option<CollPoint> {
    let schedule = plan(cfg, n)?;
    let report = run_sim(
        &cfg.spec,
        &cfg.profile,
        &schedule,
        ExecCtx {
            root: 0,
            reduction: reduction_for(cfg.op),
        },
        &contributions_for(cfg.op, n, cfg.bytes),
        &SimOptions::default(),
    );
    assert!(
        report.all_completed(),
        "fault-free collective must complete on every rank"
    );
    Some(CollPoint {
        ranks: n,
        bytes: cfg.bytes,
        latency_us: units::secs_to_us(report.seconds),
        events: report.events,
    })
}

/// Latency vs rank count at the config's fixed payload.
pub fn scale_ranks(cfg: &CollConfig, rank_counts: &[usize]) -> CollCurve {
    CollCurve {
        label: format!("{}/{}", cfg.op.name(), cfg.algorithm.name()),
        points: rank_counts
            .iter()
            .filter_map(|&n| measure(cfg, n))
            .collect(),
    }
}

/// Latency vs per-rank payload at a fixed rank count.
pub fn scale_sizes(cfg: &CollConfig, ranks: usize, sizes: &[u64]) -> CollCurve {
    CollCurve {
        label: format!("{}/{}", cfg.op.name(), cfg.algorithm.name()),
        points: sizes
            .iter()
            .filter_map(|&bytes| {
                let cfg = CollConfig {
                    bytes,
                    ..cfg.clone()
                };
                measure(&cfg, ranks)
            })
            .collect(),
    }
}

/// Render curves as CSV: `label,ranks,bytes,latency_us,events`.
pub fn to_csv(curves: &[CollCurve]) -> String {
    let mut out = String::from("label,ranks,bytes,latency_us,events\n");
    for c in curves {
        for p in &c.points {
            let _ = writeln!(
                out,
                "{},{},{},{:.3},{}",
                c.label, p.ranks, p.bytes, p.latency_us, p.events
            );
        }
    }
    out
}

/// Render curves as an SVG figure: log-x (ranks or bytes, whichever the
/// sweep varied), log-y latency in microseconds, one polyline per
/// curve — the companion shape to the ping-pong throughput figures.
pub fn svg_figure(
    title: &str,
    x_label: &str,
    curves: &[CollCurve],
    width: u32,
    height: u32,
) -> String {
    const COLORS: [&str; 10] = [
        "#000000", "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2",
        "#7f7f7f", "#17becf",
    ];
    let xv = |p: &CollPoint| -> f64 {
        if x_label.contains("byte") {
            p.bytes.max(1) as f64
        } else {
            p.ranks.max(1) as f64
        }
    };
    let (ml, mr, mt, mb) = (70.0, 16.0, 34.0, 46.0);
    let pw = f64::from(width) - ml - mr;
    let ph = f64::from(height) - mt - mb;
    let all: Vec<(f64, f64)> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| (xv(p), p.latency_us.max(1e-3))))
        .collect();
    let mut lx0 = f64::MAX;
    let mut lx1 = f64::MIN;
    let mut ly0 = f64::MAX;
    let mut ly1 = f64::MIN;
    for &(x, y) in &all {
        lx0 = lx0.min(x.ln());
        lx1 = lx1.max(x.ln());
        ly0 = ly0.min(y.ln());
        ly1 = ly1.max(y.ln());
    }
    if all.is_empty() {
        lx0 = 0.0;
        lx1 = 1.0;
        ly0 = 0.0;
        ly1 = 1.0;
    }
    let x = |v: f64| ml + (v.ln() - lx0) / (lx1 - lx0).max(1e-9) * pw;
    let y = |v: f64| mt + (1.0 - (v.max(1e-3).ln() - ly0) / (ly1 - ly0).max(1e-9)) * ph;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{width}" height="{height}" fill="white"/><text x="{}" y="18" text-anchor="middle" font-size="13">{title}</text>"#,
        f64::from(width) / 2.0
    );
    // Log-decade gridlines on y.
    let mut decade = 10f64.powf(ly0.exp().log10().floor());
    while decade.ln() <= ly1 + 1e-9 {
        if decade.ln() >= ly0 - 1e-9 {
            let gy = y(decade);
            let _ = write!(
                out,
                r##"<line x1="{ml}" y1="{gy:.1}" x2="{:.1}" y2="{gy:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" text-anchor="end">{decade}</text>"##,
                ml + pw,
                ml - 4.0,
                gy + 4.0
            );
        }
        decade *= 10.0;
    }
    // X ticks at each measured value (sweeps are short).
    let mut xs: Vec<f64> = all.iter().map(|&(x, _)| x).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.dedup();
    for v in xs {
        let gx = x(v);
        let label = if v >= 1_048_576.0 {
            format!("{}M", v / 1_048_576.0)
        } else if v >= 1024.0 && x_label.contains("byte") {
            format!("{}k", v / 1024.0)
        } else {
            format!("{v}")
        };
        let _ = write!(
            out,
            r##"<line x1="{gx:.1}" y1="{mt}" x2="{gx:.1}" y2="{:.1}" stroke="#eee"/><text x="{gx:.1}" y="{:.1}" text-anchor="middle">{label}</text>"##,
            mt + ph,
            mt + ph + 14.0
        );
    }
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{x_label}</text><text x="14" y="{:.1}" transform="rotate(-90 14 {:.1})" text-anchor="middle">latency (us, log)</text>"#,
        ml + pw / 2.0,
        mt + ph + 32.0,
        mt + ph / 2.0,
        mt + ph / 2.0
    );
    for (i, c) in curves.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<String> = c
            .points
            .iter()
            .map(|p| format!("{:.1},{:.1}", x(xv(p)), y(p.latency_us.max(1e-3))))
            .collect();
        let _ = write!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.6"/>"#,
            pts.join(" ")
        );
        let ly = mt + 6.0 + 14.0 * i as f64;
        let _ = write!(
            out,
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{:.1}" y="{:.1}">{}</text>"#,
            ml + 8.0,
            ml + 28.0,
            ml + 32.0,
            ly + 4.0,
            c.label
        );
    }
    out.push_str("</svg>");
    out
}

/// The algorithms the barrier smoke sweep exercises, in label order.
fn smoke_algorithms() -> [Algorithm; 4] {
    [
        Algorithm::Tree,
        Algorithm::Dissemination,
        Algorithm::RecursiveDoubling,
        Algorithm::Ring,
    ]
}

/// The CI smoke sweep: a seeded 64-rank simulated barrier sweep (ranks
/// 4→64, four algorithms, MPICH-tuned profile on the GA620 cluster),
/// rendered as CSV. Fully deterministic: the committed golden copy in
/// `golden/collective_smoke.csv` must match byte-for-byte.
pub fn smoke_csv() -> String {
    let curves: Vec<CollCurve> = smoke_algorithms()
        .into_iter()
        .map(|algorithm| {
            let cfg = CollConfig {
                spec: hwmodel::presets::pcs_ga620(),
                profile: mpsim::libs::mpich(mpsim::libs::MpichConfig::tuned()).profile,
                op: CollOp::Barrier,
                algorithm,
                bytes: 0,
            };
            scale_ranks(&cfg, &[4, 8, 16, 32, 64])
        })
        .collect();
    to_csv(&curves)
}

/// Run one collective under a seeded fault plan and report the outcome.
///
/// The plan's seed picks the victim rank; a kill plan (`kill-after=...`
/// or `kill-listener`) makes the victim dead (it never enters the
/// collective), otherwise the victim is degraded by the plan's jitter
/// (default 5 ms) per send. A dead rank must yield an annotated
/// *partial* report — stalled peers and all — rather than a hang; a
/// degraded rank must finish, slower.
///
/// Kill plans run a third time with the self-healing cycle armed: the
/// dead rank must be evicted and every survivor must complete over the
/// replanned schedule.
pub fn chaos_collective(plan: &FaultPlan, cfg: &CollConfig, ranks: usize) -> String {
    let schedule = match build(cfg.op, cfg.algorithm, ranks) {
        Ok(s) => s,
        Err(e) => return format!("collective chaos: cannot plan: {e}\n"),
    };
    let mut rng = SimRng::new(plan.seed);
    let victim = rng.next_below(ranks as u64) as usize;
    let kill = plan.kill_after.is_some() || plan.kill_listener;
    let extra_us = if plan.jitter_us > 0.0 {
        plan.jitter_us
    } else {
        5_000.0
    };
    let fault = if kill {
        RankFault::Dead(victim)
    } else {
        RankFault::Degrade {
            rank: victim,
            extra_us,
        }
    };
    let run = |faults: Vec<RankFault>, recovery: Option<RecoveryPolicy>| {
        run_sim(
            &cfg.spec,
            &cfg.profile,
            &schedule,
            ExecCtx {
                root: 0,
                reduction: reduction_for(cfg.op),
            },
            &contributions_for(cfg.op, ranks, cfg.bytes),
            &SimOptions {
                trace: None,
                faults,
                plan: None,
                recovery,
            },
        )
    };
    let clean = run(Vec::new(), None);
    let faulty = run(vec![fault], None);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "collective chaos: {} {} over {ranks} ranks (seed {})",
        cfg.op.name(),
        cfg.algorithm.name(),
        plan.seed
    );
    if kill {
        let _ = writeln!(
            out,
            "fault: rank {victim} degraded to dead — never enters the collective"
        );
    } else {
        let _ = writeln!(
            out,
            "fault: rank {victim} degraded by {extra_us:.0} us of CPU per send"
        );
    }
    let _ = writeln!(
        out,
        "clean run: {:.1} us, {} events, {}/{ranks} ranks completed",
        units::secs_to_us(clean.seconds),
        clean.events,
        clean.completed
    );
    if faulty.all_completed() {
        let _ = writeln!(
            out,
            "faulty run: complete — {:.1} us ({:.2}x clean), {}/{ranks} ranks completed",
            units::secs_to_us(faulty.seconds),
            if clean.seconds > 0.0 {
                faulty.seconds / clean.seconds
            } else {
                1.0
            },
            faulty.completed
        );
    } else {
        let stalled: Vec<usize> = faulty
            .finish_secs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(r, _)| r)
            .collect();
        let _ = writeln!(
            out,
            "faulty run: partial report — {}/{ranks} ranks completed, event queue drained without a hang",
            faulty.completed
        );
        let _ = writeln!(out, "stalled ranks (waiting on the dead rank): {stalled:?}");
    }
    if kill {
        let healed = run(
            vec![fault],
            Some(RecoveryPolicy {
                deadline_us: 5_000.0,
                backoff_us: 1_000.0,
                max_epochs: 4,
            }),
        );
        match healed.recovery.as_ref() {
            Some(rec) if healed.all_survivors_completed() && !rec.evicted.is_empty() => {
                let _ = writeln!(
                    out,
                    "recovery run: healed — evicted {:?} in {} epoch(s), {}/{ranks} survivors completed",
                    rec.evicted,
                    rec.epochs.len(),
                    healed.completed
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "recovery run: FAILED to heal — {}/{ranks} completed, report {:?}",
                    healed.completed, healed.recovery
                );
            }
        }
    }
    out
}

/// The CI chaos-recovery smoke: a seeded 64-rank simulated allreduce
/// with two timed `kill-rank` deaths and the self-healing cycle armed.
/// Both ranks must be evicted (one membership epoch each), the 62
/// survivors must complete over the replanned schedules, and the
/// wrapped-u64 survivor sum must check out. Fully deterministic: the
/// committed golden copy in `golden/recovery_smoke.txt` must match
/// byte-for-byte.
pub fn recovery_smoke() -> String {
    let cfg = CollConfig {
        spec: hwmodel::presets::pcs_ga620(),
        profile: mpsim::libs::mpich(mpsim::libs::MpichConfig::tuned()).profile,
        op: CollOp::Allreduce,
        algorithm: Algorithm::RecursiveDoubling,
        bytes: 8,
    };
    let ranks = 64;
    let plan_text = "seed=7,kill-rank=9@50us,kill-rank=23@120us";
    let plan = FaultPlan::parse(plan_text).expect("smoke fault plan parses");
    let policy = RecoveryPolicy {
        deadline_us: 300.0,
        backoff_us: 100.0,
        max_epochs: 4,
    };
    let schedule =
        build(cfg.op, cfg.algorithm, ranks).expect("64-rank recursive-doubling allreduce plans");
    let contributions = contributions_for(cfg.op, ranks, cfg.bytes);
    let report = run_sim(
        &cfg.spec,
        &cfg.profile,
        &schedule,
        ExecCtx {
            root: 0,
            reduction: reduction_for(cfg.op),
        },
        &contributions,
        &SimOptions {
            trace: None,
            faults: Vec::new(),
            plan: Some(plan),
            recovery: Some(policy),
        },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos-recovery smoke: {} {} over {ranks} ranks, plan `{plan_text}`",
        cfg.op.name(),
        cfg.algorithm.name(),
    );
    let Some(rec) = report.recovery.as_ref() else {
        out.push_str("recovery report missing (policy not armed?)\n");
        return out;
    };
    out.push_str(&rec.to_text());
    let _ = writeln!(
        out,
        "{}/{ranks} survivors completed in {:.1} us",
        report.completed,
        units::secs_to_us(report.seconds)
    );
    let mut expected = 0u64;
    for (r, c) in contributions.iter().enumerate() {
        if rec.evicted.contains(&r) {
            continue;
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        expected = expected.wrapping_add(u64::from_le_bytes(b));
    }
    let ok = report
        .outputs
        .iter()
        .enumerate()
        .filter(|(r, _)| !rec.evicted.contains(r))
        .all(|(_, o)| o.as_ref().is_some_and(|o| o.acc == expected.to_le_bytes()));
    if ok && report.all_survivors_completed() {
        let _ = writeln!(out, "survivor sum ok: {expected:#018x}");
    } else {
        let _ = writeln!(out, "survivor sum MISMATCH (want {expected:#018x})");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(op: CollOp, algorithm: Algorithm, bytes: u64) -> CollConfig {
        CollConfig {
            spec: hwmodel::presets::pcs_ga620(),
            profile: mpsim::libs::mpich(mpsim::libs::MpichConfig::tuned()).profile,
            op,
            algorithm,
            bytes,
        }
    }

    #[test]
    fn barrier_latency_grows_logarithmically_not_linearly() {
        let c = cfg(CollOp::Barrier, Algorithm::Dissemination, 0);
        let curve = scale_ranks(&c, &[4, 16, 64]);
        let l4 = curve.points[0].latency_us;
        let l64 = curve.points[2].latency_us;
        // 16x the ranks must cost far less than 16x the time (log rounds).
        assert!(l64 > l4, "more ranks cost more");
        assert!(
            l64 < l4 * 8.0,
            "dissemination is logarithmic: {l4} -> {l64}"
        );
    }

    #[test]
    fn allreduce_size_sweep_is_monotone_at_large_sizes() {
        let c = cfg(CollOp::Allreduce, Algorithm::Ring, 0);
        let curve = scale_sizes(&c, 8, &[1024, 65_536, 1_048_576]);
        assert_eq!(curve.points.len(), 3);
        assert!(curve.points[2].latency_us > curve.points[1].latency_us);
        assert!(curve.points[1].latency_us > curve.points[0].latency_us);
    }

    #[test]
    fn smoke_csv_matches_committed_golden() {
        let expected = include_str!("../golden/collective_smoke.csv");
        assert_eq!(
            smoke_csv(),
            expected,
            "seeded collective smoke sweep drifted from golden/collective_smoke.csv; \
             if the change is intentional, regenerate with \
             `cargo run --release -p bench --bin fig_collectives -- --smoke \
             crates/clusterlab/golden/collective_smoke.csv`"
        );
    }

    #[test]
    fn recovery_smoke_matches_committed_golden() {
        let expected = include_str!("../golden/recovery_smoke.txt");
        assert_eq!(
            recovery_smoke(),
            expected,
            "seeded chaos-recovery smoke drifted from golden/recovery_smoke.txt; \
             if the change is intentional, regenerate with \
             `cargo run --release -p bench --bin fig_collectives -- --recovery \
             crates/clusterlab/golden/recovery_smoke.txt`"
        );
    }

    #[test]
    fn chaos_kill_heals_with_recovery_armed() {
        let plan = FaultPlan::parse("seed=7,kill-after=1").expect("valid plan");
        let report = chaos_collective(
            &plan,
            &cfg(CollOp::Allreduce, Algorithm::RecursiveDoubling, 64),
            16,
        );
        assert!(report.contains("recovery run: healed"), "{report}");
    }

    #[test]
    fn chaos_kill_reports_partial_not_hang() {
        let plan = FaultPlan::parse("seed=7,kill-after=1").expect("valid plan");
        let report = chaos_collective(
            &plan,
            &cfg(CollOp::Barrier, Algorithm::Dissemination, 0),
            16,
        );
        assert!(report.contains("partial"), "{report}");
        assert!(report.contains("degraded"), "{report}");
        assert!(report.contains("stalled"), "{report}");
    }

    #[test]
    fn chaos_degrade_completes_slower() {
        let plan = FaultPlan::parse("seed=3,jitter=2000us").expect("valid plan");
        let report = chaos_collective(&plan, &cfg(CollOp::Allreduce, Algorithm::Tree, 512), 8);
        assert!(report.contains("degraded"), "{report}");
        assert!(report.contains("complete"), "{report}");
    }

    #[test]
    fn csv_round_trips_through_the_expected_header() {
        let c = cfg(CollOp::Barrier, Algorithm::Tree, 0);
        let csv = to_csv(&[scale_ranks(&c, &[4, 8])]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,ranks,bytes,latency_us,events"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn svg_contains_every_curve_label() {
        let curves = vec![
            scale_ranks(&cfg(CollOp::Barrier, Algorithm::Tree, 0), &[4, 8]),
            scale_ranks(&cfg(CollOp::Barrier, Algorithm::Ring, 0), &[4, 8]),
        ];
        let svg = svg_figure("t", "ranks", &curves, 640, 420);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("barrier/tree") && svg.contains("barrier/ring"));
    }
}
