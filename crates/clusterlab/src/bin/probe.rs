//! Calibration probe: print every experiment's paper-vs-measured rows.
//!
//! Used while tuning the hardware/protocol model constants; the figure
//! binaries in `crates/bench` are the user-facing equivalents.

use clusterlab::{all_experiments, compare, run_experiment, to_markdown};
use netpipe::RunOptions;

fn main() {
    let opts = RunOptions::default();
    for exp in all_experiments() {
        let res = run_experiment(&exp, &opts);
        let rows = compare(&exp, &res);
        println!(
            "{}",
            to_markdown(&format!("{} — {}", exp.id, exp.title), &rows)
        );
        // Also evaluate the shape checks and flag failures inline.
        for c in clusterlab::evaluate(&res, &clusterlab::checks_for(exp.id)) {
            println!(
                "  [{}] {} (measured {:.2})",
                if c.pass { "ok" } else { "FAIL" },
                c.desc,
                c.measured
            );
        }
        println!();
    }
}
