//! Run an experiment's curves in parallel and collect the signatures.
//!
//! Each entry is an independent deterministic simulation, so the sweep
//! fans out across OS threads with `std::thread::scope` — the same
//! data-race-free fork/join structure rayon's `join` provides, without
//! adding a dependency for a flat fan-out.

use netpipe::{run, RunOptions, Signature, SimDriver};

use crate::presets::Experiment;

/// A measured experiment: the preset plus one signature per entry (in
/// preset order).
pub struct ExperimentResult {
    /// Experiment id (`fig1`, …).
    pub id: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// One measured signature per entry.
    pub signatures: Vec<Signature>,
}

impl ExperimentResult {
    /// Look a signature up by (exact) library name.
    pub fn by_name(&self, name: &str) -> Option<&Signature> {
        self.signatures.iter().find(|s| s.name == name)
    }

    /// Look a signature up by name prefix (library family).
    pub fn by_prefix(&self, prefix: &str) -> Option<&Signature> {
        self.signatures.iter().find(|s| s.name.starts_with(prefix))
    }
}

/// Measure every entry of `exp` in parallel.
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> ExperimentResult {
    let signatures: Vec<Signature> = std::thread::scope(|scope| {
        let handles: Vec<_> = exp
            .entries
            .iter()
            .map(|entry| {
                let spec = entry
                    .spec_override
                    .clone()
                    .unwrap_or_else(|| exp.spec.clone());
                let lib = entry.lib.clone();
                let opts = opts.clone();
                scope.spawn(move || {
                    let mut driver = SimDriver::new(spec, lib);
                    run(&mut driver, &opts).expect("simulated sweep cannot fail")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    });
    ExperimentResult {
        id: exp.id,
        title: exp.title,
        signatures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::fig1;
    use netpipe::RunOptions;

    #[test]
    fn sweep_preserves_entry_order_and_names() {
        let exp = fig1();
        let res = run_experiment(&exp, &RunOptions::quick(1 << 16));
        assert_eq!(res.signatures.len(), exp.entries.len());
        for (e, s) in exp.entries.iter().zip(&res.signatures) {
            assert_eq!(e.lib.name(), s.name);
        }
        assert!(res.by_name("raw TCP").is_some());
        assert!(res.by_prefix("MPICH").is_some());
        assert!(res.by_prefix("nonexistent").is_none());
    }

    #[test]
    fn parallel_sweep_matches_serial_measurement() {
        // Determinism across threads: the same entry measured standalone
        // gives bit-identical numbers.
        let exp = fig1();
        let opts = RunOptions::quick(1 << 15);
        let parallel = run_experiment(&exp, &opts);
        let mut solo = SimDriver::new(exp.spec.clone(), exp.entries[0].lib.clone());
        let solo_sig = run(&mut solo, &opts).unwrap();
        let par_sig = &parallel.signatures[0];
        assert_eq!(solo_sig.points.len(), par_sig.points.len());
        for (a, b) in solo_sig.points.iter().zip(&par_sig.points) {
            assert_eq!(a.seconds, b.seconds);
        }
    }
}
