//! # clusterlab — the paper's evaluation, as runnable experiments
//!
//! * [`presets`] — one [`presets::Experiment`] per figure (1–5) and per
//!   narrative table (tuning effects, latencies, rendezvous thresholds,
//!   kernel/driver comparisons), each entry carrying the paper's reported
//!   value for side-by-side comparison.
//! * [`sweep`] — measure an experiment's curves in parallel threads.
//! * [`calibration`] — the machine-checked *shape* criteria that define
//!   "reproduced": orderings, loss factors, dip locations, tuning deltas.
//! * [`comparison`] — paper-vs-measured tables (EXPERIMENTS.md is
//!   generated from these).
//! * [`chaos`] — seeded packet-loss ladders measuring graceful
//!   degradation (how much loss until a curve collapses).
//! * [`collective`] — N-rank collective-scaling sweeps (latency vs rank
//!   count and payload size per algorithm) with a seeded chaos variant.

#![warn(missing_docs)]

pub mod breakdown;
pub mod calibration;
pub mod chaos;
pub mod collective;
pub mod comparison;
pub mod overlap;
pub mod presets;
pub mod scaling;
pub mod sweep;

pub use breakdown::{measure_breakdown, Breakdown, StageBusy};
pub use calibration::{checks_for, evaluate, Check, CheckResult};
pub use chaos::{chaos_table, degradation_sweep, ChaosPoint};
pub use collective::{
    chaos_collective, recovery_smoke, scale_ranks, scale_sizes, smoke_csv, CollConfig, CollCurve,
    CollPoint,
};
pub use comparison::{compare, digest, to_markdown, ComparisonRow};
pub use overlap::{measure_overlap, section7_panel, OverlapPoint};
pub use presets::{all_experiments, Entry, Experiment, PaperValues};
pub use scaling::{strong_scaling, AppModel, ScalingPoint};
pub use sweep::{run_experiment, ExperimentResult};
