//! The §7 hypothesis experiment: computation/communication overlap.
//!
//! The paper closes its discussion with a prediction it never measures:
//! "A message-passing library like MPI/Pro that has a message progress
//! thread, or MP_Lite that is SIGIO interrupt driven, will keep data
//! flowing more readily" *inside real applications*, where the receiver
//! is busy computing when messages arrive. NetPIPE's idle ping-pong
//! cannot see this.
//!
//! This experiment makes the prediction measurable: a sender transmits a
//! large message while the receiver computes for `busy` microseconds
//! before posting its receive. Full overlap means the total time is
//! `max(compute, transfer)`; zero overlap means `compute + transfer`.

use hwmodel::ClusterSpec;
use mpsim::{MpLib, Session};
use protosim::Fabric;
use simcore::units::secs_to_ms;
use simcore::SimDuration;
use std::cell::Cell;
use std::rc::Rc;

/// Result of one overlap measurement.
#[derive(Debug, Clone)]
pub struct OverlapPoint {
    /// Library name.
    pub name: String,
    /// Message size, bytes.
    pub bytes: u64,
    /// Receiver compute time, seconds.
    pub busy_s: f64,
    /// Transfer time with an idle receiver, seconds.
    pub transfer_alone_s: f64,
    /// Measured total time, seconds.
    pub total_s: f64,
}

impl OverlapPoint {
    /// Overlap efficiency in `[0, 1]`: 1 when `total = max(busy,
    /// transfer)` (perfect overlap), 0 when `total = busy + transfer`
    /// (fully serialized). Clamped against modeling noise.
    pub fn efficiency(&self) -> f64 {
        let ideal = self.busy_s.max(self.transfer_alone_s);
        let worst = self.busy_s + self.transfer_alone_s;
        if worst <= ideal {
            return 1.0;
        }
        ((worst - self.total_s) / (worst - ideal)).clamp(0.0, 1.0)
    }
}

/// Measure the transfer-alone time and the busy-receiver total for one
/// library on one cluster.
pub fn measure_overlap(
    spec: &ClusterSpec,
    lib: &MpLib,
    bytes: u64,
    busy: SimDuration,
) -> OverlapPoint {
    // Transfer with an idle receiver.
    let transfer_alone_s = {
        let mut eng = Fabric::engine(spec.clone());
        let session = Session::establish(&mut eng.world, lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        session.send(
            &mut eng,
            0,
            bytes,
            Box::new(move |e| out2.set(Some(e.now().as_secs_f64()))),
        );
        eng.run();
        out.get().expect("idle transfer never completed")
    };
    // Transfer against a computing receiver.
    let total_s = {
        let mut eng = Fabric::engine(spec.clone());
        let session = Session::establish(&mut eng.world, lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        session.send_while_receiver_busy(
            &mut eng,
            0,
            bytes,
            busy,
            Box::new(move |e| out2.set(Some(e.now().as_secs_f64()))),
        );
        eng.run();
        out.get().expect("busy transfer never completed")
    };
    OverlapPoint {
        name: lib.name().to_string(),
        bytes,
        busy_s: busy.as_secs_f64(),
        transfer_alone_s,
        total_s,
    }
}

/// The §7 panel: MPICH, MPI/Pro, MP_Lite and PVM on the fig-1 cluster,
/// 1 MB transfers against a compute grain comparable to the transfer.
pub fn section7_panel() -> Vec<OverlapPoint> {
    use mpsim::libs::*;
    let spec = hwmodel::presets::pcs_ga620();
    let busy = SimDuration::from_millis(20);
    let bytes = 1 << 20;
    let libs = [
        raw_tcp(512 * 1024),
        mpich(MpichConfig::tuned()),
        mpipro(MpiProConfig::tuned()),
        mp_lite(&spec.kernel),
        pvm(PvmConfig::tuned()),
        tcgmsg(256 * 1024),
    ];
    libs.iter()
        .map(|lib| measure_overlap(&spec, lib, bytes, busy))
        .collect()
}

/// Markdown table for the overlap panel.
pub fn to_markdown(points: &[OverlapPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| library | transfer alone (ms) | compute (ms) | total (ms) | overlap efficiency |\n|---|---:|---:|---:|---:|\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.0}% |",
            p.name,
            secs_to_ms(p.transfer_alone_s),
            secs_to_ms(p.busy_s),
            secs_to_ms(p.total_s),
            p.efficiency() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_thread_and_sigio_overlap_fully() {
        let panel = section7_panel();
        let by = |prefix: &str| {
            panel
                .iter()
                .find(|p| p.name.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} missing"))
        };
        // §7's prediction, quantified.
        assert!(by("MPI/Pro").efficiency() > 0.9, "{:?}", by("MPI/Pro"));
        assert!(by("MP_Lite").efficiency() > 0.9, "{:?}", by("MP_Lite"));
        assert!(by("raw TCP").efficiency() > 0.9, "{:?}", by("raw TCP"));
        // MPICH above its rendezvous threshold cannot overlap at all.
        assert!(by("MPICH").efficiency() < 0.2, "{:?}", by("MPICH"));
        // PVM (in-call, eager fragments) lands in between: a window's
        // worth overlaps, the rest serializes.
        let pvm_eff = by("PVM").efficiency();
        assert!(
            pvm_eff > by("MPICH").efficiency() && pvm_eff < 0.9,
            "PVM efficiency {pvm_eff}"
        );
    }

    #[test]
    fn efficiency_bounds() {
        let p = OverlapPoint {
            name: "x".into(),
            bytes: 1,
            busy_s: 10e-3,
            transfer_alone_s: 10e-3,
            total_s: 10e-3,
        };
        assert_eq!(p.efficiency(), 1.0);
        let worst = OverlapPoint {
            total_s: 20e-3,
            ..p.clone()
        };
        assert_eq!(worst.efficiency(), 0.0);
        let mid = OverlapPoint {
            total_s: 15e-3,
            ..p
        };
        assert!((mid.efficiency() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn markdown_has_one_row_per_library() {
        let panel = section7_panel();
        let md = to_markdown(&panel);
        assert_eq!(md.lines().count(), 2 + panel.len());
        assert!(md.contains("overlap efficiency"));
    }

    #[test]
    fn zero_busy_time_is_full_efficiency_by_convention() {
        let spec = hwmodel::presets::pcs_ga620();
        let lib = mpsim::libs::raw_tcp(512 * 1024);
        let p = measure_overlap(&spec, &lib, 100_000, SimDuration::ZERO);
        assert_eq!(p.efficiency(), 1.0);
        assert!((p.total_s / p.transfer_alone_s - 1.0).abs() < 0.02);
    }
}
