//! Where does the time go? — the paper's §1 question, made executable.
//!
//! "The first step in improving the overall performance of the
//! message-passing system is to identify where the performance is being
//! lost and determine why." Every fabric resource already accounts its
//! busy time; this module runs one transfer and reports the busy share of
//! each pipeline stage (host CPUs, PCI buses, NIC engines, wires), plus
//! the residual — latency gaps and serial library work.

use hwmodel::ClusterSpec;
use mpsim::{MpLib, Session};
use protosim::Fabric;
use simcore::SimDuration;
use std::cell::Cell;
use std::rc::Rc;

/// Busy time of one pipeline stage during a transfer.
#[derive(Debug, Clone)]
pub struct StageBusy {
    /// Stage name, e.g. `"host0 cpu"`, `"wire ch0 ->"`.
    pub stage: String,
    /// Accumulated busy time.
    pub busy: SimDuration,
    /// Bytes the stage served.
    pub bytes: u64,
}

/// A transfer's complete stage accounting.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Library measured.
    pub name: String,
    /// Message size, bytes.
    pub bytes: u64,
    /// One-way elapsed time, seconds.
    pub elapsed_s: f64,
    /// Per-stage busy times.
    pub stages: Vec<StageBusy>,
}

impl Breakdown {
    /// The stage with the largest busy time — the bottleneck the paper
    /// hunts per configuration.
    pub fn bottleneck(&self) -> &StageBusy {
        self.stages
            .iter()
            .max_by(|a, b| a.busy.cmp(&b.busy))
            .expect("at least one stage")
    }

    /// Busy share of `stage` relative to the elapsed time.
    pub fn share(&self, stage: &str) -> f64 {
        let busy = self
            .stages
            .iter()
            .find(|s| s.stage.starts_with(stage))
            .map_or(SimDuration::ZERO, |s| s.busy);
        busy.as_secs_f64() / self.elapsed_s
    }

    /// Render as an aligned text table with utilization bars.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} — {} bytes, one-way {:.1} us\n",
            self.name,
            self.bytes,
            self.elapsed_s * 1e6
        );
        for s in &self.stages {
            let share = s.busy.as_secs_f64() / self.elapsed_s;
            let bar = "#".repeat((share * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  {:<14} {:>10.1} us  {:>5.1}%  {bar}",
                s.stage,
                s.busy.as_micros_f64(),
                share * 100.0
            );
        }
        out
    }
}

/// Run one `bytes`-sized transfer of `lib` on `spec` and account every
/// stage's busy time.
pub fn measure_breakdown(spec: &ClusterSpec, lib: &MpLib, bytes: u64) -> Breakdown {
    let mut eng = Fabric::engine(spec.clone());
    let session = Session::establish(&mut eng.world, lib);
    let done = Rc::new(Cell::new(None));
    let d = Rc::clone(&done);
    session.send(
        &mut eng,
        0,
        bytes,
        Box::new(move |e| d.set(Some(e.now().as_secs_f64()))),
    );
    eng.run();
    let elapsed_s = done.get().expect("transfer never completed");

    let fab = &eng.world;
    let mut stages = Vec::new();
    for (h, host) in fab.hosts.iter().enumerate() {
        stages.push(StageBusy {
            stage: format!("host{h} cpu"),
            busy: host.cpu.busy_time(),
            bytes: host.cpu.bytes_served(),
        });
        stages.push(StageBusy {
            stage: format!("host{h} pci"),
            busy: host.pci.busy_time(),
            bytes: host.pci.bytes_served(),
        });
        for (ch, nic) in host.nics.iter().enumerate() {
            stages.push(StageBusy {
                stage: format!("host{h} nic{ch}"),
                busy: nic.busy_time(),
                bytes: nic.bytes_served(),
            });
        }
    }
    for (ch, pair) in fab.wires.iter().enumerate() {
        for (dir, wire) in pair.iter().enumerate() {
            let arrow = if dir == 0 { "->" } else { "<-" };
            stages.push(StageBusy {
                stage: format!("wire{ch} {arrow}"),
                busy: wire.busy_time(),
                bytes: wire.bytes_served(),
            });
        }
    }
    Breakdown {
        name: lib.name().to_string(),
        bytes,
        elapsed_s,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_ga620, pcs_myrinet};
    use mpsim::libs::{mpich, raw_gm, raw_tcp, MpichConfig};
    use protosim::RecvMode;
    use simcore::units::{kib, mib};

    #[test]
    fn no_stage_exceeds_elapsed_time() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(1));
        for s in &b.stages {
            assert!(
                s.busy.as_secs_f64() <= b.elapsed_s * 1.0001,
                "{} busy {} > elapsed {}",
                s.stage,
                s.busy.as_secs_f64(),
                b.elapsed_s
            );
        }
    }

    #[test]
    fn one_way_transfer_uses_one_wire_direction() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(1));
        let fwd = b.stages.iter().find(|s| s.stage == "wire0 ->").unwrap();
        let rev = b.stages.iter().find(|s| s.stage == "wire0 <-").unwrap();
        assert!(fwd.bytes > mib(1), "payload + headers crossed forward");
        assert_eq!(rev.bytes, 0, "nothing flowed backwards");
    }

    #[test]
    fn ga620_bottleneck_is_the_nic_engine() {
        // The calibrated fig-1 story: the GA620's per-frame firmware cost
        // caps raw TCP, not the wire or the CPU.
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(4));
        assert!(b.bottleneck().stage.contains("nic"), "{}", b.to_table());
        assert!(b.share("host0 nic") > 0.8, "{}", b.to_table());
    }

    #[test]
    fn mpich_burns_more_receiver_cpu_than_raw_tcp() {
        // The p4 drain memcpy is receiver-side CPU time.
        let raw = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(4));
        let mpich = measure_breakdown(&pcs_ga620(), &mpich(MpichConfig::tuned()), mib(4));
        let cpu = |b: &Breakdown| {
            b.stages
                .iter()
                .find(|s| s.stage == "host1 cpu")
                .unwrap()
                .busy
                .as_secs_f64()
        };
        assert!(
            cpu(&mpich) > 1.5 * cpu(&raw),
            "mpich rx cpu {} vs raw {}",
            cpu(&mpich),
            cpu(&raw)
        );
    }

    #[test]
    fn gm_bottleneck_is_the_card_not_the_host() {
        // OS bypass: the PCI DMA engine and the 66 MHz LANai are nearly
        // co-saturated (the fig-4 calibration); the host CPU does almost
        // nothing and the wire has headroom — exactly the §5 picture.
        let b = measure_breakdown(&pcs_myrinet(), &raw_gm(RecvMode::Polling), mib(4));
        let hot = b.bottleneck();
        assert!(
            hot.stage.contains("nic") || hot.stage.contains("pci"),
            "{}",
            b.to_table()
        );
        assert!(b.share("host0 cpu") < 0.10, "{}", b.to_table());
        assert!(b.share("wire0 ->") < 0.80, "{}", b.to_table());
    }

    #[test]
    fn table_renders_every_stage() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), 100_000);
        let t = b.to_table();
        assert!(t.contains("host0 cpu"));
        assert!(t.contains("wire0 ->"));
        assert!(t.contains('%'));
    }
}
