//! Where does the time go? — the paper's §1 question, made executable.
//!
//! "The first step in improving the overall performance of the
//! message-passing system is to identify where the performance is being
//! lost and determine why." The instrumentation in `tracelab` records a
//! span for every resource reservation; this module runs one traced
//! transfer and folds the per-stage registry into the busy share of each
//! hardware pipeline stage (host CPUs, PCI buses, NIC engines, wires) —
//! the residual is latency gaps and serial library work.

use hwmodel::ClusterSpec;
use mpsim::{MpLib, Session};
use protosim::{cpu_track, nic_track, pci_track, track_label, wire_track, Fabric};
use simcore::units::secs_to_us;
use simcore::SimDuration;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use tracelab::Tracer;

/// Busy time of one pipeline stage during a transfer.
#[derive(Debug, Clone)]
pub struct StageBusy {
    /// Stage name, e.g. `"host0 cpu"`, `"wire ch0 ->"`.
    pub stage: String,
    /// Accumulated busy time.
    pub busy: SimDuration,
    /// Bytes the stage served.
    pub bytes: u64,
}

/// A transfer's complete stage accounting.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Library measured.
    pub name: String,
    /// Message size, bytes.
    pub bytes: u64,
    /// One-way elapsed time, seconds.
    pub elapsed_s: f64,
    /// Per-stage busy times.
    pub stages: Vec<StageBusy>,
}

impl Breakdown {
    /// The stage with the largest busy time — the bottleneck the paper
    /// hunts per configuration.
    pub fn bottleneck(&self) -> &StageBusy {
        self.stages
            .iter()
            .max_by(|a, b| a.busy.cmp(&b.busy))
            .expect("at least one stage")
    }

    /// Busy share of `stage` relative to the elapsed time.
    pub fn share(&self, stage: &str) -> f64 {
        let busy = self
            .stages
            .iter()
            .find(|s| s.stage.starts_with(stage))
            .map_or(SimDuration::ZERO, |s| s.busy);
        busy.as_secs_f64() / self.elapsed_s
    }

    /// Render as an aligned text table with utilization bars
    /// (delegates to [`tracelab::export::breakdown_table`]).
    pub fn to_table(&self) -> String {
        let header = format!(
            "{} — {} bytes, one-way {:.1} us\n",
            self.name,
            self.bytes,
            secs_to_us(self.elapsed_s)
        );
        let rows: Vec<(String, f64, u64)> = self
            .stages
            .iter()
            .map(|s| (s.stage.clone(), s.busy.as_secs_f64(), s.bytes))
            .collect();
        header + &tracelab::export::breakdown_table(&rows, self.elapsed_s)
    }
}

/// Run one `bytes`-sized transfer of `lib` on `spec` under a
/// [`tracelab::Tracer`] and fold the recorded spans into every hardware
/// stage's busy time. Idle stages still appear (with zero busy time) —
/// the hardware pipeline is enumerated from the fabric shape, not from
/// the spans that happened to be recorded.
pub fn measure_breakdown(spec: &ClusterSpec, lib: &MpLib, bytes: u64) -> Breakdown {
    let mut eng = Fabric::engine(spec.clone());
    let tracer = Tracer::new();
    protosim::instrument(&mut eng, tracer.clone());
    let session = Session::establish(&mut eng.world, lib);
    let done = Rc::new(Cell::new(None));
    let d = Rc::clone(&done);
    session.send(
        &mut eng,
        0,
        bytes,
        Box::new(move |e| d.set(Some(e.now().as_secs_f64()))),
    );
    eng.run();
    let elapsed_s = done.get().expect("transfer never completed");

    // Every hardware track this fabric can exercise, in pipeline order.
    let fab = &eng.world;
    let mut tracks: Vec<u32> = Vec::new();
    for (h, host) in fab.hosts.iter().enumerate() {
        tracks.push(cpu_track(h));
        tracks.push(pci_track(h));
        for ch in 0..host.nics.len() {
            tracks.push(nic_track(h, ch));
        }
    }
    for ch in 0..fab.wires.len() {
        tracks.push(wire_track(ch, 0));
        tracks.push(wire_track(ch, 1));
    }

    // The tracer's registry is exact (it survives ring-buffer wrap), so
    // summing span time per track reproduces each resource's busy time.
    let mut by_track: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for t in tracer.stage_totals() {
        let e = by_track.entry(t.track).or_insert((0, 0));
        e.0 += t.busy_ns;
        e.1 += t.bytes;
    }
    let stages = tracks
        .into_iter()
        .map(|track| {
            let (busy_ns, served) = by_track.get(&track).copied().unwrap_or((0, 0));
            StageBusy {
                stage: track_label(track),
                busy: SimDuration::from_nanos(busy_ns),
                bytes: served,
            }
        })
        .collect();
    Breakdown {
        name: lib.name().to_string(),
        bytes,
        elapsed_s,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_ga620, pcs_myrinet};
    use mpsim::libs::{mpich, raw_gm, raw_tcp, MpichConfig};
    use protosim::RecvMode;
    use simcore::units::{kib, mib};

    #[test]
    fn no_stage_exceeds_elapsed_time() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(1));
        for s in &b.stages {
            assert!(
                s.busy.as_secs_f64() <= b.elapsed_s * 1.0001,
                "{} busy {} > elapsed {}",
                s.stage,
                s.busy.as_secs_f64(),
                b.elapsed_s
            );
        }
    }

    #[test]
    fn one_way_transfer_uses_one_wire_direction() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(1));
        let fwd = b.stages.iter().find(|s| s.stage == "wire0 ->").unwrap();
        let rev = b.stages.iter().find(|s| s.stage == "wire0 <-").unwrap();
        assert!(fwd.bytes > mib(1), "payload + headers crossed forward");
        assert_eq!(rev.bytes, 0, "nothing flowed backwards");
    }

    #[test]
    fn ga620_bottleneck_is_the_nic_engine() {
        // The calibrated fig-1 story: the GA620's per-frame firmware cost
        // caps raw TCP, not the wire or the CPU.
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(4));
        assert!(b.bottleneck().stage.contains("nic"), "{}", b.to_table());
        assert!(b.share("host0 nic") > 0.8, "{}", b.to_table());
    }

    #[test]
    fn mpich_burns_more_receiver_cpu_than_raw_tcp() {
        // The p4 drain memcpy is receiver-side CPU time.
        let raw = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), mib(4));
        let mpich = measure_breakdown(&pcs_ga620(), &mpich(MpichConfig::tuned()), mib(4));
        let cpu = |b: &Breakdown| {
            b.stages
                .iter()
                .find(|s| s.stage == "host1 cpu")
                .unwrap()
                .busy
                .as_secs_f64()
        };
        assert!(
            cpu(&mpich) > 1.5 * cpu(&raw),
            "mpich rx cpu {} vs raw {}",
            cpu(&mpich),
            cpu(&raw)
        );
    }

    #[test]
    fn gm_bottleneck_is_the_card_not_the_host() {
        // OS bypass: the PCI DMA engine and the 66 MHz LANai are nearly
        // co-saturated (the fig-4 calibration); the host CPU does almost
        // nothing and the wire has headroom — exactly the §5 picture.
        let b = measure_breakdown(&pcs_myrinet(), &raw_gm(RecvMode::Polling), mib(4));
        let hot = b.bottleneck();
        assert!(
            hot.stage.contains("nic") || hot.stage.contains("pci"),
            "{}",
            b.to_table()
        );
        assert!(b.share("host0 cpu") < 0.10, "{}", b.to_table());
        assert!(b.share("wire0 ->") < 0.80, "{}", b.to_table());
    }

    #[test]
    fn table_renders_every_stage() {
        let b = measure_breakdown(&pcs_ga620(), &raw_tcp(kib(512)), 100_000);
        let t = b.to_table();
        assert!(t.contains("host0 cpu"));
        assert!(t.contains("wire0 ->"));
        assert!(t.contains('%'));
    }
}
