//! Application scaling predictions from measured signatures.
//!
//! The paper's opening claim: "The main limiting factor in most systems
//! is the inter-processor communication rate. This limits the efficient
//! use of the processing power available, and the ability of applications
//! to scale to large numbers of processors" (§1). This module turns a
//! measured NetPIPE signature into that limit, for a bulk-synchronous
//! halo-exchange application (the 3-D stencil shape of the codes the
//! paper's community ran):
//!
//! * strong scaling: a fixed global problem split over `P` nodes;
//! * per step each node computes over its subdomain, then exchanges halos
//!   with ~6 neighbours; halo bytes shrink as the subdomain's surface,
//!   `(N/P)^(2/3)`;
//! * communication cost is read off the *measured* signature
//!   (`mbps_at`, `latency_us`), so every library pathology — rendezvous
//!   dips, window flattening, daemon routing — flows into the prediction;
//! * the library's overlap efficiency (see [`crate::overlap`]) hides the
//!   overlappable fraction of communication behind the computation.

use netpipe::Signature;
use simcore::units;

/// A bulk-synchronous halo-exchange application.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Total serial compute time of the whole problem per step, seconds.
    pub serial_compute_s: f64,
    /// Total problem size in "cells"; halo per node = `cells_per_node^(2/3)
    /// * bytes_per_cell * neighbours`.
    pub cells: f64,
    /// Bytes exchanged per halo cell.
    pub bytes_per_cell: f64,
    /// Neighbours each node exchanges with per step (6 for a 3-D stencil).
    pub neighbours: u32,
}

impl AppModel {
    /// A mid-size 3-D stencil: 512³ cells of 8 bytes, 0.5 s serial step.
    pub fn stencil_3d() -> AppModel {
        AppModel {
            serial_compute_s: 0.5,
            cells: 512.0 * 512.0 * 512.0,
            bytes_per_cell: 8.0,
            neighbours: 6,
        }
    }

    /// Halo bytes each node sends per step with `p` nodes.
    pub fn halo_bytes(&self, p: u32) -> u64 {
        let per_node = self.cells / f64::from(p);
        (per_node.powf(2.0 / 3.0) * self.bytes_per_cell) as u64 * u64::from(self.neighbours)
    }
}

/// One predicted strong-scaling point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: u32,
    /// Predicted step time, seconds.
    pub step_s: f64,
    /// Parallel efficiency: `T(1) / (P * T(P))`.
    pub efficiency: f64,
}

/// Predict strong scaling of `app` on a fabric whose point-to-point
/// behaviour is `sig`, with the library hiding `overlap_eff` of the
/// communication behind computation.
pub fn strong_scaling(
    sig: &Signature,
    overlap_eff: f64,
    app: &AppModel,
    nodes: &[u32],
) -> Vec<ScalingPoint> {
    assert!((0.0..=1.0).contains(&overlap_eff), "efficiency in [0,1]");
    let t1 = app.serial_compute_s;
    nodes
        .iter()
        .map(|&p| {
            let compute = app.serial_compute_s / f64::from(p);
            let comm = if p == 1 {
                0.0
            } else {
                let bytes = app.halo_bytes(p).max(1);
                let mbps = sig.mbps_at(bytes).max(1e-6);
                let wire_s = bytes as f64 / units::mbps_to_bytes_per_sec(mbps);
                f64::from(app.neighbours) * units::us_to_secs(sig.latency_us) + wire_s
            };
            // The overlappable fraction hides behind compute; the rest
            // serializes after it.
            let hidden = (comm * overlap_eff).min(compute.max(0.0));
            let step_s = compute.max(hidden) + (comm - hidden);
            ScalingPoint {
                nodes: p,
                step_s,
                efficiency: t1 / (f64::from(p) * step_s),
            }
        })
        .collect()
}

/// Markdown table of scaling predictions for several libraries.
pub fn to_markdown(rows: &[(String, Vec<ScalingPoint>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str("| library |");
    for p in &rows[0].1 {
        let _ = write!(out, " P={} |", p.nodes);
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &rows[0].1 {
        out.push_str("---:|");
    }
    out.push('\n');
    for (name, points) in rows {
        let _ = write!(out, "| {name} |");
        for p in points {
            let _ = write!(out, " {:.0}% |", p.efficiency * 100.0);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_experiment;
    use netpipe::RunOptions;

    fn measured(lib_prefix: &str) -> Signature {
        let exp = crate::presets::fig1();
        let res = run_experiment(&exp, &RunOptions::quick(1 << 20));
        res.by_prefix(lib_prefix).unwrap().clone()
    }

    #[test]
    fn efficiency_starts_at_one_and_decays() {
        let sig = measured("raw TCP");
        let pts = strong_scaling(&sig, 0.0, &AppModel::stencil_3d(), &[1, 2, 8, 64, 512]);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-9,
                "efficiency must decay: {pts:?}"
            );
        }
        // At very large P the fixed latencies dominate the shrinking work.
        assert!(pts.last().unwrap().efficiency < 0.8);
    }

    #[test]
    fn faster_library_scales_further() {
        let tcp = measured("raw TCP");
        let pvm = measured("PVM");
        let app = AppModel::stencil_3d();
        let nodes = [16u32, 64, 256];
        let e_tcp = strong_scaling(&tcp, 0.0, &app, &nodes);
        let e_pvm = strong_scaling(&pvm, 0.0, &app, &nodes);
        for (a, b) in e_tcp.iter().zip(&e_pvm) {
            assert!(
                a.efficiency >= b.efficiency,
                "raw TCP must outscale PVM at P={}",
                a.nodes
            );
        }
    }

    #[test]
    fn overlap_buys_efficiency_when_comm_matters() {
        let sig = measured("MPICH");
        let app = AppModel::stencil_3d();
        let none = strong_scaling(&sig, 0.0, &app, &[256]);
        let full = strong_scaling(&sig, 1.0, &app, &[256]);
        assert!(
            full[0].efficiency > none[0].efficiency * 1.05,
            "overlap {} vs none {}",
            full[0].efficiency,
            none[0].efficiency
        );
    }

    #[test]
    fn halo_shrinks_with_node_count() {
        let app = AppModel::stencil_3d();
        assert!(app.halo_bytes(8) < app.halo_bytes(2));
        assert!(app.halo_bytes(1) > 0);
    }

    #[test]
    fn analytic_model_agrees_with_multinode_simulation() {
        // Cross-validation: the closed-form scaling prediction vs an
        // actual N-node discrete-event simulation of the same ring halo
        // exchange (protosim::multinode). The two are independent code
        // paths; they must agree on step time within a factor ~1.5 and on
        // the qualitative trend.
        use hwmodel::presets::pcs_ga620;
        use simcore::SimDuration;

        let spec = pcs_ga620();
        let sig = measured("raw TCP");
        // A ring application: 2 neighbours, fixed 256 kB halos (so the
        // analytic halo term is exact, not a surface-law estimate).
        let serial = 0.2f64;
        for p in [4u32, 8] {
            let halo = 256 * 1024u64;
            let compute = serial / f64::from(p);
            // Analytic: compute + 2 * (lat + bytes/bw), no overlap.
            let comm = 2.0 * (sig.latency_us * 1e-6)
                + 2.0 * (halo as f64 * 8.0 / (sig.mbps_at(halo) * 1e6));
            let model_step = compute + comm;
            // Simulated on the N-node fabric.
            let sim_step = protosim::ring_halo_steps(
                &spec,
                p as usize,
                halo,
                SimDuration::from_secs_f64(compute),
                1,
            );
            let ratio = sim_step / model_step;
            assert!(
                (0.55..1.6).contains(&ratio),
                "P={p}: sim {sim_step:.4}s vs model {model_step:.4}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn markdown_renders_all_libraries() {
        let sig = measured("raw TCP");
        let pts = strong_scaling(&sig, 0.5, &AppModel::stencil_3d(), &[2, 4]);
        let md = to_markdown(&[("x".to_string(), pts)]);
        assert!(md.contains("P=2"));
        assert!(md.contains("| x |"));
    }
}
