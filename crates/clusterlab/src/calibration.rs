//! Machine-checked reproduction criteria.
//!
//! Matching a 2002 testbed's absolute Mbps is not the goal (our substrate
//! is a simulator, not their machines); matching the paper's *shape* is:
//! who wins, by roughly what factor, where the dips fall, what each
//! tuning knob buys. Each figure/table has a list of [`Check`]s encoding
//! those claims; `cargo test -p clusterlab` evaluates all of them.

use netpipe::Signature;

use crate::sweep::ExperimentResult;

/// One verifiable claim about a measured experiment.
#[derive(Debug, Clone)]
pub enum Check {
    /// `lib`'s peak throughput lies in `[lo, hi]` Mbps.
    MaxBand {
        /// Library name prefix.
        lib: &'static str,
        /// Lower bound, Mbps.
        lo: f64,
        /// Upper bound, Mbps.
        hi: f64,
    },
    /// `lib`'s small-message latency lies in `[lo, hi]` µs.
    LatencyBand {
        /// Library name prefix.
        lib: &'static str,
        /// Lower bound, µs.
        lo: f64,
        /// Upper bound, µs.
        hi: f64,
    },
    /// `lib`'s peak is `lo..=hi` times `vs`'s peak.
    RatioBand {
        /// Library name prefix (numerator).
        lib: &'static str,
        /// Reference name prefix (denominator).
        vs: &'static str,
        /// Lower ratio bound.
        lo: f64,
        /// Upper ratio bound.
        hi: f64,
    },
    /// `lib` shows a dip at `threshold`: throughput just above is at most
    /// `max_ratio` of just below.
    Dip {
        /// Library name prefix.
        lib: &'static str,
        /// Threshold in bytes.
        threshold: u64,
        /// Maximum above/below ratio that still counts as a dip.
        max_ratio: f64,
    },
    /// `lib` shows **no** dip at `threshold` (ratio at least `min_ratio`).
    NoDip {
        /// Library name prefix.
        lib: &'static str,
        /// Threshold in bytes.
        threshold: u64,
        /// Minimum above/below ratio.
        min_ratio: f64,
    },
    /// `lib`'s peak exceeds `vs`'s peak.
    FasterThan {
        /// Faster library prefix.
        lib: &'static str,
        /// Slower library prefix.
        vs: &'static str,
    },
}

/// The outcome of evaluating one check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Human-readable description of the claim.
    pub desc: String,
    /// Whether the measurement satisfies it.
    pub pass: bool,
    /// The measured value the claim was tested against.
    pub measured: f64,
}

fn find<'a>(res: &'a ExperimentResult, prefix: &str) -> &'a Signature {
    res.by_prefix(prefix)
        .unwrap_or_else(|| panic!("{}: no signature named '{prefix}*'", res.id))
}

/// Evaluate `checks` against a measured experiment.
pub fn evaluate(res: &ExperimentResult, checks: &[Check]) -> Vec<CheckResult> {
    checks
        .iter()
        .map(|c| match *c {
            Check::MaxBand { lib, lo, hi } => {
                // The paper's "maximum throughput" quotes are the
                // large-message plateau; use the 8 MB point so the
                // pre-flattening hump of window-limited configurations
                // does not mask a collapse.
                let m = find(res, lib).final_mbps();
                CheckResult {
                    desc: format!("{}: {lib} plateau in [{lo:.0}, {hi:.0}] Mbps", res.id),
                    pass: (lo..=hi).contains(&m),
                    measured: m,
                }
            }
            Check::LatencyBand { lib, lo, hi } => {
                let m = find(res, lib).latency_us;
                CheckResult {
                    desc: format!("{}: {lib} latency in [{lo:.0}, {hi:.0}] us", res.id),
                    pass: (lo..=hi).contains(&m),
                    measured: m,
                }
            }
            Check::RatioBand { lib, vs, lo, hi } => {
                let a = find(res, lib).final_mbps();
                let b = find(res, vs).final_mbps();
                let r = if b > 0.0 { a / b } else { f64::NAN };
                CheckResult {
                    desc: format!("{}: {lib}/{vs} peak ratio in [{lo:.2}, {hi:.2}]", res.id),
                    pass: (lo..=hi).contains(&r),
                    measured: r,
                }
            }
            Check::Dip {
                lib,
                threshold,
                max_ratio,
            } => {
                let r = find(res, lib).dip_ratio(threshold);
                CheckResult {
                    desc: format!(
                        "{}: {lib} dips at {threshold} B (ratio <= {max_ratio:.2})",
                        res.id
                    ),
                    pass: r <= max_ratio,
                    measured: r,
                }
            }
            Check::NoDip {
                lib,
                threshold,
                min_ratio,
            } => {
                let r = find(res, lib).dip_ratio(threshold);
                CheckResult {
                    desc: format!(
                        "{}: {lib} smooth at {threshold} B (ratio >= {min_ratio:.2})",
                        res.id
                    ),
                    pass: r >= min_ratio,
                    measured: r,
                }
            }
            Check::FasterThan { lib, vs } => {
                let a = find(res, lib).final_mbps();
                let b = find(res, vs).final_mbps();
                CheckResult {
                    desc: format!("{}: {lib} outruns {vs}", res.id),
                    pass: a > b,
                    measured: a / b,
                }
            }
        })
        .collect()
}

/// The reproduction criteria for each experiment id.
pub fn checks_for(id: &str) -> Vec<Check> {
    use Check::*;
    match id {
        "fig1" => vec![
            MaxBand {
                lib: "raw TCP",
                lo: 480.0,
                hi: 620.0,
            },
            LatencyBand {
                lib: "raw TCP",
                lo: 95.0,
                hi: 145.0,
            },
            // "MPICH and PVM currently suffer about a 25% loss" (§7).
            RatioBand {
                lib: "MPICH",
                vs: "raw TCP",
                lo: 0.60,
                hi: 0.84,
            },
            RatioBand {
                lib: "PVM",
                vs: "raw TCP",
                lo: 0.60,
                hi: 0.85,
            },
            // "most message-passing libraries can deliver performance
            // close to raw TCP levels" (§7).
            RatioBand {
                lib: "LAM/MPI",
                vs: "raw TCP",
                lo: 0.85,
                hi: 1.01,
            },
            RatioBand {
                lib: "MPI/Pro",
                vs: "raw TCP",
                lo: 0.88,
                hi: 1.01,
            },
            RatioBand {
                lib: "MP_Lite",
                vs: "raw TCP",
                lo: 0.93,
                hi: 1.01,
            },
            RatioBand {
                lib: "TCGMSG",
                vs: "raw TCP",
                lo: 0.90,
                hi: 1.01,
            },
            // "The most noticeable feature is the sharp dip at 128 kB" (§4.1).
            Dip {
                lib: "MPICH",
                threshold: 128 * 1024,
                max_ratio: 0.93,
            },
            NoDip {
                lib: "MP_Lite",
                threshold: 128 * 1024,
                min_ratio: 0.95,
            },
        ],
        "fig2" => vec![
            MaxBand {
                lib: "raw TCP",
                lo: 480.0,
                hi: 620.0,
            },
            // "Only MP_Lite and MPICH worked well" (§7).
            RatioBand {
                lib: "MP_Lite",
                vs: "raw TCP",
                lo: 0.90,
                hi: 1.01,
            },
            RatioBand {
                lib: "MPICH",
                vs: "raw TCP",
                lo: 0.55,
                hi: 0.85,
            },
            // "many message-passing libraries reaching only 250-280" / 50% loss.
            RatioBand {
                lib: "LAM/MPI",
                vs: "raw TCP",
                lo: 0.35,
                hi: 0.65,
            },
            RatioBand {
                lib: "MPI/Pro",
                vs: "raw TCP",
                lo: 0.35,
                hi: 0.65,
            },
            RatioBand {
                lib: "TCGMSG",
                vs: "raw TCP",
                lo: 0.25,
                hi: 0.60,
            },
            RatioBand {
                lib: "PVM",
                vs: "raw TCP",
                lo: 0.22,
                hi: 0.55,
            },
            FasterThan {
                lib: "MP_Lite",
                vs: "LAM/MPI",
            },
            FasterThan {
                lib: "MPICH",
                vs: "PVM",
            },
        ],
        "fig3" => vec![
            MaxBand {
                lib: "raw TCP",
                lo: 820.0,
                hi: 1000.0,
            },
            LatencyBand {
                lib: "raw TCP",
                lo: 38.0,
                hi: 60.0,
            },
            RatioBand {
                lib: "MP_Lite",
                vs: "raw TCP",
                lo: 0.92,
                hi: 1.01,
            },
            // MPICH/LAM lose 25-30% (§4.1, §4.2).
            RatioBand {
                lib: "MPICH",
                vs: "raw TCP",
                lo: 0.58,
                hi: 0.85,
            },
            RatioBand {
                lib: "LAM/MPI",
                vs: "raw TCP",
                lo: 0.58,
                hi: 0.85,
            },
            // TCGMSG capped by its hardwired 32 kB buffer (§7).
            RatioBand {
                lib: "TCGMSG",
                vs: "raw TCP",
                lo: 0.50,
                hi: 0.78,
            },
            RatioBand {
                lib: "PVM",
                vs: "raw TCP",
                lo: 0.40,
                hi: 0.70,
            },
        ],
        "fig4" => vec![
            MaxBand {
                lib: "raw GM",
                lo: 700.0,
                hi: 900.0,
            },
            LatencyBand {
                lib: "raw GM",
                lo: 11.0,
                hi: 21.0,
            },
            // "losing only a few percent off the raw GM performance" (§5).
            RatioBand {
                lib: "MPICH-GM",
                vs: "raw GM",
                lo: 0.90,
                hi: 1.01,
            },
            RatioBand {
                lib: "MPI/Pro-GM",
                vs: "raw GM",
                lo: 0.88,
                hi: 1.01,
            },
            // IP-GM: 48 us latency, GigE-TCP-like throughput (§5).
            LatencyBand {
                lib: "IP-GM",
                lo: 38.0,
                hi: 60.0,
            },
            MaxBand {
                lib: "IP-GM",
                lo: 450.0,
                hi: 750.0,
            },
            FasterThan {
                lib: "raw GM",
                vs: "IP-GM",
            },
            FasterThan {
                lib: "raw GM",
                vs: "raw TCP",
            },
        ],
        "fig5" => vec![
            // Giganet: ~800 Mbps; 10 us for the lean libraries, 42 for MPI/Pro.
            MaxBand {
                lib: "MVICH",
                lo: 700.0,
                hi: 900.0,
            },
            MaxBand {
                lib: "MP_Lite-VIA",
                lo: 700.0,
                hi: 900.0,
            },
            LatencyBand {
                lib: "MVICH",
                lo: 6.0,
                hi: 15.0,
            },
            LatencyBand {
                lib: "MP_Lite-VIA",
                lo: 6.0,
                hi: 15.0,
            },
            LatencyBand {
                lib: "MPI/Pro-VIA",
                lo: 32.0,
                hi: 52.0,
            },
            FasterThan {
                lib: "MVICH",
                vs: "MPI/Pro-VIA",
            },
        ],
        "t1_tuning" => vec![
            // MPICH: 75 -> ~400 Mbps, "a 5-fold increase" (§4.1).
            MaxBand {
                lib: "MPICH (P4_SOCKBUFSIZE=32k)",
                lo: 45.0,
                hi: 115.0,
            },
            MaxBand {
                lib: "MPICH (P4_SOCKBUFSIZE=256k)",
                lo: 330.0,
                hi: 480.0,
            },
            RatioBand {
                lib: "MPICH (P4_SOCKBUFSIZE=256k)",
                vs: "MPICH (P4_SOCKBUFSIZE=32k)",
                lo: 3.5,
                hi: 8.0,
            },
            // PVM: ~90 daemon-routed -> 330 direct -> 415 in-place (§4.5).
            MaxBand {
                lib: "PVM (via pvmd)",
                lo: 55.0,
                hi: 130.0,
            },
            MaxBand {
                lib: "PVM (direct)",
                lo: 260.0,
                hi: 400.0,
            },
            MaxBand {
                lib: "PVM (direct+InPlace)",
                lo: 340.0,
                hi: 470.0,
            },
            FasterThan {
                lib: "PVM (direct)",
                vs: "PVM (via pvmd)",
            },
            FasterThan {
                lib: "PVM (direct+InPlace)",
                vs: "PVM (direct)",
            },
            // LAM: 350 without -O, near-TCP with it, 260/245us via lamd (§4.2).
            MaxBand {
                lib: "LAM/MPI (default)",
                lo: 280.0,
                hi: 430.0,
            },
            MaxBand {
                lib: "LAM/MPI (-lamd)",
                lo: 190.0,
                hi: 330.0,
            },
            LatencyBand {
                lib: "LAM/MPI (-lamd)",
                lo: 190.0,
                hi: 300.0,
            },
            FasterThan {
                lib: "LAM/MPI (-O)",
                vs: "LAM/MPI (default)",
            },
            // TCGMSG on the DS20s: 600 -> 900 by recompiling the buffer (§7).
            MaxBand {
                lib: "TCGMSG (SR_SOCK_BUF_SIZE=32k)",
                lo: 520.0,
                hi: 700.0,
            },
            MaxBand {
                lib: "TCGMSG (SR_SOCK_BUF_SIZE=128k)",
                lo: 800.0,
                hi: 1000.0,
            },
        ],
        "t2_latency" => vec![
            LatencyBand {
                lib: "raw TCP",
                lo: 95.0,
                hi: 145.0,
            },
            LatencyBand {
                lib: "raw GM",
                lo: 11.0,
                hi: 21.0,
            },
            LatencyBand {
                lib: "IP-GM",
                lo: 38.0,
                hi: 60.0,
            },
            LatencyBand {
                lib: "MP_Lite-VIA",
                lo: 6.0,
                hi: 15.0,
            },
            LatencyBand {
                lib: "MPI/Pro-VIA",
                lo: 32.0,
                hi: 52.0,
            },
            LatencyBand {
                lib: "MVICH",
                lo: 32.0,
                hi: 52.0,
            },
            LatencyBand {
                lib: "LAM/MPI (-lamd)",
                lo: 190.0,
                hi: 300.0,
            },
        ],
        "t3_rendezvous" => vec![
            Dip {
                lib: "MPICH",
                threshold: 128 * 1024,
                max_ratio: 0.93,
            },
            Dip {
                lib: "MPI/Pro (tcp_long=32k)",
                threshold: 32 * 1024,
                max_ratio: 0.95,
            },
            NoDip {
                lib: "MPI/Pro (tcp_long=128k)",
                threshold: 32 * 1024,
                min_ratio: 0.96,
            },
            // §6.1: RPUT + via_long=64k is "vital … to get good performance".
            FasterThan {
                lib: "MVICH (via_long=64k, RPUT)",
                vs: "MVICH (via_long=16k)",
            },
            Dip {
                lib: "MVICH (via_long=16k)",
                threshold: 16 * 1024,
                max_ratio: 0.985,
            },
        ],
        "t4_kernel_driver" => vec![
            LatencyBand {
                lib: "raw TCP",
                lo: 95.0,
                hi: 145.0,
            },
            MaxBand {
                lib: "raw TCP",
                lo: 480.0,
                hi: 620.0,
            },
        ],
        other => panic!("no checks defined for experiment '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::sweep::run_experiment;
    use netpipe::RunOptions;

    fn full_opts() -> RunOptions {
        RunOptions {
            schedule: netpipe::ScheduleOptions {
                max: 8 * 1024 * 1024,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn assert_all_pass(id: &str, exp: crate::presets::Experiment) {
        let res = run_experiment(&exp, &full_opts());
        let results = evaluate(&res, &checks_for(id));
        let failures: Vec<String> = results
            .iter()
            .filter(|r| !r.pass)
            .map(|r| format!("{} (measured {:.2})", r.desc, r.measured))
            .collect();
        assert!(
            failures.is_empty(),
            "{id}: {} of {} checks failed:\n{}",
            failures.len(),
            results.len(),
            failures.join("\n")
        );
    }

    #[test]
    fn fig1_shape_reproduced() {
        assert_all_pass("fig1", presets::fig1());
    }

    #[test]
    fn fig2_shape_reproduced() {
        assert_all_pass("fig2", presets::fig2());
    }

    #[test]
    fn fig3_shape_reproduced() {
        assert_all_pass("fig3", presets::fig3());
    }

    #[test]
    fn fig4_shape_reproduced() {
        assert_all_pass("fig4", presets::fig4());
    }

    #[test]
    fn fig5_shape_reproduced() {
        assert_all_pass("fig5", presets::fig5());
    }

    #[test]
    fn t1_tuning_shape_reproduced() {
        assert_all_pass("t1_tuning", presets::t1_tuning());
    }

    #[test]
    fn t2_latency_shape_reproduced() {
        assert_all_pass("t2_latency", presets::t2_latency());
    }

    #[test]
    fn t3_rendezvous_shape_reproduced() {
        assert_all_pass("t3_rendezvous", presets::t3_rendezvous());
    }

    #[test]
    fn t4_kernel_driver_shape_reproduced() {
        assert_all_pass("t4_kernel_driver", presets::t4_kernel_driver());
    }
}
