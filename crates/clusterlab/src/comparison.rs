//! Paper-vs-measured reporting.

use std::fmt::Write as _;

use netpipe::Signature;

use crate::presets::Experiment;
use crate::sweep::ExperimentResult;

/// One row of a paper-vs-measured table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Library name.
    pub name: String,
    /// Paper's throughput, Mbps (if quoted).
    pub paper_mbps: Option<f64>,
    /// Measured peak throughput, Mbps.
    pub measured_mbps: f64,
    /// Paper's latency, µs (if quoted).
    pub paper_lat_us: Option<f64>,
    /// Measured latency, µs.
    pub measured_lat_us: f64,
    /// Source note.
    pub note: &'static str,
}

impl ComparisonRow {
    /// measured/paper throughput ratio (NaN when the paper gives none).
    pub fn mbps_ratio(&self) -> f64 {
        match self.paper_mbps {
            Some(p) if p > 0.0 => self.measured_mbps / p,
            _ => f64::NAN,
        }
    }
}

/// Join an experiment preset with its measurements.
pub fn compare(exp: &Experiment, res: &ExperimentResult) -> Vec<ComparisonRow> {
    assert_eq!(exp.entries.len(), res.signatures.len(), "mismatched sweep");
    exp.entries
        .iter()
        .zip(&res.signatures)
        .map(|(e, s)| ComparisonRow {
            name: s.name.clone(),
            paper_mbps: e.paper.max_mbps,
            measured_mbps: s.max_mbps,
            paper_lat_us: e.paper.latency_us,
            measured_lat_us: s.latency_us,
            note: e.paper.note,
        })
        .collect()
}

/// Render the comparison as a markdown table (the EXPERIMENTS.md format).
pub fn to_markdown(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    out.push_str(
        "| library | paper Mbps | measured Mbps | ratio | paper lat (us) | measured lat (us) | source |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---|\n");
    for r in rows {
        let paper_m = r.paper_mbps.map_or("-".to_string(), |v| format!("{v:.0}"));
        let ratio = if r.mbps_ratio().is_nan() {
            "-".to_string()
        } else {
            format!("{:.2}", r.mbps_ratio())
        };
        let paper_l = r
            .paper_lat_us
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        let _ = writeln!(
            out,
            "| {} | {} | {:.0} | {} | {} | {:.1} | {} |",
            r.name, paper_m, r.measured_mbps, ratio, paper_l, r.measured_lat_us, r.note
        );
    }
    out
}

/// A one-line digest of a signature, used by the figure binaries.
pub fn digest(sig: &Signature) -> String {
    format!(
        "{:<42} lat {:>7.1} us   peak {:>7.0} Mbps   at-max {:>7.0} Mbps",
        sig.name,
        sig.latency_us,
        sig.max_mbps,
        sig.final_mbps()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::fig1;
    use crate::sweep::run_experiment;
    use netpipe::RunOptions;

    #[test]
    fn comparison_rows_align_with_entries() {
        let exp = fig1();
        let res = run_experiment(&exp, &RunOptions::quick(1 << 15));
        let rows = compare(&exp, &res);
        assert_eq!(rows.len(), exp.entries.len());
        assert_eq!(rows[0].name, "raw TCP");
        assert!(rows[0].paper_mbps.is_some());
        assert!(rows[0].measured_mbps > 0.0);
    }

    #[test]
    fn markdown_table_has_all_rows() {
        let exp = fig1();
        let res = run_experiment(&exp, &RunOptions::quick(1 << 15));
        let md = to_markdown(exp.title, &compare(&exp, &res));
        assert_eq!(md.lines().count(), 3 + 1 + exp.entries.len());
        assert!(md.contains("| raw TCP |"));
    }

    #[test]
    fn ratio_handles_missing_paper_value() {
        let row = ComparisonRow {
            name: "x".into(),
            paper_mbps: None,
            measured_mbps: 100.0,
            paper_lat_us: None,
            measured_lat_us: 1.0,
            note: "",
        };
        assert!(row.mbps_ratio().is_nan());
    }
}
