//! The paper's message-passing libraries (§3), one constructor each.
//!
//! Every constructor takes the library's tuning knobs — the same knobs the
//! paper turns — and returns an [`MpLib`] binding a [`LibProfile`] to a
//! transport. Defaults match the out-of-the-box settings the paper
//! criticizes; `tuned()` helpers apply the paper's optimizations.

use hwmodel::KernelModel;
use protosim::{RawParams, RecvMode, TcpParams};
use simcore::units::kib;

use crate::profile::{FragmentCfg, LibProfile, MpLib, Progress, Routing, Transport};

// ---------------------------------------------------------------------------
// Raw transport references
// ---------------------------------------------------------------------------

/// Raw TCP with socket buffers of `bufs` bytes — the heavy black reference
/// line of figs. 1–3 ("These TCP curves provide the maximum performance
/// that each message-passing library strives for").
pub fn raw_tcp(bufs: u64) -> MpLib {
    MpLib {
        profile: LibProfile::raw("raw TCP"),
        transport: Transport::Tcp(TcpParams::with_bufs(bufs)),
    }
}

/// Raw GM in the given receive mode (fig. 4 reference).
pub fn raw_gm(mode: RecvMode) -> MpLib {
    MpLib {
        profile: LibProfile::raw("raw GM"),
        transport: Transport::Raw(RawParams::gm(mode)),
    }
}

/// IP over GM: the kernel TCP stack running across the Myrinet fabric
/// (fig. 4: "a latency of 48 µs … but otherwise offers similar
/// performance" to GigE TCP). Instantiate on the Myrinet cluster spec.
pub fn ip_over_gm(bufs: u64) -> MpLib {
    MpLib {
        profile: LibProfile::raw("IP-GM (TCP over GM)"),
        transport: Transport::Tcp(TcpParams::with_bufs(bufs)),
    }
}

// ---------------------------------------------------------------------------
// MPICH / p4
// ---------------------------------------------------------------------------

/// MPICH 1.2.x tuning knobs (§3.1, §4.1).
#[derive(Debug, Clone)]
pub struct MpichConfig {
    /// `P4_SOCKBUFSIZE` — *the* vital parameter: default 32 kB collapses
    /// to ~75 Mbps; 256 kB recovers a five-fold improvement.
    pub p4_sockbufsize: u64,
    /// The rendezvous cutoff, 128 kB unless the source is edited
    /// (`mpid/ch2/chinit.c`).
    pub rendezvous: u64,
}

impl Default for MpichConfig {
    fn default() -> Self {
        MpichConfig {
            p4_sockbufsize: kib(32),
            rendezvous: kib(128),
        }
    }
}

impl MpichConfig {
    /// The paper's tuned configuration: `P4_SOCKBUFSIZE=256 kB`.
    pub fn tuned() -> Self {
        MpichConfig {
            p4_sockbufsize: kib(256),
            ..Default::default()
        }
    }
}

/// MPICH over p4/TCP. Mechanisms: p4's block-synchronous writes (exposing
/// the delayed-ACK pathology at small `P4_SOCKBUFSIZE`), the 128 kB
/// rendezvous handshake (the fig. 1 dip), and the receive-into-buffer
/// memcpy that costs 25–30 % on large messages (§7).
pub fn mpich(cfg: MpichConfig) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: format!("MPICH (P4_SOCKBUFSIZE={}k)", cfg.p4_sockbufsize / 1024),
            send_overhead_us: 3.0,
            recv_overhead_us: 2.0,
            send_copies: 0,
            recv_copies: 1,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(cfg.rendezvous),
            ctrl_bytes: 40,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams {
            sndbuf: cfg.p4_sockbufsize,
            rcvbuf: cfg.p4_sockbufsize,
            block_sync_writes: true,
        }),
    }
}

// ---------------------------------------------------------------------------
// LAM/MPI
// ---------------------------------------------------------------------------

/// LAM/MPI run modes (§3.2, §4.2).
#[derive(Debug, Clone, Default)]
pub struct LamConfig {
    /// `mpirun -O`: skip heterogeneous data conversion checks
    /// ("greatly improves performance" on homogeneous clusters).
    pub optimized_o: bool,
    /// `mpirun -lamd`: route through the lamd daemons for monitoring
    /// ("greatly reducing the performance": ~260 Mbps, 2x latency).
    pub use_lamd: bool,
}

impl LamConfig {
    /// The tuned homogeneous configuration (`-O`, client-to-client).
    pub fn tuned() -> Self {
        LamConfig {
            optimized_o: true,
            use_lamd: false,
        }
    }
}

/// LAM/MPI 6.5.x over TCP. Fixed internal socket buffers (not user
/// tunable — the 50 % TrendNet loss), a rendezvous dip at its 64 kB
/// short/long threshold, per-byte conversion checks without `-O`, and the
/// lamd relay mode.
pub fn lammpi(cfg: LamConfig) -> MpLib {
    let mode = match (cfg.optimized_o, cfg.use_lamd) {
        (_, true) => "-lamd",
        (true, false) => "-O",
        (false, false) => "default",
    };
    MpLib {
        profile: LibProfile {
            name: format!("LAM/MPI ({mode})"),
            send_overhead_us: 3.0,
            recv_overhead_us: 2.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: if cfg.optimized_o {
                f64::INFINITY
            } else {
                125e6
            },
            rendezvous_bytes: Some(kib(64)),
            ctrl_bytes: 40,
            fragment: if cfg.use_lamd {
                Some(FragmentCfg {
                    bytes: 8192,
                    per_frag_us: 50.0,
                    stop_and_wait: false,
                })
            } else {
                None
            },
            routing: if cfg.use_lamd {
                Routing::Daemon
            } else {
                Routing::Direct
            },
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams::with_bufs(kib(64))),
    }
}

// ---------------------------------------------------------------------------
// MPI/Pro
// ---------------------------------------------------------------------------

/// MPI/Pro tuning knobs (§3.3, §4.3).
#[derive(Debug, Clone)]
pub struct MpiProConfig {
    /// `tcp_long`: the TCP rendezvous threshold; default 32 kB dips,
    /// 128 kB "removes much of the dip".
    pub tcp_long: u64,
}

impl Default for MpiProConfig {
    fn default() -> Self {
        MpiProConfig { tcp_long: kib(32) }
    }
}

impl MpiProConfig {
    /// The tuned configuration: `tcp_long = 128 kB`.
    pub fn tuned() -> Self {
        MpiProConfig { tcp_long: kib(128) }
    }
}

/// MPI/Pro over TCP: a commercial MPI with a separate message-progress
/// thread (small per-message handoff cost; the thread keeps data flowing
/// in real applications), fixed internal socket buffers (the TrendNet
/// flattening at ~250 Mbps — `tcp_buffers` "did not help"), no extra
/// copies ("within 5 % of raw TCP" when tuned).
pub fn mpipro(cfg: MpiProConfig) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: format!("MPI/Pro (tcp_long={}k)", cfg.tcp_long / 1024),
            send_overhead_us: 6.0,
            recv_overhead_us: 5.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(cfg.tcp_long),
            ctrl_bytes: 40,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Thread,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams::with_bufs(kib(64))),
    }
}

// ---------------------------------------------------------------------------
// MP_Lite
// ---------------------------------------------------------------------------

/// MP_Lite 2.3 over TCP (§3.4): the authors' lightweight library. SIGIO
/// interrupt-driven progress, socket buffers raised to the system maximum
/// (its only tuning is `net.core.{r,w}mem_max`), no extra copies, no
/// rendezvous — it tracks raw TCP "to within a few percent".
pub fn mp_lite(kernel: &KernelModel) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: "MP_Lite".to_string(),
            send_overhead_us: 1.5,
            recv_overhead_us: 1.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: None,
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Sigio,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams::with_bufs(kernel.sockbuf_max)),
    }
}

/// MP_Lite with channel bonding across `channels` NICs (the companion
/// MP_Lite paper's headline feature: stripe each large message across
/// parallel Gigabit Ethernet cards). Requires a cluster spec with
/// `nic_count >= channels`; the shared 32-bit PCI bus is then the next
/// bottleneck, so two cards buy well under 2x.
pub fn mp_lite_bonded(kernel: &KernelModel, channels: u32) -> MpLib {
    assert!(channels >= 1);
    let mut lib = mp_lite(kernel);
    lib.profile.name = format!("MP_Lite ({channels}-way bonded)");
    lib.profile.bonded_channels = channels;
    lib
}

// ---------------------------------------------------------------------------
// PVM
// ---------------------------------------------------------------------------

/// PVM 3.4 tuning knobs (§3.5, §4.5).
#[derive(Debug, Clone, Default)]
pub struct PvmConfig {
    /// `pvm_setopt(PvmRoute, PvmRouteDirect)`: bypass the pvmd daemons
    /// (default routes everything through them at ~90 Mbps).
    pub direct_route: bool,
    /// `pvm_initsend(PvmDataInPlace)`: skip the send-side packing copy.
    pub in_place: bool,
}

impl PvmConfig {
    /// Fully tuned: direct routing + in-place packing (≈415 Mbps on the
    /// GA620s, "similar to MPICH").
    pub fn tuned() -> Self {
        PvmConfig {
            direct_route: true,
            in_place: true,
        }
    }
}

/// PVM 3.4: 4080-byte fragments, daemon routing by default (with the
/// stop-and-wait pvmd protocol), a packing copy each side unless
/// `PvmDataInPlace` (receive always unpacks through a buffer).
pub fn pvm(cfg: PvmConfig) -> MpLib {
    let mode = match (cfg.direct_route, cfg.in_place) {
        (false, _) => "via pvmd",
        (true, false) => "direct",
        (true, true) => "direct+InPlace",
    };
    MpLib {
        profile: LibProfile {
            name: format!("PVM ({mode})"),
            send_overhead_us: 5.0,
            recv_overhead_us: 4.0,
            send_copies: u32::from(!cfg.in_place),
            recv_copies: 1,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: None,
            ctrl_bytes: 40,
            fragment: Some(FragmentCfg {
                bytes: 4080,
                per_frag_us: if cfg.direct_route { 6.0 } else { 12.0 },
                stop_and_wait: !cfg.direct_route,
            }),
            routing: if cfg.direct_route {
                Routing::Direct
            } else {
                Routing::Daemon
            },
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams::with_bufs(kib(64))),
    }
}

// ---------------------------------------------------------------------------
// TCGMSG
// ---------------------------------------------------------------------------

/// TCGMSG 4.04 (§3.6): a thin blocking layer over TCP — "it passes on
/// nearly all the performance that TCP offers" — except that its socket
/// buffer size is hardwired to `SR_SOCK_BUF_SIZE = 32 kB` in `sndrcvp.h`;
/// recompiling with 128–256 kB recovers raw-TCP levels (§7).
pub fn tcgmsg(sock_buf_size: u64) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: format!("TCGMSG (SR_SOCK_BUF_SIZE={}k)", sock_buf_size / 1024),
            send_overhead_us: 2.0,
            recv_overhead_us: 1.5,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: None,
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Tcp(TcpParams::with_bufs(sock_buf_size)),
    }
}

/// TCGMSG as shipped (32 kB hardwired buffer).
pub fn tcgmsg_default() -> MpLib {
    tcgmsg(kib(32))
}

// ---------------------------------------------------------------------------
// GM-hosted MPI implementations (fig. 4)
// ---------------------------------------------------------------------------

/// MPICH-GM: Myricom's MPICH port over GM. "MPICH-GM and MPI/Pro-GM
/// results are nearly identical, losing only a few percent off the raw GM
/// performance in the intermediate range." Eager/rendezvous at 16 kB is
/// "already optimal".
pub fn mpich_gm(mode: RecvMode) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: format!("MPICH-GM ({mode:?})"),
            send_overhead_us: 1.5,
            recv_overhead_us: 1.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(kib(16)),
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Raw(RawParams::gm(mode)),
    }
}

/// MPI/Pro's GM interface: like MPICH-GM plus the progress-thread
/// per-message cost.
pub fn mpipro_gm(mode: RecvMode) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: "MPI/Pro-GM".to_string(),
            send_overhead_us: 4.0,
            recv_overhead_us: 3.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(kib(16)),
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Thread,
            bonded_channels: 1,
        },
        transport: Transport::Raw(RawParams::gm(mode)),
    }
}

// ---------------------------------------------------------------------------
// VIA-hosted libraries (fig. 5)
// ---------------------------------------------------------------------------

/// MVICH tuning knobs (§6.1).
#[derive(Debug, Clone)]
pub struct MvichConfig {
    /// `VIADEV_RPUT_SUPPORT`: RDMA-put for large messages — "vital … to
    /// get good performance"; without it every byte is copied through
    /// pre-registered bounce buffers.
    pub rput_support: bool,
    /// `via_long`: the RDMA/rendezvous threshold. Default 16 kB dips;
    /// 64 kB removes the dip (higher froze the system).
    pub via_long: u64,
}

impl Default for MvichConfig {
    fn default() -> Self {
        MvichConfig {
            rput_support: false,
            via_long: kib(16),
        }
    }
}

impl MvichConfig {
    /// The paper's tuned settings.
    pub fn tuned() -> Self {
        MvichConfig {
            rput_support: true,
            via_long: kib(64),
        }
    }
}

/// MVICH 1.0 (MPICH ADI2 over VIA) on the given VIA substrate — pass
/// [`RawParams::giganet`] or [`RawParams::mvia_sk98lin`].
pub fn mvich(cfg: MvichConfig, via: RawParams) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: format!(
                "MVICH (via_long={}k{})",
                cfg.via_long / 1024,
                if cfg.rput_support { ", RPUT" } else { "" }
            ),
            send_overhead_us: 2.0,
            recv_overhead_us: 1.5,
            send_copies: 0,
            recv_copies: u32::from(!cfg.rput_support),
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(cfg.via_long),
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::InCall,
            bonded_channels: 1,
        },
        transport: Transport::Raw(via),
    }
}

/// MP_Lite's VIA module (§6.1) — ~10 µs latency on Giganet.
pub fn mp_lite_via(via: RawParams) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: "MP_Lite-VIA".to_string(),
            send_overhead_us: 1.0,
            recv_overhead_us: 0.5,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(kib(16)),
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Sigio,
            bonded_channels: 1,
        },
        transport: Transport::Raw(via),
    }
}

/// MPI/Pro's VIA module — the progress thread costs it a 42 µs latency
/// where MVICH and MP_Lite get ~10 µs (§6.2).
pub fn mpipro_via(via: RawParams) -> MpLib {
    MpLib {
        profile: LibProfile {
            name: "MPI/Pro-VIA".to_string(),
            send_overhead_us: 18.0,
            recv_overhead_us: 14.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: Some(kib(64)),
            ctrl_bytes: 24,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Thread,
            bonded_channels: 1,
        },
        transport: Transport::Raw(via),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpich_defaults_match_paper() {
        let cfg = MpichConfig::default();
        assert_eq!(cfg.p4_sockbufsize, kib(32));
        assert_eq!(cfg.rendezvous, kib(128));
        let lib = mpich(cfg);
        assert_eq!(lib.profile.recv_copies, 1, "p4 always buffers receives");
        match &lib.transport {
            Transport::Tcp(p) => assert!(p.block_sync_writes),
            _ => panic!("mpich runs on tcp"),
        }
    }

    #[test]
    fn lam_o_flag_removes_byte_checks() {
        assert!(lammpi(LamConfig::default())
            .profile
            .byte_check_bps
            .is_finite());
        assert!(lammpi(LamConfig::tuned())
            .profile
            .byte_check_bps
            .is_infinite());
    }

    #[test]
    fn lamd_mode_routes_through_daemons() {
        let lib = lammpi(LamConfig {
            optimized_o: true,
            use_lamd: true,
        });
        assert_eq!(lib.profile.routing, Routing::Daemon);
        assert!(lib.profile.fragment.is_some());
    }

    #[test]
    fn pvm_default_is_daemon_stop_and_wait() {
        let lib = pvm(PvmConfig::default());
        assert_eq!(lib.profile.routing, Routing::Daemon);
        assert!(lib.profile.fragment.unwrap().stop_and_wait);
        assert_eq!(lib.profile.send_copies, 1);
        assert_eq!(lib.profile.recv_copies, 1);
    }

    #[test]
    fn pvm_in_place_only_skips_send_copy() {
        let lib = pvm(PvmConfig::tuned());
        assert_eq!(lib.profile.send_copies, 0);
        assert_eq!(lib.profile.recv_copies, 1, "receive still unpacks");
    }

    #[test]
    fn tcgmsg_buffer_is_the_only_knob() {
        let d = tcgmsg_default();
        match &d.transport {
            Transport::Tcp(p) => assert_eq!(p.sndbuf, kib(32)),
            _ => panic!(),
        }
        assert_eq!(d.profile.recv_copies, 0, "thin layer: no buffering");
    }

    #[test]
    fn mp_lite_uses_system_max_buffers() {
        let kernel = hwmodel::presets::linux_2_4().with_raised_sockbuf_max();
        let lib = mp_lite(&kernel);
        match &lib.transport {
            Transport::Tcp(p) => assert_eq!(p.sndbuf, kernel.sockbuf_max),
            _ => panic!(),
        }
    }

    #[test]
    fn mvich_without_rput_copies() {
        assert_eq!(
            mvich(MvichConfig::default(), RawParams::giganet())
                .profile
                .recv_copies,
            1
        );
        assert_eq!(
            mvich(MvichConfig::tuned(), RawParams::giganet())
                .profile
                .recv_copies,
            0
        );
    }

    #[test]
    fn mpipro_via_has_progress_thread_overhead() {
        let pro = mpipro_via(RawParams::giganet());
        let lite = mp_lite_via(RawParams::giganet());
        let pro_cost = pro.profile.send_overhead_us + pro.profile.recv_overhead_us;
        let lite_cost = lite.profile.send_overhead_us + lite.profile.recv_overhead_us;
        assert!(pro_cost > lite_cost + 25.0, "42us vs 10us latency gap");
    }

    #[test]
    fn gm_libraries_use_16k_threshold() {
        for lib in [mpich_gm(RecvMode::Hybrid), mpipro_gm(RecvMode::Hybrid)] {
            assert_eq!(
                lib.profile.rendezvous_bytes,
                Some(kib(16)),
                "{}",
                lib.name()
            );
        }
    }
}
