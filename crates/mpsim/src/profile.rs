//! Library behaviour profiles.
//!
//! Every message-passing library in the paper is characterized by a small
//! set of architectural mechanisms (§3, §7). A [`LibProfile`] captures
//! them as data; the executor in [`crate::session`] turns a profile plus a
//! transport binding into simulated message transfers. Keeping behaviour
//! declarative makes each library's model auditable against the paper and
//! lets the ablation benches switch individual mechanisms off.

use protosim::{RawParams, TcpParams};

/// Which native communication layer the library runs on.
#[derive(Debug, Clone)]
pub enum Transport {
    /// Kernel TCP sockets (MPICH, LAM/MPI, MPI/Pro, MP_Lite, PVM, TCGMSG).
    Tcp(TcpParams),
    /// An OS-bypass fabric: GM or VIA (MPICH-GM, MPI/Pro-GM, MVICH,
    /// MP_Lite-VIA, MPI/Pro-VIA).
    Raw(RawParams),
}

/// How messages travel between the two applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Directly over one connection (every tuned configuration).
    Direct,
    /// Relayed through per-host daemons (`pvmd` default, LAM `-lamd`):
    /// application → local daemon → remote daemon → remote application.
    Daemon,
}

/// How a library makes progress on outstanding messages while the
/// application is busy computing (§7: "A message-passing library like
/// MPI/Pro that has a message progress thread, or MP_Lite that is SIGIO
/// interrupt driven, will keep data flowing more readily").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Progress only inside library calls (MPICH/p4, PVM, TCGMSG): a busy
    /// receiver cannot answer rendezvous handshakes or drain its buffers.
    InCall,
    /// A dedicated progress thread (MPI/Pro) keeps handshakes and
    /// transfers moving.
    Thread,
    /// SIGIO-driven handlers (MP_Lite) run whenever data arrives.
    Sigio,
    /// The kernel itself moves the data (raw TCP/GM): transfers proceed up
    /// to the transport's own buffering regardless of the application.
    Kernel,
}

/// Library-imposed fragmentation above the transport's own segmentation.
#[derive(Debug, Clone, Copy)]
pub struct FragmentCfg {
    /// Fragment payload size (PVM: 4080 bytes).
    pub bytes: u64,
    /// Per-fragment library overhead at each traversal, µs.
    pub per_frag_us: f64,
    /// Stop-and-wait acknowledgement per fragment (the pvmd↔pvmd UDP
    /// reliability protocol) — the mechanism that caps daemon-routed PVM
    /// near 90 Mbps (§4.5).
    pub stop_and_wait: bool,
}

/// The architectural mechanisms of one message-passing library.
#[derive(Debug, Clone)]
pub struct LibProfile {
    /// Display name, e.g. `"MPICH 1.2.3"`.
    pub name: String,
    /// Fixed per-message cost on the sending side, µs (argument checking,
    /// queue management, progress-thread handoff).
    pub send_overhead_us: f64,
    /// Fixed per-message cost on the receiving side, µs.
    pub recv_overhead_us: f64,
    /// Serial bulk copies *before* the transport send (PVM packing
    /// without `PvmDataInPlace`).
    pub send_copies: u32,
    /// Serial bulk copies *after* delivery (MPICH/p4 draining its receive
    /// buffer; PVM unpacking). Charged at the host's cold `memcpy` rate —
    /// the paper's §7 explanation for the 25–30 % large-message loss.
    pub recv_copies: u32,
    /// Per-byte data inspection serialized with receive (LAM/MPI without
    /// `-O` checks every element for heterogeneous conversion), bytes/sec;
    /// `f64::INFINITY` disables it.
    pub byte_check_bps: f64,
    /// Eager→rendezvous threshold: messages above it pay a
    /// request-to-send / clear-to-send handshake (two extra one-way
    /// latencies) before the data moves — the dip every library shows at
    /// its threshold.
    pub rendezvous_bytes: Option<u64>,
    /// Size of a handshake control message.
    pub ctrl_bytes: u64,
    /// Library-level fragmentation, if any.
    pub fragment: Option<FragmentCfg>,
    /// Direct or daemon-relayed routing.
    pub routing: Routing,
    /// Progress model while the application computes.
    pub progress: Progress,
    /// Parallel NIC channels to stripe large messages across (MP_Lite's
    /// channel-bonding feature; 1 = normal operation). Requires a cluster
    /// with at least this many cards installed.
    pub bonded_channels: u32,
}

impl LibProfile {
    /// A neutral profile: no overheads, no copies, no handshakes — used
    /// for the raw-transport reference curves ("raw TCP", "raw GM").
    pub fn raw(name: &str) -> LibProfile {
        LibProfile {
            name: name.to_string(),
            send_overhead_us: 0.0,
            recv_overhead_us: 0.0,
            send_copies: 0,
            recv_copies: 0,
            byte_check_bps: f64::INFINITY,
            rendezvous_bytes: None,
            ctrl_bytes: 32,
            fragment: None,
            routing: Routing::Direct,
            progress: Progress::Kernel,
            bonded_channels: 1,
        }
    }
}

/// A library model bound to the transport it runs on.
#[derive(Debug, Clone)]
pub struct MpLib {
    /// Behavioural profile.
    pub profile: LibProfile,
    /// Native layer underneath.
    pub transport: Transport,
}

impl MpLib {
    /// Display name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::kib;

    #[test]
    fn raw_profile_is_transparent() {
        let p = LibProfile::raw("raw TCP");
        assert_eq!(p.send_copies + p.recv_copies, 0);
        assert!(p.rendezvous_bytes.is_none());
        assert_eq!(p.routing, Routing::Direct);
        assert_eq!(p.send_overhead_us, 0.0);
    }

    #[test]
    fn mplib_reports_profile_name() {
        let lib = MpLib {
            profile: LibProfile::raw("x"),
            transport: Transport::Tcp(TcpParams::with_bufs(kib(64))),
        };
        assert_eq!(lib.name(), "x");
    }
}
