//! # mpsim — the paper's message-passing libraries as models
//!
//! Each library Turner & Chen measure is reproduced as a declarative
//! [`LibProfile`] (its architectural mechanisms) bound to a transport
//! ([`Transport::Tcp`] or [`Transport::Raw`]), executed by [`Session`]
//! over the `protosim` fabric:
//!
//! | library | mechanisms modeled | paper § |
//! |---|---|---|
//! | [`libs::mpich`] | p4 block-sync writes, 128 kB rendezvous, receive-buffer memcpy | 3.1, 4.1 |
//! | [`libs::lammpi`] | `-O` byte checks, `-lamd` daemon relay, fixed buffers | 3.2, 4.2 |
//! | [`libs::mpipro`] | progress thread, `tcp_long` rendezvous, fixed buffers | 3.3, 4.3 |
//! | [`libs::mp_lite`] | SIGIO progress, system-max buffers | 3.4, 4.4 |
//! | [`libs::pvm`] | pvmd stop-and-wait relay, packing copies, 4080 B fragments | 3.5, 4.5 |
//! | [`libs::tcgmsg`] | thin layer, hardwired 32 kB buffer | 3.6, 4.6 |
//! | [`libs::mpich_gm`], [`libs::mpipro_gm`] | GM recv modes, 16 kB threshold | 5 |
//! | [`libs::mvich`], [`libs::mp_lite_via`], [`libs::mpipro_via`] | RPUT, `via_long`, thread overhead | 6 |

#![warn(missing_docs)]

pub mod libs;
pub mod multirank;
pub mod profile;
pub mod rendezvous;
pub mod session;

pub use multirank::MultiSession;
pub use profile::{FragmentCfg, LibProfile, MpLib, Progress, Routing, Transport};
pub use session::{pingpong, Session};
