//! The library-model executor: turns a [`LibProfile`] + transport binding
//! into simulated message transfers on a [`protosim::Fabric`].
//!
//! The executor implements, in order, the mechanisms §3/§7 of the paper
//! attribute performance differences to:
//!
//! 1. per-message library overhead (sender side),
//! 2. serial pre-send copies (PVM packing),
//! 3. the eager→rendezvous handshake above the threshold,
//! 4. the data movement itself — direct, fragmented, or relayed through
//!    per-host daemons (with the pvmd stop-and-wait protocol),
//! 5. serial post-receive copies (p4 buffer drain, PVM unpacking) and
//!    per-byte checks (LAM without `-O`),
//! 6. per-message receive overhead.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use protosim::fabric::{Continuation, Net};
use protosim::{local, raw, tcp, ConnId, Fabric};
use simcore::SimDuration;

use crate::profile::{FragmentCfg, LibProfile, MpLib, Routing, Transport};
use crate::rendezvous;

/// The daemon relay path: one local pipe per host plus the inter-daemon
/// connection (which reuses the session's transport connection).
#[derive(Debug, Clone, Copy)]
struct DaemonPath {
    local: [ConnId; 2],
}

/// An established communication session between the two ranks.
#[derive(Clone)]
pub struct Session {
    /// The library's behaviour profile.
    pub profile: Rc<LibProfile>,
    data: ConnId,
    /// Additional connections for channel bonding (channels 1..n).
    extra: Rc<Vec<ConnId>>,
    daemon: Option<DaemonPath>,
}

impl Session {
    /// Open the connections a library needs on `fabric`. A bonded profile
    /// opens one connection per NIC channel.
    pub fn establish(fabric: &mut Fabric, lib: &MpLib) -> Session {
        let channels = lib.profile.bonded_channels.max(1) as usize;
        assert!(
            channels <= fabric.wires.len(),
            "{}: wants {channels} channels, cluster has {} NICs",
            lib.name(),
            fabric.wires.len()
        );
        let open_one = |fabric: &mut Fabric, ch: usize| match &lib.transport {
            Transport::Tcp(p) => tcp::open_on_channel(fabric, p.clone(), ch),
            Transport::Raw(p) => raw::open_on_channel(fabric, p.clone(), ch),
        };
        let data = open_one(fabric, 0);
        let extra: Vec<_> = (1..channels).map(|ch| open_one(fabric, ch)).collect();
        let daemon = match lib.profile.routing {
            Routing::Direct => None,
            Routing::Daemon => Some(DaemonPath {
                local: [local::open(fabric, 0), local::open(fabric, 1)],
            }),
        };
        Session {
            profile: Rc::new(lib.profile.clone()),
            data,
            extra: Rc::new(extra),
            daemon,
        }
    }

    /// Send `bytes` from rank `from`; `k` runs when the receiving rank's
    /// matching receive completes (library processing included).
    pub fn send(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        assert!(from < 2);
        let bytes = bytes.max(1);
        let now = eng.now();
        // Phase 1: sender-side overhead + packing copies.
        let p = &self.profile;
        let memcpy = eng.world.spec.host.cpu.memcpy_bps;
        let dur = SimDuration::from_micros_f64(p.send_overhead_us)
            + SimDuration::for_bytes(bytes * u64::from(p.send_copies), memcpy);
        let t0 = eng.world.hosts[from].cpu.serve_for(now, dur, 0);
        let this = self.clone();
        eng.schedule_at(t0, move |e| this.handshake_phase(e, from, bytes, k));
    }

    /// Phase 2: the rendezvous handshake, when the library uses one and
    /// the message is above the threshold.
    fn handshake_phase(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        let needs_handshake = matches!(self.profile.rendezvous_bytes, Some(t) if bytes > t)
            && self.profile.routing == Routing::Direct;
        if needs_handshake {
            let ctrl = self.profile.ctrl_bytes;
            let this = self.clone();
            let data = self.data;
            // The sender-role typestate (spec of record:
            // rendezvous.sender) pins the RTS→CTS→data order at compile
            // time; a reordered continuation chain would not build.
            // Request-to-send travels to the receiver...
            let hs = rendezvous::sender::Idle.rts();
            protosim::send(
                eng,
                data,
                from,
                ctrl,
                Box::new(move |e| {
                    // ...clear-to-send comes back...
                    let hs = hs.cts();
                    let this2 = this.clone();
                    protosim::send(
                        e,
                        data,
                        1 - from,
                        ctrl,
                        Box::new(move |e| {
                            // ...then the data moves.
                            let _idle: rendezvous::sender::Idle = hs.data();
                            this2.data_phase(e, from, bytes, k);
                        }),
                    );
                }),
            );
        } else {
            self.data_phase(eng, from, bytes, k);
        }
    }

    /// Phase 3: move the payload.
    fn data_phase(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        // `establish` opens the daemon pipes exactly when the profile
        // routes via daemons, so the path's presence *is* the routing
        // decision — no unrepresentable (Daemon, None) arm to bail on.
        if let Some(path) = self.daemon {
            return self.send_via_daemons(eng, from, bytes, path, k);
        }
        match self.profile.fragment {
            None if !self.extra.is_empty() && bytes >= 4096 => {
                self.send_striped(eng, from, bytes, k);
            }
            None => {
                let this = self.clone();
                protosim::send(
                    eng,
                    self.data,
                    from,
                    bytes,
                    Box::new(move |e| this.receive_phase(e, from, bytes, k)),
                );
            }
            Some(frag) => self.send_fragmented(eng, from, bytes, frag, k),
        }
    }

    /// Channel bonding: stripe the payload across all bonded connections
    /// in near-equal chunks; the receive completes when every stripe has
    /// landed (MP_Lite reassembles by offset, so ordering across channels
    /// does not matter). Small messages stay on channel 0 — striping them
    /// would only add per-channel latency.
    fn send_striped(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        let nchan = 1 + self.extra.len();
        // Round-robin in 32 kB blocks so the channels' pipelines interleave
        // from the first block (one giant stripe per channel would reserve
        // the shared CPU/PCI stages a whole channel at a time and
        // serialize the supposedly parallel wires).
        let block = 32 * 1024u64;
        let pending = Rc::new(RefCell::new(0u64));
        let done_k = Rc::new(RefCell::new(Some(k)));
        let mut off = 0;
        let mut ch = 0usize;
        while off < bytes {
            let sz = block.min(bytes - off);
            off += sz;
            *pending.borrow_mut() += 1;
            let conn = if ch == 0 {
                self.data
            } else {
                self.extra[ch - 1]
            };
            ch = (ch + 1) % nchan;
            let this = self.clone();
            let pending = Rc::clone(&pending);
            let done_k = Rc::clone(&done_k);
            protosim::send(
                eng,
                conn,
                from,
                sz,
                Box::new(move |e| {
                    *pending.borrow_mut() -= 1;
                    if *pending.borrow() == 0 {
                        let k = done_k
                            .borrow_mut()
                            .take()
                            .expect("stripe completion fired twice");
                        this.receive_phase(e, from, bytes, k);
                    }
                }),
            );
        }
    }

    /// Direct transfer fragmented at the library's fragment size (PVM's
    /// 4080-byte fragments in `PvmRouteDirect` mode). Fragments pipeline
    /// through the transport; the per-fragment overhead is charged on the
    /// sender's CPU.
    fn send_fragmented(
        &self,
        eng: &mut Net,
        from: usize,
        bytes: u64,
        frag: FragmentCfg,
        k: Continuation,
    ) {
        let nfrags = bytes.div_ceil(frag.bytes);
        let remaining = Rc::new(RefCell::new(nfrags));
        let pending_k = Rc::new(RefCell::new(Some(k)));
        let mut left = bytes;
        while left > 0 {
            let sz = left.min(frag.bytes);
            left -= sz;
            let now = eng.now();
            let t = eng.world.hosts[from].cpu.serve_for(
                now,
                SimDuration::from_micros_f64(frag.per_frag_us),
                0,
            );
            let this = self.clone();
            let remaining = Rc::clone(&remaining);
            let pending_k = Rc::clone(&pending_k);
            let data = self.data;
            eng.schedule_at(t, move |e| {
                protosim::send(
                    e,
                    data,
                    from,
                    sz,
                    Box::new(move |e| {
                        *remaining.borrow_mut() -= 1;
                        if *remaining.borrow() == 0 {
                            let k = pending_k
                                .borrow_mut()
                                .take()
                                .expect("completion fired twice");
                            this.receive_phase(e, from, bytes, k);
                        }
                    }),
                );
            });
        }
    }

    /// Daemon-relayed transfer: app → local daemon → remote daemon → app.
    ///
    /// With `stop_and_wait` (pvmd), each fragment's inter-daemon hop is
    /// acknowledged before the next fragment leaves — one fragment in
    /// flight at a time, paying a full round trip per 4080 bytes. Without
    /// it (lamd), fragments pipeline through the three hops.
    fn send_via_daemons(
        &self,
        eng: &mut Net,
        from: usize,
        bytes: u64,
        path: DaemonPath,
        k: Continuation,
    ) {
        let frag = self.profile.fragment.unwrap_or(FragmentCfg {
            bytes: u64::MAX,
            per_frag_us: 0.0,
            stop_and_wait: false,
        });
        let mut frags = VecDeque::new();
        let mut left = bytes;
        while left > 0 {
            let sz = left.min(frag.bytes);
            frags.push_back(sz);
            left -= sz;
        }
        let total_frags = frags.len() as u64;
        let xfer = Rc::new(RefCell::new(DaemonXfer {
            frags,
            delivered: 0,
            total_frags,
            k: Some(k),
        }));
        if frag.stop_and_wait {
            self.daemon_next_stop_and_wait(eng, from, bytes, path, frag, xfer);
        } else {
            // Pipelined: a fragment's first hop begins once the previous
            // fragment cleared that hop, so the three hops overlap across
            // fragments without head-of-line blocking the sender's CPU.
            self.daemon_forward_next(eng, from, bytes, path, frag, xfer);
        }
    }

    /// Launch the next fragment's journey (pipelined mode): hop 1 now;
    /// when it completes, the next fragment starts hop 1 while this one
    /// continues through the daemons.
    fn daemon_forward_next(
        &self,
        eng: &mut Net,
        from: usize,
        bytes: u64,
        path: DaemonPath,
        frag: FragmentCfg,
        xfer: Rc<RefCell<DaemonXfer>>,
    ) {
        let Some(sz) = xfer.borrow_mut().frags.pop_front() else {
            return;
        };
        let this = self.clone();
        let data = self.data;
        local::send(
            eng,
            path.local[from],
            sz,
            Box::new(move |e| {
                // Pipeline: free the first hop for the next fragment.
                this.daemon_forward_next(e, from, bytes, path, frag, Rc::clone(&xfer));
                // Sending daemon processes the fragment.
                let t = daemon_work(e, from, frag, sz);
                let this2 = this.clone();
                e.schedule_at(t, move |e| {
                    protosim::send(
                        e,
                        data,
                        from,
                        sz,
                        Box::new(move |e| {
                            // Receiving daemon processes, then hands to the app.
                            let t = daemon_work(e, 1 - from, frag, sz);
                            let this3 = this2.clone();
                            e.schedule_at(t, move |e| {
                                local::send(
                                    e,
                                    path.local[1 - from],
                                    sz,
                                    Box::new(move |e| {
                                        let done = {
                                            let mut x = xfer.borrow_mut();
                                            x.delivered += 1;
                                            x.delivered == x.total_frags
                                        };
                                        if done {
                                            let k =
                                                xfer.borrow_mut().k.take().expect("double fire");
                                            this3.receive_phase(e, from, bytes, k);
                                        }
                                    }),
                                );
                            });
                        }),
                    );
                });
            }),
        );
    }

    /// One fragment at a time with an acknowledgement round trip — the
    /// pvmd↔pvmd reliability protocol.
    fn daemon_next_stop_and_wait(
        &self,
        eng: &mut Net,
        from: usize,
        bytes: u64,
        path: DaemonPath,
        frag: FragmentCfg,
        xfer: Rc<RefCell<DaemonXfer>>,
    ) {
        let Some(sz) = xfer.borrow_mut().frags.pop_front() else {
            let k = xfer.borrow_mut().k.take().expect("double fire");
            self.receive_phase(eng, from, bytes, k);
            return;
        };
        let this = self.clone();
        let data = self.data;
        local::send(
            eng,
            path.local[from],
            sz,
            Box::new(move |e| {
                let t = daemon_work(e, from, frag, sz);
                let this2 = this.clone();
                e.schedule_at(t, move |e| {
                    protosim::send(
                        e,
                        data,
                        from,
                        sz,
                        Box::new(move |e| {
                            let t = daemon_work(e, 1 - from, frag, sz);
                            let this3 = this2.clone();
                            e.schedule_at(t, move |e| {
                                // The ack returns while the fragment is handed up.
                                let this4 = this3.clone();
                                let xf2 = Rc::clone(&xfer);
                                protosim::send(
                                    e,
                                    data,
                                    1 - from,
                                    32,
                                    Box::new(move |e| {
                                        this4.daemon_next_stop_and_wait(
                                            e, from, bytes, path, frag, xf2,
                                        );
                                    }),
                                );
                                local::send(e, path.local[1 - from], sz, Box::new(move |_| {}));
                            });
                        }),
                    );
                });
            }),
        );
    }

    /// Phase 5–6: receiver-side serial work, then the user continuation.
    fn receive_phase(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        let to = 1 - from;
        let p = &self.profile;
        let now = eng.now();
        let memcpy = eng.world.spec.host.cpu.memcpy_bps;
        let dur = SimDuration::from_micros_f64(p.recv_overhead_us)
            + SimDuration::for_bytes(bytes * u64::from(p.recv_copies), memcpy)
            + SimDuration::for_bytes(bytes, p.byte_check_bps);
        let t = eng.world.hosts[to].cpu.serve_for(now, dur, 0);
        eng.schedule_at(t, k);
    }
}

impl Session {
    /// Send `bytes` from rank `from` while the *receiver* computes for
    /// `busy` before entering its receive call — the paper's §7
    /// discussion, made measurable.
    ///
    /// What can proceed during the computation depends on the library's
    /// [`Progress`](crate::Progress) model:
    ///
    /// * `Kernel`/`Thread`/`Sigio` — the transfer proceeds in full; only
    ///   the final hand-off waits for the application (full overlap).
    /// * `InCall` — the rendezvous reply (if any) waits until the
    ///   receiver re-enters the library, and on TCP only about a window's
    ///   worth of data can land in the socket buffer before the sender
    ///   blocks: the rest of the transfer serializes after the
    ///   computation (little to no overlap for large messages).
    ///
    /// `k` runs when the receive completes, i.e. at
    /// `max(compute, communication-as-overlappable) + residual work`.
    pub fn send_while_receiver_busy(
        &self,
        eng: &mut Net,
        from: usize,
        bytes: u64,
        busy: SimDuration,
        k: Continuation,
    ) {
        use crate::profile::Progress;
        let bytes = bytes.max(1);
        let busy_end = eng.now() + busy;
        let overlappable = matches!(
            self.profile.progress,
            Progress::Kernel | Progress::Thread | Progress::Sigio
        );
        if overlappable {
            // Everything proceeds; completion cannot precede the end of
            // the computation.
            let this = self.clone();
            self.send(
                eng,
                from,
                bytes,
                Box::new(move |e| {
                    let _ = &this;
                    if e.now() >= busy_end {
                        k(e);
                    } else {
                        e.schedule_at(busy_end, k);
                    }
                }),
            );
            return;
        }
        // InCall progress. Two serializers:
        // 1. a rendezvous handshake cannot be answered until busy_end;
        // 2. on TCP, at most ~the flow-control window lands before the
        //    sender blocks on the unread socket buffer.
        let needs_handshake = matches!(self.profile.rendezvous_bytes, Some(t) if bytes > t);
        if needs_handshake {
            // RTS is sent now but the CTS only comes back after busy_end;
            // the entire payload then moves post-computation. This is
            // the receiver role of the rendezvous pair: the RTS lands
            // (`rts?`), the CTS leaves only once the library is entered
            // (`cts!`), then the payload drains (`data?`).
            let this = self.clone();
            let ctrl = self.profile.ctrl_bytes;
            let rv = rendezvous::receiver::Idle;
            protosim::send(
                eng,
                self.data,
                from,
                ctrl,
                Box::new(move |e| {
                    let rv = rv.rts();
                    let at = e.now().max(busy_end);
                    let this2 = this.clone();
                    e.schedule_at(at, move |e| {
                        let rv = rv.cts();
                        let this3 = this2.clone();
                        protosim::send(
                            e,
                            this2.data,
                            1 - from,
                            this2.profile.ctrl_bytes,
                            Box::new(move |e| {
                                let _idle: rendezvous::receiver::Idle = rv.data();
                                this3.data_phase(e, from, bytes, k)
                            }),
                        );
                    });
                }),
            );
            return;
        }
        // Eager path: the first window's worth flows into the receiver's
        // socket buffer now; the remainder is pumped once the receiver
        // enters the library.
        let window = match &eng.world.conns[self.data.0] {
            protosim::Conn::Tcp(t) => t.window,
            _ => u64::MAX, // OS-bypass fabrics deposit into user memory
        };
        if bytes <= window {
            let this = self.clone();
            self.send(
                eng,
                from,
                bytes,
                Box::new(move |e| {
                    let _ = &this;
                    if e.now() >= busy_end {
                        k(e);
                    } else {
                        e.schedule_at(busy_end, k);
                    }
                }),
            );
        } else {
            let head = window;
            let tail = bytes - window;
            let this = self.clone();
            // The head fills the socket buffer during the computation...
            self.data_phase_plain(eng, from, head, Box::new(|_| {}));
            // ...the tail only moves after the receiver drains it.
            eng.schedule_at(busy_end, move |e| {
                this.send(e, from, tail, k);
            });
        }
    }

    /// Data movement without handshakes or receiver-side processing
    /// (helper for the overlap model's head transfer).
    fn data_phase_plain(&self, eng: &mut Net, from: usize, bytes: u64, k: Continuation) {
        protosim::send(eng, self.data, from, bytes, k);
    }
}

struct DaemonXfer {
    frags: VecDeque<u64>,
    delivered: u64,
    total_frags: u64,
    k: Option<Continuation>,
}

/// A daemon touches a fragment: per-fragment bookkeeping plus one serial
/// buffer copy at the host's cold-memcpy rate.
fn daemon_work(eng: &mut Net, host: usize, frag: FragmentCfg, sz: u64) -> simcore::SimTime {
    let now = eng.now();
    let memcpy = eng.world.spec.host.cpu.memcpy_bps;
    let dur = SimDuration::from_micros_f64(frag.per_frag_us) + SimDuration::for_bytes(sz, memcpy);
    eng.world.hosts[host].cpu.serve_for(now, dur, sz)
}

/// Completion callback for [`pingpong`]: receives the engine and the
/// total elapsed simulated seconds.
pub type PingpongDone = Box<dyn FnOnce(&mut Net, f64)>;

/// Run `reps` ping-pong round trips of `bytes` and pass the total elapsed
/// simulated seconds to `done`.
pub fn pingpong(session: &Session, eng: &mut Net, bytes: u64, reps: u32, done: PingpongDone) {
    assert!(reps > 0, "at least one repetition");
    let start = eng.now();
    bounce(session.clone(), eng, bytes, 2 * reps, start, done);
}

fn bounce(
    session: Session,
    eng: &mut Net,
    bytes: u64,
    legs_left: u32,
    start: simcore::SimTime,
    done: PingpongDone,
) {
    if legs_left == 0 {
        let elapsed = (eng.now() - start).as_secs_f64();
        done(eng, elapsed);
        return;
    }
    // Even legs go 0→1, odd legs come back.
    let from = (legs_left % 2) as usize;
    let s2 = session.clone();
    session.send(
        eng,
        1 - from,
        bytes,
        Box::new(move |e| bounce(s2, e, bytes, legs_left - 1, start, done)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LibProfile;
    use hwmodel::presets::pcs_ga620;
    use protosim::TcpParams;
    use simcore::units::{kib, mib, throughput_mbps};
    use std::cell::Cell;

    fn raw_tcp_lib() -> MpLib {
        MpLib {
            profile: LibProfile::raw("raw TCP"),
            transport: Transport::Tcp(TcpParams::with_bufs(kib(512))),
        }
    }

    fn run_pingpong(lib: &MpLib, bytes: u64, reps: u32) -> f64 {
        let mut eng = Fabric::engine(pcs_ga620());
        let session = Session::establish(&mut eng.world, lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        pingpong(
            &session,
            &mut eng,
            bytes,
            reps,
            Box::new(move |_, t| out2.set(Some(t))),
        );
        eng.run();
        out.get().expect("pingpong never completed")
    }

    #[test]
    fn raw_session_matches_transport_throughput() {
        let t = run_pingpong(&raw_tcp_lib(), mib(4), 1);
        let one_way = t / 2.0;
        let mbps = throughput_mbps(mib(4), one_way);
        assert!((480.0..640.0).contains(&mbps), "raw tcp via session {mbps}");
    }

    #[test]
    fn reps_scale_linearly() {
        let t1 = run_pingpong(&raw_tcp_lib(), kib(64), 1);
        let t3 = run_pingpong(&raw_tcp_lib(), kib(64), 3);
        assert!((t3 / t1 - 3.0).abs() < 0.1, "t1={t1} t3={t3}");
    }

    #[test]
    fn recv_copy_slows_large_messages() {
        let mut lib = raw_tcp_lib();
        lib.profile.recv_copies = 1;
        lib.profile.name = "one-copy".into();
        let plain = run_pingpong(&raw_tcp_lib(), mib(4), 1);
        let copied = run_pingpong(&lib, mib(4), 1);
        let ratio = copied / plain;
        // One serial 200 MB/s copy against ~550 Mbps: ~25% slower.
        assert!((1.15..1.45).contains(&ratio), "copy ratio {ratio}");
    }

    #[test]
    fn rendezvous_adds_handshake_above_threshold() {
        let mut lib = raw_tcp_lib();
        lib.profile.rendezvous_bytes = Some(kib(128));
        let below = run_pingpong(&lib, kib(128), 1);
        let above = run_pingpong(&lib, kib(128) + 64, 1);
        // Crossing the threshold pays ~2 extra one-way latencies per leg.
        let extra_us = (above - below) / 2.0 * 1e6;
        assert!(
            (150.0..400.0).contains(&extra_us),
            "handshake cost {extra_us} us"
        );
        // Without the threshold the same step is tiny.
        let plain_below = run_pingpong(&raw_tcp_lib(), kib(128), 1);
        let plain_above = run_pingpong(&raw_tcp_lib(), kib(128) + 64, 1);
        assert!((plain_above - plain_below) / 2.0 * 1e6 < 100.0);
    }

    #[test]
    fn send_overhead_shows_in_latency() {
        let mut lib = raw_tcp_lib();
        lib.profile.send_overhead_us = 50.0;
        let plain = run_pingpong(&raw_tcp_lib(), 8, 1);
        let heavy = run_pingpong(&lib, 8, 1);
        let extra_us = (heavy - plain) * 1e6;
        assert!((90.0..115.0).contains(&extra_us), "overhead {extra_us} us");
    }

    #[test]
    fn fragmentation_preserves_total_bytes() {
        let mut lib = raw_tcp_lib();
        lib.profile.fragment = Some(FragmentCfg {
            bytes: 4080,
            per_frag_us: 5.0,
            stop_and_wait: false,
        });
        let mut eng = Fabric::engine(pcs_ga620());
        let session = Session::establish(&mut eng.world, &lib);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        session.send(&mut eng, 0, 100_000, Box::new(move |_| d.set(true)));
        eng.run();
        assert!(done.get());
        // All bytes crossed the TCP connection exactly once.
        match &eng.world.conns[0] {
            protosim::Conn::Tcp(t) => assert_eq!(t.bytes_delivered, 100_000),
            _ => panic!("expected tcp conn"),
        }
    }

    #[test]
    fn daemon_routing_is_much_slower() {
        let mut lib = raw_tcp_lib();
        lib.profile.routing = Routing::Daemon;
        lib.profile.fragment = Some(FragmentCfg {
            bytes: 4080,
            per_frag_us: 20.0,
            stop_and_wait: true,
        });
        let direct = run_pingpong(&raw_tcp_lib(), mib(1), 1);
        let relayed = run_pingpong(&lib, mib(1), 1);
        assert!(
            relayed > 3.0 * direct,
            "daemon {relayed} vs direct {direct}"
        );
    }

    #[test]
    fn overlap_depends_on_progress_model() {
        use crate::profile::Progress;
        use simcore::SimDuration;
        // 1 MB transfer (~16 ms alone) against 20 ms of computation.
        let bytes = mib(1);
        let busy = SimDuration::from_millis(20);
        let total_for = |progress: Progress, rendezvous: Option<u64>| -> f64 {
            let mut lib = raw_tcp_lib();
            lib.profile.progress = progress;
            lib.profile.rendezvous_bytes = rendezvous;
            let mut eng = Fabric::engine(pcs_ga620());
            let session = Session::establish(&mut eng.world, &lib);
            let out = Rc::new(Cell::new(None));
            let out2 = Rc::clone(&out);
            session.send_while_receiver_busy(
                &mut eng,
                0,
                bytes,
                busy,
                Box::new(move |e| out2.set(Some(e.now().as_secs_f64()))),
            );
            eng.run();
            out.get().expect("overlap send never completed")
        };
        let threaded = total_for(Progress::Thread, Some(kib(128)));
        let sigio = total_for(Progress::Sigio, None);
        let incall_eager = total_for(Progress::InCall, None);
        let incall_rndv = total_for(Progress::InCall, Some(kib(128)));
        // Full overlap: total ~ max(compute, transfer) = 20 ms.
        assert!((0.0195..0.023).contains(&threaded), "thread {threaded}");
        assert!((0.0195..0.023).contains(&sigio), "sigio {sigio}");
        // In-call rendezvous: compute + transfer, ~36 ms.
        assert!(incall_rndv > 0.032, "in-call rendezvous {incall_rndv}");
        // In-call eager overlaps only a window's worth (512 kB here), so
        // the other ~512 kB serializes after the compute: ~+7 ms.
        assert!(
            incall_eager > threaded + 0.005,
            "in-call eager {incall_eager}"
        );
        assert!(incall_eager < incall_rndv, "eager must beat rendezvous");
    }

    #[test]
    fn overlap_with_no_compute_equals_plain_send() {
        use simcore::SimDuration;
        let lib = raw_tcp_lib();
        let mut eng = Fabric::engine(pcs_ga620());
        let session = Session::establish(&mut eng.world, &lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        session.send_while_receiver_busy(
            &mut eng,
            0,
            100_000,
            SimDuration::ZERO,
            Box::new(move |e| out2.set(Some(e.now().as_secs_f64()))),
        );
        eng.run();
        let overlapped = out.get().unwrap();
        let plain = run_pingpong(&raw_tcp_lib(), 100_000, 1) / 2.0;
        assert!(
            (overlapped / plain - 1.0).abs() < 0.02,
            "{overlapped} vs {plain}"
        );
    }

    fn one_way_on(spec: hwmodel::ClusterSpec, lib: &MpLib, bytes: u64) -> f64 {
        let mut eng = Fabric::engine(spec);
        let session = Session::establish(&mut eng.world, lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        session.send(
            &mut eng,
            0,
            bytes,
            Box::new(move |e| {
                out2.set(Some(e.now().as_secs_f64()));
            }),
        );
        eng.run();
        out.get().unwrap()
    }

    #[test]
    fn channel_bonding_doubles_fast_ethernet() {
        // The historically accurate win: dual Fast Ethernet leaves the
        // PCI bus idle, so two wires really pay ~2x.
        use crate::libs::{mp_lite, mp_lite_bonded};
        use hwmodel::presets::pcs_fast_ethernet_dual;
        let kernel = pcs_fast_ethernet_dual().kernel;
        let single = one_way_on(pcs_fast_ethernet_dual(), &mp_lite(&kernel), mib(4));
        let bonded = one_way_on(
            pcs_fast_ethernet_dual(),
            &mp_lite_bonded(&kernel, 2),
            mib(4),
        );
        let speedup = single / bonded;
        assert!(
            (1.7..2.05).contains(&speedup),
            "FE bonding speedup {speedup}"
        );
        // Small messages are not striped: latency unchanged.
        let lat_single = one_way_on(pcs_fast_ethernet_dual(), &mp_lite(&kernel), 8);
        let lat_bonded = one_way_on(pcs_fast_ethernet_dual(), &mp_lite_bonded(&kernel, 2), 8);
        assert_eq!(lat_single, lat_bonded);
    }

    #[test]
    fn channel_bonding_on_gige_is_pci_bound() {
        // The physics lesson: two Gigabit cards share one 32-bit PCI bus,
        // so bonding buys almost nothing on the paper's PCs.
        use crate::libs::{mp_lite, mp_lite_bonded};
        use hwmodel::presets::pcs_ga620_dual;
        let kernel = pcs_ga620_dual().kernel;
        let single = one_way_on(pcs_ga620_dual(), &mp_lite(&kernel), mib(4));
        let bonded = one_way_on(pcs_ga620_dual(), &mp_lite_bonded(&kernel, 2), mib(4));
        let speedup = single / bonded;
        assert!(
            (1.0..1.30).contains(&speedup),
            "GigE bonding should be PCI-bound: {speedup}"
        );
    }

    #[test]
    #[should_panic(expected = "wants 2 channels")]
    fn bonding_requires_enough_nics() {
        use crate::libs::mp_lite_bonded;
        let kernel = pcs_ga620().kernel;
        let mut eng = Fabric::engine(pcs_ga620()); // single NIC
        let _ = Session::establish(&mut eng.world, &mp_lite_bonded(&kernel, 2));
    }

    #[test]
    fn byte_check_caps_throughput() {
        let mut lib = raw_tcp_lib();
        lib.profile.byte_check_bps = 125e6 / 2.0; // ~500 Mbps serial check
        let t = run_pingpong(&lib, mib(4), 1) / 2.0;
        let mbps = throughput_mbps(mib(4), t);
        assert!(mbps < 320.0, "checked rate {mbps}");
    }
}
