//! N-rank tagged messaging over the multi-node fabric.
//!
//! [`Session`](crate::Session) models two ranks in microscopic detail;
//! collective-pattern studies need *N* ranks exchanging tagged messages
//! with library overheads applied per message. [`MultiSession`] layers
//! exactly that over [`protosim::multinode`]: per ordered rank pair a
//! FIFO of in-flight payloads matched against a FIFO of posted
//! receives (the same match discipline mplite's socket mesh gives the
//! real backend), with the bound [`LibProfile`]'s per-message costs —
//! send/receive overheads, copy passes, optional byte checking, and
//! the eager→rendezvous handshake — charged on the endpoint CPUs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use faultlab::DegradeWindow;
use protosim::multinode::{self, MultiEngine};
use simcore::SimDuration;

use crate::profile::LibProfile;

/// A delivered message body. Reference-counted so queueing and delivery
/// never copy simulated payload bytes at host level.
pub type Payload = Rc<Vec<u8>>;

/// Completion callback for a posted receive.
pub type RecvContinuation = Box<dyn FnOnce(&mut MultiEngine, Payload)>;

struct PairQueues {
    /// Arrived-but-unclaimed messages, FIFO.
    arrived: VecDeque<(i32, Payload)>,
    /// Posted-but-unmatched receives, FIFO.
    posted: VecDeque<(i32, RecvContinuation)>,
}

struct Inner {
    profile: LibProfile,
    n: usize,
    /// Indexed `from * n + to`.
    pairs: RefCell<Vec<PairQueues>>,
    /// Extra per-send CPU microseconds per rank (degradation studies).
    extra_send_us: RefCell<Vec<f64>>,
    /// Timed degradation windows from a fault plan: sends issued while
    /// a window is open run at the window's fraction of nominal speed.
    degrade: RefCell<Vec<DegradeWindow>>,
}

/// An N-rank tagged messaging session bound to one library profile.
/// Cheap to clone; clones share the queues.
#[derive(Clone)]
pub struct MultiSession {
    inner: Rc<Inner>,
}

impl MultiSession {
    /// A session for `n` ranks under `profile`'s per-message costs.
    pub fn new(profile: LibProfile, n: usize) -> MultiSession {
        MultiSession {
            inner: Rc::new(Inner {
                profile,
                n,
                pairs: RefCell::new(
                    (0..n * n)
                        .map(|_| PairQueues {
                            arrived: VecDeque::new(),
                            posted: VecDeque::new(),
                        })
                        .collect(),
                ),
                extra_send_us: RefCell::new(vec![0.0; n]),
                degrade: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.inner.n
    }

    /// Add `us` microseconds of CPU work to every send `rank` issues —
    /// the degraded-rank knob the chaos sweeps turn.
    pub fn set_rank_overhead_us(&self, rank: usize, us: f64) {
        self.inner.extra_send_us.borrow_mut()[rank] = us;
    }

    /// Install a fault plan's timed degradation windows: a send issued
    /// while a window contains the current simulated time has its
    /// library work stretched by `1/factor` (every rank is affected —
    /// the windows model fabric-wide congestion, not one slow host).
    pub fn set_degrade_windows(&self, windows: Vec<DegradeWindow>) {
        *self.inner.degrade.borrow_mut() = windows;
    }

    /// The work stretch applied at `now_us`: the reciprocal of the
    /// smallest open window factor, `1.0` when no window is open.
    fn degrade_stretch(&self, now_us: f64) -> f64 {
        let mut factor = 1.0f64;
        for w in self.inner.degrade.borrow().iter() {
            if w.contains(now_us) {
                factor = factor.min(w.factor);
            }
        }
        1.0 / factor
    }

    /// Send `payload` from `from` to `to` under `tag`. The sender's
    /// library work is charged on its CPU now; the fabric then carries
    /// the bytes (with a rendezvous handshake above the profile's
    /// threshold) and the receiver's library work is charged on
    /// arrival, after which the payload matches a posted receive.
    // analyze: hot
    pub fn send(&self, eng: &mut MultiEngine, from: usize, to: usize, tag: i32, payload: Payload) {
        assert!(from != to, "collective schedules never self-send");
        let bytes = payload.len() as u64;
        let p = &self.inner.profile;
        let memcpy = eng.world.spec.host.cpu.memcpy_bps;
        let send_work = SimDuration::from_micros_f64(
            p.send_overhead_us + self.inner.extra_send_us.borrow()[from],
        ) + SimDuration::for_bytes(bytes * u64::from(p.send_copies), memcpy);
        let now = eng.now();
        let stretch = self.degrade_stretch(now.as_micros_f64());
        let send_work = if stretch > 1.0 {
            SimDuration::from_micros_f64(send_work.as_micros_f64() * stretch)
        } else {
            send_work
        };
        let ready = eng.world.nodes[from].cpu.serve_for(now, send_work, bytes);
        let this = self.clone();
        let needs_handshake = matches!(p.rendezvous_bytes, Some(t) if bytes > t);
        let ctrl = p.ctrl_bytes.max(1);
        eng.schedule_at(ready, move |e| {
            if needs_handshake {
                let this2 = this.clone();
                // RTS to the receiver, CTS back, then the payload.
                multinode::send(
                    e,
                    from,
                    to,
                    ctrl,
                    Box::new(move |e| {
                        let this3 = this2.clone();
                        multinode::send(
                            e,
                            to,
                            from,
                            ctrl,
                            Box::new(move |e| this3.send_data(e, from, to, tag, payload)),
                        );
                    }),
                );
            } else {
                this.send_data(e, from, to, tag, payload);
            }
        });
    }

    // analyze: hot
    fn send_data(&self, eng: &mut MultiEngine, from: usize, to: usize, tag: i32, payload: Payload) {
        let bytes = payload.len() as u64;
        let this = self.clone();
        multinode::send(
            eng,
            from,
            to,
            bytes.max(1),
            Box::new(move |e| {
                // Receiver-side library work: overhead, drain copies,
                // and the optional full-payload byte check.
                let p = &this.inner.profile;
                let memcpy = e.world.spec.host.cpu.memcpy_bps;
                let recv_work = SimDuration::from_micros_f64(p.recv_overhead_us)
                    + SimDuration::for_bytes(bytes * u64::from(p.recv_copies), memcpy)
                    + SimDuration::for_bytes(bytes, p.byte_check_bps);
                let now = e.now();
                let done = e.world.nodes[to].cpu.serve_for(now, recv_work, bytes);
                let this2 = this.clone();
                e.schedule_at(done, move |e| this2.deliver(e, from, to, tag, payload));
            }),
        );
    }

    // analyze: hot
    fn deliver(&self, eng: &mut MultiEngine, from: usize, to: usize, tag: i32, payload: Payload) {
        let n = self.inner.n;
        let mut pairs = self.inner.pairs.borrow_mut();
        let q = &mut pairs[from * n + to];
        if let Some((want, k)) = q.posted.pop_front() {
            assert_eq!(
                want, tag,
                "rank {to} posted tag {want} from {from} but got {tag}: collective tags desynchronized"
            );
            drop(pairs);
            k(eng, payload);
        } else {
            q.arrived.push_back((tag, payload));
        }
    }

    /// Post a receive at rank `to` for the next message from `from`
    /// under `tag`; `k` runs (as a scheduled event, never synchronously)
    /// once the payload is in `to`'s memory and past the library's
    /// receive path.
    // analyze: hot
    pub fn post_recv(
        &self,
        eng: &mut MultiEngine,
        to: usize,
        from: usize,
        tag: i32,
        k: RecvContinuation,
    ) {
        let n = self.inner.n;
        let mut pairs = self.inner.pairs.borrow_mut();
        let q = &mut pairs[from * n + to];
        if let Some((got, payload)) = q.arrived.pop_front() {
            assert_eq!(
                got, tag,
                "rank {to} posted tag {tag} from {from} but head-of-line is {got}: collective tags desynchronized"
            );
            drop(pairs);
            let now = eng.now();
            eng.schedule_at(now, move |e| k(e, payload));
        } else {
            q.posted.push_back((tag, k));
        }
    }

    /// True if any queue still holds an unmatched arrival or posted
    /// receive — a completed run should leave everything drained.
    pub fn has_unmatched(&self) -> bool {
        self.inner
            .pairs
            .borrow()
            .iter()
            .any(|q| !q.arrived.is_empty() || !q.posted.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protosim::multinode::MultiNet;

    fn engine(n: usize) -> MultiEngine {
        MultiNet::engine(hwmodel::presets::pcs_ga620(), n)
    }

    #[test]
    fn posted_then_sent_and_sent_then_posted_both_deliver() {
        let mut eng = engine(3);
        let sess = MultiSession::new(crate::libs::mpich(Default::default()).profile, 3);
        let got: Rc<RefCell<Vec<(usize, Vec<u8>)>>> = Rc::new(RefCell::new(Vec::new()));
        // Receive posted before the send exists.
        let g = Rc::clone(&got);
        sess.post_recv(
            &mut eng,
            1,
            0,
            7,
            Box::new(move |_, p| g.borrow_mut().push((1, p.to_vec()))),
        );
        sess.send(&mut eng, 0, 1, 7, Rc::new(b"early".to_vec()));
        // Send lands before the receive is posted.
        sess.send(&mut eng, 2, 1, 7, Rc::new(b"late".to_vec()));
        let sess2 = sess.clone();
        let g = Rc::clone(&got);
        let mut eng2 = eng;
        eng2.schedule_in(SimDuration::from_secs_f64(1.0), move |e| {
            let g = Rc::clone(&g);
            sess2.post_recv(
                e,
                1,
                2,
                7,
                Box::new(move |_, p| g.borrow_mut().push((2, p.to_vec()))),
            );
        });
        eng2.run();
        let got = got.borrow();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(1, b"early".to_vec())));
        assert!(got.contains(&(2, b"late".to_vec())));
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        let mut eng = engine(2);
        let sess = MultiSession::new(crate::libs::mpich(Default::default()).profile, 2);
        for i in 0..4u8 {
            sess.send(&mut eng, 0, 1, 9, Rc::new(vec![i; 16]));
        }
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let g = Rc::clone(&got);
            sess.post_recv(
                &mut eng,
                1,
                0,
                9,
                Box::new(move |_, p| g.borrow_mut().push(p[0])),
            );
        }
        eng.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3]);
        assert!(!sess.has_unmatched());
    }

    #[test]
    fn degraded_rank_slows_its_sends() {
        let time_with = |extra: f64| {
            let mut eng = engine(2);
            let sess = MultiSession::new(crate::libs::mpich(Default::default()).profile, 2);
            sess.set_rank_overhead_us(0, extra);
            sess.send(&mut eng, 0, 1, 1, Rc::new(vec![0u8; 1024]));
            sess.post_recv(&mut eng, 1, 0, 1, Box::new(|_, _| {}));
            eng.run().as_secs_f64()
        };
        assert!(time_with(500.0) > time_with(0.0));
    }

    #[test]
    fn open_degrade_window_stretches_sends() {
        let time_with = |windows: Vec<DegradeWindow>| {
            let mut eng = engine(2);
            let sess = MultiSession::new(crate::libs::mpich(Default::default()).profile, 2);
            sess.set_degrade_windows(windows);
            sess.send(&mut eng, 0, 1, 1, Rc::new(vec![0u8; 4096]));
            sess.post_recv(&mut eng, 1, 0, 1, Box::new(|_, _| {}));
            eng.run().as_secs_f64()
        };
        let clean = time_with(Vec::new());
        let open = time_with(vec![DegradeWindow {
            start_us: 0.0,
            end_us: 1e9,
            factor: 0.1,
        }]);
        let closed = time_with(vec![DegradeWindow {
            start_us: 1e9,
            end_us: 2e9,
            factor: 0.1,
        }]);
        assert!(open > clean, "{open} vs {clean}");
        assert_eq!(closed, clean);
    }

    #[test]
    fn rendezvous_threshold_adds_round_trips() {
        let time_with = |rendezvous: Option<u64>| {
            let mut eng = engine(2);
            let mut profile = crate::libs::mpich(Default::default()).profile;
            profile.rendezvous_bytes = rendezvous;
            let sess = MultiSession::new(profile, 2);
            sess.send(&mut eng, 0, 1, 1, Rc::new(vec![0u8; 64 * 1024]));
            sess.post_recv(&mut eng, 1, 0, 1, Box::new(|_, _| {}));
            eng.run().as_secs_f64()
        };
        assert!(time_with(Some(1024)) > time_with(None));
    }
}
