//! The eager→rendezvous handshake, as an explicit protocol pair.
//!
//! Above the library's rendezvous threshold a send is three moves —
//! request-to-send over the transport, clear-to-send back, then the
//! payload (§3 of the paper; every TCP library and the GM long-message
//! path share the shape). [`Session`](crate::Session) threads the
//! sender typestate through its continuation chain so the RTS→CTS→data
//! order is pinned at compile time, and `send_while_receiver_busy`
//! drives the receiver role (the CTS cannot leave a busy receiver until
//! it re-enters the library — the paper's §7 overlap story).
//!
//! The two roles are declared dual: every message one side sends the
//! other receives, checked by `protospec` at run time and by the
//! `protocol-duality` rule in `xtask analyze` at lint time.

/// Sender role of the rendezvous handshake.
pub mod sender {
    protospec::protocol! {
        /// Sender: emit RTS, wait for CTS, then stream the payload.
        pub RndvSendState of rendezvous.sender dual rendezvous.receiver;
        states Idle, AwaitCts, Streaming;
        terminal Idle;
        Idle --rts!--> AwaitCts;
        AwaitCts --cts?--> Streaming;
        Streaming --data!--> Idle;
    }
}

/// Receiver role of the rendezvous handshake.
pub mod receiver {
    protospec::protocol! {
        /// Receiver: take the RTS, answer CTS once the library is
        /// entered, then drain the payload.
        pub RndvRecvState of rendezvous.receiver dual rendezvous.sender;
        states Idle, CtsDue, Draining;
        terminal Idle;
        Idle --rts?--> CtsDue;
        CtsDue --cts!--> Draining;
        Draining --data?--> Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::{receiver, sender};

    #[test]
    fn specs_are_well_formed_and_dual() {
        let s = sender::RndvSendState::spec();
        let r = receiver::RndvRecvState::spec();
        assert!(s.check().is_empty(), "{:?}", s.check());
        assert!(r.check().is_empty(), "{:?}", r.check());
        assert!(s.check_dual(r).is_empty(), "{:?}", s.check_dual(r));
        assert!(r.check_dual(s).is_empty(), "{:?}", r.check_dual(s));
    }

    #[test]
    fn registry_accepts_the_pair() {
        let mut reg = protospec::Registry::new();
        reg.register(sender::RndvSendState::spec()).expect("sender");
        reg.register(receiver::RndvRecvState::spec())
            .expect("receiver");
        assert!(reg.check_all().is_empty(), "{:?}", reg.check_all());
    }
}
