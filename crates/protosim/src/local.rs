//! Same-host channels: the pipe/loopback hop between an application and a
//! message-passing daemon (`pvmd`, `lamd`).
//!
//! The paper's daemon-routed modes (PVM's default, LAM's `-lamd`) relay
//! every message *application → local daemon → remote daemon → remote
//! application*. The local hops never touch the NIC: they cost two kernel
//! copies plus syscall/wakeup overhead on the host CPU — cheap, but the
//! store-and-forward structure they enable is what collapses throughput
//! (§3.5, §4.2).

use simcore::SimDuration;

use crate::fabric::{Conn, ConnId, Continuation, Fabric, Net};

/// A same-host IPC channel (Unix pipe / loopback socket).
pub struct LocalConn {
    /// Host both endpoints live on.
    pub host: usize,
    /// Fixed per-message cost: two syscalls + a scheduler wakeup, µs.
    pub per_msg_us: f64,
    /// Number of memory copies per traversal (user→kernel→user = 2).
    pub copies: u32,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

impl LocalConn {
    /// A standard loopback channel on `host`.
    pub fn loopback(host: usize) -> LocalConn {
        LocalConn {
            host,
            per_msg_us: 10.0,
            copies: 2,
            bytes_delivered: 0,
        }
    }
}

/// Open a loopback channel on `host`.
pub fn open(fabric: &mut Fabric, host: usize) -> ConnId {
    assert!(host < 2);
    fabric.push_conn(Conn::Local(LocalConn::loopback(host)))
}

/// Send `bytes` across the local channel.
pub fn send(eng: &mut Net, conn: ConnId, bytes: u64, on_delivered: Continuation) {
    let now = eng.now();
    let done = {
        let Fabric {
            spec, hosts, conns, ..
        } = &mut eng.world;
        let local = match &mut conns[conn.0] {
            Conn::Local(l) => l,
            // lint:allow(panic) -- ConnId was issued by this module's connect(); a mismatch is a caller bug, not a runtime condition
            _ => panic!("connection {conn:?} is not local"),
        };
        local.bytes_delivered += bytes;
        let copy_each = SimDuration::for_bytes(bytes, spec.host.cpu.kernel_copy_bps);
        let dur =
            SimDuration::from_micros_f64(local.per_msg_us) + copy_each * u64::from(local.copies);
        hosts[local.host].cpu.serve_for(now, dur, bytes)
    };
    eng.schedule_at(done, on_delivered);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::pcs_ga620;
    use simcore::units::throughput_mbps;
    use std::cell::Cell;
    use std::rc::Rc;

    fn one_way(bytes: u64) -> f64 {
        let mut eng = Fabric::engine(pcs_ga620());
        let conn = open(&mut eng.world, 0);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            bytes,
            Box::new(move |e| d.set(Some(e.now()))),
        );
        eng.run();
        done.get().unwrap().as_secs_f64()
    }

    #[test]
    fn local_hop_is_cheap_but_not_free() {
        let lat = one_way(8) * 1e6;
        assert!((5.0..20.0).contains(&lat), "local latency {lat} us");
    }

    #[test]
    fn local_bandwidth_is_copy_limited() {
        let t = one_way(1 << 22);
        let mbps = throughput_mbps(1 << 22, t);
        // Two kernel copies at the PC's 420 MB/s: ~1680 Mbps.
        assert!((1400.0..2000.0).contains(&mbps), "local bw {mbps} Mbps");
    }

    #[test]
    fn local_hop_contends_with_host_cpu() {
        // Two concurrent local sends on the same host serialize.
        let mut eng = Fabric::engine(pcs_ga620());
        let conn = open(&mut eng.world, 0);
        let times = Rc::new(std::cell::RefCell::new(Vec::new()));
        for _ in 0..2 {
            let times = Rc::clone(&times);
            send(
                &mut eng,
                conn,
                1 << 20,
                Box::new(move |e| times.borrow_mut().push(e.now().as_secs_f64())),
            );
        }
        eng.run();
        let t = times.borrow();
        assert!(t[1] > 1.9 * t[0], "second send should queue: {t:?}");
    }

    #[test]
    #[should_panic]
    fn open_rejects_bad_host() {
        let mut fab = Fabric::new(pcs_ga620());
        let _ = open(&mut fab, 2);
    }
}
