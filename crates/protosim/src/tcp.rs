//! The Linux 2.4 TCP path as a discrete-event pipeline.
//!
//! Each message is segmented at the MSS and every segment crosses the
//! stages the paper's §1 describes ("the operating system and driver often
//! add to the message latency and decrease the maximum bandwidth by doing
//! many memory-to-memory copies … as each message is packetized"):
//!
//! ```text
//! send():  syscall → kernel tx work + copy → PCI DMA → NIC engine → wire
//! recv():  → PCI DMA → interrupt coalescing → kernel rx work + copy
//!          → process wakeup → recv() returns
//! ```
//!
//! Two flow-control mechanisms shape the throughput curves:
//!
//! * **Window-fill stall.** The sender may keep `W = min(sndbuf, rcvbuf)`
//!   bytes outstanding. When it fills the window it sleeps; the kernel
//!   wakes it only after the outstanding data has drained *and* the
//!   coalesced window update arrives (`nic.ack_delay_us`). Sustained
//!   throughput is then `W / (W/R + latency + stall)` — the mechanism
//!   behind the TrendNet cards flattening at ~290 Mbps with default
//!   buffers (§4) and the hardwired 32 kB TCGMSG buffer capping the
//!   DS20/jumbo configuration at ~600 Mbps (§7).
//!
//! * **Delayed-ACK stall.** A library that performs its own user-level
//!   block flow control (MPICH's p4 writes in `P4_SOCKBUFSIZE` blocks and
//!   waits for each to drain) strands a sub-MSS tail each block; the
//!   receiver acknowledges it only on the delayed-ACK timer. With blocks
//!   under the kernel's `delack_window_bytes` this dominates — MPICH's
//!   default 32 kB collapses to ~75 Mbps until `P4_SOCKBUFSIZE=256kB`
//!   gives the paper's five-fold improvement (§4.1). Enabled per
//!   connection with [`TcpParams::block_sync_writes`].

use std::collections::VecDeque;

use faultlab::{SegFault, SegLifeState};
use hwmodel::nic::TCPIP_HEADERS;
use simcore::trace::{stages, SpanRec};
use simcore::{units, SimDuration, SimTime};

use crate::fabric::{flow_track, Conn, ConnId, Continuation, Fabric, Net};

/// Per-connection TCP tuning, the knobs the paper turns.
#[derive(Debug, Clone)]
pub struct TcpParams {
    /// `SO_SNDBUF` requested by the application, bytes.
    pub sndbuf: u64,
    /// `SO_RCVBUF` requested by the application, bytes.
    pub rcvbuf: u64,
    /// True when the library layers its own block-synchronous flow control
    /// over the socket (MPICH/p4), exposing the delayed-ACK pathology for
    /// small buffers.
    pub block_sync_writes: bool,
}

impl TcpParams {
    /// Symmetric socket buffers of `bytes` each.
    pub fn with_bufs(bytes: u64) -> TcpParams {
        TcpParams {
            sndbuf: bytes,
            rcvbuf: bytes,
            block_sync_writes: false,
        }
    }
}

/// One in-progress message transfer.
struct TcpJob {
    /// Bytes not yet handed to the stack.
    remaining: u64,
    /// Bytes delivered to the receiving application.
    delivered: u64,
    /// Message size.
    total: u64,
    /// Whether the first segment has been dispatched (syscall charged).
    started: bool,
    /// Trace message-correlation id (allocated even when untraced).
    msg: u64,
    on_delivered: Option<Continuation>,
}

/// Per-direction stream state.
#[derive(Default)]
struct TcpDir {
    jobs: VecDeque<TcpJob>,
    /// Bytes charged against the window (reset on window reopen).
    in_flight: u64,
    /// Bytes dispatched but not yet delivered.
    undelivered: u64,
    /// Sender is blocked on a full window.
    stalled: bool,
}

/// A TCP connection between host 0 and host 1.
pub struct TcpConn {
    /// Effective (kernel-clamped) parameters.
    pub params: TcpParams,
    /// Effective window: `min(sndbuf, rcvbuf)` after clamping.
    pub window: u64,
    /// Whether acking is *smooth* for this window (see [`open`]): smooth
    /// connections recycle window space continuously (ack every other
    /// segment); rough ones batch-stall on every window fill.
    pub smooth: bool,
    /// Which NIC/wire pair this connection is routed over (channel
    /// bonding installs one connection per card).
    pub channel: usize,
    dirs: [TcpDir; 2],
    /// Total bytes delivered on this connection (both directions).
    pub bytes_delivered: u64,
    /// The connection exhausted its retransmissions and gave up: no
    /// further segments are dispatched and pending completions never
    /// fire, so the engine runs dry — the simulated analogue of the
    /// paper's runs that "simply die" under load. Queried by drivers to
    /// distinguish a dead connection from a deadlocked model.
    pub dead: bool,
}

/// Open a TCP connection between the two hosts. Requested buffer sizes are
/// clamped to the kernel's `net.core.{r,w}mem_max`, exactly the ceiling
/// MP_Lite raises via `/etc/sysctl.conf` (§3.4).
pub fn open(fabric: &mut Fabric, params: TcpParams) -> ConnId {
    open_on_channel(fabric, params, 0)
}

/// Open a TCP connection routed over NIC/wire pair `channel` (channel
/// bonding). Panics if the cluster has fewer cards than that.
pub fn open_on_channel(fabric: &mut Fabric, mut params: TcpParams, channel: usize) -> ConnId {
    assert!(
        channel < fabric.wires.len(),
        "channel {channel} out of range ({} installed)",
        fabric.wires.len()
    );
    params.sndbuf = fabric.spec.kernel.clamp_sockbuf(params.sndbuf);
    params.rcvbuf = fabric.spec.kernel.clamp_sockbuf(params.rcvbuf);
    let window = params.sndbuf.min(params.rcvbuf).max(1);
    // Ack smoothness: Linux acks every other full segment, so window
    // space recycles continuously as long as (a) the window holds a
    // healthy number of segments and (b) it spans the NIC's ack-burst
    // period (interrupt coalescing delivers acks in clumps of
    // `R * ack_delay` bytes). Below either bound the sender repeatedly
    // fills the window and sleeps — the flattening the paper measures on
    // the TrendNet cards (default buffers) and on the 9000-byte-MTU
    // SysKonnect configuration (32-64 kB buffers: only a handful of jumbo
    // segments fit). A library doing its own block-synchronous flow
    // control (MPICH/p4) forfeits smoothness below the delayed-ACK bound
    // no matter what.
    let spec = &fabric.spec;
    let mss = u64::from(spec.nic.mss(TCPIP_HEADERS));
    let mut payload_rate = spec.nic.wire_payload_rate(TCPIP_HEADERS);
    if let Some(cap) = spec.nic.driver_cap_bps {
        payload_rate = payload_rate.min(cap);
    }
    let burst_bytes = units::bytes_at_rate(
        payload_rate,
        SimDuration::from_micros_f64(2.0 * spec.nic.ack_delay_us),
    );
    let min_smooth = (8 * mss).max(burst_bytes);
    let p4_rough = params.block_sync_writes && window < spec.kernel.delack_window_bytes;
    let smooth = !p4_rough && window >= min_smooth;
    fabric.push_conn(Conn::Tcp(TcpConn {
        params,
        window,
        smooth,
        channel,
        dirs: [TcpDir::default(), TcpDir::default()],
        bytes_delivered: 0,
        dead: false,
    }))
}

/// Open a TCP connection with the kernel's default socket buffers — what
/// an application gets when it does not tune anything (§4: "the default
/// OS tuning levels have not kept pace").
pub fn open_default(fabric: &mut Fabric) -> ConnId {
    let bufs = fabric.spec.kernel.default_sockbuf;
    open(fabric, TcpParams::with_bufs(bufs))
}

/// Queue `bytes` from endpoint `from`; `on_delivered` fires when the
/// receiving process returns from its final `recv()`.
pub fn send(eng: &mut Net, conn: ConnId, from: usize, bytes: u64, on_delivered: Continuation) {
    let msg = eng.world.alloc_msg();
    let now = eng.now();
    {
        let tcp = tcp_mut(&mut eng.world, conn);
        tcp.dirs[from].jobs.push_back(TcpJob {
            remaining: bytes.max(1),
            delivered: 0,
            total: bytes.max(1),
            started: false,
            msg,
            on_delivered: Some(on_delivered),
        });
    }
    eng.world
        .trace_instant(stages::SEND, flow_track(from), now, bytes.max(1), msg);
    pump(eng, conn, from);
}

fn tcp_mut(fabric: &mut Fabric, conn: ConnId) -> &mut TcpConn {
    match &mut fabric.conns[conn.0] {
        Conn::Tcp(t) => t,
        // lint:allow(panic) -- ConnId was issued by this module's connect(); a mismatch is a caller bug, not a runtime condition
        _ => panic!("connection {conn:?} is not TCP"),
    }
}

/// Dispatch as many segments as the window allows.
// analyze: hot
fn pump(eng: &mut Net, conn: ConnId, dir: usize) {
    let now = eng.now();
    // (delivery_time, segment_bytes) pairs to schedule.
    let mut deliveries: Vec<(SimTime, u64)> = Vec::new();
    {
        let Fabric {
            spec,
            hosts,
            wires,
            conns,
            tracer,
            faults,
            ..
        } = &mut eng.world;
        let tcp = match &mut conns[conn.0] {
            Conn::Tcp(t) => t,
            // lint:allow(panic) -- pump() is only scheduled against conns created as TCP
            _ => panic!("connection {conn:?} is not TCP"),
        };
        if tcp.dead {
            return;
        }
        let window = tcp.window;
        let channel = tcp.channel;
        let mut conn_died = false;
        let d = &mut tcp.dirs[dir];
        if d.stalled {
            return;
        }
        let (sender, receiver) = (dir, 1 - dir);
        let mss = u64::from(spec.nic.mss(TCPIP_HEADERS));
        let cpu = &spec.host.cpu;
        let kernel_copy = cpu.kernel_copy_bps;
        let coalesce = SimDuration::from_micros_f64(spec.nic.rx_coalesce_us);
        let path = SimDuration::from_micros_f64(spec.path_latency_us());
        let ft = flow_track(dir);

        'jobs: for job in d.jobs.iter_mut() {
            // Attribute the resource spans below to this message.
            if let Some(t) = tracer.as_ref() {
                t.set_message(job.msg);
            }
            while job.remaining > 0 {
                // Sender-side silly-window avoidance (RFC 1122 §4.2.3.4):
                // send a full segment, or a partial of at least MSS/2 —
                // never shave slivers off the window (that death-spirals
                // into sub-100-byte segments whose per-packet costs
                // dominate). An idle window always makes progress, so
                // tiny windows cannot deadlock.
                let want = job.remaining.min(mss);
                let avail = window - d.in_flight;
                let half_seg = mss.min(window).div_ceil(2);
                if d.in_flight > 0 && want > avail && avail < half_seg {
                    d.stalled = true;
                    break 'jobs;
                }
                let seg = want.min(avail.max(1)).min(window);
                // --- sender side ---
                let mut tx = SimDuration::from_micros_f64(cpu.kernel_pkt_tx_us)
                    + SimDuration::for_bytes(seg, kernel_copy);
                if !job.started {
                    tx += SimDuration::from_micros_f64(cpu.syscall_us);
                    job.started = true;
                }
                let t1 = hosts[sender].cpu.serve_for(now, tx, seg);
                let on_bus = seg + u64::from(TCPIP_HEADERS);
                let t2 = hosts[sender].pci.serve(t1, on_bus);
                let frame = seg + u64::from(TCPIP_HEADERS) + u64::from(spec.nic.framing_bytes);
                let t3 = hosts[sender].nics[channel].serve(t2, frame);
                let mut t4 = wires[channel][dir].serve(t3, frame);
                // --- fault injection on the wire ---
                if let Some(fl) = faults.as_mut() {
                    let rate = wires[channel][dir].rate();
                    let frame_us = if rate.is_finite() && rate > 0.0 {
                        SimDuration::for_bytes(frame, rate).as_micros_f64()
                    } else {
                        0.0
                    };
                    let rto = SimDuration::from_micros_f64(fl.plan().rto_us);
                    let max_retrans = fl.plan().max_retrans;
                    let mut attempt = 0u32;
                    // Drive the segment through the declared RTO
                    // lifecycle (spec of record: `faultlab.segment`;
                    // `xtask analyze` checks these arms against it).
                    let mut life = SegLifeState::initial();
                    loop {
                        life = match life {
                            SegLifeState::InFlight => {
                                match fl.segment(t4.as_micros_f64(), frame_us) {
                                    SegFault::Drop => {
                                        if let Some(t) = tracer.as_ref() {
                                            t.instant(stages::FAULT_DROP, ft, t4, seg, job.msg);
                                        }
                                        SegLifeState::RtoWait
                                    }
                                    SegFault::Deliver {
                                        extra_us,
                                        slow_us,
                                        duplicate,
                                    } => {
                                        if duplicate {
                                            // The spurious copy burns a
                                            // second wire slot and receiver
                                            // bus crossing before being
                                            // discarded.
                                            let dup_done = wires[channel][dir].serve(t4, frame);
                                            hosts[receiver].pci.serve(dup_done + path, on_bus);
                                            if let Some(t) = tracer.as_ref() {
                                                t.instant(
                                                    stages::FAULT_DUP,
                                                    ft,
                                                    dup_done,
                                                    seg,
                                                    job.msg,
                                                );
                                            }
                                        }
                                        let fault_start = t4;
                                        if slow_us > 0.0 && rate.is_finite() {
                                            // Degraded link: the segment
                                            // holds the wire longer,
                                            // queueing every later segment
                                            // behind it.
                                            let extra_bytes = units::bytes_at_rate(
                                                rate,
                                                SimDuration::from_micros_f64(slow_us),
                                            );
                                            t4 = wires[channel][dir].serve(t4, extra_bytes);
                                        }
                                        if extra_us > 0.0 {
                                            t4 = t4 + SimDuration::from_micros_f64(extra_us);
                                        }
                                        if t4 > fault_start {
                                            if let Some(t) = tracer.as_ref() {
                                                t.span(SpanRec {
                                                    stage: stages::FAULT_DELAY,
                                                    track: ft,
                                                    start: fault_start,
                                                    end: t4,
                                                    bytes: seg,
                                                    msg: job.msg,
                                                });
                                            }
                                        }
                                        SegLifeState::Delivered
                                    }
                                }
                            }
                            SegLifeState::RtoWait => {
                                if attempt >= max_retrans {
                                    // Retransmissions exhausted: the
                                    // connection gives up for good.
                                    fl.counters.conn_deaths += 1;
                                    if let Some(t) = tracer.as_ref() {
                                        t.instant(stages::CONN_DEAD, ft, t4, seg, job.msg);
                                    }
                                    SegLifeState::Dead
                                } else {
                                    // The lost copy burned its wire slot;
                                    // the sender sits out the RTO, then the
                                    // retransmitted copy crosses again and
                                    // faces the lottery afresh.
                                    attempt += 1;
                                    fl.counters.retransmits += 1;
                                    let resend = t4 + rto;
                                    if let Some(t) = tracer.as_ref() {
                                        t.span(SpanRec {
                                            stage: stages::RETRANSMIT,
                                            track: ft,
                                            start: t4,
                                            end: resend,
                                            bytes: seg,
                                            msg: job.msg,
                                        });
                                    }
                                    t4 = wires[channel][dir].serve(resend, frame);
                                    SegLifeState::InFlight
                                }
                            }
                            // Terminal (quiescent) states end the drive.
                            SegLifeState::Delivered | SegLifeState::Dead => break,
                        };
                    }
                    if life == SegLifeState::Dead {
                        conn_died = true;
                        break 'jobs;
                    }
                }
                // --- receiver side ---
                let t5 = hosts[receiver].pci.serve(t4 + path, on_bus);
                let rx = SimDuration::from_micros_f64(cpu.kernel_pkt_rx_us)
                    + SimDuration::for_bytes(seg, kernel_copy);
                let t6 = hosts[receiver].cpu.serve_for(t5 + coalesce, rx, seg);
                if let Some(t) = tracer.as_ref() {
                    // Protocol gaps between resource spans, on the flow
                    // track (segments pipeline, so these may overlap).
                    if path.as_nanos() > 0 {
                        t.span(SpanRec {
                            stage: stages::WIRE_LATENCY,
                            track: ft,
                            start: t4,
                            end: t4 + path,
                            bytes: seg,
                            msg: job.msg,
                        });
                    }
                    if coalesce.as_nanos() > 0 {
                        t.span(SpanRec {
                            stage: stages::COALESCE,
                            track: ft,
                            start: t5,
                            end: t5 + coalesce,
                            bytes: seg,
                            msg: job.msg,
                        });
                    }
                }
                deliveries.push((t6, seg));
                d.in_flight += seg;
                d.undelivered += seg;
                job.remaining -= seg;
            }
        }
        if conn_died {
            tcp.dead = true;
        }
    }
    for (t, seg) in deliveries {
        eng.schedule_at(t, move |e| on_deliver(e, conn, dir, seg));
    }
}

/// A segment reached the receiver's socket buffer and was copied out.
// analyze: hot
fn on_deliver(eng: &mut Net, conn: ConnId, dir: usize, seg: u64) {
    let now = eng.now();
    enum Next {
        Reopen(SimDuration),
        Pump,
        Complete(Continuation, SimDuration),
    }
    let mut actions: Vec<Next> = Vec::new();
    let front_msg;
    let mut done_total = 0u64;
    {
        let Fabric { spec, conns, .. } = &mut eng.world;
        let tcp = match &mut conns[conn.0] {
            Conn::Tcp(t) => t,
            // lint:allow(panic) -- delivery events on this conn are only scheduled by TCP code paths
            _ => unreachable!(),
        };
        if tcp.dead {
            // Segments already in flight when the connection died still
            // land, but drive no further progress.
            return;
        }
        tcp.bytes_delivered += seg;
        let window = tcp.window;
        let block_sync = tcp.params.block_sync_writes;
        let smooth = tcp.smooth;
        let d = &mut tcp.dirs[dir];
        d.undelivered -= seg;
        if smooth {
            // Continuous acking: window space recycles per delivery.
            d.in_flight = d.in_flight.saturating_sub(seg);
            if d.stalled && d.in_flight < window {
                d.stalled = false;
                actions.push(Next::Pump);
            }
        } else if d.stalled {
            if d.undelivered == 0 {
                // Whole outstanding window drained; the sender wakes after
                // the (coalesced) window update arrives.
                let stall = if block_sync && window < spec.kernel.delack_window_bytes {
                    spec.kernel.delack_stall_us
                } else {
                    spec.nic.ack_delay_us
                };
                actions.push(Next::Reopen(SimDuration::from_micros_f64(stall)));
            }
        } else {
            d.in_flight = d.in_flight.saturating_sub(seg);
        }
        // Account delivery against the front job.
        let job = d
            .jobs
            .front_mut()
            // lint:allow(expect) -- a delivery event is only scheduled while its job is queued; an empty queue is an engine bug
            .expect("delivery with no in-progress job");
        job.delivered += seg;
        front_msg = job.msg;
        debug_assert!(job.delivered <= job.total);
        if job.delivered == job.total {
            // lint:allow(expect) -- front_mut() above proved the queue is non-empty under the same borrow
            let mut job = d.jobs.pop_front().expect("front job vanished");
            done_total = job.total;
            let wakeup =
                SimDuration::from_micros_f64(spec.kernel.rx_extra_us + spec.host.cpu.syscall_us);
            if let Some(k) = job.on_delivered.take() {
                actions.push(Next::Complete(k, wakeup));
            }
        }
    }
    for a in actions {
        match a {
            Next::Pump => pump(eng, conn, dir),
            Next::Reopen(stall) => {
                eng.world.trace_span(
                    stages::WINDOW_STALL,
                    flow_track(dir),
                    now,
                    now + stall,
                    0,
                    front_msg,
                );
                eng.schedule_at(now + stall, move |e| {
                    {
                        let tcp = tcp_mut(&mut e.world, conn);
                        let d = &mut tcp.dirs[dir];
                        d.in_flight = 0;
                        d.stalled = false;
                    }
                    pump(e, conn, dir);
                });
            }
            Next::Complete(k, wakeup) => {
                eng.world.trace_span(
                    stages::WAKEUP,
                    flow_track(dir),
                    now,
                    now + wakeup,
                    0,
                    front_msg,
                );
                eng.world.trace_instant(
                    stages::RECV,
                    flow_track(dir),
                    now + wakeup,
                    done_total,
                    front_msg,
                );
                eng.schedule_at(now + wakeup, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{ds20s_syskonnect_jumbo, pcs_ga620, pcs_trendnet};
    use simcore::units::{kib, mib, throughput_mbps};
    use std::cell::Cell;
    use std::rc::Rc;

    /// One-way transfer time of `bytes` with buffers `bufs`.
    fn one_way(spec: hwmodel::ClusterSpec, bytes: u64, params: TcpParams) -> f64 {
        let mut eng = Fabric::engine(spec);
        let conn = open(&mut eng.world, params);
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            bytes,
            Box::new(move |e| done2.set(Some(e.now()))),
        );
        eng.run();
        done.get().expect("message never delivered").as_secs_f64()
    }

    #[test]
    fn small_message_latency_ga620_near_120us() {
        let t = one_way(pcs_ga620(), 8, TcpParams::with_bufs(kib(512)));
        let us = t * 1e6;
        assert!((100.0..140.0).contains(&us), "latency {us} us");
    }

    #[test]
    fn large_message_throughput_ga620_near_550mbps() {
        let t = one_way(pcs_ga620(), mib(4), TcpParams::with_bufs(kib(512)));
        let mbps = throughput_mbps(mib(4), t);
        assert!((480.0..640.0).contains(&mbps), "GA620 raw TCP {mbps} Mbps");
    }

    #[test]
    fn trendnet_default_buffers_flatten_near_290mbps() {
        let mut spec = pcs_trendnet();
        spec.kernel = hwmodel::presets::linux_2_4(); // default sockbuf ceiling
        let bufs = spec.kernel.default_sockbuf;
        let t = one_way(spec, mib(4), TcpParams::with_bufs(bufs));
        let mbps = throughput_mbps(mib(4), t);
        assert!(
            (230.0..330.0).contains(&mbps),
            "TrendNet default {mbps} Mbps"
        );
    }

    #[test]
    fn trendnet_512k_buffers_restore_rate() {
        let t = one_way(pcs_trendnet(), mib(4), TcpParams::with_bufs(kib(512)));
        let mbps = throughput_mbps(mib(4), t);
        assert!(mbps > 450.0, "TrendNet tuned {mbps} Mbps");
    }

    #[test]
    fn ds20_jumbo_reaches_900mbps() {
        let t = one_way(
            ds20s_syskonnect_jumbo(),
            mib(4),
            TcpParams::with_bufs(kib(512)),
        );
        let mbps = throughput_mbps(mib(4), t);
        assert!((850.0..990.0).contains(&mbps), "DS20 jumbo raw {mbps} Mbps");
    }

    #[test]
    fn block_sync_small_window_hits_delack_collapse() {
        // MPICH/p4 with P4_SOCKBUFSIZE=32k: ~75 Mbps (§4.1).
        let mut params = TcpParams::with_bufs(kib(32));
        params.block_sync_writes = true;
        let t = one_way(pcs_ga620(), mib(2), params);
        let mbps = throughput_mbps(mib(2), t);
        assert!((50.0..110.0).contains(&mbps), "p4 32k collapse {mbps} Mbps");
        // Without block-sync writes, 32k does not collapse on the GA620.
        let t2 = one_way(pcs_ga620(), mib(2), TcpParams::with_bufs(kib(32)));
        let mbps2 = throughput_mbps(mib(2), t2);
        assert!(mbps2 > 3.0 * mbps, "plain 32k {mbps2} vs p4 {mbps}");
    }

    #[test]
    fn throughput_monotone_in_buffer_size() {
        let sizes = [kib(16), kib(32), kib(64), kib(128), kib(256), kib(512)];
        let mut last = 0.0;
        for &b in &sizes {
            let t = one_way(pcs_trendnet(), mib(2), TcpParams::with_bufs(b));
            let mbps = throughput_mbps(mib(2), t);
            assert!(
                mbps + 1.0 >= last,
                "throughput dropped at buf {b}: {mbps} < {last}"
            );
            last = mbps;
        }
    }

    #[test]
    fn sockbuf_clamped_by_kernel_ceiling() {
        let mut eng = Fabric::engine(hwmodel::ClusterSpec {
            kernel: hwmodel::presets::linux_2_4(),
            ..pcs_ga620()
        });
        let conn = open(&mut eng.world, TcpParams::with_bufs(mib(8)));
        let tcp = tcp_mut(&mut eng.world, conn);
        assert_eq!(tcp.window, kib(128)); // 2.4 default rmem_max
    }

    #[test]
    fn bidirectional_pingpong_roundtrip() {
        let mut eng = Fabric::engine(pcs_ga620());
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            1000,
            Box::new(move |e| {
                // pong
                send(
                    e,
                    conn,
                    1,
                    1000,
                    Box::new(move |e| done2.set(Some(e.now()))),
                );
            }),
        );
        eng.run();
        let rtt = done.get().expect("pong missing").as_micros_f64();
        // Round trip should be roughly 2x the one-way latency.
        assert!((200.0..400.0).contains(&rtt), "rtt {rtt} us");
    }

    #[test]
    fn back_to_back_sends_are_fifo() {
        let mut eng = Fabric::engine(pcs_ga620());
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let order = Rc::clone(&order);
            send(
                &mut eng,
                conn,
                0,
                100_000,
                Box::new(move |_| order.borrow_mut().push(i)),
            );
        }
        eng.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_byte_send_still_delivers() {
        let t = one_way(pcs_ga620(), 0, TcpParams::with_bufs(kib(512)));
        assert!(t > 0.0);
    }

    #[test]
    fn lossless_fault_plan_does_not_perturb() {
        let base = one_way(pcs_ga620(), mib(1), TcpParams::with_bufs(kib(512)));
        let mut eng = Fabric::engine(pcs_ga620());
        eng.world
            .install_faults(faultlab::FaultPlan::parse("seed=9").expect("plan"));
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            mib(1),
            Box::new(move |e| done2.set(Some(e.now()))),
        );
        eng.run();
        let t = done.get().expect("delivered").as_secs_f64();
        assert_eq!(t, base, "lossless plan must be byte-identical");
        assert!(!eng.world.fault_counters().expect("installed").any());
    }

    #[test]
    fn packet_loss_costs_throughput_via_retransmits() {
        let base = one_way(pcs_ga620(), mib(1), TcpParams::with_bufs(kib(512)));
        let mut eng = Fabric::engine(pcs_ga620());
        eng.world
            .install_faults(faultlab::FaultPlan::parse("seed=4,loss=0.02,rto=2ms").expect("plan"));
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            mib(1),
            Box::new(move |e| done2.set(Some(e.now()))),
        );
        eng.run();
        let t = done.get().expect("delivered despite loss").as_secs_f64();
        let counters = eng.world.fault_counters().expect("installed");
        assert!(counters.dropped > 0, "{counters}");
        assert!(counters.retransmits > 0, "{counters}");
        assert_eq!(counters.conn_deaths, 0, "{counters}");
        assert!(t > 1.5 * base, "loss barely hurt: {t} vs {base}");
    }

    #[test]
    fn certain_loss_kills_the_connection() {
        // loss=1 with a small retransmission budget: the transfer never
        // completes and the connection marks itself dead — the paper's
        // large-message runs that "simply die".
        let mut eng = Fabric::engine(pcs_ga620());
        eng.world.install_faults(
            faultlab::FaultPlan::parse("seed=1,loss=1.0,retrans=3,rto=1ms").expect("plan"),
        );
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            100_000,
            Box::new(move |_| done2.set(true)),
        );
        eng.run();
        assert!(!done.get(), "delivery must never fire on a dead conn");
        let tcp = tcp_mut(&mut eng.world, conn);
        assert!(tcp.dead);
        let counters = eng.world.fault_counters().expect("installed");
        assert_eq!(counters.conn_deaths, 1, "{counters}");
        assert_eq!(counters.retransmits, 3, "{counters}");
    }

    #[test]
    fn degradation_window_slows_only_affected_interval() {
        // A transfer that starts inside a 4x-slowdown window takes longer
        // than the fault-free one; one far past the window does not.
        let base = one_way(pcs_ga620(), mib(1), TcpParams::with_bufs(kib(512)));
        let mut eng = Fabric::engine(pcs_ga620());
        eng.world
            .install_faults(faultlab::FaultPlan::parse("degrade=0us..1s@0.25").expect("plan"));
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            mib(1),
            Box::new(move |e| done2.set(Some(e.now()))),
        );
        eng.run();
        let slowed = done.get().expect("delivered").as_secs_f64();
        assert!(
            slowed > 1.5 * base,
            "window did not bite: {slowed} vs {base}"
        );
    }

    #[test]
    fn delivered_bytes_accounted() {
        let mut eng = Fabric::engine(pcs_ga620());
        let conn = open(&mut eng.world, TcpParams::with_bufs(kib(512)));
        send(&mut eng, conn, 0, 50_000, Box::new(|_| {}));
        send(&mut eng, conn, 1, 20_000, Box::new(|_| {}));
        eng.run();
        let tcp = tcp_mut(&mut eng.world, conn);
        assert_eq!(tcp.bytes_delivered, 70_000);
    }
}
