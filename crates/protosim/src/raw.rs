//! OS-bypass message transports: Myrinet GM and VIA.
//!
//! Unlike the TCP path, these fabrics move registered user memory with no
//! kernel per-packet work and no socket-buffer window (§5, §6): the
//! pipeline is *library → PCI DMA → NIC processor → wire → NIC processor
//! → PCI DMA → completion*. What distinguishes the variants:
//!
//! * **GM on Myrinet** — the 66 MHz LANai RISC processor is the per-byte
//!   bottleneck (~800 Mbps on the PCI64A cards); the receive mode sets the
//!   completion cost: Polling ≈ free (16 µs total latency), Blocking pays
//!   an interrupt + wakeup (36 µs), Hybrid measures like Polling (§5).
//! * **Giganet cLAN** — hardware VIA through one switch hop, ~10 µs
//!   latency, ~800 Mbps (§6.2).
//! * **M-VIA** — a *software* VIA over the SysKonnect GigE cards: each
//!   packet pays an emulated-doorbell/kernel-trap cost, capping the rate
//!   at ~425 Mbps with a 42 µs latency (§6.2).

use std::collections::VecDeque;

use simcore::trace::{stages, SpanRec};
use simcore::{SimDuration, SimTime};

use crate::fabric::{flow_track, Conn, ConnId, Continuation, Fabric, Net};

/// How the receiving process learns of a completed message (GM's
/// `--gm-recv` flag, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvMode {
    /// Busy-spin on the completion queue: lowest latency, burns the CPU.
    Polling,
    /// Sleep on an interrupt: +20 µs wakeup per message.
    Blocking,
    /// Poll briefly, then block: measures like polling under NetPIPE but
    /// does not burn the CPU of a loaded node.
    Hybrid,
}

impl RecvMode {
    /// Per-message completion cost, µs.
    pub fn completion_us(self) -> f64 {
        match self {
            RecvMode::Polling | RecvMode::Hybrid => 2.0,
            RecvMode::Blocking => 20.0,
        }
    }
}

/// Parameters of an OS-bypass transport.
#[derive(Debug, Clone)]
pub struct RawParams {
    /// Fabric packet (fragment) size, bytes.
    pub pkt_bytes: u32,
    /// Per-packet host software cost, µs (tiny for GM/Giganet; the
    /// dominant term for the software M-VIA).
    pub sw_pkt_us: f64,
    /// Fixed per-message library send overhead, µs.
    pub send_overhead_us: f64,
    /// Completion notification mode.
    pub recv_mode: RecvMode,
    /// Per-packet header bytes on the wire.
    pub header_bytes: u32,
}

impl RawParams {
    /// Myricom GM defaults on the PCI64A cards.
    pub fn gm(recv_mode: RecvMode) -> RawParams {
        RawParams {
            pkt_bytes: 4096,
            sw_pkt_us: 2.0,
            send_overhead_us: 4.0,
            recv_mode,
            header_bytes: 16,
        }
    }

    /// Giganet cLAN hardware VIA.
    pub fn giganet() -> RawParams {
        RawParams {
            pkt_bytes: 4096,
            sw_pkt_us: 0.5,
            send_overhead_us: 1.5,
            recv_mode: RecvMode::Polling,
            header_bytes: 16,
        }
    }

    /// M-VIA 1.2b2: software VIA over the sk98lin GigE driver. The
    /// per-packet software cost (doorbell emulation, kernel trap) is the
    /// throughput bottleneck (§6.2: ~425 Mbps, 42 µs).
    pub fn mvia_sk98lin() -> RawParams {
        RawParams {
            pkt_bytes: 1448,
            sw_pkt_us: 26.0,
            send_overhead_us: 2.0,
            recv_mode: RecvMode::Polling,
            header_bytes: 52,
        }
    }
}

struct RawJob {
    delivered: u64,
    total: u64,
    /// Trace message-correlation id (allocated even when untraced).
    msg: u64,
    on_delivered: Option<Continuation>,
}

/// An open OS-bypass connection.
pub struct RawConn {
    /// Transport parameters.
    pub params: RawParams,
    /// Which NIC/wire pair this connection uses.
    pub channel: usize,
    dirs: [VecDeque<RawJob>; 2],
    /// Total bytes delivered (both directions).
    pub bytes_delivered: u64,
}

/// Open an OS-bypass connection between the two hosts.
pub fn open(fabric: &mut Fabric, params: RawParams) -> ConnId {
    open_on_channel(fabric, params, 0)
}

/// Open an OS-bypass connection over NIC/wire pair `channel`.
pub fn open_on_channel(fabric: &mut Fabric, params: RawParams, channel: usize) -> ConnId {
    assert!(
        channel < fabric.wires.len(),
        "channel {channel} out of range ({} installed)",
        fabric.wires.len()
    );
    fabric.push_conn(Conn::Raw(RawConn {
        params,
        channel,
        dirs: [VecDeque::new(), VecDeque::new()],
        bytes_delivered: 0,
    }))
}

/// Send `bytes` from endpoint `from`. No window: the fabric's hardware
/// flow control never limits a two-node ping-pong.
pub fn send(eng: &mut Net, conn: ConnId, from: usize, bytes: u64, on_delivered: Continuation) {
    let now = eng.now();
    let msg = eng.world.alloc_msg();
    let mut deliveries: Vec<(SimTime, u64)> = Vec::new();
    {
        let Fabric {
            spec,
            hosts,
            wires,
            conns,
            tracer,
            ..
        } = &mut eng.world;
        let raw = match &mut conns[conn.0] {
            Conn::Raw(r) => r,
            // lint:allow(panic) -- ConnId was issued by this module's connect(); a mismatch is a caller bug, not a runtime condition
            _ => panic!("connection {conn:?} is not a raw transport"),
        };
        let p = raw.params.clone();
        let channel = raw.channel;
        raw.dirs[from].push_back(RawJob {
            delivered: 0,
            total: bytes.max(1),
            msg,
            on_delivered: Some(on_delivered),
        });
        let (sender, receiver) = (from, 1 - from);
        let path = SimDuration::from_micros_f64(spec.path_latency_us());
        let ft = flow_track(from);
        if let Some(t) = tracer.as_ref() {
            t.set_message(msg);
            t.instant(stages::SEND, ft, now, bytes.max(1), msg);
        }
        let mut remaining = bytes.max(1);
        let mut first = true;
        while remaining > 0 {
            let seg = remaining.min(u64::from(p.pkt_bytes));
            let mut sw = SimDuration::from_micros_f64(p.sw_pkt_us);
            if first {
                sw += SimDuration::from_micros_f64(p.send_overhead_us);
                first = false;
            }
            // Host library work (no kernel copy: registered memory DMA).
            let t1 = hosts[sender].cpu.serve_for(now, sw, seg);
            let on_bus = seg + u64::from(p.header_bytes);
            let t2 = hosts[sender].pci.serve(t1, on_bus);
            // The NIC-processor stage (LANai on Myrinet) is charged once
            // per packet; it covers the tx+rx firmware work in aggregate,
            // matching the measured per-hop costs.
            let t3 = hosts[sender].nics[channel].serve(t2, on_bus);
            let t4 = wires[channel][from].serve(t3, on_bus);
            let t5 = hosts[receiver].pci.serve(t4 + path, on_bus);
            if let Some(t) = tracer.as_ref() {
                if path.as_nanos() > 0 {
                    t.span(SpanRec {
                        stage: stages::WIRE_LATENCY,
                        track: ft,
                        start: t4,
                        end: t4 + path,
                        bytes: seg,
                        msg,
                    });
                }
            }
            deliveries.push((t5, seg));
            remaining -= seg;
        }
    }
    for (t, seg) in deliveries {
        eng.schedule_at(t, move |e| on_deliver(e, conn, from, seg));
    }
}

fn on_deliver(eng: &mut Net, conn: ConnId, dir: usize, seg: u64) {
    let now = eng.now();
    let mut completion: Option<(Continuation, SimDuration)> = None;
    let mut done = (0u64, 0u64); // (msg, total)
    {
        let raw = match &mut eng.world.conns[conn.0] {
            Conn::Raw(r) => r,
            // lint:allow(panic) -- events on this conn are only scheduled by raw code paths
            _ => unreachable!(),
        };
        raw.bytes_delivered += seg;
        let job = raw.dirs[dir]
            .front_mut()
            // lint:allow(expect) -- a delivery event is only scheduled while its job is queued; an empty queue is an engine bug
            .expect("raw delivery with no job");
        job.delivered += seg;
        if job.delivered == job.total {
            // lint:allow(expect) -- front_mut() above proved the queue is non-empty under the same borrow
            let mut job = raw.dirs[dir].pop_front().expect("front job vanished");
            let cost = SimDuration::from_micros_f64(raw.params.recv_mode.completion_us());
            done = (job.msg, job.total);
            if let Some(k) = job.on_delivered.take() {
                completion = Some((k, cost));
            }
        }
    }
    if let Some((k, cost)) = completion {
        let (msg, total) = done;
        eng.world
            .trace_span(stages::COMPLETION, flow_track(dir), now, now + cost, 0, msg);
        eng.world
            .trace_instant(stages::RECV, flow_track(dir), now + cost, total, msg);
        eng.schedule_at(now + cost, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_giganet, pcs_mvia_syskonnect, pcs_myrinet};
    use simcore::units::{mib, throughput_mbps};
    use std::cell::Cell;
    use std::rc::Rc;

    fn one_way(spec: hwmodel::ClusterSpec, bytes: u64, params: RawParams) -> f64 {
        let mut eng = Fabric::engine(spec);
        let conn = open(&mut eng.world, params);
        let done = Rc::new(Cell::new(None));
        let done2 = Rc::clone(&done);
        send(
            &mut eng,
            conn,
            0,
            bytes,
            Box::new(move |e| done2.set(Some(e.now()))),
        );
        eng.run();
        done.get().expect("undelivered").as_secs_f64()
    }

    #[test]
    fn gm_polling_latency_near_16us() {
        let t = one_way(pcs_myrinet(), 8, RawParams::gm(RecvMode::Polling));
        let us = t * 1e6;
        assert!((10.0..22.0).contains(&us), "GM latency {us} us");
    }

    #[test]
    fn gm_blocking_latency_near_36us() {
        let p = one_way(pcs_myrinet(), 8, RawParams::gm(RecvMode::Polling)) * 1e6;
        let b = one_way(pcs_myrinet(), 8, RawParams::gm(RecvMode::Blocking)) * 1e6;
        assert!((b - p - 18.5).abs() < 2.0, "polling {p} vs blocking {b}");
        assert!((28.0..44.0).contains(&b), "blocking latency {b} us");
    }

    #[test]
    fn gm_hybrid_measures_like_polling() {
        let p = one_way(pcs_myrinet(), 100_000, RawParams::gm(RecvMode::Polling));
        let h = one_way(pcs_myrinet(), 100_000, RawParams::gm(RecvMode::Hybrid));
        assert_eq!(p, h);
    }

    #[test]
    fn gm_bandwidth_near_800mbps() {
        let t = one_way(pcs_myrinet(), mib(4), RawParams::gm(RecvMode::Polling));
        let mbps = throughput_mbps(mib(4), t);
        assert!((720.0..880.0).contains(&mbps), "raw GM {mbps} Mbps");
    }

    #[test]
    fn giganet_latency_near_10us_and_800mbps() {
        let lat = one_way(pcs_giganet(), 8, RawParams::giganet()) * 1e6;
        assert!((6.0..14.0).contains(&lat), "Giganet latency {lat} us");
        let t = one_way(pcs_giganet(), mib(4), RawParams::giganet());
        let mbps = throughput_mbps(mib(4), t);
        assert!((700.0..900.0).contains(&mbps), "Giganet {mbps} Mbps");
    }

    #[test]
    fn mvia_software_costs_dominate() {
        let lat = one_way(pcs_mvia_syskonnect(), 8, RawParams::mvia_sk98lin()) * 1e6;
        assert!((34.0..50.0).contains(&lat), "M-VIA latency {lat} us");
        let t = one_way(pcs_mvia_syskonnect(), mib(4), RawParams::mvia_sk98lin());
        let mbps = throughput_mbps(mib(4), t);
        assert!((370.0..480.0).contains(&mbps), "M-VIA {mbps} Mbps");
    }

    #[test]
    fn pingpong_and_fifo_order() {
        let mut eng = Fabric::engine(pcs_myrinet());
        let conn = open(&mut eng.world, RawParams::gm(RecvMode::Polling));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let log = Rc::clone(&log);
            send(
                &mut eng,
                conn,
                0,
                10_000,
                Box::new(move |_| log.borrow_mut().push(i)),
            );
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }
}
