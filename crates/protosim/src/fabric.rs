//! The simulated two-node fabric: runtime resources + open connections.
//!
//! A [`Fabric`] is the discrete-event *world* for one cluster
//! configuration. It instantiates [`simcore::Resource`]s for each host's
//! protocol CPU, PCI bus and NIC processor, and for the two wire
//! directions, then tracks every open connection. The transport modules
//! ([`crate::tcp`], [`crate::raw`], [`crate::local`]) drive messages
//! through these shared resources, so contention (e.g. a daemon copying
//! while the kernel processes packets on the same CPU) emerges from the
//! event schedule rather than from closed-form formulas.

use faultlab::{FaultCounters, FaultLottery, FaultPlan};
use hwmodel::ClusterSpec;
use simcore::trace::{SharedSink, SpanRec};
use simcore::{Engine, Resource, SimDuration, SimTime};

use crate::local::LocalConn;
use crate::raw::RawConn;
use crate::tcp::TcpConn;

// ---------------------------------------------------------------------
// Trace-track allocation (see DESIGN §10). Tracks are globally unique
// timeline ids; exporters render one row per track, named by
// `track_label`.
// ---------------------------------------------------------------------

/// Track of host `h`'s protocol CPU.
pub fn cpu_track(h: usize) -> u32 {
    h as u32 * 16
}

/// Track of host `h`'s PCI bus.
pub fn pci_track(h: usize) -> u32 {
    h as u32 * 16 + 1
}

/// Track of host `h`'s NIC engine on channel `ch`.
pub fn nic_track(h: usize, ch: usize) -> u32 {
    h as u32 * 16 + 2 + ch as u32
}

/// Track of the wire on channel `ch`, direction `dir` (0 = host0→host1).
pub fn wire_track(ch: usize, dir: usize) -> u32 {
    32 + 2 * ch as u32 + dir as u32
}

/// Track for protocol-gap spans (wire latency, interrupt coalescing,
/// window stalls, wakeups) of messages sent by endpoint `from`. These
/// spans may overlap each other (segments pipeline), so they get their
/// own timeline instead of a hardware resource's.
pub fn flow_track(from: usize) -> u32 {
    48 + from as u32
}

/// Track for message-passing-library phase spans (pack, handshake,
/// memcpy, daemon hops) on host `h`.
pub fn lib_track(h: usize) -> u32 {
    56 + h as u32
}

/// Is `track` a serially-occupied hardware resource (CPU/PCI/NIC/wire)?
/// Only these contribute to bottleneck accounting; flow and library
/// tracks hold possibly-overlapping protocol spans.
pub fn is_hw_track(track: u32) -> bool {
    track < 48
}

/// Human-readable name for a track id, matching the historical stage
/// names of `clusterlab::Breakdown` ("host0 cpu", "wire0 ->", ...).
pub fn track_label(track: u32) -> String {
    match track {
        0..=31 => {
            let h = track / 16;
            match track % 16 {
                0 => format!("host{h} cpu"),
                1 => format!("host{h} pci"),
                r => format!("host{h} nic{}", r - 2),
            }
        }
        32..=47 => {
            let ch = (track - 32) / 2;
            if (track - 32) % 2 == 0 {
                format!("wire{ch} ->")
            } else {
                format!("wire{ch} <-")
            }
        }
        48 => "flow 0->1".to_string(),
        49 => "flow 1->0".to_string(),
        _ => format!("host{} lib", track.saturating_sub(56)),
    }
}

/// Runtime state for one host.
pub struct HostRt {
    /// Protocol-processing CPU. Reserved with explicit durations
    /// (`serve_for`) computed from the host's [`hwmodel::CpuModel`].
    pub cpu: Resource,
    /// The PCI bus the NIC(s) DMA across (shared by all channels — the
    /// reason channel bonding does not scale linearly on 32-bit PCI).
    pub pci: Resource,
    /// The NIC + driver per-frame processing engines (firmware on the
    /// GigE cards, the LANai RISC processor on Myrinet), one per
    /// installed card (`ClusterSpec::nic_count`).
    pub nics: Vec<Resource>,
}

/// Index of an open connection within a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub usize);

/// An open connection of any transport type.
pub enum Conn {
    /// Kernel TCP between the two hosts.
    Tcp(TcpConn),
    /// OS-bypass message transport (GM or VIA) between the two hosts.
    Raw(RawConn),
    /// Same-host pipe/loopback channel (daemon hops).
    Local(LocalConn),
}

/// The discrete-event world: one two-node cluster.
pub struct Fabric {
    /// The hardware/kernel configuration being simulated.
    pub spec: ClusterSpec,
    /// Host runtime state; index 0 and 1.
    pub hosts: [HostRt; 2],
    /// Directional wire resources per channel: `wires[ch][0]` carries
    /// host0→host1 on channel `ch`.
    pub wires: Vec<[Resource; 2]>,
    /// All open connections.
    pub conns: Vec<Conn>,
    /// Installed trace sink, if any (see [`instrument`]). Write-only:
    /// transports record spans here but never read it for decisions.
    pub tracer: Option<SharedSink>,
    /// Installed fault-injection lottery, if any (see
    /// [`Fabric::install_faults`]). Unlike the tracer this *is* consulted
    /// by the transport — that is its purpose — but every decision is a
    /// pure function of the plan's seed and the call order, so runs stay
    /// reproducible.
    pub faults: Option<Box<FaultLottery>>,
    /// Monotonic message-id allocator (advances identically whether or
    /// not a tracer is installed, preserving determinism).
    next_msg: u64,
}

/// Shorthand for the engine type every transport event runs on.
pub type Net = Engine<Fabric>;

/// A message-completion continuation.
pub type Continuation = Box<dyn FnOnce(&mut Net)>;

impl Fabric {
    /// Build the runtime world for a cluster configuration.
    pub fn new(spec: ClusterSpec) -> Fabric {
        let channels = spec.nic_count.max(1) as usize;
        let mk_host = || HostRt {
            cpu: Resource::new("cpu", spec.host.cpu.kernel_copy_bps),
            pci: Resource::with_overhead(
                "pci",
                spec.pci_effective_bps(),
                SimDuration::from_micros_f64(spec.host.pci.per_txn_us),
            ),
            nics: (0..channels)
                .map(|_| {
                    Resource::with_overhead(
                        "nic",
                        spec.nic.nic_byte_rate,
                        SimDuration::from_micros_f64(spec.nic.nic_pkt_us),
                    )
                })
                .collect(),
        };
        // An immature driver caps the whole path (GA622, §7): model as a
        // reduced wire rate, the stage every byte must cross.
        let wire_rate = match spec.nic.driver_cap_bps {
            Some(cap) => cap.min(spec.nic.wire_bps),
            None => spec.nic.wire_bps,
        };
        Fabric {
            hosts: [mk_host(), mk_host()],
            wires: (0..channels)
                .map(|_| {
                    [
                        Resource::new("wire->", wire_rate),
                        Resource::new("wire<-", wire_rate),
                    ]
                })
                .collect(),
            conns: Vec::new(),
            spec,
            tracer: None,
            faults: None,
            next_msg: 0,
        }
    }

    /// Create an engine over a fresh fabric for `spec`.
    pub fn engine(spec: ClusterSpec) -> Net {
        Engine::new(Fabric::new(spec))
    }

    /// Register a connection and return its id.
    pub fn push_conn(&mut self, conn: Conn) -> ConnId {
        let id = ConnId(self.conns.len());
        self.conns.push(conn);
        id
    }

    /// One-way path propagation + switching delay.
    pub fn path_latency(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.spec.path_latency_us())
    }

    /// Install `sink` on every hardware resource (CPU, PCI, NIC, wire)
    /// with its canonical track id, and keep a handle for protocol and
    /// library spans. Prefer [`instrument`], which also hooks the engine.
    pub fn install_tracer(&mut self, sink: SharedSink) {
        for (h, host) in self.hosts.iter_mut().enumerate() {
            host.cpu.set_trace(sink.clone(), cpu_track(h));
            host.pci.set_trace(sink.clone(), pci_track(h));
            for (ch, nic) in host.nics.iter_mut().enumerate() {
                nic.set_trace(sink.clone(), nic_track(h, ch));
            }
        }
        for (ch, pair) in self.wires.iter_mut().enumerate() {
            for (dir, wire) in pair.iter_mut().enumerate() {
                wire.set_trace(sink.clone(), wire_track(ch, dir));
            }
        }
        self.tracer = Some(sink);
    }

    /// Install a fault-injection plan: segments crossing the wires are
    /// from now on submitted to a [`FaultLottery`] seeded from
    /// `plan.seed`. A lossless plan is guaranteed not to perturb the
    /// schedule at all (the lottery short-circuits without drawing).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultLottery::new(plan)));
    }

    /// Re-install an existing lottery (drivers that build a fresh fabric
    /// per measurement carry the lottery across so the RNG stream — and
    /// therefore the fault pattern — keeps advancing over the sweep).
    pub fn adopt_faults(&mut self, lottery: Box<FaultLottery>) {
        self.faults = Some(lottery);
    }

    /// Remove and return the installed lottery (with its counters).
    pub fn take_faults(&mut self) -> Option<Box<FaultLottery>> {
        self.faults.take()
    }

    /// Fault-event counters so far, if a plan is installed.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults.as_ref().map(|f| f.counters)
    }

    /// Allocate the next message-correlation id (1-based; 0 means
    /// "unattributed"). Advances even when untraced so that enabling
    /// tracing cannot perturb anything.
    pub fn alloc_msg(&mut self) -> u64 {
        self.next_msg += 1;
        self.next_msg
    }

    /// Point the sink's message register at `id`: subsequent resource
    /// spans are attributed to that message.
    pub fn set_trace_msg(&self, id: u64) {
        if let Some(t) = &self.tracer {
            t.set_message(id);
        }
    }

    /// Record an explicit span if a tracer is installed.
    pub fn trace_span(
        &self,
        stage: &'static str,
        track: u32,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        msg: u64,
    ) {
        if let Some(t) = &self.tracer {
            t.span(SpanRec {
                stage,
                track,
                start,
                end,
                bytes,
                msg,
            });
        }
    }

    /// Record an instantaneous event if a tracer is installed.
    pub fn trace_instant(&self, name: &'static str, track: u32, at: SimTime, bytes: u64, msg: u64) {
        if let Some(t) = &self.tracer {
            t.instant(name, track, at, bytes, msg);
        }
    }
}

/// Install `sink` on the fabric's resources *and* the engine (event
/// dispatch counter). The one-call entry point used by
/// `netpipe::SimDriver`, `clusterlab::measure_breakdown`, and tests.
pub fn instrument(eng: &mut Net, sink: SharedSink) {
    eng.world.install_tracer(sink.clone());
    eng.set_trace_sink(sink);
}

/// Dispatch a message send on any connection type.
///
/// `from` is the sending endpoint (0 or 1; for [`Conn::Local`] both
/// endpoints live on the connection's host). `on_delivered` runs when the
/// last byte has reached the receiving application.
pub fn send(eng: &mut Net, conn: ConnId, from: usize, bytes: u64, on_delivered: Continuation) {
    assert!(from < 2, "endpoint index must be 0 or 1");
    match &eng.world.conns[conn.0] {
        Conn::Tcp(_) => crate::tcp::send(eng, conn, from, bytes, on_delivered),
        Conn::Raw(_) => crate::raw::send(eng, conn, from, bytes, on_delivered),
        Conn::Local(_) => crate::local::send(eng, conn, bytes, on_delivered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_ga620, pcs_myrinet};

    #[test]
    fn fabric_builds_resources_from_spec() {
        let fab = Fabric::new(pcs_ga620());
        assert_eq!(fab.conns.len(), 0);
        assert_eq!(fab.wires.len(), 1);
        assert!(fab.wires[0][0].rate() > 1e8);
        assert!(fab.hosts[0].pci.rate() < fab.wires[0][0].rate());
    }

    #[test]
    fn dual_nic_spec_builds_two_channels() {
        use hwmodel::presets::pcs_ga620_dual;
        let fab = Fabric::new(pcs_ga620_dual());
        assert_eq!(fab.wires.len(), 2);
        assert_eq!(fab.hosts[0].nics.len(), 2);
        // One shared PCI bus and CPU per host.
        assert_eq!(fab.hosts.len(), 2);
    }

    #[test]
    fn driver_cap_reduces_wire_rate() {
        use hwmodel::presets::ds20s_ga622;
        let capped = Fabric::new(ds20s_ga622());
        let free = Fabric::new(pcs_ga620());
        assert!(capped.wires[0][0].rate() < free.wires[0][0].rate());
    }

    #[test]
    fn myrinet_nic_resource_is_rate_limited() {
        let fab = Fabric::new(pcs_myrinet());
        // The LANai processor has a finite streaming rate.
        assert!(fab.hosts[0].nics[0].rate().is_finite());
        let ge = Fabric::new(pcs_ga620());
        assert!(ge.hosts[0].nics[0].rate().is_infinite());
    }

    #[test]
    fn conn_ids_are_sequential() {
        let mut fab = Fabric::new(pcs_ga620());
        let a = fab.push_conn(Conn::Local(crate::local::LocalConn::loopback(0)));
        let b = fab.push_conn(Conn::Local(crate::local::LocalConn::loopback(1)));
        assert_eq!(a, ConnId(0));
        assert_eq!(b, ConnId(1));
    }

    #[test]
    fn track_labels_match_breakdown_stage_names() {
        assert_eq!(track_label(cpu_track(0)), "host0 cpu");
        assert_eq!(track_label(pci_track(1)), "host1 pci");
        assert_eq!(track_label(nic_track(0, 1)), "host0 nic1");
        assert_eq!(track_label(wire_track(0, 0)), "wire0 ->");
        assert_eq!(track_label(wire_track(1, 1)), "wire1 <-");
        assert_eq!(track_label(flow_track(0)), "flow 0->1");
        assert_eq!(track_label(lib_track(1)), "host1 lib");
        assert!(is_hw_track(wire_track(3, 1)));
        assert!(!is_hw_track(flow_track(0)));
        assert!(!is_hw_track(lib_track(0)));
    }

    #[test]
    fn tracks_are_unique_across_resources() {
        let mut seen = std::collections::BTreeSet::new();
        for h in 0..2 {
            assert!(seen.insert(cpu_track(h)));
            assert!(seen.insert(pci_track(h)));
            for ch in 0..4 {
                assert!(seen.insert(nic_track(h, ch)));
            }
            assert!(seen.insert(lib_track(h)));
            assert!(seen.insert(flow_track(h)));
        }
        for ch in 0..4 {
            for dir in 0..2 {
                assert!(seen.insert(wire_track(ch, dir)));
            }
        }
    }

    #[test]
    fn install_tracer_reaches_every_resource() {
        use simcore::trace::{SpanRec, TraceSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Log(RefCell<Vec<u32>>);
        impl TraceSink for Log {
            fn span(&self, rec: SpanRec) {
                self.0.borrow_mut().push(rec.track);
            }
        }

        let log = Rc::new(Log::default());
        let mut fab = Fabric::new(pcs_ga620());
        fab.install_tracer(log.clone());
        let now = SimTime::ZERO;
        fab.hosts[0].cpu.serve(now, 10);
        fab.hosts[1].pci.serve(now, 10);
        fab.hosts[1].nics[0].serve(now, 10);
        fab.wires[0][1].serve(now, 10);
        assert_eq!(
            *log.0.borrow(),
            vec![
                cpu_track(0),
                pci_track(1),
                nic_track(1, 0),
                wire_track(0, 1)
            ]
        );

        // Message ids allocate monotonically from 1.
        assert_eq!(fab.alloc_msg(), 1);
        assert_eq!(fab.alloc_msg(), 2);
    }
}
