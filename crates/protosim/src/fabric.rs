//! The simulated two-node fabric: runtime resources + open connections.
//!
//! A [`Fabric`] is the discrete-event *world* for one cluster
//! configuration. It instantiates [`simcore::Resource`]s for each host's
//! protocol CPU, PCI bus and NIC processor, and for the two wire
//! directions, then tracks every open connection. The transport modules
//! ([`crate::tcp`], [`crate::raw`], [`crate::local`]) drive messages
//! through these shared resources, so contention (e.g. a daemon copying
//! while the kernel processes packets on the same CPU) emerges from the
//! event schedule rather than from closed-form formulas.

use hwmodel::ClusterSpec;
use simcore::{Engine, Resource, SimDuration};

use crate::local::LocalConn;
use crate::raw::RawConn;
use crate::tcp::TcpConn;

/// Runtime state for one host.
pub struct HostRt {
    /// Protocol-processing CPU. Reserved with explicit durations
    /// (`serve_for`) computed from the host's [`hwmodel::CpuModel`].
    pub cpu: Resource,
    /// The PCI bus the NIC(s) DMA across (shared by all channels — the
    /// reason channel bonding does not scale linearly on 32-bit PCI).
    pub pci: Resource,
    /// The NIC + driver per-frame processing engines (firmware on the
    /// GigE cards, the LANai RISC processor on Myrinet), one per
    /// installed card (`ClusterSpec::nic_count`).
    pub nics: Vec<Resource>,
}

/// Index of an open connection within a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub usize);

/// An open connection of any transport type.
pub enum Conn {
    /// Kernel TCP between the two hosts.
    Tcp(TcpConn),
    /// OS-bypass message transport (GM or VIA) between the two hosts.
    Raw(RawConn),
    /// Same-host pipe/loopback channel (daemon hops).
    Local(LocalConn),
}

/// The discrete-event world: one two-node cluster.
pub struct Fabric {
    /// The hardware/kernel configuration being simulated.
    pub spec: ClusterSpec,
    /// Host runtime state; index 0 and 1.
    pub hosts: [HostRt; 2],
    /// Directional wire resources per channel: `wires[ch][0]` carries
    /// host0→host1 on channel `ch`.
    pub wires: Vec<[Resource; 2]>,
    /// All open connections.
    pub conns: Vec<Conn>,
}

/// Shorthand for the engine type every transport event runs on.
pub type Net = Engine<Fabric>;

/// A message-completion continuation.
pub type Continuation = Box<dyn FnOnce(&mut Net)>;

impl Fabric {
    /// Build the runtime world for a cluster configuration.
    pub fn new(spec: ClusterSpec) -> Fabric {
        let channels = spec.nic_count.max(1) as usize;
        let mk_host = || HostRt {
            cpu: Resource::new("cpu", spec.host.cpu.kernel_copy_bps),
            pci: Resource::with_overhead(
                "pci",
                spec.pci_effective_bps(),
                SimDuration::from_micros_f64(spec.host.pci.per_txn_us),
            ),
            nics: (0..channels)
                .map(|_| {
                    Resource::with_overhead(
                        "nic",
                        spec.nic.nic_byte_rate,
                        SimDuration::from_micros_f64(spec.nic.nic_pkt_us),
                    )
                })
                .collect(),
        };
        // An immature driver caps the whole path (GA622, §7): model as a
        // reduced wire rate, the stage every byte must cross.
        let wire_rate = match spec.nic.driver_cap_bps {
            Some(cap) => cap.min(spec.nic.wire_bps),
            None => spec.nic.wire_bps,
        };
        Fabric {
            hosts: [mk_host(), mk_host()],
            wires: (0..channels)
                .map(|_| {
                    [
                        Resource::new("wire->", wire_rate),
                        Resource::new("wire<-", wire_rate),
                    ]
                })
                .collect(),
            conns: Vec::new(),
            spec,
        }
    }

    /// Create an engine over a fresh fabric for `spec`.
    pub fn engine(spec: ClusterSpec) -> Net {
        Engine::new(Fabric::new(spec))
    }

    /// Register a connection and return its id.
    pub fn push_conn(&mut self, conn: Conn) -> ConnId {
        let id = ConnId(self.conns.len());
        self.conns.push(conn);
        id
    }

    /// One-way path propagation + switching delay.
    pub fn path_latency(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.spec.path_latency_us())
    }
}

/// Dispatch a message send on any connection type.
///
/// `from` is the sending endpoint (0 or 1; for [`Conn::Local`] both
/// endpoints live on the connection's host). `on_delivered` runs when the
/// last byte has reached the receiving application.
pub fn send(eng: &mut Net, conn: ConnId, from: usize, bytes: u64, on_delivered: Continuation) {
    assert!(from < 2, "endpoint index must be 0 or 1");
    match &eng.world.conns[conn.0] {
        Conn::Tcp(_) => crate::tcp::send(eng, conn, from, bytes, on_delivered),
        Conn::Raw(_) => crate::raw::send(eng, conn, from, bytes, on_delivered),
        Conn::Local(_) => crate::local::send(eng, conn, bytes, on_delivered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_ga620, pcs_myrinet};

    #[test]
    fn fabric_builds_resources_from_spec() {
        let fab = Fabric::new(pcs_ga620());
        assert_eq!(fab.conns.len(), 0);
        assert_eq!(fab.wires.len(), 1);
        assert!(fab.wires[0][0].rate() > 1e8);
        assert!(fab.hosts[0].pci.rate() < fab.wires[0][0].rate());
    }

    #[test]
    fn dual_nic_spec_builds_two_channels() {
        use hwmodel::presets::pcs_ga620_dual;
        let fab = Fabric::new(pcs_ga620_dual());
        assert_eq!(fab.wires.len(), 2);
        assert_eq!(fab.hosts[0].nics.len(), 2);
        // One shared PCI bus and CPU per host.
        assert_eq!(fab.hosts.len(), 2);
    }

    #[test]
    fn driver_cap_reduces_wire_rate() {
        use hwmodel::presets::ds20s_ga622;
        let capped = Fabric::new(ds20s_ga622());
        let free = Fabric::new(pcs_ga620());
        assert!(capped.wires[0][0].rate() < free.wires[0][0].rate());
    }

    #[test]
    fn myrinet_nic_resource_is_rate_limited() {
        let fab = Fabric::new(pcs_myrinet());
        // The LANai processor has a finite streaming rate.
        assert!(fab.hosts[0].nics[0].rate().is_finite());
        let ge = Fabric::new(pcs_ga620());
        assert!(ge.hosts[0].nics[0].rate().is_infinite());
    }

    #[test]
    fn conn_ids_are_sequential() {
        let mut fab = Fabric::new(pcs_ga620());
        let a = fab.push_conn(Conn::Local(crate::local::LocalConn::loopback(0)));
        let b = fab.push_conn(Conn::Local(crate::local::LocalConn::loopback(1)));
        assert_eq!(a, ConnId(0));
        assert_eq!(b, ConnId(1));
    }
}
