//! An N-node switched fabric for application-pattern simulations.
//!
//! The paper measures two nodes back-to-back; its motivation (§1) is
//! clusters of many nodes. This module provides the minimal N-node
//! extension: every node has its own NIC pipeline (CPU per-packet work,
//! NIC engine), connected through a non-blocking switch with a fixed
//! per-hop latency and a per-port wire rate — the "moderately sized
//! cluster" the paper's socket-buffer remark contemplates. Transport
//! details below the library (windows, acks) are assumed tuned; this
//! fabric is for *pattern* studies (halo exchanges, collectives) where
//! per-link contention and serialization set the answer.

use hwmodel::nic::TCPIP_HEADERS;
use hwmodel::ClusterSpec;
use simcore::{Engine, Resource, SimDuration, SimTime};

/// One node's runtime resources.
pub struct Node {
    /// Protocol CPU (kernel per-packet + copies).
    pub cpu: Resource,
    /// NIC/driver per-frame engine (the GA620's firmware stage).
    pub nic: Resource,
    /// Transmit wire of the node's switch port.
    pub tx: Resource,
    /// Receive wire of the node's switch port.
    pub rx: Resource,
}

/// The N-node world: nodes around a non-blocking switch.
pub struct MultiNet {
    /// The per-node hardware description (all nodes identical).
    pub spec: ClusterSpec,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// Messages delivered so far (diagnostics).
    pub delivered: u64,
}

/// Engine alias for multi-node simulations.
pub type MultiEngine = Engine<MultiNet>;

/// Completion callback.
pub type MultiContinuation = Box<dyn FnOnce(&mut MultiEngine)>;

impl MultiNet {
    /// Build an `n`-node cluster of `spec` nodes joined by a switch.
    pub fn new(spec: ClusterSpec, n: usize) -> MultiNet {
        assert!(n >= 2, "a cluster needs at least two nodes");
        let mk = || {
            let wire_rate = spec
                .nic
                .driver_cap_bps
                .map_or(spec.nic.wire_bps, |c| c.min(spec.nic.wire_bps));
            Node {
                cpu: Resource::new("cpu", spec.host.cpu.kernel_copy_bps),
                nic: Resource::with_overhead(
                    "nic",
                    spec.nic.nic_byte_rate,
                    SimDuration::from_micros_f64(spec.nic.nic_pkt_us),
                ),
                tx: Resource::new("tx", wire_rate),
                rx: Resource::new("rx", wire_rate),
            }
        };
        MultiNet {
            nodes: (0..n).map(|_| mk()).collect(),
            spec,
            delivered: 0,
        }
    }

    /// Engine over a fresh `n`-node cluster.
    pub fn engine(spec: ClusterSpec, n: usize) -> MultiEngine {
        Engine::new(MultiNet::new(spec, n))
    }
}

/// Send `bytes` from node `from` to node `to` through the switch;
/// `k` runs when the last byte lands in `to`'s memory.
///
/// Pipeline per segment: sender CPU → sender NIC/port (tx) → switch hop →
/// receiver port (rx) → receiver CPU. The switch itself is non-blocking
/// (full bisection); ports serialize, which is where halo-exchange
/// contention appears.
pub fn send(eng: &mut MultiEngine, from: usize, to: usize, bytes: u64, k: MultiContinuation) {
    use std::cell::RefCell;
    use std::rc::Rc;
    assert!(from != to, "self-sends do not cross the fabric");
    let now = eng.now();
    // Segment arrival times at the receiver's port; the receiver's CPU
    // work is booked *when each segment arrives* (an event), never
    // eagerly — otherwise a send issued now would pre-empt the receiving
    // node's own future transmissions on its shared CPU.
    let mut arrivals: Vec<(SimTime, u64)> = Vec::new();
    {
        let MultiNet { spec, nodes, .. } = &mut eng.world;
        assert!(from < nodes.len() && to < nodes.len(), "node out of range");
        let mss = u64::from(spec.nic.mss(TCPIP_HEADERS));
        let cpu = &spec.host.cpu;
        // One switch hop plus propagation; coalescing charged at delivery.
        let hop = SimDuration::from_micros_f64(
            spec.switch_latency_us.max(0.5) + 0.05 + spec.nic.rx_coalesce_us,
        );
        let mut remaining = bytes.max(1);
        let mut first = true;
        while remaining > 0 {
            let seg = remaining.min(mss);
            remaining -= seg;
            let mut tx_work = SimDuration::from_micros_f64(cpu.kernel_pkt_tx_us)
                + SimDuration::for_bytes(seg, cpu.kernel_copy_bps);
            if first {
                tx_work += SimDuration::from_micros_f64(cpu.syscall_us);
                first = false;
            }
            let frame = seg + u64::from(TCPIP_HEADERS) + u64::from(spec.nic.framing_bytes);
            let t1 = nodes[from].cpu.serve_for(now, tx_work, seg);
            let t1b = nodes[from].nic.serve(t1, frame);
            let t2 = nodes[from].tx.serve(t1b, frame);
            let t3 = nodes[to].rx.serve(t2 + hop, frame);
            arrivals.push((t3, seg));
        }
    }
    let nsegs = arrivals.len() as u32;
    let segs_left = Rc::new(RefCell::new(nsegs));
    let k = Rc::new(RefCell::new(Some(k)));
    for (t3, seg) in arrivals {
        let segs_left = Rc::clone(&segs_left);
        let k = Rc::clone(&k);
        eng.schedule_at(t3, move |e| {
            let now = e.now();
            let cpu = &e.world.spec.host.cpu;
            let rx_work = SimDuration::from_micros_f64(cpu.kernel_pkt_rx_us)
                + SimDuration::for_bytes(seg, cpu.kernel_copy_bps);
            let t4 = e.world.nodes[to].cpu.serve_for(now, rx_work, seg);
            *segs_left.borrow_mut() -= 1;
            if *segs_left.borrow() == 0 {
                // Receiver CPU is FIFO and arrivals are in order, so the
                // last segment's completion is the message completion.
                let wakeup = SimDuration::from_micros_f64(
                    e.world.spec.kernel.rx_extra_us + e.world.spec.host.cpu.syscall_us,
                );
                // lint:allow(expect) -- the guard above fires exactly once per message; a second take is an engine bug
                let k = k.borrow_mut().take().expect("completion fired twice");
                e.schedule_at(t4 + wakeup, move |e| {
                    e.world.delivered += 1;
                    k(e);
                });
            }
        });
    }
}

/// Simulate `steps` bulk-synchronous halo-exchange steps on `n` nodes:
/// each step, every node computes for `compute` then exchanges
/// `halo_bytes` with each ring neighbour; the next step starts when every
/// node has its halos. Returns total simulated seconds.
pub fn ring_halo_steps(
    spec: &ClusterSpec,
    n: usize,
    halo_bytes: u64,
    compute: SimDuration,
    steps: u32,
) -> f64 {
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut eng = MultiNet::engine(spec.clone(), n);

    fn do_step(
        eng: &mut MultiEngine,
        n: usize,
        halo: u64,
        compute: SimDuration,
        left: u32,
        done: Rc<RefCell<Option<SimTime>>>,
    ) {
        if left == 0 {
            let now = eng.now();
            *done.borrow_mut() = Some(now);
            return;
        }
        // All nodes compute, then exchange with both ring neighbours.
        // The step barrier completes when the last halo lands.
        let pending = Rc::new(RefCell::new(2 * n as u32));
        let compute_end = eng.now() + compute;
        for node in 0..n {
            for dir in [1usize, n - 1] {
                let to = (node + dir) % n;
                let pending = Rc::clone(&pending);
                let done = Rc::clone(&done);
                eng.schedule_at(compute_end, move |e| {
                    send(
                        e,
                        node,
                        to,
                        halo,
                        Box::new(move |e| {
                            *pending.borrow_mut() -= 1;
                            if *pending.borrow() == 0 {
                                do_step(e, n, halo, compute, left - 1, done);
                            }
                        }),
                    );
                });
            }
        }
    }

    let done: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    do_step(&mut eng, n, halo_bytes, compute, steps, Rc::clone(&done));
    eng.run();
    // lint:allow(expect) -- eng.run() drains the event queue; an unset completion time means the model deadlocked
    let t = done.borrow().expect("halo steps never completed");
    t.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::{pcs_fast_ethernet, pcs_ga620};
    use simcore::units::{mib, throughput_mbps};
    use std::cell::Cell;
    use std::rc::Rc;

    fn one_way(n: usize, from: usize, to: usize, bytes: u64) -> f64 {
        let mut eng = MultiNet::engine(pcs_ga620(), n);
        let out = Rc::new(Cell::new(None));
        let o = Rc::clone(&out);
        send(
            &mut eng,
            from,
            to,
            bytes,
            Box::new(move |e| o.set(Some(e.now().as_secs_f64()))),
        );
        eng.run();
        out.get().unwrap()
    }

    #[test]
    fn point_to_point_matches_two_node_scale() {
        // The N-node fabric's pt2pt throughput is in the same regime as
        // the two-node model (same NIC stage dominates).
        let t = one_way(4, 0, 3, mib(4));
        let mbps = throughput_mbps(mib(4), t);
        assert!((450.0..700.0).contains(&mbps), "{mbps}");
        let lat = one_way(4, 1, 2, 8) * 1e6;
        assert!((80.0..160.0).contains(&lat), "{lat} us");
    }

    #[test]
    fn concurrent_disjoint_pairs_do_not_contend() {
        // 0->1 and 2->3 share nothing: together they take what one takes.
        let solo = one_way(4, 0, 1, mib(1));
        let mut eng = MultiNet::engine(pcs_ga620(), 4);
        let done = Rc::new(Cell::new(0u32));
        let t_end = Rc::new(Cell::new(0.0f64));
        for (a, b) in [(0usize, 1usize), (2, 3)] {
            let done = Rc::clone(&done);
            let t_end = Rc::clone(&t_end);
            send(
                &mut eng,
                a,
                b,
                mib(1),
                Box::new(move |e| {
                    done.set(done.get() + 1);
                    t_end.set(e.now().as_secs_f64());
                }),
            );
        }
        eng.run();
        assert_eq!(done.get(), 2);
        assert!(
            t_end.get() < solo * 1.05,
            "disjoint pairs contended: {} vs {}",
            t_end.get(),
            solo
        );
    }

    #[test]
    fn incast_serializes_on_the_receiver_port() {
        // 3 senders -> node 0: the receive port is the bottleneck, so it
        // takes ~3x one transfer.
        let solo = one_way(4, 1, 0, mib(1));
        let mut eng = MultiNet::engine(pcs_ga620(), 4);
        let t_end = Rc::new(Cell::new(0.0f64));
        for from in 1..4usize {
            let t_end = Rc::clone(&t_end);
            send(
                &mut eng,
                from,
                0,
                mib(1),
                Box::new(move |e| {
                    let t = e.now().as_secs_f64();
                    if t > t_end.get() {
                        t_end.set(t);
                    }
                }),
            );
        }
        eng.run();
        let ratio = t_end.get() / solo;
        assert!((2.0..3.6).contains(&ratio), "incast ratio {ratio}");
    }

    #[test]
    fn ring_halo_scales_with_compute_domination() {
        // Big compute grain: communication hides in the gaps; doubling
        // nodes at fixed per-node work keeps step time ~constant.
        let spec = pcs_fast_ethernet();
        let t4 = ring_halo_steps(&spec, 4, 10_000, SimDuration::from_millis(5), 3);
        let t8 = ring_halo_steps(&spec, 8, 10_000, SimDuration::from_millis(5), 3);
        assert!(
            (t8 / t4 - 1.0).abs() < 0.2,
            "weak-scaling step time: {t4} vs {t8}"
        );
    }

    #[test]
    fn ring_halo_communication_bound_grows_with_halo() {
        let spec = pcs_ga620();
        let small = ring_halo_steps(&spec, 4, 1_000, SimDuration::ZERO, 2);
        let big = ring_halo_steps(&spec, 4, 1_000_000, SimDuration::ZERO, 2);
        assert!(
            big > 5.0 * small,
            "halo size must dominate: {small} vs {big}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_cluster_rejected() {
        let _ = MultiNet::new(pcs_ga620(), 1);
    }
}
