//! # protosim — transport protocols on the simulated testbed
//!
//! Discrete-event models of every communication layer the paper measures
//! beneath the message-passing libraries:
//!
//! * [`tcp`] — the Linux 2.4 TCP path over any of the Gigabit Ethernet
//!   NICs (window-fill stalls, delayed-ACK pathology, kernel copies,
//!   interrupt coalescing). Also serves as IP-over-GM when instantiated
//!   on the Myrinet cluster spec.
//! * [`raw`] — OS-bypass fabrics: Myrinet GM (polling/blocking/hybrid
//!   receive), Giganet cLAN hardware VIA, and the M-VIA software VIA.
//! * [`local`] — same-host pipes used by daemon-routed modes.
//! * [`fabric`] — the shared world: host CPU / PCI / NIC resources and
//!   the wire, with [`fabric::send`] dispatching over connection types.
//!
//! All transports deliver through continuation callbacks, so the library
//! models in `mpsim` can chain handshakes, daemon hops and copies without
//! the kernel knowing anything about them.

#![warn(missing_docs)]

pub mod fabric;
pub mod local;
pub mod multinode;
pub mod raw;
pub mod tcp;

pub use fabric::{
    cpu_track, flow_track, instrument, is_hw_track, lib_track, nic_track, pci_track, send,
    track_label, wire_track, Conn, ConnId, Continuation, Fabric, Net,
};
pub use multinode::{ring_halo_steps, MultiEngine, MultiNet};
pub use raw::{RawParams, RecvMode};
pub use tcp::TcpParams;
