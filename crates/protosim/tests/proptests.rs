//! Property tests on transport-model invariants.
//!
//! Cases are drawn from [`SimRng`] with fixed seeds (deterministic,
//! dependency-free) rather than an external property-test harness.

use std::cell::RefCell;
use std::rc::Rc;

use hwmodel::presets::{pcs_ga620, pcs_myrinet, pcs_trendnet};
use protosim::{local, raw, tcp, Conn, Fabric, RawParams, RecvMode, TcpParams};
use simcore::units::kib;
use simcore::SimRng;

/// Run `f` for `cases` deterministic seeds.
fn for_cases(cases: u64, mut f: impl FnMut(&mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::new(0x7247_4E53 ^ seed);
        f(&mut rng);
    }
}

/// Run a set of sends on one TCP connection; return (per-send completion
/// times in seconds, total bytes the connection delivered).
fn run_tcp(
    spec: hwmodel::ClusterSpec,
    params: TcpParams,
    sends: &[(usize, u64)],
) -> (Vec<f64>, u64) {
    let mut eng = Fabric::engine(spec);
    let conn = tcp::open(&mut eng.world, params);
    let done: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
    for (i, &(from, bytes)) in sends.iter().enumerate() {
        let done = Rc::clone(&done);
        protosim::send(
            &mut eng,
            conn,
            from,
            bytes,
            Box::new(move |e| done.borrow_mut().push((i, e.now().as_secs_f64()))),
        );
    }
    eng.run();
    let mut times = done.borrow().clone();
    assert_eq!(times.len(), sends.len(), "every send must complete");
    times.sort_by_key(|&(i, _)| i);
    let delivered = match &eng.world.conns[conn.0] {
        Conn::Tcp(t) => t.bytes_delivered,
        _ => unreachable!(),
    };
    (times.into_iter().map(|(_, t)| t).collect(), delivered)
}

/// Byte conservation: whatever mix of sends is issued, exactly the
/// sum of (max(1, bytes)) crosses the connection.
#[test]
fn tcp_conserves_bytes() {
    for_cases(24, |rng| {
        let n = 1 + rng.next_below(11);
        let sends: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.next_below(2) as usize, 1 + rng.next_below(199_999)))
            .collect();
        let (_, delivered) = run_tcp(pcs_ga620(), TcpParams::with_bufs(kib(512)), &sends);
        let expect: u64 = sends.iter().map(|&(_, b)| b.max(1)).sum();
        assert_eq!(delivered, expect);
    });
}

/// FIFO per direction: same-direction messages complete in issue order.
#[test]
fn tcp_fifo_per_direction() {
    for_cases(24, |rng| {
        let n = 2 + rng.next_below(8);
        let sends: Vec<(usize, u64)> = (0..n)
            .map(|_| (0usize, 1 + rng.next_below(149_999)))
            .collect();
        let (times, _) = run_tcp(pcs_ga620(), TcpParams::with_bufs(kib(256)), &sends);
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "completion order violated: {times:?}");
        }
    });
}

/// Tiny windows still deliver (the SWS guard cannot deadlock), just
/// slowly.
#[test]
fn tiny_windows_never_deadlock() {
    for_cases(24, |rng| {
        let bytes = 1 + rng.next_below(99_999);
        let window = 1 + rng.next_below(4095);
        let (times, delivered) = run_tcp(pcs_ga620(), TcpParams::with_bufs(window), &[(0, bytes)]);
        assert_eq!(delivered, bytes.max(1));
        assert!(times[0] > 0.0);
    });
}

/// The TrendNet pathology is monotone: for a fixed large transfer,
/// bigger windows never take longer.
#[test]
fn trendnet_window_monotone() {
    for_cases(12, |rng| {
        let w1 = 13 + rng.next_below(7) as u32;
        let w2 = 13 + rng.next_below(7) as u32;
        let (lo, hi) = (1u64 << w1.min(w2), 1u64 << w1.max(w2));
        let (t_lo, _) = run_tcp(pcs_trendnet(), TcpParams::with_bufs(lo), &[(0, 2_000_000)]);
        let (t_hi, _) = run_tcp(pcs_trendnet(), TcpParams::with_bufs(hi), &[(0, 2_000_000)]);
        assert!(t_hi[0] <= t_lo[0] * 1.0001);
    });
}

/// Raw (OS-bypass) transports conserve bytes and keep FIFO order too.
#[test]
fn raw_conserves_bytes() {
    for_cases(24, |rng| {
        let n = 1 + rng.next_below(7);
        let sizes: Vec<u64> = (0..n).map(|_| 1 + rng.next_below(499_999)).collect();
        let mut eng = Fabric::engine(pcs_myrinet());
        let conn = raw::open(&mut eng.world, RawParams::gm(RecvMode::Polling));
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &bytes) in sizes.iter().enumerate() {
            let order = Rc::clone(&order);
            protosim::send(
                &mut eng,
                conn,
                0,
                bytes,
                Box::new(move |_| order.borrow_mut().push(i)),
            );
        }
        eng.run();
        let expect: u64 = sizes.iter().map(|&b| b.max(1)).sum();
        let delivered = match &eng.world.conns[conn.0] {
            Conn::Raw(r) => r.bytes_delivered,
            _ => unreachable!(),
        };
        assert_eq!(delivered, expect);
        let got: Vec<usize> = order.borrow().clone();
        let want: Vec<usize> = (0..sizes.len()).collect();
        assert_eq!(got, want);
    });
}

/// Local pipes: time scales (weakly) with bytes, and the completion
/// callback always fires.
#[test]
fn local_pipe_monotone() {
    for_cases(24, |rng| {
        let a = 1 + rng.next_below(999_999);
        let b = 1 + rng.next_below(999_999);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let time_for = |bytes: u64| {
            let mut eng = Fabric::engine(pcs_ga620());
            let conn = local::open(&mut eng.world, 0);
            let out = Rc::new(std::cell::Cell::new(None));
            let o = Rc::clone(&out);
            local::send(
                &mut eng,
                conn,
                bytes,
                Box::new(move |e| o.set(Some(e.now().as_secs_f64()))),
            );
            eng.run();
            out.get().expect("completion callback fired")
        };
        assert!(time_for(hi) >= time_for(lo));
    });
}
