//! Membership and self-healing: eviction epochs, replanning, and the
//! typed recovery report.
//!
//! A collective run that loses a rank used to end as an annotated
//! *partial* report. With a [`RecoveryPolicy`] installed, the simulated
//! executor instead runs a bounded self-healing cycle:
//!
//! 1. **detect** — every round with outstanding receives arms a
//!    deadline; when it fires with a receive still missing, the missing
//!    sources become *suspects* (`Active --deadline~--> Suspect`);
//! 2. **confirm or clear** — after a backoff the suspect is probed: a
//!    live rank acks and is cleared (`Suspect --proof?--> Recovered
//!    --resume~--> Active`), a dead one is evicted (`Suspect --evict~-->
//!    Evicted`), bumping the membership epoch;
//! 3. **replan** — the schedule is re-planned over the ordered survivor
//!    group (virtual-rank compaction; the algorithm falls back to
//!    [`crate::plan::auto_algorithm`] if the family rejects the new
//!    count) and execution resumes from a safe per-rank carry state.
//!
//! One rank is evicted per epoch, so `k` rank deaths cost exactly `k`
//! epochs; every decision is a function of simulated events, so the
//! same seed and fault plan produce a byte-identical [`RecoveryReport`]
//! and trace. The membership machine below is a real
//! [`protospec::protocol!`] spec, so `xtask analyze`'s conformance
//! passes cover the recovery layer like every other protocol in the
//! tree.

use std::fmt::Write as _;

use crate::plan::Algorithm;

/// The membership lifecycle machine, in its own module because
/// `protocol!` emits one ZST per state name.
pub mod membership {
    protospec::protocol! {
        /// Membership of one rank as seen by the recovery layer.
        pub Membership of collective.member;
        states Active, Suspect, Evicted, Recovered;
        terminal Active, Evicted;
        Active --deadline~--> Suspect;
        Suspect --evict~--> Evicted;
        Suspect --proof?--> Recovered;
        Recovered --resume~--> Active;
    }
}

pub use membership::Membership;

/// Step a membership machine, panicking on an illegal edge. Every edge
/// the recovery layer drives is declared in the spec above, so a
/// failure here is a recovery-layer bug, not a runtime condition.
pub fn step_member(state: Membership, event: &str) -> Membership {
    state
        .step(event)
        .expect("membership machine stepped outside its spec") // lint:allow(expect) -- every edge the recovery layer steps is declared in the protocol! spec; an illegal step is a recovery bug
}

/// Knobs for the self-healing cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// How long a round waits on an outstanding receive before the
    /// missing sources become suspects, microseconds.
    pub deadline_us: f64,
    /// Suspect-to-verdict probe delay, and the pause charged between an
    /// eviction and the replanned epoch's start, microseconds.
    pub backoff_us: f64,
    /// Most evictions tolerated before the run gives up and reports
    /// partial (each eviction is one epoch).
    pub max_epochs: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            deadline_us: 50_000.0,
            backoff_us: 10_000.0,
            max_epochs: 8,
        }
    }
}

/// One membership epoch: a single eviction and the replan that followed.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Membership epoch number after this eviction (1-based; epoch 0 is
    /// the original group).
    pub epoch: usize,
    /// The world rank evicted.
    pub evicted: usize,
    /// Absolute simulated time of the eviction, microseconds.
    pub at_us: f64,
    /// Survivor-group size after the eviction.
    pub survivors: usize,
    /// Algorithm family of the replanned schedule.
    pub algorithm: Algorithm,
}

/// What the self-healing cycle did over a whole run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// One record per eviction, in order.
    pub epochs: Vec<EpochRecord>,
    /// All evicted world ranks, in eviction order.
    pub evicted: Vec<usize>,
    /// Suspects that probed back alive and were restored to `Active`.
    pub suspects_cleared: usize,
    /// Schedule re-executions (equals `epochs.len()` unless the run
    /// gave up at `max_epochs`).
    pub retries: usize,
    /// The policy's round deadline, microseconds.
    pub deadline_us: f64,
    /// The policy's probe/replan backoff, microseconds.
    pub backoff_us: f64,
}

impl RecoveryReport {
    /// Deterministic one-report text rendering (the CI golden format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let evicted: Vec<String> = self.evicted.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(
            out,
            "recovery: epochs={} evicted=[{}] suspects-cleared={} retries={} deadline={}us backoff={}us",
            self.epochs.len(),
            evicted.join(","),
            self.suspects_cleared,
            self.retries,
            self.deadline_us,
            self.backoff_us,
        );
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "epoch {}: evicted rank {} at {:.3}us, {} survivors, replanned {:?}",
                e.epoch, e.evicted, e.at_us, e.survivors, e.algorithm
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_walks_the_machine_to_a_terminal_state() {
        let mut m = Membership::initial();
        assert_eq!(m, Membership::Active);
        m = step_member(m, "deadline");
        assert_eq!(m, Membership::Suspect);
        m = step_member(m, "evict");
        assert!(m.is_terminal());
    }

    #[test]
    fn a_cleared_suspect_returns_to_active() {
        let mut m = step_member(Membership::initial(), "deadline");
        m = step_member(m, "proof");
        assert_eq!(m, Membership::Recovered);
        m = step_member(m, "resume");
        assert_eq!(m, Membership::Active);
        assert!(m.is_terminal());
    }

    #[test]
    fn evicting_an_active_rank_is_illegal() {
        assert!(Membership::Active.step("evict").is_err());
    }

    #[test]
    fn report_text_is_deterministic_and_complete() {
        let r = RecoveryReport {
            epochs: vec![EpochRecord {
                epoch: 1,
                evicted: 3,
                at_us: 2500.0,
                survivors: 7,
                algorithm: Algorithm::Tree,
            }],
            evicted: vec![3],
            suspects_cleared: 2,
            retries: 1,
            deadline_us: 2000.0,
            backoff_us: 500.0,
        };
        let t = r.to_text();
        assert_eq!(t, r.to_text());
        assert!(t.contains("epochs=1"), "{t}");
        assert!(t.contains("evicted rank 3 at 2500.000us"), "{t}");
        assert!(t.contains("7 survivors"), "{t}");
    }
}
