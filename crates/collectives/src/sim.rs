//! The simulated backend: run a schedule over N simulated ranks.
//!
//! Every rank gets a [`crate::state::RankState`] and a round cursor;
//! rounds advance event-driven over [`mpsim::MultiSession`] on the
//! switched [`protosim::multinode`] fabric. The data path is the same
//! `payload`/`apply` code the blocking executor uses, so for identical
//! schedules and inputs the two backends produce identical bytes — the
//! simulation only decides *when* things happen, never *what*.
//!
//! Faults come in three flavours: a list of [`RankFault`]s (kills at
//! time zero, per-rank degradation), a full [`faultlab::FaultPlan`]
//! (timed `kill-rank=R@T` deaths and fabric-wide degrade windows), and
//! — when a [`RecoveryPolicy`] is armed — the self-healing cycle of
//! [`crate::recovery`]: detect the stall, evict the dead rank, replan
//! over the survivors, resume. Without recovery a rank death still ends
//! as a bounded *partial* report, never a hang.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use faultlab::{DegradeWindow, FaultPlan};
use hwmodel::ClusterSpec;
use mpsim::{LibProfile, MultiSession};
use protosim::multinode::{MultiEngine, MultiNet};
use simcore::trace::{stages, SharedSink, SpanRec};
use simcore::units::us_to_secs;
use simcore::{SimDuration, SimTime};

use crate::exec::{actual_rank, virtual_rank, ExecCtx};
use crate::lifecycle::{step, CollRound};
use crate::op::CollOp;
use crate::plan::{auto_algorithm, build};
use crate::recovery::{step_member, EpochRecord, Membership, RecoveryPolicy, RecoveryReport};
use crate::schedule::Schedule;
use crate::state::{CollOutput, RankState};

/// Trace track carrying rank `rank`'s collective-round spans, disjoint
/// from the per-resource hardware tracks.
pub fn coll_track(rank: usize) -> u32 {
    (1 << 16) + rank as u32
}

/// A per-rank fault to inject into a simulated collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankFault {
    /// The rank never starts its schedule. Without recovery its peers
    /// stall and the run ends partial instead of hanging; with recovery
    /// the rank is evicted and the survivors complete.
    Dead(usize),
    /// The rank pays `extra_us` microseconds of CPU per send.
    Degrade {
        /// Victim rank.
        rank: usize,
        /// Added per-send CPU microseconds.
        extra_us: f64,
    },
}

/// Optional knobs for a simulated run.
#[derive(Default)]
pub struct SimOptions {
    /// Emit per-round spans (stage [`stages::COLL_ROUND`], track
    /// [`coll_track`]) to this sink.
    pub trace: Option<SharedSink>,
    /// Rank faults to inject; any number, so multi-failure scenarios
    /// are expressible.
    pub faults: Vec<RankFault>,
    /// A full fault plan: its `kill-rank=R@T` clauses become timed rank
    /// deaths and its degrade windows stretch every send issued while
    /// open. The plan's wire-level knobs (loss/dup/reorder/jitter) are
    /// not modelled on the multi-rank fabric.
    pub plan: Option<FaultPlan>,
    /// Arm the self-healing cycle: detect stalls, evict dead ranks,
    /// replan over survivors (see [`crate::recovery`]).
    pub recovery: Option<RecoveryPolicy>,
}

impl SimOptions {
    /// Options injecting a single fault — the common chaos-sweep shape.
    pub fn with_fault(fault: RankFault) -> SimOptions {
        SimOptions {
            faults: vec![fault],
            ..SimOptions::default()
        }
    }
}

/// What a simulated collective run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Simulated seconds until the last completing rank finished.
    pub seconds: f64,
    /// Events the engine executed (work proxy for events/sec).
    pub events: u64,
    /// Per-rank outputs; `None` for ranks that never finished.
    pub outputs: Vec<Option<CollOutput>>,
    /// Per-rank completion times, seconds; `None` if unfinished.
    pub finish_secs: Vec<Option<f64>>,
    /// Count of ranks that completed their whole plan.
    pub completed: usize,
    /// What the self-healing cycle did; `Some` exactly when a
    /// [`RecoveryPolicy`] was armed (empty epochs on a clean run).
    pub recovery: Option<RecoveryReport>,
}

impl SimReport {
    /// True when every rank completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.outputs.len()
    }

    /// True when every rank *not evicted by recovery* completed — the
    /// best possible outcome once a rank has died.
    pub fn all_survivors_completed(&self) -> bool {
        let evicted = self.recovery.as_ref().map_or(0, |r| r.evicted.len());
        self.completed + evicted == self.outputs.len()
    }
}

struct RankRun {
    state: RankState,
    life: CollRound,
    round: usize,
    /// Receives still outstanding in the current round.
    waiting: usize,
    /// Arrived payloads for the current round, recv-step indexed.
    arrived: Vec<Option<Vec<u8>>>,
    round_start: SimTime,
    finish: Option<SimTime>,
}

/// Per-epoch recovery runtime: the membership machines plus this
/// epoch's verdicts.
struct RecoveryRt {
    policy: RecoveryPolicy,
    /// World-indexed membership machines, shared across epochs.
    member: Rc<RefCell<Vec<Membership>>>,
    /// Set once a rank is evicted; the epoch then drains and replans.
    aborted: Cell<bool>,
    evicted: Cell<Option<usize>>,
    evict_at_us: Cell<f64>,
    suspects_cleared: Cell<usize>,
}

impl RecoveryRt {
    /// Proof of life for a suspect: step it back to `Active`.
    fn clear_if_suspect(&self, rank: usize) {
        let state = self.member.borrow()[rank];
        if state == Membership::Suspect {
            let recovered = step_member(state, "proof");
            self.member.borrow_mut()[rank] = step_member(recovered, "resume");
            self.suspects_cleared.set(self.suspects_cleared.get() + 1);
        }
    }
}

/// How many times one round's recv deadline re-arms before giving up on
/// detection (a stall that outlives this without any rank dying is a
/// planner bug, not a failure to recover from).
const MAX_DEADLINE_REARMS: u32 = 64;

struct Driver {
    schedule: Schedule,
    ctx: ExecCtx,
    sess: MultiSession,
    ranks: Vec<RefCell<RankRun>>,
    trace: Option<SharedSink>,
    /// Group index → world rank (identity in the original epoch).
    world: Vec<usize>,
    /// World-indexed kill switches, flipped by timed kill events.
    killed: Rc<RefCell<Vec<bool>>>,
    /// Simulated time spent in earlier epochs (trace offset).
    base: SimDuration,
    recovery: Option<RecoveryRt>,
}

impl Driver {
    /// Epoch-local time shifted onto the whole-run timeline.
    fn abs(&self, t: SimTime) -> SimTime {
        t + self.base
    }

    fn dead(&self, g: usize) -> bool {
        self.killed.borrow()[self.world[g]]
    }

    fn aborted(&self) -> bool {
        self.recovery.as_ref().is_some_and(|rt| rt.aborted.get())
    }

    /// Enter `rank`'s next round: issue sends, post receives. A round
    /// with no receives completes immediately.
    fn start_round(self: &Rc<Self>, eng: &mut MultiEngine, rank: usize) {
        if self.dead(rank) || self.aborted() {
            return;
        }
        let n = self.schedule.nranks;
        let vrank = virtual_rank(rank, self.ctx.root, n);
        loop {
            let (sends, nrecvs) = {
                let mut r = self.ranks[rank].borrow_mut();
                let Some(round) = self.schedule.plans[vrank].rounds.get(r.round) else {
                    r.finish = Some(eng.now());
                    if let Some(t) = &self.trace {
                        t.instant(
                            stages::COLL_DONE,
                            coll_track(self.world[rank]),
                            self.abs(eng.now()),
                            0,
                            self.world[rank] as u64,
                        );
                    }
                    return;
                };
                r.round_start = eng.now();
                r.life = step(r.life, "post");
                let sends: Vec<(usize, Vec<u8>)> = round
                    .sends
                    .iter()
                    .map(|s| {
                        (
                            actual_rank(s.to as usize, self.ctx.root, n),
                            r.state.payload(&s.what),
                        )
                    })
                    .collect();
                for _ in 0..sends.len() {
                    r.life = step(r.life, "send");
                }
                r.life = step(r.life, "drain");
                r.waiting = round.recvs.len();
                r.arrived = vec![None; round.recvs.len()];
                (sends, round.recvs.len())
            };
            for (slot, recv) in self.schedule.plans[vrank].rounds[self.ranks[rank].borrow().round]
                .recvs
                .iter()
                .enumerate()
            {
                let from = actual_rank(recv.from as usize, self.ctx.root, n);
                let this = Rc::clone(self);
                self.sess.post_recv(
                    eng,
                    rank,
                    from,
                    0,
                    Box::new(move |e, payload| this.on_arrival(e, rank, slot, payload)),
                );
            }
            for (to, payload) in sends {
                self.sess.send(eng, rank, to, 0, Rc::new(payload));
            }
            if nrecvs > 0 {
                let round_idx = self.ranks[rank].borrow().round;
                self.arm_deadline(eng, rank, round_idx, 0);
                return; // the last arrival resumes this rank
            }
            // No receives: the round is already complete; fold and loop
            // into the next one.
            self.complete_round(eng, rank);
        }
    }

    fn on_arrival(
        self: &Rc<Self>,
        eng: &mut MultiEngine,
        rank: usize,
        slot: usize,
        payload: Rc<Vec<u8>>,
    ) {
        if self.dead(rank) || self.aborted() {
            return;
        }
        if let Some(rt) = &self.recovery {
            // An arrival from a suspect is proof of life.
            let n = self.schedule.nranks;
            let vrank = virtual_rank(rank, self.ctx.root, n);
            let src = {
                let r = self.ranks[rank].borrow();
                let from = self.schedule.plans[vrank].rounds[r.round].recvs[slot].from;
                self.world[actual_rank(from as usize, self.ctx.root, n)]
            };
            rt.clear_if_suspect(src);
        }
        let done = {
            let mut r = self.ranks[rank].borrow_mut();
            r.life = step(r.life, "recv");
            r.arrived[slot] = Some(payload.to_vec());
            r.waiting -= 1;
            r.waiting == 0
        };
        if done {
            self.complete_round(eng, rank);
            self.start_round(eng, rank);
        }
    }

    /// Apply the round's arrivals in schedule order, emit its span, and
    /// advance the cursor.
    fn complete_round(self: &Rc<Self>, eng: &mut MultiEngine, rank: usize) {
        let n = self.schedule.nranks;
        let vrank = virtual_rank(rank, self.ctx.root, n);
        let mut r = self.ranks[rank].borrow_mut();
        let round = &self.schedule.plans[vrank].rounds[r.round];
        let mut bytes = 0u64;
        let arrived = std::mem::take(&mut r.arrived);
        for (recv, payload) in round.recvs.iter().zip(arrived) {
            let payload = payload.expect("round completed with a receive slot empty"); // lint:allow(expect) -- complete_round only runs once waiting hits zero, so every slot is filled
            bytes += payload.len() as u64;
            r.state.apply(&recv.what, &payload, self.ctx.reduction);
        }
        r.life = step(r.life, "finish");
        if let Some(t) = &self.trace {
            t.span(SpanRec {
                stage: stages::COLL_ROUND,
                track: coll_track(self.world[rank]),
                start: self.abs(r.round_start),
                end: self.abs(eng.now()),
                bytes,
                msg: (r.round + 1) as u64,
            });
        }
        r.round += 1;
    }

    /// Arm the recv deadline for `rank`'s round `round_idx` (no-op when
    /// no recovery policy is installed).
    fn arm_deadline(
        self: &Rc<Self>,
        eng: &mut MultiEngine,
        rank: usize,
        round_idx: usize,
        rearms: u32,
    ) {
        let Some(rt) = &self.recovery else { return };
        let delay = SimDuration::from_micros_f64(rt.policy.deadline_us);
        let this = Rc::clone(self);
        eng.schedule_in(delay, move |e| {
            this.check_deadline(e, rank, round_idx, rearms);
        });
    }

    /// The recv deadline fired: if `rank` is still stuck in
    /// `round_idx`, every source it is missing becomes a suspect, with
    /// a probe verdict scheduled one backoff later.
    fn check_deadline(
        self: &Rc<Self>,
        eng: &mut MultiEngine,
        rank: usize,
        round_idx: usize,
        rearms: u32,
    ) {
        let Some(rt) = &self.recovery else { return };
        if rt.aborted.get() || self.dead(rank) {
            return;
        }
        let n = self.schedule.nranks;
        let vrank = virtual_rank(rank, self.ctx.root, n);
        let missing: Vec<usize> = {
            let r = self.ranks[rank].borrow();
            if r.finish.is_some() || r.round != round_idx || r.waiting == 0 {
                return; // the round completed in time
            }
            self.schedule.plans[vrank].rounds[round_idx]
                .recvs
                .iter()
                .enumerate()
                .filter(|(slot, _)| r.arrived[*slot].is_none())
                .map(|(_, recv)| self.world[actual_rank(recv.from as usize, self.ctx.root, n)])
                .collect()
        };
        for s in missing {
            let state = rt.member.borrow()[s];
            if state == Membership::Active {
                rt.member.borrow_mut()[s] = step_member(state, "deadline");
                if let Some(t) = &self.trace {
                    t.instant(
                        stages::COLL_SUSPECT,
                        coll_track(s),
                        self.abs(eng.now()),
                        0,
                        s as u64,
                    );
                }
            }
            if rt.member.borrow()[s] == Membership::Suspect {
                let delay = SimDuration::from_micros_f64(rt.policy.backoff_us);
                let this = Rc::clone(self);
                eng.schedule_in(delay, move |e| this.check_eviction(e, s));
            }
        }
        if rearms < MAX_DEADLINE_REARMS {
            self.arm_deadline(eng, rank, round_idx, rearms + 1);
        }
    }

    /// Probe verdict for suspect world rank `s`: a live rank acks and
    /// is cleared; a dead one is evicted, ending the epoch. One
    /// eviction per epoch — later verdicts re-run after the replan.
    fn check_eviction(self: &Rc<Self>, eng: &mut MultiEngine, s: usize) {
        let Some(rt) = &self.recovery else { return };
        let state = rt.member.borrow()[s];
        if state != Membership::Suspect {
            return; // already cleared (or evicted by an earlier verdict)
        }
        if self.killed.borrow()[s] {
            if rt.aborted.get() {
                return; // one eviction per epoch
            }
            rt.member.borrow_mut()[s] = step_member(state, "evict");
            rt.evicted.set(Some(s));
            rt.evict_at_us
                .set(self.base.as_micros_f64() + eng.now().as_micros_f64());
            rt.aborted.set(true);
            if let Some(t) = &self.trace {
                t.instant(
                    stages::COLL_EVICT,
                    coll_track(s),
                    self.abs(eng.now()),
                    0,
                    s as u64,
                );
            }
        } else {
            rt.clear_if_suspect(s);
        }
    }
}

/// What one epoch's engine run produced.
struct EpochOutcome {
    events: u64,
    aborted: bool,
    evicted: Option<usize>,
    evict_at_us: f64,
    cleared: usize,
    /// Group-indexed `(epoch-relative finish seconds, output)`.
    finished: Vec<Option<(f64, CollOutput)>>,
    /// Group-indexed bcast payload carry (empty-pattern for other ops).
    bcast_hold: Vec<Option<Vec<u8>>>,
}

/// Endpoint faults resolved out of `SimOptions`, world-rank indexed.
struct FaultSet {
    /// `(world rank, at_us)` timed deaths.
    kills: Vec<(usize, f64)>,
    /// `(world rank, extra_us)` per-send degradation.
    degrades: Vec<(usize, f64)>,
    /// Fabric-wide degrade windows, absolute microseconds.
    windows: Vec<DegradeWindow>,
}

impl FaultSet {
    fn from_options(opts: &SimOptions) -> FaultSet {
        let mut kills = Vec::new();
        let mut degrades = Vec::new();
        for f in &opts.faults {
            match *f {
                RankFault::Dead(r) => kills.push((r, 0.0)),
                RankFault::Degrade { rank, extra_us } => degrades.push((rank, extra_us)),
            }
        }
        let mut windows = Vec::new();
        if let Some(plan) = &opts.plan {
            for k in &plan.kills {
                kills.push((k.rank, k.at_us));
            }
            windows = plan.degrade.clone();
        }
        FaultSet {
            kills,
            degrades,
            windows,
        }
    }
}

/// Run one epoch: a fresh engine and session over the (possibly
/// compacted) group, with kills and degradation applied and — when a
/// policy is armed — the detection machinery live.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    spec: &ClusterSpec,
    profile: &LibProfile,
    schedule: &Schedule,
    ctx: ExecCtx,
    contributions: &[Vec<u8>],
    trace: &Option<SharedSink>,
    base_us: f64,
    world: Vec<usize>,
    killed: &Rc<RefCell<Vec<bool>>>,
    member: &Rc<RefCell<Vec<Membership>>>,
    policy: Option<RecoveryPolicy>,
    faults: &FaultSet,
) -> EpochOutcome {
    let m = schedule.nranks;
    let mut eng = MultiNet::engine(spec.clone(), m);
    if let Some(t) = trace {
        eng.set_trace_sink(Rc::clone(t));
    }
    let sess = MultiSession::new(profile.clone(), m);
    for &(w, extra_us) in &faults.degrades {
        if let Some(g) = world.iter().position(|&x| x == w) {
            sess.set_rank_overhead_us(g, extra_us);
        }
    }
    if !faults.windows.is_empty() {
        // Window clocks are whole-run absolute; the epoch engine starts
        // at zero, so shift them back by the time already elapsed.
        sess.set_degrade_windows(
            faults
                .windows
                .iter()
                .map(|w| DegradeWindow {
                    start_us: w.start_us - base_us,
                    end_us: w.end_us - base_us,
                    factor: w.factor,
                })
                .collect(),
        );
    }
    for &(w, at_us) in &faults.kills {
        if at_us <= base_us {
            killed.borrow_mut()[w] = true;
        } else if world.contains(&w) {
            let killed = Rc::clone(killed);
            eng.schedule_in(SimDuration::from_micros_f64(at_us - base_us), move |_| {
                killed.borrow_mut()[w] = true;
            });
        }
    }
    let driver = Rc::new(Driver {
        schedule: schedule.clone(),
        ctx,
        sess,
        ranks: (0..m)
            .map(|g| {
                let vrank = virtual_rank(g, ctx.root, m);
                RefCell::new(RankRun {
                    state: RankState::init(schedule.op, m, vrank, &contributions[g]),
                    life: CollRound::initial(),
                    round: 0,
                    waiting: 0,
                    arrived: Vec::new(),
                    round_start: SimTime::ZERO,
                    finish: None,
                })
            })
            .collect(),
        trace: trace.clone(),
        world,
        killed: Rc::clone(killed),
        base: SimDuration::from_micros_f64(base_us),
        recovery: policy.map(|policy| RecoveryRt {
            policy,
            member: Rc::clone(member),
            aborted: Cell::new(false),
            evicted: Cell::new(None),
            evict_at_us: Cell::new(0.0),
            suspects_cleared: Cell::new(0),
        }),
    });
    for g in 0..m {
        if driver.dead(g) {
            continue; // dead at epoch start: never runs, its peers stall
        }
        let d = Rc::clone(&driver);
        eng.schedule_at(SimTime::ZERO, move |e| d.start_round(e, g));
    }
    eng.run();
    let events = eng.events_executed();
    let rt = driver.recovery.as_ref();
    let aborted = rt.is_some_and(|rt| rt.aborted.get());
    let mut finished = Vec::with_capacity(m);
    let mut bcast_hold = Vec::with_capacity(m);
    for g in 0..m {
        let mut r = driver.ranks[g].borrow_mut();
        bcast_hold.push(if schedule.op == CollOp::Bcast {
            r.state.bcast_payload().map(<[u8]>::to_vec)
        } else {
            None
        });
        let fin = (!aborted).then_some(r.finish).flatten().map(|t| {
            let vrank = virtual_rank(g, ctx.root, m);
            let state = std::mem::take(&mut r.state);
            (t.as_secs_f64(), state.into_output(schedule.op, vrank))
        });
        finished.push(fin);
    }
    EpochOutcome {
        events,
        aborted,
        evicted: rt.and_then(|rt| rt.evicted.get()),
        evict_at_us: rt.map_or(0.0, |rt| rt.evict_at_us.get()),
        cleared: rt.map_or(0, |rt| rt.suspects_cleared.get()),
        finished,
        bcast_hold,
    }
}

/// Simulate `schedule` over `spec` hardware with `profile` library
/// costs. `contributions` are actual-rank indexed; so are the outputs.
///
/// With a [`RecoveryPolicy`] armed the run is an epoch loop: each
/// eviction compacts the group, re-elects the root if it died (a
/// broadcast re-roots on the lowest survivor already holding the
/// payload), replans, and re-executes. Reducing accumulators restart
/// from the original contributions (exactly-once safety), so the final
/// result is the reduction over the *survivors'* inputs.
pub fn run_sim(
    spec: &ClusterSpec,
    profile: &LibProfile,
    schedule: &Schedule,
    ctx: ExecCtx,
    contributions: &[Vec<u8>],
    opts: &SimOptions,
) -> SimReport {
    let n = schedule.nranks;
    assert_eq!(contributions.len(), n, "one contribution per rank");
    if n == 1 {
        // The fabric needs two nodes; a single-rank collective is a
        // no-op with this rank's own data as the result.
        let out = RankState::init(schedule.op, 1, 0, &contributions[0]).into_output(schedule.op, 0);
        return SimReport {
            seconds: 0.0,
            events: 0,
            outputs: vec![Some(out)],
            finish_secs: vec![Some(0.0)],
            completed: 1,
            recovery: opts.recovery.map(|p| RecoveryReport {
                deadline_us: p.deadline_us,
                backoff_us: p.backoff_us,
                ..RecoveryReport::default()
            }),
        };
    }

    let faults = FaultSet::from_options(opts);
    let killed = Rc::new(RefCell::new(vec![false; n]));
    let member = Rc::new(RefCell::new(vec![Membership::initial(); n]));
    let originals: Vec<Vec<u8>> = contributions.to_vec();
    let mut alive = vec![true; n];
    let mut bcast_hold: Vec<Option<Vec<u8>>> = vec![None; n];
    if schedule.op == CollOp::Bcast {
        bcast_hold[ctx.root] = Some(originals[ctx.root].clone());
    }
    let mut root_world = ctx.root;
    let mut cur_schedule = schedule.clone();
    let mut cur_world: Vec<usize> = (0..n).collect();
    let mut base_us = 0.0f64;
    let mut events = 0u64;
    let mut outputs: Vec<Option<CollOutput>> = vec![None; n];
    let mut finish_secs: Vec<Option<f64>> = vec![None; n];
    let mut report = RecoveryReport {
        deadline_us: opts.recovery.map_or(0.0, |p| p.deadline_us),
        backoff_us: opts.recovery.map_or(0.0, |p| p.backoff_us),
        ..RecoveryReport::default()
    };

    loop {
        let groot = cur_world
            .iter()
            .position(|&w| w == root_world)
            .expect("the root is always re-elected among survivors"); // lint:allow(expect) -- eviction always re-elects a surviving root before replanning
        let gctx = ExecCtx {
            root: groot,
            reduction: ctx.reduction,
        };
        let contribs: Vec<Vec<u8>> = cur_world
            .iter()
            .map(|&w| {
                if schedule.op == CollOp::Bcast {
                    if w == root_world {
                        bcast_hold[w].clone().unwrap_or_default()
                    } else {
                        Vec::new()
                    }
                } else {
                    originals[w].clone()
                }
            })
            .collect();
        let outcome = run_epoch(
            spec,
            profile,
            &cur_schedule,
            gctx,
            &contribs,
            &opts.trace,
            base_us,
            cur_world.clone(),
            &killed,
            &member,
            opts.recovery,
            &faults,
        );
        events += outcome.events;
        report.suspects_cleared += outcome.cleared;
        for (g, hold) in outcome.bcast_hold.into_iter().enumerate() {
            if let Some(p) = hold {
                bcast_hold[cur_world[g]] = Some(p);
            }
        }
        if !outcome.aborted {
            for (g, fin) in outcome.finished.into_iter().enumerate() {
                if let Some((secs, out)) = fin {
                    let w = cur_world[g];
                    finish_secs[w] = Some(us_to_secs(base_us) + secs);
                    outputs[w] = Some(out);
                }
            }
            break;
        }

        // An eviction ended the epoch: compact, re-elect, replan.
        let policy = opts
            .recovery
            .expect("epochs only abort under a recovery policy"); // lint:allow(expect) -- check_eviction is only armed when a policy is installed

        let ev = outcome.evicted.expect("aborted epoch without an eviction"); // lint:allow(expect) -- aborted is set by check_eviction together with the evicted rank
        alive[ev] = false;
        report.evicted.push(ev);
        let survivors: Vec<usize> = (0..n).filter(|&r| alive[r]).collect();
        let m = survivors.len();
        base_us = outcome.evict_at_us + policy.backoff_us;
        let algorithm = if build(schedule.op, cur_schedule.algorithm, m).is_ok() {
            cur_schedule.algorithm
        } else {
            auto_algorithm(schedule.op, m)
        };
        report.epochs.push(EpochRecord {
            epoch: report.epochs.len() + 1,
            evicted: ev,
            at_us: outcome.evict_at_us,
            survivors: m,
            algorithm,
        });
        if let Some(t) = &opts.trace {
            t.instant(
                stages::COLL_REPLAN,
                coll_track(ev),
                SimTime::ZERO + SimDuration::from_micros_f64(base_us),
                0,
                m as u64,
            );
        }
        if report.epochs.len() > policy.max_epochs {
            break; // give up: bounded recovery, partial report
        }
        if !alive[root_world] {
            if schedule.op == CollOp::Bcast {
                match survivors.iter().copied().find(|&w| bcast_hold[w].is_some()) {
                    Some(w) => root_world = w,
                    // The payload died with the root before reaching
                    // any survivor: nothing left to broadcast.
                    None => break,
                }
            } else {
                root_world = survivors[0];
            }
        }
        if m == 1 {
            // Degenerate group: the collective is the lone survivor's
            // own data (for bcast, the payload it already holds).
            let w = survivors[0];
            let contribution = if schedule.op == CollOp::Bcast {
                bcast_hold[w].clone().unwrap_or_default()
            } else {
                originals[w].clone()
            };
            outputs[w] =
                Some(RankState::init(schedule.op, 1, 0, &contribution).into_output(schedule.op, 0));
            finish_secs[w] = Some(us_to_secs(base_us));
            report.retries += 1;
            break;
        }
        cur_schedule = build(schedule.op, algorithm, m)
            .expect("replanned schedule builds for the survivor group"); // lint:allow(expect) -- algorithm falls back to auto_algorithm, which plans every group size
        cur_world = survivors;
        report.retries += 1;
    }

    let completed = outputs.iter().filter(|o| o.is_some()).count();
    let seconds = finish_secs.iter().flatten().copied().fold(0.0f64, f64::max);
    SimReport {
        seconds,
        events,
        outputs,
        finish_secs,
        completed,
        recovery: opts.recovery.is_some().then_some(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CollOp, Dtype, ReduceOp};
    use crate::plan::{build, Algorithm};
    use crate::state::Reduction;

    fn sum_ctx() -> ExecCtx {
        ExecCtx {
            root: 0,
            reduction: Some(Reduction {
                dtype: Dtype::U64,
                op: ReduceOp::Sum,
            }),
        }
    }

    fn u64s(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|r| ((r + 1) as u64).to_le_bytes().to_vec())
            .collect()
    }

    #[test]
    fn simulated_allreduce_matches_the_arithmetic() {
        for alg in [
            Algorithm::Tree,
            Algorithm::RecursiveDoubling,
            Algorithm::Ring,
        ] {
            let n = 6;
            let s = build(CollOp::Allreduce, alg, n).unwrap();
            let report = run_sim(
                &hwmodel::presets::pcs_ga620(),
                &mpsim::libs::mpich(Default::default()).profile,
                &s,
                sum_ctx(),
                &u64s(n),
                &SimOptions::default(),
            );
            assert!(report.all_completed(), "{alg:?}");
            assert!(report.seconds > 0.0);
            assert!(report.recovery.is_none());
            for out in report.outputs {
                assert_eq!(out.unwrap().acc, 21u64.to_le_bytes(), "{alg:?}");
            }
        }
    }

    #[test]
    fn dead_rank_yields_partial_report_not_a_hang() {
        let n = 8;
        let s = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        let report = run_sim(
            &hwmodel::presets::pcs_ga620(),
            &mpsim::libs::mpich(Default::default()).profile,
            &s,
            ExecCtx {
                root: 0,
                reduction: None,
            },
            &vec![Vec::new(); n],
            &SimOptions::with_fault(RankFault::Dead(3)),
        );
        assert!(!report.all_completed());
        assert!(report.outputs[3].is_none());
        assert!(report.completed < n);
    }

    #[test]
    fn timed_kill_from_a_plan_is_partial_without_recovery() {
        let n = 8;
        let s = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        let report = run_sim(
            &hwmodel::presets::pcs_ga620(),
            &mpsim::libs::mpich(Default::default()).profile,
            &s,
            ExecCtx {
                root: 0,
                reduction: None,
            },
            &vec![Vec::new(); n],
            &SimOptions {
                plan: Some(FaultPlan::parse("seed=1,kill-rank=5@40us").expect("plan")),
                ..SimOptions::default()
            },
        );
        assert!(!report.all_completed());
        assert!(report.outputs[5].is_none());
    }

    #[test]
    fn recovery_evicts_the_dead_rank_and_survivors_complete() {
        let n = 8;
        let s = build(CollOp::Allreduce, Algorithm::RecursiveDoubling, n).unwrap();
        let report = run_sim(
            &hwmodel::presets::pcs_ga620(),
            &mpsim::libs::mpich(Default::default()).profile,
            &s,
            sum_ctx(),
            &u64s(n),
            &SimOptions {
                faults: vec![RankFault::Dead(3)],
                recovery: Some(RecoveryPolicy {
                    deadline_us: 2_000.0,
                    backoff_us: 500.0,
                    max_epochs: 4,
                }),
                ..SimOptions::default()
            },
        );
        let rec = report.recovery.as_ref().expect("recovery armed");
        assert_eq!(rec.evicted, vec![3]);
        assert_eq!(rec.epochs.len(), 1);
        assert!(report.all_survivors_completed(), "{rec:?}");
        // Survivor sum: 1+2+..+8 minus the dead rank's 4.
        let expect = (1u64 + 2 + 3 + 5 + 6 + 7 + 8).to_le_bytes();
        for (r, out) in report.outputs.iter().enumerate() {
            if r == 3 {
                assert!(out.is_none());
            } else {
                assert_eq!(out.as_ref().unwrap().acc, expect, "rank {r}");
            }
        }
    }

    #[test]
    fn degraded_rank_slows_the_collective() {
        let n = 8;
        let s = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        let run = |faults: Vec<RankFault>| {
            run_sim(
                &hwmodel::presets::pcs_ga620(),
                &mpsim::libs::mpich(Default::default()).profile,
                &s,
                ExecCtx {
                    root: 0,
                    reduction: None,
                },
                &vec![Vec::new(); n],
                &SimOptions {
                    faults,
                    ..SimOptions::default()
                },
            )
        };
        let clean = run(Vec::new());
        let slow = run(vec![RankFault::Degrade {
            rank: 2,
            extra_us: 5_000.0,
        }]);
        assert!(slow.all_completed());
        assert!(slow.seconds > clean.seconds * 2.0);
    }
}
