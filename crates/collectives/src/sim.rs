//! The simulated backend: run a schedule over N simulated ranks.
//!
//! Every rank gets a [`crate::state::RankState`] and a round cursor;
//! rounds advance event-driven over [`mpsim::MultiSession`] on the
//! switched [`protosim::multinode`] fabric. The data path is the same
//! `payload`/`apply` code the blocking executor uses, so for identical
//! schedules and inputs the two backends produce identical bytes — the
//! simulation only decides *when* things happen, never *what*.

use std::cell::RefCell;
use std::rc::Rc;

use hwmodel::ClusterSpec;
use mpsim::{LibProfile, MultiSession};
use protosim::multinode::{MultiEngine, MultiNet};
use simcore::trace::{stages, SharedSink, SpanRec};
use simcore::SimTime;

use crate::exec::{actual_rank, ExecCtx};
use crate::lifecycle::{step, CollRound};
use crate::schedule::Schedule;
use crate::state::{CollOutput, RankState};

/// Trace track carrying rank `rank`'s collective-round spans, disjoint
/// from the per-resource hardware tracks.
pub fn coll_track(rank: usize) -> u32 {
    (1 << 16) + rank as u32
}

/// A per-rank fault to inject into a simulated collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankFault {
    /// The rank never starts its schedule: its peers stall and the run
    /// ends partial instead of hanging (graceful degradation).
    Dead(usize),
    /// The rank pays `extra_us` microseconds of CPU per send.
    Degrade {
        /// Victim rank.
        rank: usize,
        /// Added per-send CPU microseconds.
        extra_us: f64,
    },
}

/// Optional knobs for a simulated run.
#[derive(Default)]
pub struct SimOptions {
    /// Emit per-round spans (stage [`stages::COLL_ROUND`], track
    /// [`coll_track`]) to this sink.
    pub trace: Option<SharedSink>,
    /// Inject one rank fault.
    pub fault: Option<RankFault>,
}

/// What a simulated collective run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Simulated seconds until the last completing rank finished.
    pub seconds: f64,
    /// Events the engine executed (work proxy for events/sec).
    pub events: u64,
    /// Per-rank outputs; `None` for ranks that never finished.
    pub outputs: Vec<Option<CollOutput>>,
    /// Per-rank completion times, seconds; `None` if unfinished.
    pub finish_secs: Vec<Option<f64>>,
    /// Count of ranks that completed their whole plan.
    pub completed: usize,
}

impl SimReport {
    /// True when every rank completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.outputs.len()
    }
}

struct RankRun {
    state: RankState,
    life: CollRound,
    round: usize,
    /// Receives still outstanding in the current round.
    waiting: usize,
    /// Arrived payloads for the current round, recv-step indexed.
    arrived: Vec<Option<Vec<u8>>>,
    round_start: SimTime,
    finish: Option<SimTime>,
}

struct Driver {
    schedule: Schedule,
    ctx: ExecCtx,
    sess: MultiSession,
    ranks: Vec<RefCell<RankRun>>,
    trace: Option<SharedSink>,
}

impl Driver {
    /// Enter `rank`'s next round: issue sends, post receives. A round
    /// with no receives completes immediately.
    fn start_round(self: &Rc<Self>, eng: &mut MultiEngine, rank: usize) {
        let n = self.schedule.nranks;
        let vrank = crate::exec::virtual_rank(rank, self.ctx.root, n);
        loop {
            let (sends, nrecvs) = {
                let mut r = self.ranks[rank].borrow_mut();
                let Some(round) = self.schedule.plans[vrank].rounds.get(r.round) else {
                    r.finish = Some(eng.now());
                    if let Some(t) = &self.trace {
                        t.instant(
                            stages::COLL_DONE,
                            coll_track(rank),
                            eng.now(),
                            0,
                            rank as u64,
                        );
                    }
                    return;
                };
                r.round_start = eng.now();
                r.life = step(r.life, "post");
                let sends: Vec<(usize, Vec<u8>)> = round
                    .sends
                    .iter()
                    .map(|s| {
                        (
                            actual_rank(s.to as usize, self.ctx.root, n),
                            r.state.payload(&s.what),
                        )
                    })
                    .collect();
                for _ in 0..sends.len() {
                    r.life = step(r.life, "send");
                }
                r.life = step(r.life, "drain");
                r.waiting = round.recvs.len();
                r.arrived = vec![None; round.recvs.len()];
                (sends, round.recvs.len())
            };
            for (slot, recv) in self.schedule.plans[vrank].rounds[self.ranks[rank].borrow().round]
                .recvs
                .iter()
                .enumerate()
            {
                let from = actual_rank(recv.from as usize, self.ctx.root, n);
                let this = Rc::clone(self);
                self.sess.post_recv(
                    eng,
                    rank,
                    from,
                    0,
                    Box::new(move |e, payload| this.on_arrival(e, rank, slot, payload)),
                );
            }
            for (to, payload) in sends {
                self.sess.send(eng, rank, to, 0, Rc::new(payload));
            }
            if nrecvs > 0 {
                return; // the last arrival resumes this rank
            }
            // No receives: the round is already complete; fold and loop
            // into the next one.
            self.complete_round(eng, rank);
        }
    }

    fn on_arrival(
        self: &Rc<Self>,
        eng: &mut MultiEngine,
        rank: usize,
        slot: usize,
        payload: Rc<Vec<u8>>,
    ) {
        let done = {
            let mut r = self.ranks[rank].borrow_mut();
            r.life = step(r.life, "recv");
            r.arrived[slot] = Some(payload.to_vec());
            r.waiting -= 1;
            r.waiting == 0
        };
        if done {
            self.complete_round(eng, rank);
            self.start_round(eng, rank);
        }
    }

    /// Apply the round's arrivals in schedule order, emit its span, and
    /// advance the cursor.
    fn complete_round(self: &Rc<Self>, eng: &mut MultiEngine, rank: usize) {
        let n = self.schedule.nranks;
        let vrank = crate::exec::virtual_rank(rank, self.ctx.root, n);
        let mut r = self.ranks[rank].borrow_mut();
        let round = &self.schedule.plans[vrank].rounds[r.round];
        let mut bytes = 0u64;
        let arrived = std::mem::take(&mut r.arrived);
        for (recv, payload) in round.recvs.iter().zip(arrived) {
            let payload = payload.expect("round completed with a receive slot empty"); // lint:allow(expect) -- complete_round only runs once waiting hits zero, so every slot is filled
            bytes += payload.len() as u64;
            r.state.apply(&recv.what, &payload, self.ctx.reduction);
        }
        r.life = step(r.life, "finish");
        if let Some(t) = &self.trace {
            t.span(SpanRec {
                stage: stages::COLL_ROUND,
                track: coll_track(rank),
                start: r.round_start,
                end: eng.now(),
                bytes,
                msg: (r.round + 1) as u64,
            });
        }
        r.round += 1;
    }
}

/// Simulate `schedule` over `spec` hardware with `profile` library
/// costs. `contributions` are actual-rank indexed; so are the outputs.
pub fn run_sim(
    spec: &ClusterSpec,
    profile: &LibProfile,
    schedule: &Schedule,
    ctx: ExecCtx,
    contributions: &[Vec<u8>],
    opts: &SimOptions,
) -> SimReport {
    let n = schedule.nranks;
    assert_eq!(contributions.len(), n, "one contribution per rank");
    if n == 1 {
        // The fabric needs two nodes; a single-rank collective is a
        // no-op with this rank's own data as the result.
        let out = RankState::init(schedule.op, 1, 0, &contributions[0]).into_output(schedule.op, 0);
        return SimReport {
            seconds: 0.0,
            events: 0,
            outputs: vec![Some(out)],
            finish_secs: vec![Some(0.0)],
            completed: 1,
        };
    }
    let mut eng = MultiNet::engine(spec.clone(), n);
    if let Some(t) = &opts.trace {
        eng.set_trace_sink(Rc::clone(t));
    }
    let sess = MultiSession::new(profile.clone(), n);
    let mut dead = None;
    match opts.fault {
        Some(RankFault::Dead(r)) => dead = Some(r),
        Some(RankFault::Degrade { rank, extra_us }) => sess.set_rank_overhead_us(rank, extra_us),
        None => {}
    }
    let driver = Rc::new(Driver {
        schedule: schedule.clone(),
        ctx,
        sess,
        ranks: (0..n)
            .map(|rank| {
                let vrank = crate::exec::virtual_rank(rank, ctx.root, n);
                RefCell::new(RankRun {
                    state: RankState::init(schedule.op, n, vrank, &contributions[rank]),
                    life: CollRound::initial(),
                    round: 0,
                    waiting: 0,
                    arrived: Vec::new(),
                    round_start: SimTime::ZERO,
                    finish: None,
                })
            })
            .collect(),
        trace: opts.trace.clone(),
    });
    for rank in 0..n {
        if dead == Some(rank) {
            continue; // never starts: its peers stall, the queue drains
        }
        let d = Rc::clone(&driver);
        eng.schedule_at(SimTime::ZERO, move |e| d.start_round(e, rank));
    }
    eng.run();
    let events = eng.events_executed();
    let mut outputs = Vec::with_capacity(n);
    let mut finish_secs = Vec::with_capacity(n);
    let mut completed = 0;
    let mut seconds = 0.0f64;
    for rank in 0..n {
        let mut r = driver.ranks[rank].borrow_mut();
        match r.finish {
            Some(t) => {
                completed += 1;
                let secs = t.as_secs_f64();
                if secs > seconds {
                    seconds = secs;
                }
                finish_secs.push(Some(secs));
                let vrank = crate::exec::virtual_rank(rank, ctx.root, n);
                let state = std::mem::take(&mut r.state);
                outputs.push(Some(state.into_output(schedule.op, vrank)));
            }
            None => {
                finish_secs.push(None);
                outputs.push(None);
            }
        }
    }
    SimReport {
        seconds,
        events,
        outputs,
        finish_secs,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CollOp, Dtype, ReduceOp};
    use crate::plan::{build, Algorithm};
    use crate::state::Reduction;

    fn sum_ctx() -> ExecCtx {
        ExecCtx {
            root: 0,
            reduction: Some(Reduction {
                dtype: Dtype::U64,
                op: ReduceOp::Sum,
            }),
        }
    }

    fn u64s(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|r| ((r + 1) as u64).to_le_bytes().to_vec())
            .collect()
    }

    #[test]
    fn simulated_allreduce_matches_the_arithmetic() {
        for alg in [
            Algorithm::Tree,
            Algorithm::RecursiveDoubling,
            Algorithm::Ring,
        ] {
            let n = 6;
            let s = build(CollOp::Allreduce, alg, n).unwrap();
            let report = run_sim(
                &hwmodel::presets::pcs_ga620(),
                &mpsim::libs::mpich(Default::default()).profile,
                &s,
                sum_ctx(),
                &u64s(n),
                &SimOptions::default(),
            );
            assert!(report.all_completed(), "{alg:?}");
            assert!(report.seconds > 0.0);
            for out in report.outputs {
                assert_eq!(out.unwrap().acc, 21u64.to_le_bytes(), "{alg:?}");
            }
        }
    }

    #[test]
    fn dead_rank_yields_partial_report_not_a_hang() {
        let n = 8;
        let s = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        let report = run_sim(
            &hwmodel::presets::pcs_ga620(),
            &mpsim::libs::mpich(Default::default()).profile,
            &s,
            ExecCtx {
                root: 0,
                reduction: None,
            },
            &vec![Vec::new(); n],
            &SimOptions {
                trace: None,
                fault: Some(RankFault::Dead(3)),
            },
        );
        assert!(!report.all_completed());
        assert!(report.outputs[3].is_none());
        assert!(report.completed < n);
    }

    #[test]
    fn degraded_rank_slows_the_collective() {
        let n = 8;
        let s = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        let run = |fault| {
            run_sim(
                &hwmodel::presets::pcs_ga620(),
                &mpsim::libs::mpich(Default::default()).profile,
                &s,
                ExecCtx {
                    root: 0,
                    reduction: None,
                },
                &vec![Vec::new(); n],
                &SimOptions { trace: None, fault },
            )
        };
        let clean = run(None);
        let slow = run(Some(RankFault::Degrade {
            rank: 2,
            extra_us: 5_000.0,
        }));
        assert!(slow.all_completed());
        assert!(slow.seconds > clean.seconds * 2.0);
    }
}
