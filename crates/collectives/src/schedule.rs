//! The schedule: a collective algorithm as data.
//!
//! A [`Schedule`] holds, for every rank, an ordered list of rounds; a
//! round issues sends and then completes (and folds in) receives. The
//! planners in [`crate::plan`] generate schedules; the executors in
//! [`crate::exec`] and [`crate::sim`] interpret them. Rounds are
//! *rank-local*: rank A's round 3 receive may match rank B's round 0
//! send — matching relies on per-pair FIFO delivery, which both the
//! simulated fabric and mplite's socket mesh guarantee.
//!
//! Schedules are expressed in *virtual* ranks with the root at virtual
//! rank 0; executors rotate peers by the actual root, so one plan
//! serves every root.

use crate::op::CollOp;
use crate::plan::Algorithm;

/// What a send step puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendWhat {
    /// An empty synchronization token (barrier traffic).
    Token,
    /// The rank's running reduction accumulator.
    Acc,
    /// The listed block slots, by virtual origin rank. A single block
    /// travels raw; several are framed with [`crate::op::pack_blocks`].
    Blocks(Vec<u32>),
}

/// What a receive step does with the arriving bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvWhat {
    /// Expect an empty token; keep nothing.
    Token,
    /// Fold into the accumulator under the run's reduction.
    CombineAcc,
    /// Overwrite the accumulator (result-distribution phases).
    ReplaceAcc,
    /// Store into the listed block slots (mirror of
    /// [`SendWhat::Blocks`]).
    Blocks(Vec<u32>),
}

/// One send: `what` goes to virtual rank `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendStep {
    /// Destination virtual rank.
    pub to: u32,
    /// Payload selector.
    pub what: SendWhat,
}

/// One receive: bytes from virtual rank `from` are applied per `what`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvStep {
    /// Source virtual rank.
    pub from: u32,
    /// Application rule; receives apply in listed order, which fixes
    /// the reduction fold order across backends.
    pub what: RecvWhat,
}

/// One round of one rank's plan: issue every send, then complete every
/// receive (applying them in order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// Sends issued at round entry, in order.
    pub sends: Vec<SendStep>,
    /// Receives the round blocks on, in application order.
    pub recvs: Vec<RecvStep>,
}

/// All rounds of one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankPlan {
    /// Rounds in execution order. Idle phases are simply absent — a
    /// rank that participates twice in a ring has exactly two rounds.
    pub rounds: Vec<Round>,
}

/// A complete collective schedule for `nranks` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The collective this schedule implements.
    pub op: CollOp,
    /// The algorithm family that generated it.
    pub algorithm: Algorithm,
    /// Number of participating ranks.
    pub nranks: usize,
    /// One plan per virtual rank.
    pub plans: Vec<RankPlan>,
}

impl Schedule {
    /// Total point-to-point messages the schedule moves.
    pub fn total_messages(&self) -> usize {
        self.plans
            .iter()
            .flat_map(|p| p.rounds.iter())
            .map(|r| r.sends.len())
            .sum::<usize>()
    }

    /// The deepest per-rank round count (the latency-critical depth).
    pub fn max_rounds(&self) -> usize {
        self.plans
            .iter()
            .map(|p| p.rounds.len())
            .fold(0, usize::max)
    }

    /// Structural self-check: peers in range, no self-sends, and for
    /// every ordered rank pair the FIFO sequence of sent payload
    /// classes equals the FIFO sequence of expected receive classes.
    /// Returns a description of the first defect found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nranks;
        if self.plans.len() != n {
            return Err(format!("{} plans for {} ranks", self.plans.len(), n));
        }
        // Per ordered pair (from,to): classes sent and classes expected.
        let mut sent: Vec<Vec<&SendWhat>> = vec![Vec::new(); n * n];
        let mut expected: Vec<Vec<&RecvWhat>> = vec![Vec::new(); n * n];
        for (me, plan) in self.plans.iter().enumerate() {
            for round in &plan.rounds {
                for s in &round.sends {
                    let to = s.to as usize;
                    if to >= n {
                        return Err(format!("rank {me} sends to out-of-range {to}"));
                    }
                    if to == me {
                        return Err(format!("rank {me} sends to itself"));
                    }
                    sent[me * n + to].push(&s.what);
                }
                for r in &round.recvs {
                    let from = r.from as usize;
                    if from >= n {
                        return Err(format!("rank {me} receives from out-of-range {from}"));
                    }
                    if from == me {
                        return Err(format!("rank {me} receives from itself"));
                    }
                    expected[from * n + me].push(&r.what);
                }
            }
        }
        for from in 0..n {
            for to in 0..n {
                let s = &sent[from * n + to];
                let e = &expected[from * n + to];
                if s.len() != e.len() {
                    return Err(format!(
                        "pair {from}->{to}: {} sends vs {} receives",
                        s.len(),
                        e.len()
                    ));
                }
                for (i, (sw, rw)) in s.iter().zip(e.iter()).enumerate() {
                    if !classes_match(sw, rw) {
                        return Err(format!(
                            "pair {from}->{to} message {i}: send {sw:?} vs recv {rw:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Stable structural digest (FNV-1a over a canonical rendering).
    /// Two backends handed the same digest are executing byte-identical
    /// schedules — the cross-check the acceptance criteria ask for.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.byte(match self.op {
            CollOp::Barrier => 0,
            CollOp::Bcast => 1,
            CollOp::Reduce => 2,
            CollOp::Allreduce => 3,
            CollOp::Allgather => 4,
        });
        h.byte(match self.algorithm {
            Algorithm::Linear => 0,
            Algorithm::Tree => 1,
            Algorithm::Dissemination => 2,
            Algorithm::RecursiveDoubling => 3,
            Algorithm::Ring => 4,
        });
        h.u64(self.nranks as u64);
        for plan in &self.plans {
            h.u64(plan.rounds.len() as u64);
            for round in &plan.rounds {
                h.u64(round.sends.len() as u64);
                for s in &round.sends {
                    h.u64(u64::from(s.to));
                    hash_send(&mut h, &s.what);
                }
                h.u64(round.recvs.len() as u64);
                for r in &round.recvs {
                    h.u64(u64::from(r.from));
                    hash_recv(&mut h, &r.what);
                }
            }
        }
        h.finish()
    }
}

fn classes_match(s: &SendWhat, r: &RecvWhat) -> bool {
    match (s, r) {
        (SendWhat::Token, RecvWhat::Token) => true,
        (SendWhat::Acc, RecvWhat::CombineAcc | RecvWhat::ReplaceAcc) => true,
        (SendWhat::Blocks(a), RecvWhat::Blocks(b)) => a == b,
        _ => false,
    }
}

fn hash_send(h: &mut Fnv, what: &SendWhat) {
    match what {
        SendWhat::Token => h.byte(0),
        SendWhat::Acc => h.byte(1),
        SendWhat::Blocks(idxs) => {
            h.byte(2);
            h.u64(idxs.len() as u64);
            for &i in idxs {
                h.u64(u64::from(i));
            }
        }
    }
}

fn hash_recv(h: &mut Fnv, what: &RecvWhat) {
    match what {
        RecvWhat::Token => h.byte(0),
        RecvWhat::CombineAcc => h.byte(1),
        RecvWhat::ReplaceAcc => h.byte(2),
        RecvWhat::Blocks(idxs) => {
            h.byte(3);
            h.u64(idxs.len() as u64);
            for &i in idxs {
                h.u64(u64::from(i));
            }
        }
    }
}

/// FNV-1a, hand-rolled so the digest is stable across Rust releases
/// (std's `DefaultHasher` makes no such promise).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{algorithms_for, build};

    #[test]
    fn every_planned_schedule_validates() {
        for op in CollOp::all() {
            for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 33] {
                for alg in algorithms_for(op, n) {
                    let s = build(op, alg, n).unwrap();
                    s.validate()
                        .unwrap_or_else(|e| panic!("{op:?}/{alg:?}/{n}: {e}"));
                }
            }
        }
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let a = build(CollOp::Barrier, Algorithm::Dissemination, 8).unwrap();
        let b = build(CollOp::Barrier, Algorithm::Dissemination, 8).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = build(CollOp::Barrier, Algorithm::Tree, 8).unwrap();
        assert_ne!(a.digest(), c.digest());
        let d = build(CollOp::Barrier, Algorithm::Dissemination, 9).unwrap();
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn validate_catches_an_unmatched_send() {
        let mut s = build(CollOp::Barrier, Algorithm::Ring, 4).unwrap();
        s.plans[0].rounds[0].sends.push(SendStep {
            to: 2,
            what: SendWhat::Token,
        });
        assert!(s.validate().is_err());
    }
}
