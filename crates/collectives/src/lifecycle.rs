//! The collective round lifecycle as a session-typed protocol machine.
//!
//! Every executor steps one [`CollRound`] machine per rank through each
//! round: `post~` on round entry, one `send!` per issued send, `drain~`
//! when the round turns to completing receives, one `recv?` per
//! completed receive, and `finish~` back to `Idle`. The machine is
//! declared with [`protospec::protocol!`], so `xtask analyze`'s
//! conformance passes (undeclared events, unreachable states,
//! non-terminal ends) cover the collectives subsystem like every other
//! protocol in the tree.

/// The per-round lifecycle machine, in its own module because
/// `protocol!` emits one ZST per state name.
pub mod round {
    protospec::protocol! {
        /// Lifecycle of one rank's participation in one schedule round.
        pub CollRound of collective.participant;
        states Idle, Exchanging, Draining;
        terminal Idle;
        Idle --post~--> Exchanging;
        Exchanging --send!--> Exchanging;
        Exchanging --drain~--> Draining;
        Draining --recv?--> Draining;
        Draining --finish~--> Idle;
    }
}

pub use round::CollRound;

/// Step a lifecycle machine, panicking on an illegal edge. Every edge
/// the executors drive is declared in the spec above, so a failure here
/// is an executor bug, not a runtime condition.
pub fn step(state: CollRound, event: &str) -> CollRound {
    state
        .step(event)
        .expect("collective lifecycle stepped outside its spec") // lint:allow(expect) -- every edge stepped by the executors is declared in the protocol! spec; an illegal step is an executor bug
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_round_walks_the_machine_back_to_idle() {
        let mut s = CollRound::initial();
        s = step(s, "post");
        s = step(s, "send");
        s = step(s, "send");
        s = step(s, "drain");
        s = step(s, "recv");
        s = step(s, "finish");
        assert!(s.is_terminal());
    }

    #[test]
    fn receiving_before_drain_is_illegal() {
        let s = step(CollRound::initial(), "post");
        assert!(s.step("recv").is_err());
    }
}
