//! # collectives — collective algorithms as data
//!
//! The paper's measurements are point-to-point; real applications spend
//! their communication time in *collectives*, and every message-passing
//! library it compares ships its own barrier/bcast/reduce trees. This
//! crate makes the algorithm itself a first-class value: a planner
//! turns (op, algorithm, nranks) into a [`Schedule`] — per rank, an
//! ordered list of rounds of send and receive steps — and *executors*
//! interpret that schedule over different transports:
//!
//! * [`exec::run_blocking`] drives any blocking transport implementing
//!   [`exec::CollTransport`] (mplite's real `Comm` does);
//! * [`sim::run_sim`] drives N simulated ranks over the
//!   [`protosim::multinode`] switched fabric with
//!   [`mpsim::LibProfile`] per-message library costs;
//! * [`exec::run_local`] is the in-memory reference stepper the
//!   property tests compare both against.
//!
//! Because payload materialization and receive application live in one
//! place ([`state::RankState`]), all three produce byte-identical
//! results for the same schedule and inputs — the backends differ only
//! in *when*, never *what*. [`Schedule::digest`] makes the
//! "same schedule" claim checkable across processes.
//!
//! Five algorithm families cover five ops (see [`plan::build`] for the
//! exact support matrix): linear, binomial tree, dissemination/Bruck,
//! recursive doubling, and ring. All are expressed in virtual ranks
//! with the root at 0; executors rotate by the actual root.

#![warn(missing_docs)]

pub mod exec;
pub mod lifecycle;
pub mod op;
pub mod plan;
pub mod recovery;
pub mod schedule;
pub mod sim;
pub mod state;

pub use exec::{run_blocking, run_local, CollTransport, ExecCtx};
pub use op::{combine_bytes, pack_blocks, unpack_blocks, CollOp, Dtype, ReduceOp};
pub use plan::{algorithms_for, auto_algorithm, build, Algorithm, PlanError};
pub use recovery::{step_member, EpochRecord, Membership, RecoveryPolicy, RecoveryReport};
pub use schedule::{RankPlan, RecvStep, RecvWhat, Round, Schedule, SendStep, SendWhat};
pub use sim::{coll_track, run_sim, RankFault, SimOptions, SimReport};
pub use state::{CollOutput, RankState, Reduction};
