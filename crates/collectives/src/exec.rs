//! Schedule executors: the blocking one (real transports) and the
//! in-memory reference stepper the property tests compare against.
//!
//! Both interpret a [`Schedule`] with identical semantics — per round,
//! post every receive, issue every send, then complete and apply the
//! receives in listed order — so any transport that preserves per-pair
//! FIFO order produces byte-identical results.

use crate::lifecycle::{step, CollRound};
use crate::schedule::Schedule;
use crate::state::{CollOutput, RankState, Reduction};

/// The transport surface [`run_blocking`] needs: non-blocking receive
/// posting, blocking completion, and a send that may block until the
/// payload is accepted. Implemented by mplite's `Comm` (real sockets /
/// in-process channels).
pub trait CollTransport {
    /// Transport error type.
    type Err;
    /// Handle for a posted-but-incomplete receive.
    type Pending;
    /// This process's rank.
    fn rank(&self) -> usize;
    /// Number of ranks in the job.
    fn nranks(&self) -> usize;
    /// Post a receive from `from` on `tag` without blocking.
    fn post(&self, from: usize, tag: i32) -> Self::Pending;
    /// Block until a posted receive completes; yields the payload.
    fn complete(&self, pending: Self::Pending) -> Result<Vec<u8>, Self::Err>;
    /// Send `payload` to `to` on `tag`, blocking until accepted.
    fn send(&self, to: usize, tag: i32, payload: Vec<u8>) -> Result<(), Self::Err>;
}

/// Per-call execution context: the actual root and, for reducing ops,
/// the element interpretation.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx {
    /// Actual root rank; the schedule's virtual rank 0 maps onto it.
    pub root: usize,
    /// Element interpretation for CombineAcc steps; `None` for
    /// non-reducing ops.
    pub reduction: Option<Reduction>,
}

/// Translate a virtual rank to an actual rank under `root` rotation.
pub fn actual_rank(virt: usize, root: usize, n: usize) -> usize {
    (virt + root) % n
}

/// Translate an actual rank to its virtual rank under `root` rotation.
pub fn virtual_rank(rank: usize, root: usize, n: usize) -> usize {
    (rank + n - root % n) % n
}

/// Execute this rank's plan of `schedule` over a blocking transport.
/// All collective traffic travels on the single `tag`; matching within
/// the tag relies on the transport's per-pair FIFO order.
// analyze: hot
pub fn run_blocking<T: CollTransport>(
    transport: &T,
    schedule: &Schedule,
    ctx: ExecCtx,
    tag: i32,
    contribution: &[u8],
) -> Result<CollOutput, T::Err> {
    let n = transport.nranks();
    debug_assert_eq!(n, schedule.nranks);
    let me = transport.rank();
    let vrank = virtual_rank(me, ctx.root, n);
    let mut state = RankState::init(schedule.op, n, vrank, contribution);
    let mut life = CollRound::initial();
    for round in &schedule.plans[vrank].rounds {
        life = step(life, "post");
        let pending: Vec<_> = round
            .recvs
            .iter()
            .map(|r| transport.post(actual_rank(r.from as usize, ctx.root, n), tag))
            .collect();
        for s in &round.sends {
            let payload = state.payload(&s.what);
            transport.send(actual_rank(s.to as usize, ctx.root, n), tag, payload)?;
            life = step(life, "send");
        }
        life = step(life, "drain");
        for (r, p) in round.recvs.iter().zip(pending) {
            let bytes = transport.complete(p)?;
            state.apply(&r.what, &bytes, ctx.reduction);
            life = step(life, "recv");
        }
        life = step(life, "finish");
    }
    assert!(life.is_terminal());
    Ok(state.into_output(schedule.op, vrank))
}

/// Run a whole schedule in-process with plain queues: the reference
/// executor. Rank `i` contributes `contributions[i]` (actual-rank
/// indexed) and the outputs come back actual-rank indexed too.
///
/// Ranks advance round-robin — issue sends, then complete receives in
/// order, yielding when a queue is empty — so any schedule a blocking
/// mesh can finish, this can too; a cycle of ranks all waiting on
/// absent messages panics with a deadlock diagnosis instead of hanging.
// analyze: hot
pub fn run_local(schedule: &Schedule, ctx: ExecCtx, contributions: &[Vec<u8>]) -> Vec<CollOutput> {
    use std::collections::VecDeque;
    let n = schedule.nranks;
    assert_eq!(contributions.len(), n, "one contribution per rank");

    struct Rank {
        state: RankState,
        life: CollRound,
        round: usize,
        /// Next unissued send / next uncompleted recv within the round.
        next_send: usize,
        next_recv: usize,
    }
    let mut ranks: Vec<Rank> = (0..n)
        .map(|me| {
            let vrank = virtual_rank(me, ctx.root, n);
            let mut life = CollRound::initial();
            if !schedule.plans[vrank].rounds.is_empty() {
                life = step(life, "post");
            }
            Rank {
                state: RankState::init(schedule.op, n, vrank, &contributions[me]),
                life,
                round: 0,
                next_send: 0,
                next_recv: 0,
            }
        })
        .collect();
    // Per ordered actual-rank pair, FIFO of in-flight payloads.
    let mut wires: Vec<VecDeque<Vec<u8>>> = (0..n * n).map(|_| VecDeque::new()).collect();

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for me in 0..n {
            let vrank = virtual_rank(me, ctx.root, n);
            let rounds = &schedule.plans[vrank].rounds;
            loop {
                let Some(round) = rounds.get(ranks[me].round) else {
                    break;
                };
                all_done = false;
                if ranks[me].next_send < round.sends.len() {
                    let s = &round.sends[ranks[me].next_send];
                    let payload = ranks[me].state.payload(&s.what);
                    let to = actual_rank(s.to as usize, ctx.root, n);
                    wires[me * n + to].push_back(payload);
                    ranks[me].life = step(ranks[me].life, "send");
                    ranks[me].next_send += 1;
                    progressed = true;
                    continue;
                }
                if ranks[me].next_send == round.sends.len() && ranks[me].next_recv == 0 {
                    ranks[me].life = step(ranks[me].life, "drain");
                    // Mark the drain by bumping next_send past the end.
                    ranks[me].next_send += 1;
                    progressed = true;
                }
                if ranks[me].next_recv < round.recvs.len() {
                    let r = &round.recvs[ranks[me].next_recv];
                    let from = actual_rank(r.from as usize, ctx.root, n);
                    let Some(bytes) = wires[from * n + me].pop_front() else {
                        break; // blocked on this recv; let others run
                    };
                    ranks[me].state.apply(&r.what, &bytes, ctx.reduction);
                    ranks[me].life = step(ranks[me].life, "recv");
                    ranks[me].next_recv += 1;
                    progressed = true;
                    continue;
                }
                // Round complete.
                ranks[me].life = step(ranks[me].life, "finish");
                ranks[me].round += 1;
                ranks[me].next_send = 0;
                ranks[me].next_recv = 0;
                if ranks[me].round < rounds.len() {
                    ranks[me].life = step(ranks[me].life, "post");
                }
                progressed = true;
            }
        }
        if all_done {
            break;
        }
        assert!(
            progressed,
            "schedule deadlocked: every unfinished rank is blocked on a receive \
             ({:?} {} over {} ranks)",
            schedule.op,
            schedule.algorithm.name(),
            n
        );
    }
    ranks
        .into_iter()
        .enumerate()
        .map(|(me, r)| {
            assert!(r.life.is_terminal());
            r.state
                .into_output(schedule.op, virtual_rank(me, ctx.root, n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CollOp, Dtype, ReduceOp};
    use crate::plan::{build, Algorithm};

    fn no_reduce(root: usize) -> ExecCtx {
        ExecCtx {
            root,
            reduction: None,
        }
    }

    #[test]
    fn local_allreduce_sums_across_every_algorithm() {
        for alg in [
            Algorithm::Linear,
            Algorithm::Tree,
            Algorithm::RecursiveDoubling,
            Algorithm::Ring,
        ] {
            let n = 6;
            let s = build(CollOp::Allreduce, alg, n).unwrap();
            let contribs: Vec<Vec<u8>> = (0..n)
                .map(|r| ((r + 1) as u64).to_le_bytes().to_vec())
                .collect();
            let ctx = ExecCtx {
                root: 0,
                reduction: Some(Reduction {
                    dtype: Dtype::U64,
                    op: ReduceOp::Sum,
                }),
            };
            let outs = run_local(&s, ctx, &contribs);
            for out in outs {
                assert_eq!(out.acc, 21u64.to_le_bytes(), "{alg:?}");
            }
        }
    }

    #[test]
    fn local_bcast_rotates_roots() {
        let n = 5;
        let s = build(CollOp::Bcast, Algorithm::Tree, n).unwrap();
        for root in 0..n {
            let contribs: Vec<Vec<u8>> = (0..n)
                .map(|r| {
                    if r == root {
                        b"hello".to_vec()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let outs = run_local(&s, no_reduce(root), &contribs);
            for out in outs {
                assert_eq!(out.acc, b"hello", "root {root}");
            }
        }
    }

    #[test]
    fn virtual_actual_rank_mapping_inverts() {
        for n in [2usize, 3, 8] {
            for root in 0..n {
                for v in 0..n {
                    assert_eq!(virtual_rank(actual_rank(v, root, n), root, n), v);
                }
            }
        }
    }
}
