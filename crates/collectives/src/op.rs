//! Operations, element encodings, and the byte-level combine semantics
//! shared by every backend.
//!
//! Both executors (the simulated one and the real blocking one) move
//! *bytes*; reductions happen by decoding fixed-width little-endian
//! elements, combining them in schedule order, and re-encoding. Because
//! the combine code lives here — not in a backend — the two backends
//! produce byte-identical results for the same schedule and inputs.

/// Which collective a schedule implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Pure synchronization: no data moves, only empty tokens.
    Barrier,
    /// One rank's payload ends up on every rank.
    Bcast,
    /// Elementwise reduction of every rank's contribution to the root.
    Reduce,
    /// Reduction whose result every rank receives.
    Allreduce,
    /// Every rank's block ends up on every rank, in rank order.
    Allgather,
}

impl CollOp {
    /// Stable lower-case name (CSV/figure labels).
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Barrier => "barrier",
            CollOp::Bcast => "bcast",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
            CollOp::Allgather => "allgather",
        }
    }

    /// All five ops, in declaration order.
    pub fn all() -> [CollOp; 5] {
        [
            CollOp::Barrier,
            CollOp::Bcast,
            CollOp::Reduce,
            CollOp::Allreduce,
            CollOp::Allgather,
        ]
    }
}

/// Reduction operators (the set MP_Lite's globals support, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

/// Fixed-width little-endian element encodings a reduction operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 64-bit IEEE float.
    F64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit unsigned integer.
    U64,
}

impl Dtype {
    /// Serialized size of one element, bytes.
    pub fn width(self) -> usize {
        match self {
            Dtype::F64 | Dtype::I64 | Dtype::U64 => 8,
            Dtype::F32 | Dtype::I32 => 4,
        }
    }
}

trait Elem: Copy {
    const WIDTH: usize;
    fn get(bytes: &[u8]) -> Self;
    fn put(self, bytes: &mut [u8]);
    fn combine(self, other: Self, op: ReduceOp) -> Self;
}

macro_rules! impl_elem {
    ($t:ty, $add:expr, $mul:expr) => {
        impl Elem for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn get(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(bytes);
                <$t>::from_le_bytes(buf)
            }
            fn put(self, bytes: &mut [u8]) {
                bytes.copy_from_slice(&self.to_le_bytes());
            }
            fn combine(self, other: Self, op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => $add(self, other),
                    ReduceOp::Min => {
                        if other < self {
                            other
                        } else {
                            self
                        }
                    }
                    ReduceOp::Max => {
                        if other > self {
                            other
                        } else {
                            self
                        }
                    }
                    ReduceOp::Prod => $mul(self, other),
                }
            }
        }
    };
}

// Integer sums and products wrap: collectives must produce the same
// bytes in debug and release builds, and a reduction over arbitrary
// per-rank contributions has no non-wrapping answer to promise.
impl_elem!(f64, |a, b| a + b, |a, b| a * b);
impl_elem!(f32, |a, b| a + b, |a, b| a * b);
impl_elem!(i64, i64::wrapping_add, i64::wrapping_mul);
impl_elem!(i32, i32::wrapping_add, i32::wrapping_mul);
impl_elem!(u64, u64::wrapping_add, u64::wrapping_mul);

fn combine_as<T: Elem>(op: ReduceOp, acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc
        .chunks_exact_mut(T::WIDTH)
        .zip(other.chunks_exact(T::WIDTH))
    {
        let combined = T::get(a).combine(T::get(b), op);
        combined.put(a);
    }
}

/// Elementwise-combine `other` into `acc` under `op`, interpreting both
/// as little-endian `dtype` slices. The combine order is exactly
/// "incoming folded into the accumulator", so every backend executing
/// the same schedule folds in the same order and produces the same
/// bytes — including for floats, where order matters.
///
/// Panics on length mismatch or a length that is not a whole number of
/// elements: all ranks of a reduction must contribute equal-length
/// slices, so a mismatch is a caller bug, as in the hand-rolled
/// collectives this module replaces.
pub fn combine_bytes(dtype: Dtype, op: ReduceOp, acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len(), "reduction length mismatch");
    assert!(
        acc.len().is_multiple_of(dtype.width()),
        "reduction payload is not a whole number of {dtype:?} elements"
    );
    match dtype {
        Dtype::F64 => combine_as::<f64>(op, acc, other),
        Dtype::F32 => combine_as::<f32>(op, acc, other),
        Dtype::I64 => combine_as::<i64>(op, acc, other),
        Dtype::I32 => combine_as::<i32>(op, acc, other),
        Dtype::U64 => combine_as::<u64>(op, acc, other),
    }
}

/// Frame several variable-length blocks into one message:
/// `[u32 count][u64 len]*count [bytes]*count`, all little-endian. The
/// format matches the length-prefix table mplite's tree allgather used,
/// so multi-block tree traffic keeps its historical wire size.
pub fn pack_blocks(parts: &[&[u8]]) -> Vec<u8> {
    let total = parts.iter().map(|p| p.len()).sum::<usize>();
    let mut out = Vec::with_capacity(4 + 8 * parts.len() + total);
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    }
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Invert [`pack_blocks`]. `count` is the expected block count (the
/// schedule names the block indices, so both ends agree on it).
/// Panics on malformed framing: the bytes come from our own
/// `pack_blocks` on the sending rank, so damage is an executor bug.
pub fn unpack_blocks(bytes: &[u8], count: usize) -> Vec<Vec<u8>> {
    assert!(bytes.len() >= 4, "block frame shorter than its header");
    let mut hdr = [0u8; 4];
    hdr.copy_from_slice(&bytes[0..4]);
    let got = u32::from_le_bytes(hdr) as usize;
    assert_eq!(got, count, "block frame count mismatch");
    let mut lens = Vec::with_capacity(count);
    let mut off = 4;
    for _ in 0..count {
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[off..off + 8]);
        lens.push(u64::from_le_bytes(len8) as usize);
        off += 8;
    }
    let mut parts = Vec::with_capacity(count);
    for len in lens {
        parts.push(bytes[off..off + len].to_vec());
        off += len;
    }
    assert_eq!(off, bytes.len(), "trailing bytes after block frame");
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_u64(xs: &[u64]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn combine_sum_min_max_prod_u64() {
        let mut acc = enc_u64(&[1, 9, 4]);
        combine_bytes(Dtype::U64, ReduceOp::Sum, &mut acc, &enc_u64(&[2, 1, 6]));
        assert_eq!(acc, enc_u64(&[3, 10, 10]));
        combine_bytes(Dtype::U64, ReduceOp::Min, &mut acc, &enc_u64(&[5, 2, 20]));
        assert_eq!(acc, enc_u64(&[3, 2, 10]));
        combine_bytes(Dtype::U64, ReduceOp::Max, &mut acc, &enc_u64(&[4, 1, 30]));
        assert_eq!(acc, enc_u64(&[4, 2, 30]));
        combine_bytes(Dtype::U64, ReduceOp::Prod, &mut acc, &enc_u64(&[2, 3, 1]));
        assert_eq!(acc, enc_u64(&[8, 6, 30]));
    }

    #[test]
    fn combine_f64_preserves_fold_direction() {
        // acc := acc ⊕ other, never the reverse: 1/3 + 1 vs 1 + 1/3
        // differ in the last bit only if the fold flips — pin it.
        let third = 1.0f64 / 3.0;
        let mut acc = third.to_le_bytes().to_vec();
        combine_bytes(Dtype::F64, ReduceOp::Sum, &mut acc, &1.0f64.to_le_bytes());
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&acc);
        assert_eq!(f64::from_le_bytes(buf), third + 1.0);
    }

    #[test]
    fn pack_unpack_roundtrip_variable_sizes() {
        let parts: Vec<Vec<u8>> = vec![b"".to_vec(), b"abc".to_vec(), vec![7u8; 100]];
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        let framed = pack_blocks(&refs);
        assert_eq!(unpack_blocks(&framed, 3), parts);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn combine_rejects_ragged_inputs() {
        let mut acc = vec![0u8; 8];
        combine_bytes(Dtype::U64, ReduceOp::Sum, &mut acc, &[0u8; 16]);
    }
}
