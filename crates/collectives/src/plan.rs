//! Planners: generate a [`Schedule`] for an (op, algorithm, ranks)
//! triple.
//!
//! Each planner encodes one textbook algorithm in virtual-rank space
//! (root = virtual rank 0):
//!
//! * **Linear** — everything through the root; the naive reference the
//!   property tests compare against.
//! * **Tree** — binomial trees (gather and/or broadcast phases), the
//!   shape mplite's hand-rolled collectives used.
//! * **Dissemination** — the ⌈log₂ n⌉-round barrier of Hensgen et al.
//!   and, for allgather, Bruck's algorithm (both handle any n).
//! * **RecursiveDoubling** — pairwise exchange inside the largest
//!   power-of-two core, with excess ranks folded in and released
//!   (allgather requires power-of-two n outright).
//! * **Ring** — neighbour-only traffic: pipelined chains for
//!   bcast/reduce, the classic simultaneous ring for allgather, and a
//!   two-circulation token ring for barrier.

use std::fmt;

use crate::op::CollOp;
use crate::schedule::{RankPlan, RecvStep, RecvWhat, Round, Schedule, SendStep, SendWhat};

/// The algorithm families the planners implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Star through the root: O(n) messages at the root, 1–2 rounds.
    Linear,
    /// Binomial tree: ⌈log₂ n⌉ rounds, any n.
    Tree,
    /// Dissemination (barrier) / Bruck (allgather): ⌈log₂ n⌉ rounds,
    /// any n, no root bottleneck.
    Dissemination,
    /// Pairwise exchange by XOR distance; non-power-of-two jobs fold
    /// the excess into the power-of-two core first.
    RecursiveDoubling,
    /// Nearest-neighbour ring traffic only.
    Ring,
}

impl Algorithm {
    /// Stable lower-case name (CSV/figure labels).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Linear => "linear",
            Algorithm::Tree => "tree",
            Algorithm::Dissemination => "dissemination",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::Ring => "ring",
        }
    }

    /// All five families, in declaration order.
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::Linear,
            Algorithm::Tree,
            Algorithm::Dissemination,
            Algorithm::RecursiveDoubling,
            Algorithm::Ring,
        ]
    }
}

/// Why a plan could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The op × algorithm combination is not defined.
    Unsupported {
        /// Requested collective.
        op: CollOp,
        /// Requested algorithm family.
        algorithm: Algorithm,
    },
    /// The combination exists only for power-of-two rank counts.
    NeedsPowerOfTwo {
        /// Requested collective.
        op: CollOp,
        /// Requested algorithm family.
        algorithm: Algorithm,
        /// Offending rank count.
        nranks: usize,
    },
    /// A collective over zero ranks is meaningless.
    NoRanks,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsupported { op, algorithm } => {
                write!(f, "no {} planner for {}", algorithm.name(), op.name())
            }
            PlanError::NeedsPowerOfTwo {
                op,
                algorithm,
                nranks,
            } => write!(
                f,
                "{} {} requires a power-of-two rank count, got {nranks}",
                algorithm.name(),
                op.name()
            ),
            PlanError::NoRanks => write!(f, "a collective needs at least one rank"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Every algorithm with a planner for `op` at `n` ranks, in
/// [`Algorithm::all`] order.
pub fn algorithms_for(op: CollOp, n: usize) -> Vec<Algorithm> {
    Algorithm::all()
        .into_iter()
        .filter(|&alg| build(op, alg, n.max(1)).is_ok())
        .collect()
}

/// The deterministic default algorithm the public mplite entry points
/// use. Depends only on values every rank agrees on (`op`, `n`), so all
/// ranks of a job always pick the same schedule.
pub fn auto_algorithm(op: CollOp, n: usize) -> Algorithm {
    match op {
        // The shapes the hand-rolled mplite collectives used.
        CollOp::Barrier => Algorithm::Dissemination,
        CollOp::Bcast | CollOp::Reduce | CollOp::Allreduce => Algorithm::Tree,
        // Ring is bandwidth-optimal once the job is wide enough for the
        // root to be a real bottleneck; small jobs keep the tree's
        // ⌈log₂ n⌉ latency.
        CollOp::Allgather => {
            if n >= 8 {
                Algorithm::Ring
            } else {
                Algorithm::Tree
            }
        }
    }
}

/// Build the schedule for `op` via `algorithm` over `n` ranks.
pub fn build(op: CollOp, algorithm: Algorithm, n: usize) -> Result<Schedule, PlanError> {
    if n == 0 {
        return Err(PlanError::NoRanks);
    }
    let unsupported = Err(PlanError::Unsupported { op, algorithm });
    let plans = if n == 1 {
        // Degenerate single-rank job: every supported combination is an
        // empty plan; unsupported combinations still error.
        match (op, algorithm) {
            (CollOp::Bcast | CollOp::Reduce, Algorithm::Dissemination)
            | (CollOp::Bcast | CollOp::Reduce, Algorithm::RecursiveDoubling) => return unsupported,
            _ => vec![RankPlan::default()],
        }
    } else {
        match (op, algorithm) {
            (CollOp::Barrier, Algorithm::Linear) => linear_barrier(n),
            (CollOp::Barrier, Algorithm::Tree) => barrier_tree(n),
            (CollOp::Barrier, Algorithm::Dissemination) => dissemination_barrier(n),
            (CollOp::Barrier, Algorithm::RecursiveDoubling) => {
                rd_fold(n, SendWhat::Token, RecvWhat::Token, RecvWhat::Token)
            }
            (CollOp::Barrier, Algorithm::Ring) => ring_barrier(n),
            (CollOp::Bcast, Algorithm::Linear) => linear_bcast(n),
            (CollOp::Bcast, Algorithm::Tree) => bcast_tree(n, one_block()),
            (CollOp::Bcast, Algorithm::Ring) => ring_bcast(n),
            (CollOp::Reduce, Algorithm::Linear) => linear_reduce(n),
            (CollOp::Reduce, Algorithm::Tree) => reduce_tree(n),
            (CollOp::Reduce, Algorithm::Ring) => ring_reduce(n),
            (CollOp::Allreduce, Algorithm::Linear) => concat(linear_reduce(n), acc_fanout(n)),
            (CollOp::Allreduce, Algorithm::Tree) => concat(reduce_tree(n), acc_bcast_tree(n)),
            (CollOp::Allreduce, Algorithm::RecursiveDoubling) => {
                rd_fold(n, SendWhat::Acc, RecvWhat::CombineAcc, RecvWhat::ReplaceAcc)
            }
            (CollOp::Allreduce, Algorithm::Ring) => concat(ring_reduce(n), acc_ring(n)),
            (CollOp::Allgather, Algorithm::Linear) => linear_allgather(n),
            (CollOp::Allgather, Algorithm::Tree) => allgather_tree(n),
            (CollOp::Allgather, Algorithm::Dissemination) => bruck_allgather(n),
            (CollOp::Allgather, Algorithm::RecursiveDoubling) => {
                if !n.is_power_of_two() {
                    return Err(PlanError::NeedsPowerOfTwo {
                        op,
                        algorithm,
                        nranks: n,
                    });
                }
                rd_allgather(n)
            }
            (CollOp::Allgather, Algorithm::Ring) => ring_allgather(n),
            _ => return unsupported,
        }
    };
    Ok(Schedule {
        op,
        algorithm,
        nranks: n,
        plans,
    })
}

// ---- small construction helpers -----------------------------------------

fn empty_plans(n: usize) -> Vec<RankPlan> {
    vec![RankPlan::default(); n]
}

fn send(to: usize, what: SendWhat) -> SendStep {
    SendStep {
        to: to as u32,
        what,
    }
}

fn recv(from: usize, what: RecvWhat) -> RecvStep {
    RecvStep {
        from: from as u32,
        what,
    }
}

fn round(sends: Vec<SendStep>, recvs: Vec<RecvStep>) -> Round {
    Round { sends, recvs }
}

fn one_block() -> SendWhat {
    SendWhat::Blocks(vec![0])
}

/// Append `b`'s rounds after `a`'s, rank by rank (phase composition).
fn concat(mut a: Vec<RankPlan>, b: Vec<RankPlan>) -> Vec<RankPlan> {
    for (pa, pb) in a.iter_mut().zip(b) {
        pa.rounds.extend(pb.rounds);
    }
    a
}

/// Highest set bit of `v` (v > 0).
fn high_bit(v: usize) -> usize {
    1usize << (usize::BITS - 1 - v.leading_zeros())
}

// ---- linear (the naive reference) ---------------------------------------

fn linear_barrier(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    let gather: Vec<RecvStep> = (1..n).map(|r| recv(r, RecvWhat::Token)).collect();
    let release: Vec<SendStep> = (1..n).map(|r| send(r, SendWhat::Token)).collect();
    plans[0].rounds.push(round(Vec::new(), gather));
    plans[0].rounds.push(round(release, Vec::new()));
    for plan in plans.iter_mut().skip(1) {
        plan.rounds
            .push(round(vec![send(0, SendWhat::Token)], Vec::new()));
        plan.rounds
            .push(round(Vec::new(), vec![recv(0, RecvWhat::Token)]));
    }
    plans
}

fn linear_bcast(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    let fanout: Vec<SendStep> = (1..n).map(|r| send(r, one_block())).collect();
    plans[0].rounds.push(round(fanout, Vec::new()));
    for plan in plans.iter_mut().skip(1) {
        plan.rounds
            .push(round(Vec::new(), vec![recv(0, RecvWhat::Blocks(vec![0]))]));
    }
    plans
}

fn linear_reduce(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    // Root folds contributions in rank order — the reference fold order.
    let gather: Vec<RecvStep> = (1..n).map(|r| recv(r, RecvWhat::CombineAcc)).collect();
    plans[0].rounds.push(round(Vec::new(), gather));
    for plan in plans.iter_mut().skip(1) {
        plan.rounds
            .push(round(vec![send(0, SendWhat::Acc)], Vec::new()));
    }
    plans
}

/// Root fans its accumulator out to everyone (allreduce distribution).
fn acc_fanout(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    let fanout: Vec<SendStep> = (1..n).map(|r| send(r, SendWhat::Acc)).collect();
    plans[0].rounds.push(round(fanout, Vec::new()));
    for plan in plans.iter_mut().skip(1) {
        plan.rounds
            .push(round(Vec::new(), vec![recv(0, RecvWhat::ReplaceAcc)]));
    }
    plans
}

fn linear_allgather(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    for (me, plan) in plans.iter_mut().enumerate() {
        let sends: Vec<SendStep> = (0..n)
            .filter(|&to| to != me)
            .map(|to| send(to, SendWhat::Blocks(vec![me as u32])))
            .collect();
        let recvs: Vec<RecvStep> = (0..n)
            .filter(|&from| from != me)
            .map(|from| recv(from, RecvWhat::Blocks(vec![from as u32])))
            .collect();
        plan.rounds.push(round(sends, recvs));
    }
    plans
}

// ---- binomial trees ------------------------------------------------------

/// Broadcast `what` down the binomial tree rooted at 0. `what` must be
/// sendable by every rank once received (`Acc` or a single block).
fn bcast_tree_with(n: usize, what: SendWhat, store: RecvWhat) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    for (v, plan) in plans.iter_mut().enumerate() {
        if v != 0 {
            let parent = v - high_bit(v);
            plan.rounds
                .push(round(Vec::new(), vec![recv(parent, store.clone())]));
        }
        let mut bit = if v == 0 { 1 } else { high_bit(v) << 1 };
        let mut sends = Vec::new();
        while v + bit < n {
            sends.push(send(v + bit, what.clone()));
            bit <<= 1;
        }
        if !sends.is_empty() {
            plan.rounds.push(round(sends, Vec::new()));
        }
    }
    plans
}

fn bcast_tree(n: usize, what: SendWhat) -> Vec<RankPlan> {
    let store = match &what {
        SendWhat::Blocks(idxs) => RecvWhat::Blocks(idxs.clone()),
        SendWhat::Acc => RecvWhat::ReplaceAcc,
        SendWhat::Token => RecvWhat::Token,
    };
    bcast_tree_with(n, what, store)
}

fn acc_bcast_tree(n: usize) -> Vec<RankPlan> {
    bcast_tree(n, SendWhat::Acc)
}

/// Binomial reduction to virtual rank 0, mirroring [`bcast_tree`]:
/// each rank folds its children in increasing-bit order (one round per
/// child, matching the serialized receives of the hand-rolled version),
/// then sends up and leaves.
fn reduce_tree_with(n: usize, up: SendWhat, fold: RecvWhat) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    for (v, plan) in plans.iter_mut().enumerate() {
        let mut bit = 1usize;
        while bit < n {
            if v & bit != 0 {
                plan.rounds
                    .push(round(vec![send(v & !bit, up.clone())], Vec::new()));
                break;
            }
            if v + bit < n {
                plan.rounds
                    .push(round(Vec::new(), vec![recv(v + bit, fold.clone())]));
            }
            bit <<= 1;
        }
    }
    plans
}

fn reduce_tree(n: usize) -> Vec<RankPlan> {
    reduce_tree_with(n, SendWhat::Acc, RecvWhat::CombineAcc)
}

fn barrier_tree(n: usize) -> Vec<RankPlan> {
    concat(
        reduce_tree_with(n, SendWhat::Token, RecvWhat::Token),
        bcast_tree(n, SendWhat::Token),
    )
}

/// Tree allgather: binomial gather of blocks at virtual rank 0, then a
/// binomial broadcast of the full framed set — the gather+bcast shape
/// of mplite's original `allgather`.
fn allgather_tree(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    // Gather phase: at bit level b, rank v (with v & b set) owns the
    // contiguous block range [v, min(v + b, n)) and ships it up.
    for (v, plan) in plans.iter_mut().enumerate() {
        let mut bit = 1usize;
        while bit < n {
            if v & bit != 0 {
                let held: Vec<u32> = (v..(v + bit).min(n)).map(|b| b as u32).collect();
                plan.rounds.push(round(
                    vec![send(v & !bit, SendWhat::Blocks(held))],
                    Vec::new(),
                ));
                break;
            }
            if v + bit < n {
                let sub: Vec<u32> = ((v + bit)..(v + 2 * bit).min(n))
                    .map(|b| b as u32)
                    .collect();
                plan.rounds.push(round(
                    Vec::new(),
                    vec![recv(v + bit, RecvWhat::Blocks(sub))],
                ));
            }
            bit <<= 1;
        }
    }
    let everything = SendWhat::Blocks((0..n as u32).collect());
    concat(plans, bcast_tree(n, everything))
}

// ---- dissemination / Bruck ----------------------------------------------

fn dissemination_barrier(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    let mut step = 1usize;
    while step < n {
        for (v, plan) in plans.iter_mut().enumerate() {
            plan.rounds.push(round(
                vec![send((v + step) % n, SendWhat::Token)],
                vec![recv((v + n - step % n) % n, RecvWhat::Token)],
            ));
        }
        step <<= 1;
    }
    plans
}

/// Bruck's allgather: after round k every rank holds the cyclic block
/// range starting at itself of length min(2^(k+1), n). Works for any n
/// in ⌈log₂ n⌉ rounds.
fn bruck_allgather(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    let mut step = 1usize;
    while step < n {
        let cnt = step.min(n - step);
        for (v, plan) in plans.iter_mut().enumerate() {
            let to = (v + n - step) % n;
            let from = (v + step) % n;
            let sent: Vec<u32> = (0..cnt).map(|j| ((v + j) % n) as u32).collect();
            let got: Vec<u32> = (0..cnt).map(|j| ((v + step + j) % n) as u32).collect();
            plan.rounds.push(round(
                vec![send(to, SendWhat::Blocks(sent))],
                vec![recv(from, RecvWhat::Blocks(got))],
            ));
        }
        step <<= 1;
    }
    plans
}

// ---- recursive doubling --------------------------------------------------

/// Recursive doubling with non-power-of-two folding, shared by barrier
/// and allreduce: excess ranks (>= core) send into the core, the core
/// runs pairwise XOR exchanges, then results flow back out.
fn rd_fold(n: usize, carry: SendWhat, fold: RecvWhat, release: RecvWhat) -> Vec<RankPlan> {
    let core = high_bit(n);
    let excess = n - core;
    let mut plans = empty_plans(n);
    for (v, plan) in plans.iter_mut().enumerate() {
        if v >= core {
            // Fold in, wait, get released.
            plan.rounds
                .push(round(vec![send(v - core, carry.clone())], Vec::new()));
            plan.rounds
                .push(round(Vec::new(), vec![recv(v - core, release.clone())]));
            continue;
        }
        if v < excess {
            plan.rounds
                .push(round(Vec::new(), vec![recv(v + core, fold.clone())]));
        }
        let mut bit = 1usize;
        while bit < core {
            plan.rounds.push(round(
                vec![send(v ^ bit, carry.clone())],
                vec![recv(v ^ bit, fold.clone())],
            ));
            bit <<= 1;
        }
        if v < excess {
            plan.rounds
                .push(round(vec![send(v + core, carry.clone())], Vec::new()));
        }
    }
    plans
}

/// Recursive-doubling allgather (power-of-two n only): at round k each
/// rank owns the aligned block range of length 2^k containing itself
/// and swaps it with its XOR partner.
fn rd_allgather(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    for (v, plan) in plans.iter_mut().enumerate() {
        let mut bit = 1usize;
        while bit < n {
            let base = v & !(bit - 1);
            let mine: Vec<u32> = (base..base + bit).map(|b| b as u32).collect();
            let pbase = (v ^ bit) & !(bit - 1);
            let theirs: Vec<u32> = (pbase..pbase + bit).map(|b| b as u32).collect();
            plan.rounds.push(round(
                vec![send(v ^ bit, SendWhat::Blocks(mine))],
                vec![recv(v ^ bit, RecvWhat::Blocks(theirs))],
            ));
            bit <<= 1;
        }
    }
    plans
}

// ---- rings ---------------------------------------------------------------

/// Token ring barrier: one circulation gathers (everyone has entered by
/// the time the token returns to 0), a second releases.
fn ring_barrier(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    plans[0]
        .rounds
        .push(round(vec![send(1, SendWhat::Token)], Vec::new()));
    plans[0]
        .rounds
        .push(round(Vec::new(), vec![recv(n - 1, RecvWhat::Token)]));
    plans[0]
        .rounds
        .push(round(vec![send(1, SendWhat::Token)], Vec::new()));
    for v in 1..n {
        plans[v]
            .rounds
            .push(round(Vec::new(), vec![recv(v - 1, RecvWhat::Token)]));
        plans[v]
            .rounds
            .push(round(vec![send((v + 1) % n, SendWhat::Token)], Vec::new()));
        plans[v]
            .rounds
            .push(round(Vec::new(), vec![recv(v - 1, RecvWhat::Token)]));
        if v + 1 < n {
            plans[v]
                .rounds
                .push(round(vec![send(v + 1, SendWhat::Token)], Vec::new()));
        }
    }
    plans
}

/// Pipelined chain broadcast 0 → 1 → … → n−1.
fn ring_bcast(n: usize) -> Vec<RankPlan> {
    chain_down(n, one_block(), RecvWhat::Blocks(vec![0]))
}

/// Chain distribution of the accumulator (allreduce second phase).
fn acc_ring(n: usize) -> Vec<RankPlan> {
    chain_down(n, SendWhat::Acc, RecvWhat::ReplaceAcc)
}

fn chain_down(n: usize, what: SendWhat, store: RecvWhat) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    plans[0]
        .rounds
        .push(round(vec![send(1, what.clone())], Vec::new()));
    for v in 1..n {
        plans[v]
            .rounds
            .push(round(Vec::new(), vec![recv(v - 1, store.clone())]));
        if v + 1 < n {
            plans[v]
                .rounds
                .push(round(vec![send(v + 1, what.clone())], Vec::new()));
        }
    }
    plans
}

/// Chain reduction n−1 → … → 1 → 0: each rank folds its upstream
/// neighbour's partial result into its own and passes it on.
fn ring_reduce(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    plans[n - 1]
        .rounds
        .push(round(vec![send(n - 2, SendWhat::Acc)], Vec::new()));
    for v in (1..n - 1).rev() {
        plans[v]
            .rounds
            .push(round(Vec::new(), vec![recv(v + 1, RecvWhat::CombineAcc)]));
        plans[v]
            .rounds
            .push(round(vec![send(v - 1, SendWhat::Acc)], Vec::new()));
    }
    plans[0]
        .rounds
        .push(round(Vec::new(), vec![recv(1, RecvWhat::CombineAcc)]));
    plans
}

/// The classic simultaneous ring allgather: n−1 rounds; in round r each
/// rank forwards the block that originated r hops upstream.
fn ring_allgather(n: usize) -> Vec<RankPlan> {
    let mut plans = empty_plans(n);
    for r in 0..n - 1 {
        for (v, plan) in plans.iter_mut().enumerate() {
            let outgoing = ((v + n - r) % n) as u32;
            let incoming = ((v + n - r - 1) % n) as u32;
            plan.rounds.push(round(
                vec![send((v + 1) % n, SendWhat::Blocks(vec![outgoing]))],
                vec![recv((v + n - 1) % n, RecvWhat::Blocks(vec![incoming]))],
            ));
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logarithmic_algorithms_have_logarithmic_depth() {
        for n in [4usize, 16, 64, 256, 1024] {
            let log2 = n.trailing_zeros() as usize;
            let diss = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
            assert_eq!(diss.max_rounds(), log2, "dissemination n={n}");
            let rd = build(CollOp::Allreduce, Algorithm::RecursiveDoubling, n).unwrap();
            assert_eq!(rd.max_rounds(), log2, "rd n={n}");
            let tree = build(CollOp::Barrier, Algorithm::Tree, n).unwrap();
            assert!(tree.max_rounds() <= 2 * log2, "tree n={n}");
        }
    }

    #[test]
    fn message_counts_match_the_textbook() {
        let n = 16;
        let diss = build(CollOp::Barrier, Algorithm::Dissemination, n).unwrap();
        assert_eq!(diss.total_messages(), n * 4); // n per round, log n rounds
        let ring = build(CollOp::Allgather, Algorithm::Ring, n).unwrap();
        assert_eq!(ring.total_messages(), n * (n - 1));
        let tree = build(CollOp::Bcast, Algorithm::Tree, n).unwrap();
        assert_eq!(tree.total_messages(), n - 1);
        let lin = build(CollOp::Allreduce, Algorithm::Linear, n).unwrap();
        assert_eq!(lin.total_messages(), 2 * (n - 1));
    }

    #[test]
    fn unsupported_combinations_are_typed_errors() {
        assert_eq!(
            build(CollOp::Bcast, Algorithm::Dissemination, 4),
            Err(PlanError::Unsupported {
                op: CollOp::Bcast,
                algorithm: Algorithm::Dissemination
            })
        );
        assert!(matches!(
            build(CollOp::Allgather, Algorithm::RecursiveDoubling, 6),
            Err(PlanError::NeedsPowerOfTwo { nranks: 6, .. })
        ));
        assert_eq!(
            build(CollOp::Barrier, Algorithm::Tree, 0),
            Err(PlanError::NoRanks)
        );
    }

    #[test]
    fn auto_algorithm_is_total_and_supported() {
        for op in CollOp::all() {
            for n in [1usize, 2, 3, 7, 8, 9, 64] {
                let alg = auto_algorithm(op, n);
                assert!(
                    build(op, alg, n).is_ok(),
                    "auto {op:?} n={n} chose unsupported {alg:?}"
                );
            }
        }
    }

    #[test]
    fn single_rank_plans_are_empty() {
        for op in CollOp::all() {
            for alg in algorithms_for(op, 1) {
                let s = build(op, alg, 1).unwrap();
                assert_eq!(s.total_messages(), 0, "{op:?}/{alg:?}");
            }
        }
    }
}
