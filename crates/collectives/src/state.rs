//! Per-rank data state: the accumulator and block table a schedule's
//! send/recv steps read and write.
//!
//! Both executors hold one [`RankState`] per participating rank and
//! drive it through exactly the same calls — [`RankState::payload`] to
//! materialize outgoing bytes and [`RankState::apply`] to fold in
//! arrivals — so the data path is backend-independent by construction.

use crate::op::{combine_bytes, pack_blocks, unpack_blocks, CollOp, Dtype, ReduceOp};
use crate::schedule::{RecvWhat, SendWhat};

/// The element interpretation of a reducing collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduction {
    /// Element encoding of the payload.
    pub dtype: Dtype,
    /// Combine operator.
    pub op: ReduceOp,
}

/// What a rank ends up with after a collective completes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollOutput {
    /// Final accumulator (bcast payload, reduction result); empty for
    /// barrier and allgather.
    pub acc: Vec<u8>,
    /// Gathered blocks in virtual-rank order; empty unless the op is an
    /// allgather.
    pub blocks: Vec<Vec<u8>>,
}

/// One rank's mutable data state while a schedule executes.
#[derive(Debug, Clone, Default)]
pub struct RankState {
    acc: Vec<u8>,
    blocks: Vec<Option<Vec<u8>>>,
}

impl RankState {
    /// Initial state for virtual rank `vrank` of an `op` over `n` ranks,
    /// seeded with this rank's `contribution` (ignored where the op
    /// takes none, e.g. barrier or a non-root bcast rank).
    pub fn init(op: CollOp, n: usize, vrank: usize, contribution: &[u8]) -> RankState {
        match op {
            CollOp::Barrier => RankState::default(),
            CollOp::Bcast => {
                let mut blocks = vec![None; 1];
                if vrank == 0 {
                    blocks[0] = Some(contribution.to_vec());
                }
                RankState {
                    acc: Vec::new(),
                    blocks,
                }
            }
            CollOp::Reduce | CollOp::Allreduce => RankState {
                acc: contribution.to_vec(),
                blocks: Vec::new(),
            },
            CollOp::Allgather => {
                let mut blocks = vec![None; n];
                blocks[vrank] = Some(contribution.to_vec());
                RankState {
                    acc: Vec::new(),
                    blocks,
                }
            }
        }
    }

    /// Materialize the outgoing bytes for a send step. A single block
    /// travels raw; several are framed with [`pack_blocks`].
    pub fn payload(&self, what: &SendWhat) -> Vec<u8> {
        match what {
            SendWhat::Token => Vec::new(),
            SendWhat::Acc => self.acc.clone(),
            SendWhat::Blocks(idxs) => {
                if let [only] = idxs.as_slice() {
                    self.block(*only).to_vec()
                } else {
                    let parts: Vec<&[u8]> = idxs.iter().map(|&i| self.block(i)).collect();
                    pack_blocks(&parts)
                }
            }
        }
    }

    /// Fold arriving `bytes` into this rank's state per the recv step.
    /// `reduction` must be `Some` whenever the step is `CombineAcc`.
    pub fn apply(&mut self, what: &RecvWhat, bytes: &[u8], reduction: Option<Reduction>) {
        match what {
            RecvWhat::Token => {
                assert!(
                    bytes.is_empty(),
                    "token message carried {} bytes",
                    bytes.len()
                );
            }
            RecvWhat::CombineAcc => {
                let r = reduction.expect("CombineAcc step without a reduction"); // lint:allow(expect) -- the planner emits CombineAcc only for reducing ops, where executors always pass a reduction
                combine_bytes(r.dtype, r.op, &mut self.acc, bytes);
            }
            RecvWhat::ReplaceAcc => {
                self.acc = bytes.to_vec();
            }
            RecvWhat::Blocks(idxs) => {
                if let [only] = idxs.as_slice() {
                    self.store_block(*only, bytes.to_vec());
                } else {
                    for (idx, part) in idxs.iter().zip(unpack_blocks(bytes, idxs.len())) {
                        self.store_block(*idx, part);
                    }
                }
            }
        }
    }

    /// Consume the state into the rank's final output. `vrank` selects
    /// what this rank is entitled to (only the reduce root keeps an
    /// accumulator, for instance).
    pub fn into_output(self, op: CollOp, vrank: usize) -> CollOutput {
        match op {
            CollOp::Barrier => CollOutput::default(),
            CollOp::Bcast => {
                let [slot] = <[Option<Vec<u8>>; 1]>::try_from(self.blocks)
                    .expect("bcast state has exactly one block slot"); // lint:allow(expect) -- init() sized it
                CollOutput {
                    acc: slot.expect("bcast finished without the payload arriving"), // lint:allow(expect) -- a validated schedule delivers block 0 to every rank
                    blocks: Vec::new(),
                }
            }
            CollOp::Reduce => {
                if vrank == 0 {
                    CollOutput {
                        acc: self.acc,
                        blocks: Vec::new(),
                    }
                } else {
                    CollOutput::default()
                }
            }
            CollOp::Allreduce => CollOutput {
                acc: self.acc,
                blocks: Vec::new(),
            },
            CollOp::Allgather => CollOutput {
                acc: Vec::new(),
                blocks: self
                    .blocks
                    .into_iter()
                    .enumerate()
                    .map(|(i, b)| {
                        // lint:allow(panic) -- a validated schedule fills every slot; a hole is a planner bug
                        b.unwrap_or_else(|| panic!("allgather finished with block {i} missing"))
                    })
                    .collect(),
            },
        }
    }

    /// The bcast payload slot, if it has arrived. The recovery layer
    /// uses this to elect a replacement root among payload holders when
    /// the original root is evicted mid-broadcast.
    pub fn bcast_payload(&self) -> Option<&[u8]> {
        self.blocks.first().and_then(|b| b.as_deref())
    }

    fn block(&self, idx: u32) -> &[u8] {
        self.blocks[idx as usize]
            .as_deref()
            // lint:allow(panic) -- the schedule's FIFO validation plus round order guarantee arrival; a miss is a planner bug
            .unwrap_or_else(|| panic!("send references block {idx} before it arrived"))
    }

    fn store_block(&mut self, idx: u32, bytes: Vec<u8>) {
        self.blocks[idx as usize] = Some(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_state_roundtrips_blocks() {
        let mut s = RankState::init(CollOp::Allgather, 3, 1, b"one");
        assert_eq!(s.payload(&SendWhat::Blocks(vec![1])), b"one");
        s.apply(&RecvWhat::Blocks(vec![0]), b"zero", None);
        s.apply(&RecvWhat::Blocks(vec![2]), b"two", None);
        let out = s.into_output(CollOp::Allgather, 1);
        assert_eq!(
            out.blocks,
            vec![b"zero".to_vec(), b"one".to_vec(), b"two".to_vec()]
        );
    }

    #[test]
    fn multi_block_payload_frames_and_unframes() {
        let mut a = RankState::init(CollOp::Allgather, 4, 2, b"cc");
        a.apply(&RecvWhat::Blocks(vec![3]), b"ddd", None);
        let framed = a.payload(&SendWhat::Blocks(vec![2, 3]));
        let mut b = RankState::init(CollOp::Allgather, 4, 0, b"a");
        b.apply(&RecvWhat::Blocks(vec![2, 3]), &framed, None);
        assert_eq!(b.payload(&SendWhat::Blocks(vec![3])), b"ddd");
    }

    #[test]
    fn reduce_combines_under_the_run_reduction() {
        let r = Reduction {
            dtype: Dtype::U64,
            op: ReduceOp::Sum,
        };
        let mut s = RankState::init(CollOp::Reduce, 2, 0, &5u64.to_le_bytes());
        s.apply(&RecvWhat::CombineAcc, &7u64.to_le_bytes(), Some(r));
        let out = s.into_output(CollOp::Reduce, 0);
        assert_eq!(out.acc, 12u64.to_le_bytes());
    }

    #[test]
    fn non_root_reduce_output_is_empty() {
        let s = RankState::init(CollOp::Reduce, 2, 1, &5u64.to_le_bytes());
        assert_eq!(s.into_output(CollOp::Reduce, 1), CollOutput::default());
    }
}
