//! Property tests: every algorithm × rank count (including awkward
//! non-powers-of-two) must produce exactly the naive linear reference's
//! result, and the planners must keep their structural invariants.
//!
//! Cases are deterministic (seeded [`SimRng`] payloads), dependency-free,
//! and exercised through [`run_local`] — the in-memory executor that the
//! sim and real backends are separately cross-checked against in the
//! workspace-level `collective_cross_check` test.

use collectives::{
    algorithms_for, build, combine_bytes, run_local, run_sim, Algorithm, CollOp, Dtype, ExecCtx,
    ReduceOp, Reduction, SimOptions,
};
use hwmodel::presets::pcs_ga620;
use mpsim::libs::{mpich, MpichConfig};
use simcore::SimRng;

/// Rank counts the matrix sweeps: powers of two, odd primes, and the
/// off-by-one neighbours that break naive power-of-two planners.
const RANK_COUNTS: [usize; 12] = [1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 33];

/// Deterministic per-rank payload of whole u64 elements.
fn payload(rng: &mut SimRng, elems: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(elems * 8);
    for _ in 0..elems {
        out.extend_from_slice(&rng.next_below(u64::MAX).to_le_bytes());
    }
    out
}

fn contributions(op: CollOp, n: usize, elems: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|r| match op {
            CollOp::Barrier => Vec::new(),
            CollOp::Bcast if r != 0 => Vec::new(),
            _ => payload(&mut rng, elems),
        })
        .collect()
}

const RED: Reduction = Reduction {
    dtype: Dtype::U64,
    op: ReduceOp::Sum,
};

fn ctx_for(op: CollOp) -> ExecCtx {
    ExecCtx {
        root: 0,
        reduction: match op {
            CollOp::Reduce | CollOp::Allreduce => Some(RED),
            _ => None,
        },
    }
}

/// The naive reference: what each rank must hold afterwards, computed
/// directly from the contributions without any schedule at all.
fn reference(op: CollOp, contributions: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let n = contributions.len();
    match op {
        CollOp::Barrier => vec![(Vec::new(), Vec::new()); n],
        CollOp::Bcast => vec![(contributions[0].clone(), Vec::new()); n],
        CollOp::Reduce | CollOp::Allreduce => {
            let mut acc = contributions[0].clone();
            for c in &contributions[1..] {
                combine_bytes(RED.dtype, RED.op, &mut acc, c);
            }
            (0..n)
                .map(|r| {
                    if op == CollOp::Allreduce || r == 0 {
                        (acc.clone(), Vec::new())
                    } else {
                        (Vec::new(), Vec::new())
                    }
                })
                .collect()
        }
        CollOp::Allgather => vec![(Vec::new(), contributions.to_vec()); n],
    }
}

#[test]
fn every_algorithm_matches_the_naive_reference() {
    for op in CollOp::all() {
        for &n in &RANK_COUNTS {
            let contribs = contributions(op, n, 5, 0xC0_11EC7 ^ n as u64);
            let expected = reference(op, &contribs);
            for algorithm in algorithms_for(op, n) {
                let schedule = build(op, algorithm, n)
                    .unwrap_or_else(|e| panic!("{op:?}/{algorithm:?}/{n}: {e}"));
                schedule
                    .validate()
                    .unwrap_or_else(|e| panic!("{op:?}/{algorithm:?}/{n} invalid: {e}"));
                let outputs = run_local(&schedule, ctx_for(op), &contribs);
                for (rank, (out, (acc, blocks))) in outputs.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        &out.acc, acc,
                        "{op:?}/{algorithm:?} n={n} rank {rank}: acc differs from reference"
                    );
                    assert_eq!(
                        &out.blocks, blocks,
                        "{op:?}/{algorithm:?} n={n} rank {rank}: blocks differ from reference"
                    );
                }
            }
        }
    }
}

#[test]
fn rotation_by_root_matches_reference_for_rooted_ops() {
    for op in [CollOp::Bcast, CollOp::Reduce] {
        for &n in &[3usize, 5, 8, 13] {
            for root in 0..n {
                let contribs: Vec<Vec<u8>> = {
                    let mut rng = SimRng::new(0xB007 ^ (n as u64) << 8 ^ root as u64);
                    (0..n)
                        .map(|r| {
                            if op == CollOp::Bcast && r != root {
                                Vec::new()
                            } else {
                                payload(&mut rng, 3)
                            }
                        })
                        .collect()
                };
                for algorithm in algorithms_for(op, n) {
                    let schedule = build(op, algorithm, n).expect("algorithms_for said ok");
                    let ctx = ExecCtx {
                        root,
                        reduction: (op == CollOp::Reduce).then_some(RED),
                    };
                    let outputs = run_local(&schedule, ctx, &contribs);
                    match op {
                        CollOp::Bcast => {
                            for (rank, out) in outputs.iter().enumerate() {
                                assert_eq!(
                                    out.acc, contribs[root],
                                    "bcast/{algorithm:?} n={n} root={root} rank {rank}"
                                );
                            }
                        }
                        CollOp::Reduce => {
                            let mut acc = contribs[root].clone();
                            for (r, c) in contribs.iter().enumerate() {
                                if r != root {
                                    combine_bytes(RED.dtype, RED.op, &mut acc, c);
                                }
                            }
                            // Wrapping u64 sum is commutative: fold order
                            // does not change the reference bytes.
                            assert_eq!(
                                outputs[root].acc, acc,
                                "reduce/{algorithm:?} n={n} root={root}"
                            );
                            for (rank, out) in outputs.iter().enumerate() {
                                if rank != root {
                                    assert!(
                                        out.acc.is_empty(),
                                        "reduce leaves non-root rank {rank} empty"
                                    );
                                }
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

#[test]
fn schedules_are_reproducible_by_digest() {
    for op in CollOp::all() {
        for &n in &RANK_COUNTS {
            for algorithm in algorithms_for(op, n) {
                let a = build(op, algorithm, n).expect("planned once");
                let b = build(op, algorithm, n).expect("planned twice");
                assert_eq!(
                    a.digest(),
                    b.digest(),
                    "{op:?}/{algorithm:?}/{n}: planning must be deterministic"
                );
            }
        }
    }
}

#[test]
fn log_algorithms_stay_logarithmic_in_rounds() {
    for &n in &[16usize, 64, 256, 1024] {
        let log2 = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        for (op, algorithm) in [
            (CollOp::Barrier, Algorithm::Dissemination),
            (CollOp::Barrier, Algorithm::Tree),
            (CollOp::Bcast, Algorithm::Tree),
            (CollOp::Allreduce, Algorithm::RecursiveDoubling),
            (CollOp::Allgather, Algorithm::Dissemination),
        ] {
            let schedule = build(op, algorithm, n).expect("power-of-two size");
            assert!(
                schedule.max_rounds() <= 2 * log2 + 2,
                "{op:?}/{algorithm:?}/{n}: {} rounds is not logarithmic",
                schedule.max_rounds()
            );
        }
    }
}

/// The tentpole's scale claim: a 1024-rank simulated barrier and
/// allreduce both complete inside tier-1 test time.
#[test]
fn sim_scales_to_1024_ranks() {
    let spec = pcs_ga620();
    let profile = mpich(MpichConfig::tuned()).profile;
    let n = 1024;

    let barrier = build(CollOp::Barrier, Algorithm::Dissemination, n).expect("barrier plan");
    let report = run_sim(
        &spec,
        &profile,
        &barrier,
        ExecCtx {
            root: 0,
            reduction: None,
        },
        &vec![Vec::new(); n],
        &SimOptions::default(),
    );
    assert!(report.all_completed(), "1024-rank barrier stalled");
    assert!(report.seconds > 0.0);

    let allreduce = build(CollOp::Allreduce, Algorithm::RecursiveDoubling, n).expect("p2 plan");
    let contribs: Vec<Vec<u8>> = (0..n as u64).map(|r| r.to_le_bytes().to_vec()).collect();
    let report = run_sim(
        &spec,
        &profile,
        &allreduce,
        ExecCtx {
            root: 0,
            reduction: Some(RED),
        },
        &contribs,
        &SimOptions::default(),
    );
    assert!(report.all_completed(), "1024-rank allreduce stalled");
    let expected: u64 = (0..n as u64).fold(0, u64::wrapping_add);
    for (rank, out) in report.outputs.iter().enumerate() {
        let out = out
            .as_ref()
            .unwrap_or_else(|| panic!("rank {rank} missing output"));
        assert_eq!(out.acc, expected.to_le_bytes().to_vec(), "rank {rank} sum");
    }
}
