//! The self-healing contract, enforced end to end:
//!
//! * **deterministic** — the same seed + fault plan reproduces the
//!   `RecoveryReport` and the full trace byte-identically;
//! * **bounded** — a seeded 64-rank allreduce losing two ranks
//!   mid-collective heals in exactly two membership epochs and the 62
//!   survivors finish with the correct wrapped-integer sum;
//! * **complete** — *any* single-rank death, for every algorithm at
//!   every awkward rank count (primes included), still yields the
//!   correct reduction over the survivors.

use collectives::{
    algorithms_for, build, run_sim, CollOp, Dtype, ExecCtx, RankFault, RecoveryPolicy, ReduceOp,
    Reduction, Schedule, SimOptions, SimReport,
};
use faultlab::FaultPlan;
use hwmodel::presets::pcs_ga620;
use mpsim::libs::{mpich, MpichConfig};
use simcore::trace::SharedSink;
use tracelab::Tracer;

const RED: Reduction = Reduction {
    dtype: Dtype::U64,
    op: ReduceOp::Sum,
};

/// Deterministic one-element contribution per rank: a rank-and-constant
/// mix so survivor sums are distinguishable from full sums.
fn contributions(n: usize) -> Vec<Vec<u8>> {
    (0..n as u64)
        .map(|r| {
            r.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1)
                .to_le_bytes()
                .to_vec()
        })
        .collect()
}

fn survivor_sum(contributions: &[Vec<u8>], evicted: &[usize]) -> u64 {
    contributions
        .iter()
        .enumerate()
        .filter(|(r, _)| !evicted.contains(r))
        .fold(0u64, |acc, (_, c)| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&c[..8]);
            acc.wrapping_add(u64::from_le_bytes(b))
        })
}

fn run(schedule: &Schedule, n: usize, options: &SimOptions) -> SimReport {
    run_sim(
        &pcs_ga620(),
        &mpich(MpichConfig::tuned()).profile,
        schedule,
        ExecCtx {
            root: 0,
            reduction: Some(RED),
        },
        &contributions(n),
        options,
    )
}

/// One traced run of the 64-rank two-kill scenario; returns the report
/// and the exported Chrome trace JSON.
fn traced_two_kill_run() -> (SimReport, String) {
    let n = 64;
    let schedule = build(
        CollOp::Allreduce,
        collectives::Algorithm::RecursiveDoubling,
        n,
    )
    .expect("64-rank recursive-doubling allreduce plans");
    let plan = FaultPlan::parse("seed=7,kill-rank=9@50us,kill-rank=23@120us").expect("valid plan");
    let tracer = Tracer::new();
    let report = run(
        &schedule,
        n,
        &SimOptions {
            trace: Some(tracer.clone() as SharedSink),
            faults: Vec::new(),
            plan: Some(plan),
            recovery: Some(RecoveryPolicy {
                deadline_us: 300.0,
                backoff_us: 100.0,
                max_epochs: 4,
            }),
        },
    );
    let json =
        tracelab::export::chrome_trace_json(&tracer.events(), &|track| format!("track-{track}"));
    (report, json)
}

#[test]
fn same_seed_and_plan_reproduce_report_and_trace_byte_identically() {
    let (a, trace_a) = traced_two_kill_run();
    let (b, trace_b) = traced_two_kill_run();
    let rec_a = a.recovery.expect("first run recovery report");
    let rec_b = b.recovery.expect("second run recovery report");
    assert_eq!(rec_a, rec_b, "recovery reports must be identical");
    assert_eq!(
        rec_a.to_text(),
        rec_b.to_text(),
        "rendered reports must be byte-identical"
    );
    assert_eq!(trace_a, trace_b, "traces must be byte-identical");
    assert!(
        trace_a.contains("coll-suspect") && trace_a.contains("coll-evict"),
        "trace records the recovery lifecycle"
    );
}

#[test]
fn two_timed_kills_heal_into_sixty_two_survivors() {
    let n = 64;
    let (report, _) = traced_two_kill_run();
    let rec = report.recovery.as_ref().expect("recovery report");
    assert_eq!(rec.evicted, vec![9, 23], "both killed ranks evicted");
    assert_eq!(rec.epochs.len(), 2, "one membership epoch per eviction");
    assert_eq!(report.completed, n - 2, "62 survivors completed");
    assert!(report.all_survivors_completed());
    let want = survivor_sum(&contributions(n), &rec.evicted).to_le_bytes();
    for (r, out) in report.outputs.iter().enumerate() {
        if rec.evicted.contains(&r) {
            continue;
        }
        let out = out
            .as_ref()
            .unwrap_or_else(|| panic!("rank {r} has no output"));
        assert_eq!(out.acc, want, "rank {r} holds the survivor sum");
    }
}

#[test]
fn any_single_rank_death_reduces_correctly_over_survivors() {
    // Primes, powers of two, and their awkward neighbours.
    let counts = [2usize, 3, 4, 5, 7, 8, 9, 13, 16, 17];
    let policy = RecoveryPolicy {
        deadline_us: 2_000.0,
        backoff_us: 500.0,
        max_epochs: 4,
    };
    for n in counts {
        for algorithm in algorithms_for(CollOp::Allreduce, n) {
            let Ok(schedule) = build(CollOp::Allreduce, algorithm, n) else {
                continue;
            };
            for victim in 0..n {
                let report = run(
                    &schedule,
                    n,
                    &SimOptions {
                        trace: None,
                        faults: vec![RankFault::Dead(victim)],
                        plan: None,
                        recovery: Some(policy),
                    },
                );
                let rec = report.recovery.as_ref().unwrap_or_else(|| {
                    panic!("{algorithm:?} n={n} victim={victim}: no recovery report")
                });
                assert_eq!(
                    rec.evicted,
                    vec![victim],
                    "{algorithm:?} n={n}: exactly the dead rank is evicted"
                );
                assert!(
                    report.all_survivors_completed(),
                    "{algorithm:?} n={n} victim={victim}: survivors stalled"
                );
                let want = survivor_sum(&contributions(n), &[victim]).to_le_bytes();
                for (r, out) in report.outputs.iter().enumerate() {
                    if r == victim {
                        continue;
                    }
                    let out = out.as_ref().unwrap_or_else(|| {
                        panic!("{algorithm:?} n={n} victim={victim}: rank {r} has no output")
                    });
                    assert_eq!(
                        out.acc, want,
                        "{algorithm:?} n={n} victim={victim}: rank {r} sum wrong"
                    );
                }
            }
        }
    }
}
