//! Bounded ring buffer backing the trace recorders.

/// Fixed-capacity ring: pushes beyond capacity overwrite the oldest
/// entry (flight-recorder semantics) and bump a dropped counter, so
/// recording cost stays O(1) and memory stays bounded no matter how
/// long tracing stays enabled. Storage grows lazily up to the cap.
pub(crate) struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    pub(crate) fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_dropping_oldest() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn under_capacity_keeps_order() {
        let mut r = Ring::new(10);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 0);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<i32>>(), vec![2]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = Ring::new(2);
        for i in 0..5 {
            r.push(i);
        }
        r.clear();
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 0);
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<i32>>(), vec![9]);
    }
}
