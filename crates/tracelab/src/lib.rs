//! # tracelab — structured tracing, metrics, and timeline export
//!
//! The observability subsystem of the `netpipe-rs` workspace. The paper
//! this repo reproduces opens with the method ("identify where the
//! performance is being lost and determine why"); `tracelab` makes that
//! a first-class, per-message capability instead of ad-hoc busy-time
//! accounting.
//!
//! Pieces:
//!
//! * [`Tracer`] — deterministic recorder for simulated runs. Implements
//!   [`simcore::trace::TraceSink`]; spans carry exact [`simcore::SimTime`]
//!   boundaries, land in a bounded ring buffer, and feed an always-exact
//!   per-stage registry built on [`simcore::OnlineStats`] /
//!   [`simcore::Histogram`].
//! * [`WallTracer`] — the wall-clock counterpart for the real `mplite`
//!   library (monotonic stamps, mutex-protected for progress threads).
//! * [`export`] — Chrome trace-event JSON (loadable in
//!   `chrome://tracing` / Perfetto), an ASCII per-message timeline, and
//!   per-stage tables (including the renderer behind
//!   `clusterlab::Breakdown`).
//! * [`stages`] — the canonical stage-name catalogue (re-exported from
//!   `simcore::trace` so model crates need no dependency on this crate).
//!
//! # Contract
//!
//! Tracing is **deterministic** (the same simulated run records a
//! byte-identical trace) and **non-perturbing** (sinks only observe;
//! enabling tracing cannot change simulated results) — both properties
//! are enforced by integration tests at the workspace root.
//!
//! # Example
//!
//! ```
//! use simcore::{Engine, Resource, SimTime};
//! use tracelab::Tracer;
//!
//! struct World { wire: Resource }
//! let tracer = Tracer::new();
//! let mut eng = Engine::new(World { wire: Resource::new("wire", 125e6) });
//! eng.world.wire.set_trace(tracer.clone(), 0);
//! eng.set_trace_sink(tracer.clone());
//! eng.schedule_at(SimTime::ZERO, |e| {
//!     let now = e.now();
//!     e.world.wire.serve(now, 1500);
//! });
//! eng.run();
//! assert_eq!(tracer.span_count(), 1);
//! let json = tracelab::export::chrome_trace_json(&tracer.events(), &|_| "wire".into());
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]

pub mod export;
mod ring;
mod tracer;
mod wall;

pub use simcore::trace::{stages, SharedSink, SpanRec, TraceSink};
pub use tracer::{StageTotal, TraceEvent, TraceKind, Tracer};
pub use wall::{WallStamp, WallTracer};
