//! The standard in-simulation trace recorder.
//!
//! [`Tracer`] implements [`simcore::trace::TraceSink`]: install one on a
//! world (e.g. via `protosim::instrument`) and every resource
//! reservation, protocol gap, and library phase lands here as a
//! [`TraceEvent`]. Two stores are maintained:
//!
//! * a bounded ring buffer of raw events (for timelines and the Chrome
//!   exporter) — oldest events are overwritten when it fills;
//! * an always-exact registry of per-`(track, stage)` totals built on
//!   [`simcore::OnlineStats`] plus a global span-duration
//!   [`simcore::Histogram`] — these never drop, so stage accounting is
//!   correct even when the ring wraps.
//!
//! All timestamps are integer nanoseconds of simulated time; recording
//! the same run twice produces identical events in identical order.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simcore::trace::{SpanRec, TraceSink};
use simcore::units::ns_to_us;
use simcore::{Histogram, OnlineStats, SimTime};

use crate::ring::Ring;

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration: `[start_ns, end_ns]`.
    Span,
    /// A point event: `start_ns == end_ns`.
    // lint:allow(wall-clock) -- the event-kind name, not a clock read
    Instant,
}

/// One recorded trace event, timestamped in integer nanoseconds.
///
/// In simulation the nanoseconds are [`SimTime`] readings; in wall-clock
/// mode ([`crate::WallTracer`]) they are monotonic nanoseconds since the
/// tracer was created. Exporters only need the numbers.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Span or instant.
    pub kind: TraceKind,
    /// Stage name (see [`crate::stages`]).
    pub stage: &'static str,
    /// Timeline id (exporters render one row per track).
    pub track: u32,
    /// Start instant in nanoseconds.
    pub start_ns: u64,
    /// End instant in nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Payload bytes attributed to the event.
    pub bytes: u64,
    /// Message-correlation id (`0` = not tied to one message).
    pub msg: u64,
}

impl TraceEvent {
    /// Span duration in nanoseconds (zero for instants).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Aggregate over every span recorded for one `(track, stage)` pair.
#[derive(Debug, Clone)]
pub struct StageTotal {
    /// Stage name.
    pub stage: &'static str,
    /// Timeline the spans were recorded on.
    pub track: u32,
    /// Number of spans.
    pub spans: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// Per-span duration statistics, in microseconds.
    pub per_span_us: OnlineStats,
}

/// Raw per-`(track, stage)` sums. Kept as plain `Σx` / `Σx²` so the
/// per-span hot path is adds and compares only; the Welford-form
/// [`OnlineStats`] is materialized in [`Core::stage_totals`].
struct Acc {
    spans: u64,
    bytes: u64,
    busy_ns: u64,
    sum_us: f64,
    sumsq_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            spans: 0,
            bytes: 0,
            busy_ns: 0,
            sum_us: 0.0,
            sumsq_us: 0.0,
            min_us: f64::INFINITY,
            max_us: f64::NEG_INFINITY,
        }
    }

    fn stats(&self) -> OnlineStats {
        let n = self.spans;
        if n == 0 {
            return OnlineStats::new();
        }
        let mean = self.sum_us / n as f64;
        let m2 = self.sumsq_us - mean * mean * n as f64;
        OnlineStats::from_moments(n, mean, m2, self.min_us, self.max_us)
    }
}

/// Histogram range for span durations: 100 buckets over [0, 10 ms).
const HIST_HI_US: f64 = 10_000.0;
const HIST_BUCKETS: usize = 100;

/// Sentinel marking an empty probe-table slot (a string can never live
/// at address `usize::MAX`).
const EMPTY_SLOT: usize = usize::MAX;

/// Initial probe-table size; a run touches a few dozen `(track, stage)`
/// pairs, so this rarely grows.
const INITIAL_SLOTS: usize = 64;

/// Map `(stage address, track)` to a probe-table start slot.
fn slot_start(ptr: usize, track: u32, mask: usize) -> usize {
    // Fibonacci hashing; the high bits mix best, so shift them down.
    ((ptr ^ ((track as usize) << 1)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & mask
}

/// The shared accumulation core behind [`Tracer`] and
/// [`crate::WallTracer`]; callers provide the interior mutability.
///
/// Per-`(track, stage)` aggregates live in `accs`, found via an
/// open-addressing table keyed on the stage string's *address* — one
/// multiply and usually one probe instead of a `BTreeMap` walk with
/// string comparisons, which kept recording off sim hot paths' backs.
/// Two distinct literals with equal text are merged on the
/// once-per-pointer slow path, and [`Core::stage_totals`] sorts by
/// `(track, stage)`, so the table's address-dependent layout never
/// leaks into output.
pub(crate) struct Core {
    ring: Ring<TraceEvent>,
    /// `(stage address, track, index into accs)`; `EMPTY_SLOT` = free.
    table: Vec<(usize, u32, u32)>,
    table_used: usize,
    accs: Vec<(u32, &'static str, Acc)>,
    hist: Histogram,
    dispatched: u64,
    spans: u64,
    instants: u64,
}

impl Core {
    pub(crate) fn new(capacity: usize) -> Self {
        Core {
            ring: Ring::new(capacity),
            table: vec![(EMPTY_SLOT, 0, 0); INITIAL_SLOTS],
            table_used: 0,
            accs: Vec::new(),
            hist: Histogram::new(0.0, HIST_HI_US, HIST_BUCKETS),
            dispatched: 0,
            spans: 0,
            instants: 0,
        }
    }

    fn acc_index(&mut self, track: u32, stage: &'static str) -> usize {
        let ptr = stage.as_ptr() as usize;
        let mask = self.table.len() - 1;
        let mut i = slot_start(ptr, track, mask);
        loop {
            let (p, t, idx) = self.table[i];
            if p == ptr && t == track {
                return idx as usize;
            }
            if p == EMPTY_SLOT {
                return self.insert_key(ptr, track, stage);
            }
            i = (i + 1) & mask;
        }
    }

    /// Slow path, taken once per distinct stage address: dedupe by
    /// string *content* (two literals with equal text must share one
    /// aggregate), register the address, and grow at 3/4 load.
    #[cold]
    fn insert_key(&mut self, ptr: usize, track: u32, stage: &'static str) -> usize {
        let idx = self
            .accs
            .iter()
            .position(|(t, s, _)| *t == track && *s == stage)
            .unwrap_or_else(|| {
                self.accs.push((track, stage, Acc::new()));
                self.accs.len() - 1
            });
        self.table_used += 1;
        if self.table_used * 4 > self.table.len() * 3 {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut i = slot_start(ptr, track, mask);
        while self.table[i].0 != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.table[i] = (ptr, track, idx as u32);
        idx
    }

    fn grow_table(&mut self) {
        let next = vec![(EMPTY_SLOT, 0, 0); self.table.len() * 2];
        let old = std::mem::replace(&mut self.table, next);
        let mask = self.table.len() - 1;
        for (p, t, idx) in old {
            if p == EMPTY_SLOT {
                continue;
            }
            let mut i = slot_start(p, t, mask);
            while self.table[i].0 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.table[i] = (p, t, idx);
        }
    }

    pub(crate) fn record_span(
        &mut self,
        stage: &'static str,
        track: u32,
        start_ns: u64,
        end_ns: u64,
        bytes: u64,
        msg: u64,
    ) {
        let end_ns = end_ns.max(start_ns);
        self.ring.push(TraceEvent {
            kind: TraceKind::Span,
            stage,
            track,
            start_ns,
            end_ns,
            bytes,
            msg,
        });
        self.spans += 1;
        let dur_us = ns_to_us((end_ns - start_ns) as f64);
        let idx = self.acc_index(track, stage);
        let acc = &mut self.accs[idx].2;
        acc.spans += 1;
        acc.bytes += bytes;
        acc.busy_ns += end_ns - start_ns;
        acc.sum_us += dur_us;
        acc.sumsq_us += dur_us * dur_us;
        acc.min_us = acc.min_us.min(dur_us);
        acc.max_us = acc.max_us.max(dur_us);
        self.hist.push(dur_us);
    }

    pub(crate) fn record_instant(
        &mut self,
        name: &'static str,
        track: u32,
        at_ns: u64,
        bytes: u64,
        msg: u64,
    ) {
        self.ring.push(TraceEvent {
            // lint:allow(wall-clock) -- the event-kind name, not a clock read
            kind: TraceKind::Instant,
            stage: name,
            track,
            start_ns: at_ns,
            end_ns: at_ns,
            bytes,
            msg,
        });
        self.instants += 1;
    }

    pub(crate) fn event_dispatched(&mut self) {
        self.dispatched += 1;
    }

    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().copied().collect()
    }

    pub(crate) fn stage_totals(&self) -> Vec<StageTotal> {
        let mut totals: Vec<StageTotal> = self
            .accs
            .iter()
            .map(|(track, stage, acc)| StageTotal {
                stage,
                track: *track,
                spans: acc.spans,
                bytes: acc.bytes,
                busy_ns: acc.busy_ns,
                per_span_us: acc.stats(),
            })
            .collect();
        totals.sort_by(|a, b| (a.track, a.stage).cmp(&(b.track, b.stage)));
        totals
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    pub(crate) fn span_count(&self) -> u64 {
        self.spans
    }

    pub(crate) fn instant_count(&self) -> u64 {
        self.instants
    }

    pub(crate) fn dispatched(&self) -> u64 {
        self.dispatched
    }

    pub(crate) fn hist(&self) -> Histogram {
        self.hist.clone()
    }

    pub(crate) fn retained(&self) -> usize {
        self.ring.len()
    }

    pub(crate) fn clear(&mut self) {
        self.ring.clear();
        self.table.iter_mut().for_each(|s| *s = (EMPTY_SLOT, 0, 0));
        self.table_used = 0;
        self.accs.clear();
        self.hist = Histogram::new(0.0, HIST_HI_US, HIST_BUCKETS);
        self.dispatched = 0;
        self.spans = 0;
        self.instants = 0;
    }
}

/// Deterministic, single-threaded trace recorder for simulated runs.
///
/// Create one with [`Tracer::new`], install the `Rc` on the world (it
/// coerces to [`simcore::SharedSink`]), run the simulation, then read
/// [`events`](Tracer::events) / [`stage_totals`](Tracer::stage_totals)
/// or feed them to [`crate::export`].
pub struct Tracer {
    core: RefCell<Core>,
    cur_msg: Cell<u64>,
}

impl Tracer {
    /// Default ring capacity (events): enough for a full NetPIPE sweep.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// A tracer with the default ring capacity.
    pub fn new() -> Rc<Self> {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }

    /// A tracer retaining at most `capacity` raw events (totals are
    /// always exact regardless).
    pub fn with_capacity(capacity: usize) -> Rc<Self> {
        Rc::new(Tracer {
            core: RefCell::new(Core::new(capacity)),
            cur_msg: Cell::new(0),
        })
    }

    /// Retained raw events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.core.borrow().events()
    }

    /// Exact per-`(track, stage)` aggregates, ordered by track then stage.
    pub fn stage_totals(&self) -> Vec<StageTotal> {
        self.core.borrow().stage_totals()
    }

    /// Spans recorded so far (including any no longer in the ring).
    pub fn span_count(&self) -> u64 {
        self.core.borrow().span_count()
    }

    /// Instant events recorded so far.
    pub fn instant_count(&self) -> u64 {
        self.core.borrow().instant_count()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.core.borrow().dropped()
    }

    /// Raw events currently held in the ring.
    pub fn retained(&self) -> usize {
        self.core.borrow().retained()
    }

    /// Engine events dispatched while this sink was installed.
    pub fn events_dispatched(&self) -> u64 {
        self.core.borrow().dispatched()
    }

    /// Histogram of span durations in microseconds.
    pub fn span_duration_histogram(&self) -> Histogram {
        self.core.borrow().hist()
    }

    /// The message id currently stamped onto `msg == 0` records.
    pub fn current_msg(&self) -> u64 {
        self.cur_msg.get()
    }

    /// Drop all recorded data but keep the configuration.
    pub fn clear(&self) {
        self.core.borrow_mut().clear();
        self.cur_msg.set(0);
    }
}

impl TraceSink for Tracer {
    fn span(&self, rec: SpanRec) {
        let msg = if rec.msg != 0 {
            rec.msg
        } else {
            self.cur_msg.get()
        };
        self.core.borrow_mut().record_span(
            rec.stage,
            rec.track,
            rec.start.as_nanos(),
            rec.end.as_nanos(),
            rec.bytes,
            msg,
        );
    }

    fn instant(&self, name: &'static str, track: u32, at: SimTime, bytes: u64, msg: u64) {
        let msg = if msg != 0 { msg } else { self.cur_msg.get() };
        self.core
            .borrow_mut()
            .record_instant(name, track, at.as_nanos(), bytes, msg);
    }

    fn set_message(&self, id: u64) {
        self.cur_msg.set(id);
    }

    fn event_dispatched(&self, _at: SimTime) {
        self.core.borrow_mut().event_dispatched();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::trace::stages;

    fn span(t: &Tracer, stage: &'static str, track: u32, start: u64, end: u64, bytes: u64) {
        t.span(SpanRec {
            stage,
            track,
            start: SimTime(start),
            end: SimTime(end),
            bytes,
            msg: 0,
        });
    }

    #[test]
    fn totals_aggregate_by_track_and_stage() {
        let t = Tracer::new();
        span(&t, "cpu", 0, 0, 1_000, 100);
        span(&t, "cpu", 0, 1_000, 3_000, 200);
        span(&t, "cpu", 16, 0, 500, 50);
        let totals = t.stage_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].track, 0);
        assert_eq!(totals[0].spans, 2);
        assert_eq!(totals[0].bytes, 300);
        assert_eq!(totals[0].busy_ns, 3_000);
        assert_eq!(totals[0].per_span_us.count(), 2);
        assert!((totals[0].per_span_us.mean() - 1.5).abs() < 1e-12);
        assert_eq!(totals[1].track, 16);
    }

    #[test]
    fn message_register_stamps_records() {
        let t = Tracer::new();
        t.set_message(7);
        span(&t, "cpu", 0, 0, 10, 1);
        t.set_message(8);
        span(&t, "cpu", 0, 10, 20, 1);
        // Explicit msg wins over the register.
        t.span(SpanRec {
            stage: "pci",
            track: 1,
            start: SimTime(20),
            end: SimTime(30),
            bytes: 1,
            msg: 42,
        });
        let ev = t.events();
        assert_eq!(ev[0].msg, 7);
        assert_eq!(ev[1].msg, 8);
        assert_eq!(ev[2].msg, 42);
    }

    #[test]
    fn ring_drops_but_totals_stay_exact() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            span(&t, "cpu", 0, i * 10, i * 10 + 5, 1);
        }
        assert_eq!(t.retained(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.span_count(), 10);
        let totals = t.stage_totals();
        assert_eq!(totals[0].spans, 10);
        assert_eq!(totals[0].busy_ns, 50);
        // Ring keeps the newest events.
        assert_eq!(t.events()[0].start_ns, 60);
    }

    #[test]
    fn instants_are_recorded_without_totals() {
        let t = Tracer::new();
        t.instant(stages::SEND, 3, SimTime(55), 128, 9);
        assert_eq!(t.instant_count(), 1);
        assert_eq!(t.span_count(), 0);
        assert!(t.stage_totals().is_empty());
        let ev = t.events();
        assert_eq!(ev[0].kind, TraceKind::Instant);
        assert_eq!(ev[0].dur_ns(), 0);
        assert_eq!(ev[0].msg, 9);
    }

    #[test]
    fn clear_resets_all_state() {
        let t = Tracer::new();
        t.set_message(5);
        span(&t, "cpu", 0, 0, 10, 1);
        t.event_dispatched(SimTime(10));
        t.clear();
        assert_eq!(t.span_count(), 0);
        assert_eq!(t.events_dispatched(), 0);
        assert_eq!(t.current_msg(), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn histogram_counts_every_span() {
        let t = Tracer::new();
        for i in 0..5u64 {
            span(&t, "cpu", 0, 0, i * 1_000, 1);
        }
        assert_eq!(t.span_duration_histogram().total(), 5);
    }
}
