//! Wall-clock trace recorder for real (non-simulated) runs.
//!
//! [`WallTracer`] is the real-mode counterpart of [`crate::Tracer`]: the
//! same ring buffer and per-stage registry, but timestamps are monotonic
//! nanoseconds since the tracer was created and the store is a mutex so
//! `mplite`'s writer/reader threads can record concurrently.
//!
//! This module is the *only* place in the workspace where trace records
//! may be stamped from the wall clock — the `xtask lint` `trace-hygiene`
//! rule rejects use of this API from simulation crates, which must stamp
//! records with `SimTime` via [`crate::Tracer`] instead.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
// lint:allow(wall-clock) -- this module implements the real-mode clock
use std::time::Instant;

use crate::tracer::{Core, StageTotal, TraceEvent};

/// An opaque wall-clock reading (nanoseconds since the tracer's origin).
/// Obtained from [`WallTracer::now_wall`] and paid back into
/// [`WallTracer::span_wall`].
#[derive(Debug, Clone, Copy)]
pub struct WallStamp {
    ns: u64,
}

/// Thread-safe wall-clock trace recorder.
pub struct WallTracer {
    // lint:allow(wall-clock) -- real-mode origin for monotonic stamps
    origin: Instant,
    core: Mutex<Core>,
}

impl WallTracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Arc<Self> {
        WallTracer::with_capacity(crate::Tracer::DEFAULT_CAPACITY)
    }

    /// A tracer retaining at most `capacity` raw events.
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(WallTracer {
            // lint:allow(wall-clock) -- real-mode origin for monotonic stamps
            origin: Instant::now(),
            core: Mutex::new(Core::new(capacity)),
        })
    }

    /// Recording must survive a panicking peer thread: take the data
    /// even if the mutex was poisoned.
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current monotonic reading, for later use as a span start.
    pub fn now_wall(&self) -> WallStamp {
        WallStamp {
            ns: self.origin.elapsed().as_nanos() as u64,
        }
    }

    /// Record a span from `start` (a prior [`now_wall`](WallTracer::now_wall)
    /// reading) to now.
    pub fn span_wall(
        &self,
        stage: &'static str,
        track: u32,
        start: WallStamp,
        bytes: u64,
        msg: u64,
    ) {
        let end = self.now_wall();
        self.lock()
            .record_span(stage, track, start.ns, end.ns.max(start.ns), bytes, msg);
    }

    /// Record an instantaneous event at the current reading.
    pub fn instant_wall(&self, name: &'static str, track: u32, bytes: u64, msg: u64) {
        let at = self.now_wall();
        self.lock().record_instant(name, track, at.ns, bytes, msg);
    }

    /// Retained raw events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events()
    }

    /// Exact per-`(track, stage)` aggregates.
    pub fn stage_totals(&self) -> Vec<StageTotal> {
        self.lock().stage_totals()
    }

    /// Spans recorded so far (including any no longer in the ring).
    pub fn span_count(&self) -> u64 {
        self.lock().span_count()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }

    /// Drop all recorded data but keep the configuration and origin.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_across_threads() {
        let tr = WallTracer::new();
        let t2 = tr.clone();
        let h = std::thread::spawn(move || {
            let s = t2.now_wall();
            t2.span_wall("send", 1, s, 64, 2);
        });
        let s = tr.now_wall();
        tr.span_wall("recv", 0, s, 32, 1);
        h.join().expect("worker thread");
        assert_eq!(tr.span_count(), 2);
        let totals = tr.stage_totals();
        assert_eq!(totals.len(), 2);
        let ev = tr.events();
        assert!(ev.iter().all(|e| e.end_ns >= e.start_ns));
        assert!(ev.iter().any(|e| e.stage == "send" && e.msg == 2));
    }

    #[test]
    fn stamps_are_monotonic() {
        let tr = WallTracer::new();
        let a = tr.now_wall();
        let b = tr.now_wall();
        assert!(b.ns >= a.ns);
    }

    #[test]
    fn instants_and_clear() {
        let tr = WallTracer::with_capacity(8);
        tr.instant_wall("send", 0, 10, 1);
        assert_eq!(tr.events().len(), 1);
        tr.clear();
        assert!(tr.events().is_empty());
        assert_eq!(tr.dropped(), 0);
    }
}
