//! Trace exporters: Chrome trace-event JSON, ASCII per-message
//! timelines, and per-stage tables.
//!
//! All output is built from [`TraceEvent`]s / [`StageTotal`]s with
//! deterministic, hand-rolled formatting (timestamps are printed as
//! exact decimal microseconds, never via floating point), so identical
//! traces serialize to identical bytes.

use std::fmt::Write as _;

use simcore::units::secs_to_us;

use crate::tracer::{StageTotal, TraceEvent, TraceKind};

/// Nanoseconds rendered as exact decimal microseconds ("12.345").
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Serialize events as Chrome trace-event JSON (the "JSON Array Format"
/// understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)).
///
/// Each track becomes a named thread (`tid` = track, via `ph:"M"`
/// `thread_name` metadata); spans become complete events (`ph:"X"`) and
/// instants become `ph:"i"` events. `label` maps a track id to its
/// display name. Timestamps are microseconds.
pub fn chrome_trace_json(events: &[TraceEvent], label: &dyn Fn(u32) -> String) -> String {
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    for &t in &tracks {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(&label(t))
        );
    }
    for e in events {
        sep(&mut out, &mut first);
        match e.kind {
            TraceKind::Span => {
                let _ = write!(
                    out,
                    "  {{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{},\
                     \"args\":{{\"bytes\":{},\"msg\":{}}}}}",
                    escape_json(e.stage),
                    us(e.start_ns),
                    us(e.dur_ns()),
                    e.track,
                    e.bytes,
                    e.msg
                );
            }
            // lint:allow(wall-clock) -- the event-kind name, not a clock read
            TraceKind::Instant => {
                let _ = write!(
                    out,
                    "  {{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"i\",\"ts\":{},\
                     \"s\":\"t\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"bytes\":{},\"msg\":{}}}}}",
                    escape_json(e.stage),
                    us(e.start_ns),
                    e.track,
                    e.bytes,
                    e.msg
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Render every span belonging to message `msg` as an ASCII timeline:
/// one line per span, horizontally scaled over the message's lifetime.
///
/// `width` is the bar width in columns (clamped to ≥ 10); `label` maps
/// track ids to row names.
pub fn ascii_timeline(
    events: &[TraceEvent],
    msg: u64,
    width: usize,
    label: &dyn Fn(u32) -> String,
) -> String {
    let mut spans: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Span && e.msg == msg)
        .collect();
    if spans.is_empty() {
        return format!("(no spans recorded for message {msg})\n");
    }
    spans.sort_by_key(|e| (e.start_ns, e.track, e.stage));
    let t0 = spans.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let t1 = spans.iter().map(|e| e.end_ns).max().unwrap_or(t0);
    let total = (t1 - t0).max(1);
    let width = width.max(10);

    let name_w = spans
        .iter()
        .map(|e| label(e.track).len())
        .max()
        .unwrap_or(0)
        .max(5);
    let stage_w = spans
        .iter()
        .map(|e| e.stage.len())
        .max()
        .unwrap_or(0)
        .max(5);

    let mut out = format!(
        "message {msg}: {} spans over {} us (t0 = {} us)\n",
        spans.len(),
        us(t1 - t0),
        us(t0)
    );
    for e in &spans {
        let c0 = ((e.start_ns - t0) as u128 * width as u128 / total as u128) as usize;
        let mut c1 = ((e.end_ns - t0) as u128 * width as u128 / total as u128) as usize;
        if c1 <= c0 {
            c1 = c0 + 1; // every span is at least one column wide
        }
        let mut bar = String::with_capacity(width);
        for col in 0..width {
            bar.push(if col >= c0 && col < c1 { '#' } else { '.' });
        }
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:<stage_w$}  {:>10} +{:>9} us  |{bar}|",
            label(e.track),
            e.stage,
            us(e.start_ns - t0),
            us(e.dur_ns()),
        );
    }
    out
}

/// Render per-`(track, stage)` totals as an aligned table: busy time,
/// span count, mean span duration, and bytes.
pub fn stage_table(totals: &[StageTotal], label: &dyn Fn(u32) -> String) -> String {
    let name_w = totals
        .iter()
        .map(|t| label(t.track).len())
        .max()
        .unwrap_or(0)
        .max("track".len());
    let stage_w = totals
        .iter()
        .map(|t| t.stage.len())
        .max()
        .unwrap_or(0)
        .max("stage".len());
    let mut out = format!(
        "{:<name_w$}  {:<stage_w$}  {:>12}  {:>8}  {:>10}  {:>12}\n",
        "track", "stage", "busy(us)", "spans", "mean(us)", "bytes"
    );
    for t in totals {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<stage_w$}  {:>12}  {:>8}  {:>10.3}  {:>12}",
            label(t.track),
            t.stage,
            us(t.busy_ns),
            t.spans,
            t.per_span_us.mean(),
            t.bytes,
        );
    }
    out
}

/// Render a per-stage breakdown table: each row is `(label, busy
/// seconds, bytes)`; `elapsed_s` is the transfer's wall time in
/// simulated seconds and sets the share column and bars.
///
/// This is the renderer behind `clusterlab::Breakdown::to_table`.
pub fn breakdown_table(rows: &[(String, f64, u64)], elapsed_s: f64) -> String {
    const BAR_W: usize = 28;
    let name_w = rows
        .iter()
        .map(|(label, _, _)| label.len())
        .max()
        .unwrap_or(0)
        .max("stage".len());
    let mut out = format!(
        "{:<name_w$}  {:>12}  {:>6}  {:>12}  {}\n",
        "stage", "busy(us)", "share", "bytes", "utilization"
    );
    for (label, busy_s, bytes) in rows {
        let share = if elapsed_s > 0.0 {
            busy_s / elapsed_s
        } else {
            0.0
        };
        let filled = ((share * BAR_W as f64).round() as usize).min(BAR_W);
        let mut bar = String::with_capacity(BAR_W);
        for col in 0..BAR_W {
            bar.push(if col < filled { '#' } else { '.' });
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>12.3}  {:>5.1}%  {:>12}  {bar}",
            label,
            secs_to_us(*busy_s),
            share * 100.0,
            bytes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, stage: &'static str, track: u32, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            kind,
            stage,
            track,
            start_ns: s,
            end_ns: e,
            bytes: 100,
            msg: 1,
        }
    }

    #[test]
    fn chrome_json_shape() {
        let events = vec![
            ev(TraceKind::Span, "cpu", 0, 0, 1_500),
            ev(TraceKind::Instant, "send", 0, 0, 0),
        ];
        let json = chrome_trace_json(&events, &|t| format!("track{t}"));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"track0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1.500"));
        assert!(json.contains("\"ph\":\"i\""));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn chrome_json_escapes_strings() {
        let events = vec![ev(TraceKind::Span, "a\"b\\c", 0, 0, 1)];
        let json = chrome_trace_json(&events, &|_| "x\ny".into());
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("x\\ny"));
    }

    #[test]
    fn timeline_scales_and_orders() {
        let events = vec![
            ev(TraceKind::Span, "pci", 1, 1_000, 2_000),
            ev(TraceKind::Span, "cpu", 0, 0, 1_000),
            ev(TraceKind::Span, "other-msg", 2, 0, 1_000),
        ];
        let mut events = events;
        events[2].msg = 99;
        let tl = ascii_timeline(&events, 1, 20, &|t| format!("t{t}"));
        assert!(tl.contains("message 1: 2 spans"));
        assert!(!tl.contains("other-msg"));
        let cpu_line = tl.lines().find(|l| l.contains("cpu")).expect("cpu row");
        let pci_line = tl.lines().find(|l| l.contains("pci")).expect("pci row");
        // cpu occupies the first half, pci the second.
        assert!(cpu_line.contains("|##########..........|"), "{cpu_line}");
        assert!(pci_line.contains("|..........##########|"), "{pci_line}");
    }

    #[test]
    fn timeline_empty_message() {
        let tl = ascii_timeline(&[], 5, 40, &|_| String::new());
        assert!(tl.contains("no spans"));
    }

    #[test]
    fn breakdown_table_has_share_percent() {
        let rows = vec![
            ("host0 cpu".to_string(), 0.5e-6, 1_000u64),
            ("wire0 ->".to_string(), 1.0e-6, 1_000u64),
        ];
        let t = breakdown_table(&rows, 1.0e-6);
        assert!(t.contains("host0 cpu"));
        assert!(t.contains('%'));
        assert!(t.contains("50.0%"));
        assert!(t.contains("100.0%"));
    }

    #[test]
    fn stage_table_lists_all_rows() {
        use simcore::OnlineStats;
        let mut stats = OnlineStats::new();
        stats.push(1.5);
        let totals = vec![StageTotal {
            stage: "cpu",
            track: 0,
            spans: 1,
            bytes: 64,
            busy_ns: 1_500,
            per_span_us: stats,
        }];
        let t = stage_table(&totals, &|_| "host0 cpu".into());
        assert!(t.contains("host0 cpu"));
        assert!(t.contains("1.500"));
    }
}
