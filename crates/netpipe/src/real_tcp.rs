//! A real NetPIPE TCP module: actual kernel sockets over loopback.
//!
//! This is the genuine article, not a simulation — it exercises the same
//! code path the paper measures (socket buffers, Nagle, kernel copies) on
//! the machine the suite runs on. An echo server thread bounces every
//! message back; the driver times the full round trip with
//! `std::time::Instant`.
//!
//! Socket buffers are set through `setsockopt(SOL_SOCKET, SO_SNDBUF/
//! SO_RCVBUF)` exactly as NetPIPE's `-b` option does. `std::net` does not
//! expose these, so the calls go straight to libc (Linux-only constants).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::driver::{Driver, DriverError};

// Linux socket-option constants (see <sys/socket.h>).
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const core::ffi::c_void,
        optlen: u32,
    ) -> i32;
    fn getsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *mut core::ffi::c_void,
        optlen: *mut u32,
    ) -> i32;
}

/// Set a socket's send/receive buffer sizes (0 = leave the kernel
/// default). Returns the effective (sndbuf, rcvbuf) the kernel granted —
/// Linux doubles the requested value for bookkeeping, and clamps to
/// `net.core.{w,r}mem_max`, the very ceiling the paper tunes.
pub fn set_socket_buffers(
    stream: &TcpStream,
    sndbuf: u32,
    rcvbuf: u32,
) -> std::io::Result<(u32, u32)> {
    use std::os::fd::AsRawFd;
    let fd = stream.as_raw_fd();
    unsafe {
        if sndbuf > 0 {
            let v = sndbuf as i32;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
        if rcvbuf > 0 {
            let v = rcvbuf as i32;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
        let mut snd: i32 = 0;
        let mut rcv: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        if getsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&mut snd as *mut i32).cast(),
            &mut len,
        ) != 0
        {
            return Err(std::io::Error::last_os_error());
        }
        let mut len = std::mem::size_of::<i32>() as u32;
        if getsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&mut rcv as *mut i32).cast(),
            &mut len,
        ) != 0
        {
            return Err(std::io::Error::last_os_error());
        }
        Ok((snd.max(0) as u32, rcv.max(0) as u32))
    }
}

/// Configuration for the real TCP module.
#[derive(Debug, Clone)]
pub struct RealTcpOptions {
    /// Requested socket buffer size each side, bytes (0 = kernel default).
    pub sockbuf: u32,
    /// Disable Nagle's algorithm (NetPIPE default: yes).
    pub nodelay: bool,
}

impl Default for RealTcpOptions {
    fn default() -> Self {
        RealTcpOptions {
            sockbuf: 0,
            nodelay: true,
        }
    }
}

/// NetPIPE over real kernel TCP on loopback.
pub struct RealTcpDriver {
    stream: TcpStream,
    buf: Vec<u8>,
    effective_bufs: (u32, u32),
    opts: RealTcpOptions,
    server: Option<JoinHandle<()>>,
}

impl RealTcpDriver {
    /// Start the echo server thread and connect to it.
    pub fn new(opts: RealTcpOptions) -> Result<RealTcpDriver, DriverError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server_opts = opts.clone();
        let server = std::thread::Builder::new()
            .name("netpipe-echo".into())
            .spawn(move || {
                if let Ok((mut s, _)) = listener.accept() {
                    let _ = s.set_nodelay(server_opts.nodelay);
                    let _ = set_socket_buffers(&s, server_opts.sockbuf, server_opts.sockbuf);
                    echo_loop(&mut s);
                }
            })
            .map_err(DriverError::Io)?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(opts.nodelay)?;
        let effective_bufs = set_socket_buffers(&stream, opts.sockbuf, opts.sockbuf)?;
        Ok(RealTcpDriver {
            stream,
            buf: Vec::new(),
            effective_bufs,
            opts,
            server: Some(server),
        })
    }

    /// The (sndbuf, rcvbuf) the kernel actually granted on the client
    /// socket — useful to observe the `wmem_max` clamp.
    pub fn effective_buffers(&self) -> (u32, u32) {
        self.effective_bufs
    }
}

/// Echo protocol: 8-byte length header, then the payload, echoed verbatim.
fn echo_loop(s: &mut TcpStream) {
    let mut hdr = [0u8; 8];
    let mut buf = Vec::new();
    loop {
        if s.read_exact(&mut hdr).is_err() {
            return;
        }
        let len = u64::from_le_bytes(hdr) as usize;
        if len == u64::MAX as usize {
            return; // shutdown sentinel
        }
        buf.resize(len, 0);
        if s.read_exact(&mut buf).is_err() {
            return;
        }
        if s.write_all(&hdr).is_err() || s.write_all(&buf).is_err() {
            return;
        }
    }
}

impl Driver for RealTcpDriver {
    fn name(&self) -> String {
        if self.opts.sockbuf == 0 {
            "real TCP (default buffers)".to_string()
        } else {
            format!("real TCP ({}k buffers)", self.opts.sockbuf / 1024)
        }
    }

    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        let n = bytes as usize;
        if self.buf.len() < n {
            // Deterministic non-trivial payload for integrity checks.
            self.buf = (0..n).map(|i| (i % 251) as u8).collect();
        }
        let start = Instant::now();
        self.stream.write_all(&(bytes).to_le_bytes())?;
        self.stream.write_all(&self.buf[..n])?;
        let mut hdr = [0u8; 8];
        self.stream.read_exact(&mut hdr)?;
        let len = u64::from_le_bytes(hdr) as usize;
        let mut got = vec![0u8; len];
        self.stream.read_exact(&mut got)?;
        let elapsed = start.elapsed().as_secs_f64();
        if len != n || got != self.buf[..n] {
            return Err(DriverError::Io(std::io::Error::other(
                "echo payload corrupted",
            )));
        }
        Ok(elapsed)
    }
}

impl Drop for RealTcpDriver {
    fn drop(&mut self) {
        let _ = self.stream.write_all(&u64::MAX.to_le_bytes());
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, RunOptions};

    #[test]
    fn echo_roundtrip_works() {
        let mut d = RealTcpDriver::new(RealTcpOptions::default()).unwrap();
        let t = d.roundtrip(1024).unwrap();
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn buffer_request_is_applied() {
        let d = RealTcpDriver::new(RealTcpOptions {
            sockbuf: 256 * 1024,
            nodelay: true,
        })
        .unwrap();
        let (snd, rcv) = d.effective_buffers();
        // Linux at least doubles the request internally; it must not be
        // smaller than asked (modulo wmem_max clamping on tiny systems).
        assert!(snd >= 128 * 1024, "sndbuf {snd}");
        assert!(rcv >= 128 * 1024, "rcvbuf {rcv}");
    }

    #[test]
    fn loopback_signature_has_sane_shape() {
        let mut d = RealTcpDriver::new(RealTcpOptions::default()).unwrap();
        let sig = run(&mut d, &RunOptions::quick(256 * 1024)).unwrap();
        assert!(sig.latency_us > 0.5, "latency {} us", sig.latency_us);
        assert!(sig.latency_us < 2000.0, "latency {} us", sig.latency_us);
        // Loopback should move at least a gigabit for 256 kB messages.
        assert!(sig.max_mbps > 1000.0, "peak {} Mbps", sig.max_mbps);
        // Throughput at 256 kB must dwarf throughput at 1 byte.
        assert!(sig.final_mbps() > 100.0 * sig.points[0].mbps);
    }

    #[test]
    fn zero_byte_roundtrip() {
        let mut d = RealTcpDriver::new(RealTcpOptions::default()).unwrap();
        let t = d.roundtrip(0).unwrap();
        assert!(t > 0.0);
    }
}
