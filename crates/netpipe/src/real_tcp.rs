//! A real NetPIPE TCP module: actual kernel sockets over loopback.
//!
//! This is the genuine article, not a simulation — it exercises the same
//! code path the paper measures (socket buffers, Nagle, kernel copies) on
//! the machine the suite runs on. An echo server thread bounces every
//! message back; the driver times the full round trip with
//! `std::time::Instant`.
//!
//! Socket buffers are set through `setsockopt(SOL_SOCKET, SO_SNDBUF/
//! SO_RCVBUF)` exactly as NetPIPE's `-b` option does. `std::net` does not
//! expose these, so the calls go straight to libc (Linux-only constants).
//!
//! Unlike the paper's NetPIPE, this module is built to *survive* a sick
//! network: every socket operation carries a deadline
//! ([`RealTcpOptions::deadline`]), connects retry under bounded
//! exponential backoff ([`RealTcpOptions::retry`]), and a failed round
//! trip drops the connection so [`Driver::recover`] can re-establish it
//! — the runner's [`faultlab::SweepPolicy`] then turns a dying peer into
//! *degraded* points in a partial report instead of a hung benchmark.
//! [`ChaosOptions`] lets tests and the CLI play the peer's assassin.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use faultlab::io::{accept_deadline, connect_retry, read_exact_deadline, write_all_deadline};
use faultlab::proxy::{ChaosProxy, FaultEvent, FrameFormat};
use faultlab::{FaultCounters, FaultPlan, RetryPolicy};
use mplite::frame;
use simcore::trace::stages;
use tracelab::WallTracer;

use crate::driver::{Driver, DriverError, NetpipeError};

/// Reserved tag on the echo wire that means "clean shutdown" — the
/// framed replacement for the old `len == u64::MAX` sentinel, which a
/// framing layer with a length bound can no longer smuggle.
const ECHO_SHUTDOWN_TAG: i32 = -1;

// Linux socket-option constants (see <sys/socket.h>).
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

/// How long the echo server waits in one accept/header poll before
/// re-checking its shutdown flag.
const SERVER_POLL: Duration = Duration::from_millis(200);

/// Track id real-mode fault instants are recorded on (the host-0 flow
/// track in the simulation's allocation scheme).
const FAULT_TRACK: u32 = 48;

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const core::ffi::c_void,
        optlen: u32,
    ) -> i32;
    fn getsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *mut core::ffi::c_void,
        optlen: *mut u32,
    ) -> i32;
}

/// Set a socket's send/receive buffer sizes (0 = leave the kernel
/// default). Returns the effective (sndbuf, rcvbuf) the kernel granted —
/// Linux doubles the requested value for bookkeeping, and clamps to
/// `net.core.{w,r}mem_max`, the very ceiling the paper tunes.
pub fn set_socket_buffers(
    stream: &TcpStream,
    sndbuf: u32,
    rcvbuf: u32,
) -> std::io::Result<(u32, u32)> {
    use std::os::fd::AsRawFd;
    let fd = stream.as_raw_fd();
    unsafe {
        if sndbuf > 0 {
            let v = sndbuf as i32;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
        if rcvbuf > 0 {
            let v = rcvbuf as i32;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            ) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
        }
        let mut snd: i32 = 0;
        let mut rcv: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        if getsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&mut snd as *mut i32).cast(),
            &mut len,
        ) != 0
        {
            return Err(std::io::Error::last_os_error());
        }
        let mut len = std::mem::size_of::<i32>() as u32;
        if getsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&mut rcv as *mut i32).cast(),
            &mut len,
        ) != 0
        {
            return Err(std::io::Error::last_os_error());
        }
        Ok((snd.max(0) as u32, rcv.max(0) as u32))
    }
}

/// Deliberate server-side failures, for chaos tests and `--faults`
/// sweeps: the echo peer murders its own connection (or itself) at a
/// predictable point so the client's resilience path can be exercised.
#[derive(Debug, Clone, Default)]
pub struct ChaosOptions {
    /// Close the connection after echoing this many messages (per
    /// connection — a reconnected client gets another allowance).
    pub kill_after: Option<u64>,
    /// After the first kill, also stop accepting new connections: the
    /// peer is gone for good and every later point must fail.
    pub kill_listener: bool,
}

/// Configuration for the real TCP module.
#[derive(Debug, Clone)]
pub struct RealTcpOptions {
    /// Requested socket buffer size each side, bytes (0 = kernel default).
    pub sockbuf: u32,
    /// Disable Nagle's algorithm (NetPIPE default: yes).
    pub nodelay: bool,
    /// Deadline for each socket operation (connect attempt, header or
    /// payload read, write). A dead peer costs one deadline, not a hang.
    pub deadline: Duration,
    /// Backoff schedule for connect and reconnect attempts.
    pub retry: RetryPolicy,
    /// Server-side fault injection.
    pub chaos: ChaosOptions,
    /// Full fault plan, when one is in force. If it carries byte-level
    /// clauses ([`FaultPlan::has_byte_faults`]), the driver interposes a
    /// [`ChaosProxy`] between client and echo server and every frame
    /// crosses the injured wire.
    pub plan: Option<FaultPlan>,
}

impl Default for RealTcpOptions {
    fn default() -> Self {
        RealTcpOptions {
            sockbuf: 0,
            nodelay: true,
            deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            chaos: ChaosOptions::default(),
            plan: None,
        }
    }
}

impl RealTcpOptions {
    /// Adopt the real-mode knobs of a fault plan: the I/O deadline, the
    /// reconnect backoff, the chaos (kill) schedule — and keep the whole
    /// plan so byte-level clauses can raise a proxy.
    pub fn apply_plan(&mut self, plan: &FaultPlan) {
        self.deadline = plan.io_deadline;
        self.retry = plan.retry.clone();
        self.chaos.kill_after = plan.kill_after;
        self.chaos.kill_listener = plan.kill_listener;
        self.plan = Some(plan.clone());
    }
}

/// NetPIPE over real kernel TCP on loopback, with deadlines, bounded
/// reconnect, and optional chaos.
pub struct RealTcpDriver {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    version: u8,
    buf: Vec<u8>,
    effective_bufs: (u32, u32),
    opts: RealTcpOptions,
    server: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    tracer: Option<Arc<WallTracer>>,
    counters: FaultCounters,
    proxy: Option<ChaosProxy>,
}

impl RealTcpDriver {
    /// Start the echo server thread and connect to it. If the options
    /// carry a plan with byte-level clauses, a [`ChaosProxy`] is raised
    /// between client and server and every connection dials the front.
    pub fn new(opts: RealTcpOptions) -> Result<RealTcpDriver, DriverError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| NetpipeError::from_io("bind", e))?;
        let mut addr = listener
            .local_addr()
            .map_err(|e| NetpipeError::from_io("bind", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let server_opts = opts.clone();
        let server_stop = Arc::clone(&stop);
        let server = std::thread::Builder::new()
            .name("netpipe-echo".into())
            .spawn(move || serve(listener, server_opts, server_stop))
            .map_err(|e| NetpipeError::from_io("spawn", e))?;
        let proxy = match opts.plan.as_ref().filter(|p| p.has_byte_faults()) {
            Some(plan) => {
                let proxy = ChaosProxy::new(plan.clone(), FrameFormat::MPLITE_V2);
                // Rank 0 = the NetPIPE client, rank 1 = the echo peer.
                addr = proxy
                    .front(0, 1, addr)
                    .map_err(|e| NetpipeError::from_io("proxy front", e))?;
                Some(proxy)
            }
            None => None,
        };
        let mut driver = RealTcpDriver {
            addr,
            stream: None,
            version: frame::wire_version_default(),
            buf: Vec::new(),
            effective_bufs: (0, 0),
            opts,
            server: Some(server),
            stop,
            tracer: None,
            counters: FaultCounters::default(),
            proxy,
        };
        driver.connect()?;
        Ok(driver)
    }

    /// The (sndbuf, rcvbuf) the kernel actually granted on the client
    /// socket — useful to observe the `wmem_max` clamp.
    pub fn effective_buffers(&self) -> (u32, u32) {
        self.effective_bufs
    }

    /// Record fault events (timeouts, reconnects) as wall-clock trace
    /// instants on `tracer`.
    pub fn set_wall_tracer(&mut self, tracer: Arc<WallTracer>) {
        self.tracer = Some(tracer);
    }

    /// Fault events observed so far: the driver's own timeouts and
    /// reconnects, merged with whatever the chaos proxy (if any) has
    /// injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut c = self.counters;
        if let Some(p) = &self.proxy {
            c.merge(&p.counters());
        }
        c
    }

    /// Tear everything down and, if a chaos proxy was interposed, return
    /// its final deterministic counters and sorted fault log.
    pub fn finish_chaos(mut self) -> Option<(FaultCounters, Vec<FaultEvent>)> {
        self.close();
        self.proxy.take().map(ChaosProxy::finish)
    }

    fn trace_instant(&self, name: &'static str, bytes: u64) {
        if let Some(t) = &self.tracer {
            t.instant_wall(name, FAULT_TRACK, bytes, 0);
        }
    }

    /// (Re)establish the client connection under the retry policy, then
    /// negotiate the wire version (symmetric preamble exchange).
    fn connect(&mut self) -> Result<(), DriverError> {
        let per_attempt = self.opts.deadline.min(Duration::from_secs(1));
        let mut stream = connect_retry(self.addr, per_attempt, &self.opts.retry)
            .map_err(|e| NetpipeError::from_io("connect", e))?;
        stream
            .set_nodelay(self.opts.nodelay)
            .map_err(|e| NetpipeError::from_io("connect", e))?;
        self.effective_bufs = set_socket_buffers(&stream, self.opts.sockbuf, self.opts.sockbuf)
            .map_err(|e| NetpipeError::from_io("setsockopt", e))?;
        self.version = frame::negotiate_wire(
            &mut stream,
            self.opts.deadline,
            frame::wire_version_default(),
        )
        .map_err(|e| NetpipeError::from_io("negotiate", e))?;
        self.stream = Some(stream);
        Ok(())
    }

    /// One echo exchange on the live stream; classified errors, no
    /// cleanup (the caller decides whether to drop the stream).
    fn exchange(&mut self, bytes: u64) -> Result<f64, DriverError> {
        let n = bytes as usize;
        if self.buf.len() < n {
            // Deterministic non-trivial payload for integrity checks.
            self.buf = (0..n).map(|i| (i % 251) as u8).collect();
        }
        let deadline = self.opts.deadline;
        let stream = match self.stream.as_mut() {
            Some(s) => s,
            None => {
                return Err(NetpipeError::Disconnected {
                    op: "send",
                    source: std::io::Error::new(
                        std::io::ErrorKind::NotConnected,
                        "no connection (previous failure dropped it)",
                    ),
                })
            }
        };
        let version = self.version;
        let start = Instant::now();
        let (hdr, hn) = frame::build_header(version, 0, 0, &self.buf[..n]);
        write_all_deadline(stream, &hdr[..hn], deadline)
            .map_err(|e| NetpipeError::from_io("write", e))?;
        write_all_deadline(stream, &self.buf[..n], deadline)
            .map_err(|e| NetpipeError::from_io("write", e))?;
        let hl = frame::header_len(version);
        let mut rhdr = [0u8; frame::V2_HEADER_LEN];
        read_exact_deadline(stream, &mut rhdr[..hl], deadline)
            .map_err(|e| NetpipeError::from_io("read", e))?;
        // Length is bound-checked against the message cap BEFORE the
        // allocation below — a tampered header cannot ask for memory.
        let pf = frame::decode_any_header(version, &rhdr[..hl], frame::max_message_size())
            .map_err(|err| NetpipeError::Frame { op: "read", err })?;
        // Read and CRC-verify the declared (bound-checked) length BEFORE
        // comparing it to what was sent: a corrupted length bit must
        // surface as a typed frame verdict (checksum mismatch, or a
        // timeout waiting for bytes that never existed) — `Protocol` is
        // reserved for CRC-clean contract violations, i.e. server bugs.
        let mut got = vec![0u8; pf.len as usize];
        read_exact_deadline(stream, &mut got, deadline)
            .map_err(|e| NetpipeError::from_io("read", e))?;
        pf.verify(&got)
            .map_err(|err| NetpipeError::Frame { op: "read", err })?;
        let elapsed = start.elapsed().as_secs_f64();
        if pf.len != bytes {
            return Err(NetpipeError::Protocol(format!(
                "echo length mismatch: sent {n}, got {}",
                pf.len
            )));
        }
        if got != self.buf[..n] {
            return Err(NetpipeError::Protocol("echo payload corrupted".into()));
        }
        Ok(elapsed)
    }

    /// Tear down the connection, the echo server and (on clean paths)
    /// leave the proxy joinable. Idempotent; `Drop` calls it too.
    fn close(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(mut stream) = self.stream.take() {
            let (hdr, hn) = frame::build_header(self.version, 0, ECHO_SHUTDOWN_TAG, &[]);
            let _ = write_all_deadline(&mut stream, &hdr[..hn], Duration::from_secs(1));
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Outcome of serving one echo connection.
enum EchoEnd {
    /// Clean shutdown (shutdown tag received or shutdown flag set).
    Clean,
    /// The chaos schedule killed the connection.
    Killed,
    /// The client went away, or sent a malformed frame (the server's
    /// answer to a bad frame is to drop the connection — the client
    /// observes a typed disconnect, never a desynced stream).
    PeerGone,
}

/// Accept loop: serve echo connections until shut down (or until chaos
/// retires the listener).
fn serve(listener: TcpListener, opts: RealTcpOptions, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match accept_deadline(&listener, SERVER_POLL, || !stop.load(Ordering::Relaxed)) {
            Ok(mut s) => {
                let _ = s.set_nodelay(opts.nodelay);
                let _ = set_socket_buffers(&s, opts.sockbuf, opts.sockbuf);
                let version = match frame::negotiate_wire(
                    &mut s,
                    opts.deadline,
                    frame::wire_version_default(),
                ) {
                    Ok(v) => v,
                    Err(_) => continue, // bad preamble: drop, keep serving
                };
                match echo_loop(&mut s, version, &opts, &stop) {
                    EchoEnd::Clean => return,
                    EchoEnd::Killed if opts.chaos.kill_listener => return,
                    EchoEnd::Killed | EchoEnd::PeerGone => {}
                }
            }
            Err(e) if faultlab::io::is_timeout(&e) => {}
            Err(_) => return,
        }
    }
}

/// Echo protocol: one v2 frame per message (negotiated header + CRC'd
/// payload), echoed back verbatim. A frame tagged [`ECHO_SHUTDOWN_TAG`]
/// is the clean-shutdown signal. All reads and writes are
/// deadline-bounded; the idle wait for the next header polls in short
/// slices so shutdown stays responsive. Any framing violation —
/// tampered magic, bad CRC, oversized declared length — drops the
/// connection before a single payload byte is trusted.
fn echo_loop(s: &mut TcpStream, version: u8, opts: &RealTcpOptions, stop: &AtomicBool) -> EchoEnd {
    let hl = frame::header_len(version);
    let max = frame::max_message_size();
    let mut buf = Vec::new();
    let mut echoed = 0u64;
    loop {
        if let Some(kill_after) = opts.chaos.kill_after {
            if echoed >= kill_after {
                // Chaos: die abruptly, mid-conversation.
                let _ = s.shutdown(std::net::Shutdown::Both);
                return EchoEnd::Killed;
            }
        }
        // Wait (possibly a long time) for the first header byte, polling
        // so the shutdown flag is honored; the rest of the header follows
        // within the regular deadline.
        let mut hdr = [0u8; frame::V2_HEADER_LEN];
        loop {
            match read_exact_deadline(s, &mut hdr[..1], SERVER_POLL) {
                Ok(()) => break,
                Err(e) if faultlab::io::is_timeout(&e) => {
                    if stop.load(Ordering::Relaxed) {
                        return EchoEnd::Clean;
                    }
                }
                Err(_) => return EchoEnd::PeerGone,
            }
        }
        if read_exact_deadline(s, &mut hdr[1..hl], opts.deadline).is_err() {
            return EchoEnd::PeerGone;
        }
        // The length bound is enforced here, before the resize below.
        let pf = match frame::decode_any_header(version, &hdr[..hl], max) {
            Ok(pf) => pf,
            Err(_) => return EchoEnd::PeerGone,
        };
        buf.resize(pf.len as usize, 0);
        if read_exact_deadline(s, &mut buf, opts.deadline).is_err() {
            return EchoEnd::PeerGone;
        }
        if pf.verify(&buf).is_err() {
            return EchoEnd::PeerGone;
        }
        if pf.tag == ECHO_SHUTDOWN_TAG {
            return EchoEnd::Clean;
        }
        // Echo the exact bytes back: header included, CRC and all.
        if write_all_deadline(s, &hdr[..hl], opts.deadline).is_err()
            || write_all_deadline(s, &buf, opts.deadline).is_err()
        {
            return EchoEnd::PeerGone;
        }
        echoed += 1;
    }
}

impl Driver for RealTcpDriver {
    fn name(&self) -> String {
        if self.opts.sockbuf == 0 {
            "real TCP (default buffers)".to_string()
        } else {
            format!("real TCP ({}k buffers)", self.opts.sockbuf / 1024)
        }
    }

    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        match self.exchange(bytes) {
            Ok(t) => Ok(t),
            Err(e) => {
                // The stream is suspect after any failure (desynced or
                // dead): drop it so recover() reconnects from scratch.
                self.stream = None;
                if e.is_timeout() {
                    self.counters.timeouts += 1;
                    self.trace_instant(stages::IO_TIMEOUT, bytes);
                }
                Err(e)
            }
        }
    }

    fn recover(&mut self) -> Result<(), DriverError> {
        if self.stream.is_some() {
            return Ok(());
        }
        self.counters.reconnects += 1;
        self.connect()?;
        self.trace_instant(stages::RECONNECT, 0);
        Ok(())
    }
}

impl Drop for RealTcpDriver {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, RunOptions};

    type TestResult = Result<(), DriverError>;

    #[test]
    fn echo_roundtrip_works() -> TestResult {
        let mut d = RealTcpDriver::new(RealTcpOptions::default())?;
        let t = d.roundtrip(1024)?;
        assert!(t > 0.0 && t < 1.0);
        Ok(())
    }

    #[test]
    fn buffer_request_is_applied() -> TestResult {
        let d = RealTcpDriver::new(RealTcpOptions {
            sockbuf: 256 * 1024,
            ..Default::default()
        })?;
        let (snd, rcv) = d.effective_buffers();
        // Linux at least doubles the request internally; it must not be
        // smaller than asked (modulo wmem_max clamping on tiny systems).
        assert!(snd >= 128 * 1024, "sndbuf {snd}");
        assert!(rcv >= 128 * 1024, "rcvbuf {rcv}");
        Ok(())
    }

    #[test]
    fn loopback_signature_has_sane_shape() -> TestResult {
        let mut d = RealTcpDriver::new(RealTcpOptions::default())?;
        let sig = run(&mut d, &RunOptions::quick(256 * 1024))?;
        assert!(sig.latency_us > 0.5, "latency {} us", sig.latency_us);
        assert!(sig.latency_us < 2000.0, "latency {} us", sig.latency_us);
        // Loopback should move at least a gigabit for 256 kB messages.
        assert!(sig.max_mbps > 1000.0, "peak {} Mbps", sig.max_mbps);
        // Throughput at 256 kB must dwarf throughput at 1 byte.
        assert!(sig.final_mbps() > 100.0 * sig.points[0].mbps);
        Ok(())
    }

    #[test]
    fn zero_byte_roundtrip() -> TestResult {
        let mut d = RealTcpDriver::new(RealTcpOptions::default())?;
        let t = d.roundtrip(0)?;
        assert!(t > 0.0);
        Ok(())
    }

    #[test]
    fn killed_connection_classifies_and_recovers() -> TestResult {
        let mut opts = RealTcpOptions {
            deadline: Duration::from_secs(2),
            ..Default::default()
        };
        opts.chaos.kill_after = Some(2);
        let mut d = RealTcpDriver::new(opts)?;
        d.roundtrip(64)?;
        d.roundtrip(64)?;
        // Third message hits the assassinated connection.
        let err = match d.roundtrip(64) {
            Err(e) => e,
            Ok(_) => panic!("third roundtrip should fail"),
        };
        assert!(
            err.is_disconnect() || err.is_timeout(),
            "unexpected class: {err}"
        );
        // The server accepts a new connection; service resumes.
        d.recover()?;
        d.roundtrip(64)?;
        assert!(d.fault_counters().reconnects >= 1);
        Ok(())
    }

    #[test]
    fn killed_listener_makes_recovery_fail() {
        let mut opts = RealTcpOptions {
            deadline: Duration::from_millis(500),
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(10),
                factor: 2.0,
                cap: Duration::from_millis(20),
            },
            ..Default::default()
        };
        opts.chaos.kill_after = Some(1);
        opts.chaos.kill_listener = true;
        let mut d = match RealTcpDriver::new(opts) {
            Ok(d) => d,
            Err(e) => panic!("setup failed: {e}"),
        };
        assert!(d.roundtrip(64).is_ok());
        assert!(d.roundtrip(64).is_err(), "peer was killed");
        // The listener is gone too: recovery connects (the OS may still
        // complete the handshake against the dead listener's backlog) but
        // no echo service ever answers.
        let revived = d.recover().is_ok() && d.roundtrip(64).is_ok();
        assert!(!revived, "service must not come back");
    }

    #[test]
    fn apply_plan_adopts_real_mode_knobs() {
        let plan = match FaultPlan::parse("deadline=250ms,backoff=10ms,kill-after=3,kill-listener")
        {
            Ok(p) => p,
            Err(e) => panic!("plan: {e:?}"),
        };
        let mut opts = RealTcpOptions::default();
        opts.apply_plan(&plan);
        assert_eq!(opts.deadline, Duration::from_millis(250));
        assert_eq!(opts.retry.base, Duration::from_millis(10));
        assert_eq!(opts.chaos.kill_after, Some(3));
        assert!(opts.chaos.kill_listener);
        assert!(opts.plan.is_some(), "the full plan rides along");
    }

    #[test]
    fn corrupted_wire_yields_typed_verdicts_and_service_recovers() {
        let plan = match FaultPlan::parse("seed=13,corrupt=0.3,deadline=500ms") {
            Ok(p) => p,
            Err(e) => panic!("plan: {e}"),
        };
        let mut opts = RealTcpOptions::default();
        opts.apply_plan(&plan);
        let mut d = match RealTcpDriver::new(opts) {
            Ok(d) => d,
            Err(e) => panic!("setup through the proxy failed: {e}"),
        };
        let mut clean = 0u32;
        let mut injured = 0u32;
        for _ in 0..20 {
            match d.roundtrip(512) {
                Ok(_) => clean += 1,
                Err(e) => {
                    // Every failure must be a typed verdict, never a
                    // desynced stream or an untyped surprise.
                    assert!(
                        e.is_frame() || e.is_timeout() || e.is_disconnect(),
                        "untyped failure under chaos: {e}"
                    );
                    injured += 1;
                    let _ = d.recover();
                }
            }
        }
        assert!(injured > 0, "corrupt=0.3 over 20 exchanges must fire");
        assert!(clean > 0, "service must keep recovering");
        let (counters, log) = match d.finish_chaos() {
            Some(x) => x,
            None => panic!("byte faults must raise the proxy"),
        };
        assert!(counters.corrupted > 0, "{counters}");
        assert_eq!(counters.corrupted as usize, log.len(), "{log:?}");
    }

    #[test]
    fn lossless_plan_raises_no_proxy() {
        let plan = match FaultPlan::parse("seed=1,deadline=2s") {
            Ok(p) => p,
            Err(e) => panic!("plan: {e}"),
        };
        let mut opts = RealTcpOptions::default();
        opts.apply_plan(&plan);
        let mut d = match RealTcpDriver::new(opts) {
            Ok(d) => d,
            Err(e) => panic!("setup: {e}"),
        };
        assert!(d.roundtrip(1024).is_ok());
        assert!(d.finish_chaos().is_none(), "no byte clauses, no interposer");
    }
}
