//! The driver abstraction: anything that can bounce a message.
//!
//! NetPIPE's original "modules" (MPI, PVM, TCGMSG, TCP, GM, …) map to
//! implementations of [`Driver`]. This crate ships three families:
//!
//! * [`SimDriver`] — any `mpsim` library model on any `hwmodel` cluster
//!   (regenerates the paper's figures);
//! * [`crate::real_tcp::RealTcpDriver`] — actual kernel TCP over
//!   loopback, with tunable socket buffers;
//! * [`crate::mplite_driver::MpliteDriver`] — the real `mplite` library.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use hwmodel::ClusterSpec;
use mpsim::{MpLib, Session};
use protosim::Fabric;

/// Measurement errors.
#[derive(Debug)]
pub enum DriverError {
    /// The transfer never completed (model deadlock or peer failure).
    Stalled,
    /// An I/O error from a real-socket driver.
    Io(std::io::Error),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Stalled => write!(f, "transfer did not complete"),
            DriverError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<std::io::Error> for DriverError {
    fn from(e: std::io::Error) -> Self {
        DriverError::Io(e)
    }
}

/// Something that can bounce a message of a given size and report the
/// round-trip time in seconds.
pub trait Driver {
    /// Display name used in reports and figure legends.
    fn name(&self) -> String;

    /// Perform one ping-pong round trip of `bytes` and return the elapsed
    /// time in seconds.
    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError>;

    /// Stream `count` one-way messages of `bytes` back-to-back and return
    /// the elapsed time until the last is delivered (NetPIPE's `-s`
    /// streaming mode). The default approximates it with half round
    /// trips; transports that can pipeline override it.
    fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
        let mut total = 0.0;
        for _ in 0..count {
            total += self.roundtrip(bytes)? / 2.0;
        }
        Ok(total)
    }

    /// True when timings are exact (simulated) — the runner then skips
    /// repeated trials.
    fn is_deterministic(&self) -> bool {
        false
    }
}

/// Drives an `mpsim` library model over a simulated cluster.
///
/// Each round trip runs in a fresh deterministic [`Fabric`], so
/// measurements are independent and exactly reproducible.
pub struct SimDriver {
    spec: ClusterSpec,
    lib: MpLib,
    trace: Option<simcore::trace::SharedSink>,
}

impl SimDriver {
    /// Measure `lib` on `spec`.
    pub fn new(spec: ClusterSpec, lib: MpLib) -> SimDriver {
        SimDriver {
            spec,
            lib,
            trace: None,
        }
    }

    /// The cluster configuration being simulated.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Install a trace sink; every subsequent measurement instruments its
    /// fresh fabric (resources, protocol stages, library phases) with it.
    /// Sinks only observe — timings are identical with or without one.
    pub fn set_trace_sink(&mut self, sink: simcore::trace::SharedSink) {
        self.trace = Some(sink);
    }

    fn engine(&self) -> protosim::Net {
        let mut eng = Fabric::engine(self.spec.clone());
        if let Some(sink) = &self.trace {
            protosim::instrument(&mut eng, Rc::clone(sink));
        }
        eng
    }
}

impl Driver for SimDriver {
    fn name(&self) -> String {
        self.lib.name().to_string()
    }

    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        let mut eng = self.engine();
        let session = Session::establish(&mut eng.world, &self.lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        mpsim::pingpong(
            &session,
            &mut eng,
            bytes,
            1,
            Box::new(move |_, t| out2.set(Some(t))),
        );
        eng.run();
        out.get().ok_or(DriverError::Stalled)
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    /// True streaming: all `count` messages are queued at once and
    /// pipeline through the fabric.
    fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
        let mut eng = self.engine();
        let session = Session::establish(&mut eng.world, &self.lib);
        let out = Rc::new(Cell::new(None));
        let left = Rc::new(Cell::new(count));
        for _ in 0..count {
            let out = Rc::clone(&out);
            let left = Rc::clone(&left);
            session.send(
                &mut eng,
                0,
                bytes,
                Box::new(move |e| {
                    left.set(left.get() - 1);
                    if left.get() == 0 {
                        out.set(Some(e.now().as_secs_f64()));
                    }
                }),
            );
        }
        eng.run();
        out.get().ok_or(DriverError::Stalled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::pcs_ga620;
    use mpsim::libs::raw_tcp;
    use simcore::units::{kib, mib, throughput_mbps};

    #[test]
    fn sim_driver_reports_name_and_time() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        assert_eq!(d.name(), "raw TCP");
        assert!(d.is_deterministic());
        let t = d.roundtrip(1000).unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn sim_driver_roundtrips_are_reproducible() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let a = d.roundtrip(100_000).unwrap();
        let b = d.roundtrip(100_000).unwrap();
        assert_eq!(a, b, "fresh deterministic fabric each time");
    }

    #[test]
    fn burst_streams_faster_than_pingpong_for_small_messages() {
        // Streaming amortizes the per-message latency that dominates
        // small-message ping-pong.
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let pp: f64 = (0..32).map(|_| d.roundtrip(1024).unwrap() / 2.0).sum();
        let stream = d.burst(1024, 32).unwrap();
        assert!(
            stream < pp / 2.0,
            "stream {stream} should beat ping-pong {pp} by 2x+"
        );
    }

    #[test]
    fn burst_total_time_scales_with_count() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let t8 = d.burst(100_000, 8).unwrap();
        let t32 = d.burst(100_000, 32).unwrap();
        let ratio = t32 / t8;
        assert!((3.2..4.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sim_driver_throughput_sane() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let t = d.roundtrip(mib(4)).unwrap() / 2.0;
        let mbps = throughput_mbps(mib(4), t);
        assert!((400.0..700.0).contains(&mbps), "{mbps}");
    }
}
