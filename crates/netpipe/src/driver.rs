//! The driver abstraction: anything that can bounce a message.
//!
//! NetPIPE's original "modules" (MPI, PVM, TCGMSG, TCP, GM, …) map to
//! implementations of [`Driver`]. This crate ships three families:
//!
//! * [`SimDriver`] — any `mpsim` library model on any `hwmodel` cluster
//!   (regenerates the paper's figures);
//! * [`crate::real_tcp::RealTcpDriver`] — actual kernel TCP over
//!   loopback, with tunable socket buffers;
//! * [`crate::mplite_driver::MpliteDriver`] — the real `mplite` library.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use faultlab::{FaultCounters, FaultLottery, FaultPlan};
use hwmodel::ClusterSpec;
use mpsim::{MpLib, Session};
use protosim::Fabric;

/// Measurement errors, classified so the runner's graceful-degradation
/// logic (and a human reading a partial report) can tell a slow peer
/// from a dead one from a corrupted one.
#[derive(Debug)]
pub enum NetpipeError {
    /// The transfer never completed (model deadlock, a simulated
    /// connection that died under fault injection, or peer failure).
    Stalled,
    /// A real-socket operation exceeded its deadline.
    Timeout {
        /// The operation that timed out ("read", "write", "connect", …).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The peer went away (connection reset, broken pipe, early EOF).
    Disconnected {
        /// The operation that observed the disconnect.
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The wire protocol was violated (corrupt or mismatched payload).
    Protocol(String),
    /// The peer sent a malformed v2 frame — bad magic, wrong version,
    /// tampered checksum, truncation, or an oversized declared length —
    /// caught by the framing layer before any payload was trusted.
    Frame {
        /// The operation that decoded the bad frame.
        op: &'static str,
        /// The typed framing verdict.
        err: mplite::FrameError,
    },
    /// Any other I/O error from a real-socket driver.
    Io(std::io::Error),
}

/// Historical name for [`NetpipeError`], kept for downstream code.
pub type DriverError = NetpipeError;

impl NetpipeError {
    /// Classify an I/O error from operation `op` into timeout /
    /// disconnect / other.
    pub fn from_io(op: &'static str, e: std::io::Error) -> NetpipeError {
        if faultlab::io::is_timeout(&e) {
            NetpipeError::Timeout { op, source: e }
        } else if faultlab::io::is_disconnect(&e) {
            NetpipeError::Disconnected { op, source: e }
        } else {
            NetpipeError::Io(e)
        }
    }

    /// Is this a deadline expiry?
    pub fn is_timeout(&self) -> bool {
        matches!(self, NetpipeError::Timeout { .. })
    }

    /// Is this the peer going away?
    pub fn is_disconnect(&self) -> bool {
        matches!(self, NetpipeError::Disconnected { .. })
    }

    /// Is this a typed framing verdict from the v2 wire decoder?
    pub fn is_frame(&self) -> bool {
        matches!(self, NetpipeError::Frame { .. })
    }
}

impl fmt::Display for NetpipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetpipeError::Stalled => write!(f, "transfer did not complete"),
            NetpipeError::Timeout { op, source } => write!(f, "{op} timed out: {source}"),
            NetpipeError::Disconnected { op, source } => {
                write!(f, "peer disconnected during {op}: {source}")
            }
            NetpipeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetpipeError::Frame { op, err } => {
                write!(f, "{op} received a malformed frame: {err}")
            }
            NetpipeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetpipeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetpipeError::Timeout { source, .. }
            | NetpipeError::Disconnected { source, .. }
            | NetpipeError::Io(source) => Some(source),
            NetpipeError::Frame { err, .. } => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetpipeError {
    fn from(e: std::io::Error) -> Self {
        NetpipeError::from_io("socket", e)
    }
}

/// Something that can bounce a message of a given size and report the
/// round-trip time in seconds.
pub trait Driver {
    /// Display name used in reports and figure legends.
    fn name(&self) -> String;

    /// Perform one ping-pong round trip of `bytes` and return the elapsed
    /// time in seconds.
    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError>;

    /// Stream `count` one-way messages of `bytes` back-to-back and return
    /// the elapsed time until the last is delivered (NetPIPE's `-s`
    /// streaming mode). The default approximates it with half round
    /// trips; transports that can pipeline override it.
    fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
        let mut total = 0.0;
        for _ in 0..count {
            total += self.roundtrip(bytes)? / 2.0;
        }
        Ok(total)
    }

    /// True when timings are exact (simulated) — the runner then skips
    /// repeated trials.
    fn is_deterministic(&self) -> bool {
        false
    }

    /// Attempt to restore a usable transport after a failed measurement
    /// (reconnect a dropped socket, re-establish a session). Called by
    /// the runner between per-point retries when a
    /// [`faultlab::SweepPolicy`] is in force. The default is a no-op:
    /// stateless and simulated drivers need no recovery.
    fn recover(&mut self) -> Result<(), DriverError> {
        Ok(())
    }
}

/// Drives an `mpsim` library model over a simulated cluster.
///
/// Each round trip runs in a fresh deterministic [`Fabric`], so
/// measurements are independent and exactly reproducible.
pub struct SimDriver {
    spec: ClusterSpec,
    lib: MpLib,
    trace: Option<simcore::trace::SharedSink>,
    /// The fault lottery is carried across the fresh per-measurement
    /// fabrics so its RNG stream — and therefore the fault pattern —
    /// keeps advancing over a sweep, while staying fully reproducible
    /// for a given plan seed.
    faults: Option<Box<FaultLottery>>,
}

impl SimDriver {
    /// Measure `lib` on `spec`.
    pub fn new(spec: ClusterSpec, lib: MpLib) -> SimDriver {
        SimDriver {
            spec,
            lib,
            trace: None,
            faults: None,
        }
    }

    /// The cluster configuration being simulated.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Install a trace sink; every subsequent measurement instruments its
    /// fresh fabric (resources, protocol stages, library phases) with it.
    /// Sinks only observe — timings are identical with or without one.
    pub fn set_trace_sink(&mut self, sink: simcore::trace::SharedSink) {
        self.trace = Some(sink);
    }

    /// Inject faults: every subsequent measurement submits its wire
    /// segments to a lottery seeded from `plan.seed`. A lossless plan is
    /// guaranteed not to perturb any timing.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultLottery::new(plan)));
    }

    /// Accumulated fault-event counters, if a plan is installed.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults.as_ref().map(|f| f.counters)
    }

    fn engine(&mut self) -> protosim::Net {
        let mut eng = Fabric::engine(self.spec.clone());
        if let Some(sink) = &self.trace {
            protosim::instrument(&mut eng, Rc::clone(sink));
        }
        if let Some(lottery) = self.faults.take() {
            eng.world.adopt_faults(lottery);
        }
        eng
    }

    /// Recover the lottery (with advanced RNG state and counters) from a
    /// finished engine.
    fn reclaim(&mut self, eng: &mut protosim::Net) {
        if let Some(lottery) = eng.world.take_faults() {
            self.faults = Some(lottery);
        }
    }
}

impl Driver for SimDriver {
    fn name(&self) -> String {
        self.lib.name().to_string()
    }

    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        let mut eng = self.engine();
        let session = Session::establish(&mut eng.world, &self.lib);
        let out = Rc::new(Cell::new(None));
        let out2 = Rc::clone(&out);
        mpsim::pingpong(
            &session,
            &mut eng,
            bytes,
            1,
            Box::new(move |_, t| out2.set(Some(t))),
        );
        eng.run();
        self.reclaim(&mut eng);
        out.get().ok_or(DriverError::Stalled)
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    /// True streaming: all `count` messages are queued at once and
    /// pipeline through the fabric.
    fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
        let mut eng = self.engine();
        let session = Session::establish(&mut eng.world, &self.lib);
        let out = Rc::new(Cell::new(None));
        let left = Rc::new(Cell::new(count));
        for _ in 0..count {
            let out = Rc::clone(&out);
            let left = Rc::clone(&left);
            session.send(
                &mut eng,
                0,
                bytes,
                Box::new(move |e| {
                    left.set(left.get() - 1);
                    if left.get() == 0 {
                        out.set(Some(e.now().as_secs_f64()));
                    }
                }),
            );
        }
        eng.run();
        self.reclaim(&mut eng);
        out.get().ok_or(DriverError::Stalled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::presets::pcs_ga620;
    use mpsim::libs::raw_tcp;
    use simcore::units::{kib, mib, throughput_mbps};

    #[test]
    fn sim_driver_reports_name_and_time() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        assert_eq!(d.name(), "raw TCP");
        assert!(d.is_deterministic());
        let t = d.roundtrip(1000).unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn sim_driver_roundtrips_are_reproducible() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let a = d.roundtrip(100_000).unwrap();
        let b = d.roundtrip(100_000).unwrap();
        assert_eq!(a, b, "fresh deterministic fabric each time");
    }

    #[test]
    fn burst_streams_faster_than_pingpong_for_small_messages() {
        // Streaming amortizes the per-message latency that dominates
        // small-message ping-pong.
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let pp: f64 = (0..32).map(|_| d.roundtrip(1024).unwrap() / 2.0).sum();
        let stream = d.burst(1024, 32).unwrap();
        assert!(
            stream < pp / 2.0,
            "stream {stream} should beat ping-pong {pp} by 2x+"
        );
    }

    #[test]
    fn burst_total_time_scales_with_count() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let t8 = d.burst(100_000, 8).unwrap();
        let t32 = d.burst(100_000, 32).unwrap();
        let ratio = t32 / t8;
        assert!((3.2..4.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sim_driver_throughput_sane() {
        let mut d = SimDriver::new(pcs_ga620(), raw_tcp(kib(512)));
        let t = d.roundtrip(mib(4)).unwrap() / 2.0;
        let mbps = throughput_mbps(mib(4), t);
        assert!((400.0..700.0).contains(&mbps), "{mbps}");
    }
}
