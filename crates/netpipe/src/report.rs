//! Output writers: CSV, the classic NetPIPE plotfile, markdown tables,
//! and an ASCII rendition of the paper's log-x throughput figures.

use std::fmt::Write as _;

use crate::runner::{PointStatus, Signature};

/// CSV with one row per point: `library,bytes,seconds,mbps`. Failed
/// points leave a gap (no row) rather than a bogus zero; see
/// [`fault_report`] for the annotation.
pub fn to_csv(sigs: &[Signature]) -> String {
    let mut out = String::from("library,bytes,seconds,mbps\n");
    for sig in sigs {
        for p in sig.measured_points() {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.3}",
                sig.name, p.bytes, p.seconds, p.mbps
            );
        }
    }
    out
}

/// The classic NetPIPE `.np` plotfile for one signature: three columns —
/// `bytes  throughput_mbps  time_seconds` (gnuplot-ready). Failed points
/// become comment lines so the gap is visible in the file.
pub fn to_plotfile(sig: &Signature) -> String {
    let mut out = format!(
        "# NetPIPE signature: {}\n# bytes  Mbps  seconds\n",
        sig.name
    );
    for p in &sig.points {
        match &p.status {
            PointStatus::Failed { error } => {
                let _ = writeln!(out, "# {:>8}  FAILED: {error}", p.bytes);
            }
            _ => {
                let _ = writeln!(out, "{:>10} {:>12.3} {:>14.9}", p.bytes, p.mbps, p.seconds);
            }
        }
    }
    out
}

/// Human-readable annotation of a partial sweep: one line per degraded
/// or failed point. Empty when every point measured cleanly.
pub fn fault_report(sigs: &[Signature]) -> String {
    let mut out = String::new();
    for sig in sigs {
        if !sig.is_partial() {
            continue;
        }
        let _ = writeln!(
            out,
            "{}: {} degraded, {} failed of {} points",
            sig.name,
            sig.degraded_count(),
            sig.failed_count(),
            sig.points.len()
        );
        for p in &sig.points {
            match &p.status {
                PointStatus::Ok => {}
                PointStatus::Degraded { retries } => {
                    let _ = writeln!(
                        out,
                        "  {:>10} B  degraded ({retries} retr{})",
                        p.bytes,
                        if *retries == 1 { "y" } else { "ies" }
                    );
                }
                PointStatus::Failed { error } => {
                    let _ = writeln!(out, "  {:>10} B  FAILED: {error}", p.bytes);
                }
            }
        }
    }
    out
}

/// Summary markdown table: one row per library.
pub fn summary_table(sigs: &[Signature]) -> String {
    let mut out = String::new();
    out.push_str("| library | latency (us) | max throughput (Mbps) | at 8MB (Mbps) |\n");
    out.push_str("|---|---:|---:|---:|\n");
    for sig in sigs {
        let flag = if sig.is_partial() { " (partial)" } else { "" };
        let _ = writeln!(
            out,
            "| {}{flag} | {:.1} | {:.0} | {:.0} |",
            sig.name,
            sig.latency_us,
            sig.max_mbps,
            sig.final_mbps()
        );
    }
    out
}

/// An ASCII throughput-vs-size chart in the style of the paper's figures:
/// log-scaled x (message size), linear y (Mbps), one letter per curve.
pub fn ascii_figure(title: &str, sigs: &[Signature], width: usize, height: usize) -> String {
    assert!(width >= 30 && height >= 8, "chart too small to read");
    let max_y = sigs
        .iter()
        .map(|s| s.max_mbps)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let (min_x, max_x) = sigs
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.bytes))
        .fold((u64::MAX, 1u64), |(lo, hi), b| (lo.min(b), hi.max(b)));
    let min_lx = (min_x.max(1) as f64).ln();
    let max_lx = (max_x.max(2) as f64).ln();

    let mut grid = vec![vec![b' '; width]; height];
    let marks: &[u8] = b"TMLPVGCI*#@%";
    for (si, sig) in sigs.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for p in sig.measured_points() {
            let fx = ((p.bytes.max(1) as f64).ln() - min_lx) / (max_lx - min_lx).max(1e-9);
            let fy = p.mbps / max_y;
            let x = ((fx * (width - 1) as f64).round() as usize).min(width - 1);
            let y = height - 1 - ((fy * (height - 1) as f64).round() as usize).min(height - 1);
            grid[y][x] = mark;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>7.0} Mbps", max_y);
    for row in &grid {
        let _ = writeln!(out, "  |{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "   {}B{}{}B (log scale)",
        min_x,
        " ".repeat(width.saturating_sub(12)),
        max_x
    );
    for (si, sig) in sigs.iter().enumerate() {
        let _ = writeln!(
            out,
            "   {} = {} (lat {:.0} us, max {:.0} Mbps)",
            marks[si % marks.len()] as char,
            sig.name,
            sig.latency_us,
            sig.max_mbps
        );
    }
    out
}

/// An SVG rendition of a paper figure: log-x message size, linear-y Mbps,
/// one colored polyline per library, with a legend — the shape of the
/// paper's figures 1–5, regenerable into `results/`.
pub fn svg_figure(title: &str, sigs: &[Signature], width: u32, height: u32) -> String {
    const COLORS: [&str; 10] = [
        "#000000", "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2",
        "#7f7f7f", "#17becf",
    ];
    let (ml, mr, mt, mb) = (64.0, 16.0, 34.0, 46.0);
    let pw = f64::from(width) - ml - mr;
    let ph = f64::from(height) - mt - mb;
    let max_y = sigs.iter().map(|s| s.max_mbps).fold(1.0f64, f64::max) * 1.05;
    let (min_x, max_x) = sigs
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.bytes))
        .fold((u64::MAX, 2u64), |(lo, hi), b| {
            (lo.min(b.max(1)), hi.max(b))
        });
    let (lx0, lx1) = ((min_x as f64).ln(), (max_x as f64).ln());
    let x = |bytes: u64| ml + ((bytes.max(1) as f64).ln() - lx0) / (lx1 - lx0).max(1e-9) * pw;
    let y = |mbps: f64| mt + (1.0 - mbps / max_y) * ph;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{width}" height="{height}" fill="white"/><text x="{}" y="18" text-anchor="middle" font-size="13">{title}</text>"#,
        f64::from(width) / 2.0
    );
    // Axes and gridlines.
    for i in 0..=5 {
        let v = max_y * f64::from(i) / 5.0;
        let gy = y(v);
        let _ = write!(
            out,
            r##"<line x1="{ml}" y1="{gy:.1}" x2="{:.1}" y2="{gy:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" text-anchor="end">{v:.0}</text>"##,
            ml + pw,
            ml - 4.0,
            gy + 4.0
        );
    }
    let mut bytes = min_x.max(1);
    while bytes <= max_x {
        let gx = x(bytes);
        let label = if bytes >= 1 << 20 {
            format!("{}M", bytes >> 20)
        } else if bytes >= 1024 {
            format!("{}k", bytes >> 10)
        } else {
            format!("{bytes}")
        };
        let _ = write!(
            out,
            r##"<line x1="{gx:.1}" y1="{mt}" x2="{gx:.1}" y2="{:.1}" stroke="#eee"/><text x="{gx:.1}" y="{:.1}" text-anchor="middle">{label}</text>"##,
            mt + ph,
            mt + ph + 14.0
        );
        bytes = bytes.saturating_mul(16);
    }
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">message size (bytes)</text><text x="14" y="{:.1}" transform="rotate(-90 14 {:.1})" text-anchor="middle">throughput (Mbps)</text>"#,
        ml + pw / 2.0,
        mt + ph + 32.0,
        mt + ph / 2.0,
        mt + ph / 2.0
    );
    // Curves + legend.
    for (i, sig) in sigs.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<String> = sig
            .measured_points()
            .map(|p| format!("{:.1},{:.1}", x(p.bytes), y(p.mbps)))
            .collect();
        let _ = write!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.6"/>"#,
            pts.join(" ")
        );
        let ly = mt + 6.0 + 14.0 * i as f64;
        let _ = write!(
            out,
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{:.1}" y="{:.1}">{}</text>"#,
            ml + 8.0,
            ml + 28.0,
            ml + 32.0,
            ly + 4.0,
            sig.name
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Point;

    fn fake_sig(name: &str, mbps: f64) -> Signature {
        let points = (0..10)
            .map(|i| {
                let bytes = 1u64 << (2 * i);
                Point {
                    bytes,
                    seconds: bytes as f64 * 8.0 / (mbps * 1e6),
                    mbps: mbps * (i as f64 + 1.0) / 10.0,
                    jitter: 0.0,
                    status: PointStatus::Ok,
                }
            })
            .collect();
        Signature {
            name: name.into(),
            points,
            latency_us: 42.0,
            max_mbps: mbps,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[fake_sig("a", 100.0), fake_sig("b", 200.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "library,bytes,seconds,mbps");
        assert_eq!(lines.len(), 1 + 20);
        assert!(lines[1].starts_with("a,1,"));
    }

    #[test]
    fn plotfile_is_three_columns() {
        let pf = to_plotfile(&fake_sig("x", 500.0));
        let data_lines: Vec<&str> = pf.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data_lines.len(), 10);
        assert_eq!(data_lines[0].split_whitespace().count(), 3);
    }

    #[test]
    fn summary_table_one_row_per_library() {
        let t = summary_table(&[fake_sig("a", 100.0), fake_sig("b", 200.0)]);
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("| a |"));
        assert!(t.contains("42.0"));
    }

    #[test]
    fn ascii_figure_renders_all_curves() {
        let fig = ascii_figure(
            "Figure 1",
            &[fake_sig("a", 100.0), fake_sig("b", 50.0)],
            60,
            12,
        );
        assert!(fig.contains("Figure 1"));
        assert!(fig.contains('T'), "first curve mark present");
        assert!(fig.contains('M'), "second curve mark present");
        assert!(fig.contains("= a"));
    }

    #[test]
    #[should_panic]
    fn ascii_figure_rejects_tiny_canvas() {
        let _ = ascii_figure("t", &[fake_sig("a", 1.0)], 10, 2);
    }

    #[test]
    fn partial_signature_annotated_not_plotted() {
        let mut sig = fake_sig("lossy", 100.0);
        sig.points[3].status = PointStatus::Degraded { retries: 2 };
        sig.points[7].status = PointStatus::Failed {
            error: "read timed out".into(),
        };
        sig.points[7].seconds = 0.0;
        sig.points[7].mbps = 0.0;
        let failed_bytes = sig.points[7].bytes;

        assert!(sig.is_partial());
        let csv = to_csv(&[sig.clone()]);
        assert_eq!(csv.lines().count(), 1 + 9, "failed row omitted");
        assert!(!csv.contains(&format!("lossy,{failed_bytes},")));

        let pf = to_plotfile(&sig);
        assert!(pf.contains("FAILED: read timed out"));

        let table = summary_table(&[sig.clone()]);
        assert!(table.contains("lossy (partial)"));

        let report = fault_report(&[sig]);
        assert!(report.contains("1 degraded, 1 failed of 10 points"));
        assert!(report.contains("degraded (2 retries)"));
        assert!(report.contains("FAILED: read timed out"));

        // A clean sweep needs no annotation at all.
        assert_eq!(fault_report(&[fake_sig("clean", 10.0)]), "");
    }

    #[test]
    fn svg_figure_is_wellformed_with_all_curves() {
        let svg = svg_figure(
            "Fig X",
            &[fake_sig("a", 100.0), fake_sig("b", 50.0)],
            640,
            420,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Fig X"));
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        // Balanced tags (crude well-formedness).
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }
}
