//! The NetPIPE message-size schedule.
//!
//! §2 of the paper: "bouncing messages of increasing size between two
//! processors. Message sizes are chosen at regular intervals, and also
//! with slight perturbations, to provide a complete test of the system."
//!
//! Like the original NetPIPE, the schedule walks powers of two and tests
//! each target at `n - delta`, `n`, `n + delta` so that protocol
//! discontinuities (MSS boundaries, socket-buffer sizes, rendezvous
//! thresholds) cannot hide between sample points.

/// Schedule parameters.
#[derive(Debug, Clone)]
pub struct ScheduleOptions {
    /// Smallest message tested, bytes.
    pub start: u64,
    /// Largest message tested, bytes.
    pub max: u64,
    /// Perturbation offset around each target (NetPIPE default 3).
    pub perturbation: u64,
    /// Extra mid-points between powers of two (0 = classic NetPIPE;
    /// 1 adds the 1.5x point, improving curve resolution).
    pub midpoints: u32,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            start: 1,
            max: 8 * 1024 * 1024,
            perturbation: 3,
            midpoints: 1,
        }
    }
}

impl ScheduleOptions {
    /// A fast schedule for tests: fewer points, smaller maximum.
    pub fn quick(max: u64) -> ScheduleOptions {
        ScheduleOptions {
            start: 1,
            max,
            perturbation: 3,
            midpoints: 0,
        }
    }
}

/// Generate the ordered, deduplicated list of message sizes.
pub fn sizes(opts: &ScheduleOptions) -> Vec<u64> {
    assert!(opts.start >= 1, "messages start at one byte");
    assert!(opts.max >= opts.start, "max below start");
    let mut out = Vec::new();
    // The small fixed sizes NetPIPE always probes (latency region).
    for s in [1u64, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64] {
        if s >= opts.start && s <= opts.max {
            out.push(s);
        }
    }
    // Powers of two with perturbations, plus optional midpoints.
    let mut target = 128u64;
    while target <= opts.max {
        push_perturbed(&mut out, target, opts);
        if opts.midpoints >= 1 {
            let mid = target + target / 2;
            if mid <= opts.max {
                push_perturbed(&mut out, mid, opts);
            }
        }
        target = target.saturating_mul(2);
    }
    out.sort_unstable();
    out.dedup();
    out.retain(|&s| s >= opts.start && s <= opts.max);
    out
}

fn push_perturbed(out: &mut Vec<u64>, target: u64, opts: &ScheduleOptions) {
    let p = opts.perturbation;
    if p > 0 && target > p {
        out.push(target - p);
    }
    out.push(target);
    if p > 0 && target + p <= opts.max {
        out.push(target + p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_spans_one_byte_to_8mb() {
        let s = sizes(&ScheduleOptions::default());
        assert_eq!(*s.first().unwrap(), 1);
        // The +3 perturbation above the maximum is clipped.
        assert_eq!(*s.last().unwrap(), 8 * 1024 * 1024);
        assert!(s.len() > 80, "default schedule has {} points", s.len());
    }

    #[test]
    fn sorted_and_unique() {
        let s = sizes(&ScheduleOptions::default());
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(s, sorted);
    }

    #[test]
    fn perturbations_bracket_powers_of_two() {
        let s = sizes(&ScheduleOptions::default());
        for target in [128u64, 1024, 65536, 1 << 20] {
            assert!(s.contains(&(target - 3)), "{target}-3 missing");
            assert!(s.contains(&target), "{target} missing");
            assert!(s.contains(&(target + 3)), "{target}+3 missing");
        }
    }

    #[test]
    fn quick_schedule_is_small() {
        let s = sizes(&ScheduleOptions::quick(65536));
        assert!(s.len() < 45, "quick schedule has {} points", s.len());
        assert!(*s.last().unwrap() <= 65536 + 3);
    }

    #[test]
    fn zero_perturbation_hits_exact_targets_only() {
        let opts = ScheduleOptions {
            perturbation: 0,
            midpoints: 0,
            ..ScheduleOptions::default()
        };
        let s = sizes(&opts);
        assert!(s.contains(&1024));
        assert!(!s.contains(&1021));
        assert!(!s.contains(&1027));
    }

    #[test]
    fn respects_start_bound() {
        let opts = ScheduleOptions {
            start: 1000,
            max: 10_000,
            ..ScheduleOptions::default()
        };
        let s = sizes(&opts);
        assert!(s.iter().all(|&x| (1000..=10_000).contains(&x)));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_bounds() {
        let _ = sizes(&ScheduleOptions {
            start: 100,
            max: 10,
            ..ScheduleOptions::default()
        });
    }
}
