//! The measurement loop: run a [`Driver`] over a size schedule and build
//! its latency/throughput signature.
//!
//! With a [`SweepPolicy`] installed ([`RunOptions::resilience`]) the
//! runner degrades gracefully instead of aborting: a failing point is
//! retried (with [`Driver::recover`] between attempts), then marked
//! [`PointStatus::Degraded`] or [`PointStatus::Failed`], and the sweep
//! carries on — producing a partial, annotated [`Signature`] even when
//! the peer dies halfway through.

use faultlab::SweepPolicy;
use simcore::units::{secs_to_us, throughput_mbps};
use simcore::OnlineStats;

use crate::driver::{Driver, DriverError};
use crate::schedule::{sizes, ScheduleOptions};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Message-size schedule.
    pub schedule: ScheduleOptions,
    /// Trials per point for nondeterministic drivers (NetPIPE repeats
    /// each test "to provide an accurate timing"); the minimum is kept,
    /// the spread recorded. Deterministic (simulated) drivers run once.
    pub trials: u32,
    /// Warm-up round trips before the timed trials (real drivers only).
    pub warmup: u32,
    /// Sizes at or below this bound define the reported latency
    /// (the paper: "round trip time divided by two for messages smaller
    /// than 64 bytes").
    pub latency_bound: u64,
    /// Graceful degradation: per-point retry budget and
    /// continue-on-failure. `None` (the default) keeps the historical
    /// behavior — the first error aborts the sweep.
    pub resilience: Option<SweepPolicy>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            schedule: ScheduleOptions::default(),
            trials: 7,
            warmup: 2,
            latency_bound: 64,
            resilience: None,
        }
    }
}

impl RunOptions {
    /// Fast settings for unit tests.
    pub fn quick(max: u64) -> RunOptions {
        RunOptions {
            schedule: ScheduleOptions::quick(max),
            trials: 3,
            warmup: 1,
            ..Default::default()
        }
    }

    /// Enable graceful degradation under `policy`.
    pub fn with_resilience(mut self, policy: SweepPolicy) -> RunOptions {
        self.resilience = Some(policy);
        self
    }
}

/// Health of one measured point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointStatus {
    /// Measured cleanly.
    Ok,
    /// Measured, but only after `retries` recovery attempt(s).
    Degraded {
        /// Recovery attempts consumed before the point succeeded.
        retries: u32,
    },
    /// Never measured: every attempt failed. `seconds`/`mbps` are zero
    /// and reports annotate the gap instead of plotting it.
    Failed {
        /// Display form of the last error.
        error: String,
    },
}

impl PointStatus {
    /// Did this point produce a usable timing?
    pub fn is_measured(&self) -> bool {
        !matches!(self, PointStatus::Failed { .. })
    }
}

/// One measured point of a signature.
#[derive(Debug, Clone)]
pub struct Point {
    /// Message size, bytes.
    pub bytes: u64,
    /// One-way transfer time, seconds (best trial).
    pub seconds: f64,
    /// Throughput, decimal megabits per second.
    pub mbps: f64,
    /// Relative spread across trials (max/min − 1); 0 for deterministic
    /// drivers.
    pub jitter: f64,
    /// Measurement health (always [`PointStatus::Ok`] without a
    /// resilience policy — errors abort the sweep instead).
    pub status: PointStatus,
}

/// A full NetPIPE signature for one driver.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Driver display name.
    pub name: String,
    /// Measured points, in increasing size.
    pub points: Vec<Point>,
    /// Small-message one-way latency, microseconds.
    pub latency_us: f64,
    /// Peak throughput over the curve, Mbps.
    pub max_mbps: f64,
}

impl Signature {
    /// Points that produced a usable timing (everything but `Failed`).
    pub fn measured_points(&self) -> impl Iterator<Item = &Point> {
        self.points.iter().filter(|p| p.status.is_measured())
    }

    /// Number of points that needed retries to complete.
    pub fn degraded_count(&self) -> usize {
        self.points
            .iter()
            .filter(|p| matches!(p.status, PointStatus::Degraded { .. }))
            .count()
    }

    /// Number of points that never completed.
    pub fn failed_count(&self) -> usize {
        self.points
            .iter()
            .filter(|p| matches!(p.status, PointStatus::Failed { .. }))
            .count()
    }

    /// True when any point degraded or failed — the signature is an
    /// annotated partial result, not a clean curve.
    pub fn is_partial(&self) -> bool {
        self.degraded_count() + self.failed_count() > 0
    }

    /// Throughput at the largest measured size, Mbps.
    pub fn final_mbps(&self) -> f64 {
        self.measured_points().last().map_or(0.0, |p| p.mbps)
    }

    /// Linear interpolation of throughput at `bytes` (Mbps), over the
    /// measured points (failed points leave a gap, not a zero).
    pub fn mbps_at(&self, bytes: u64) -> f64 {
        let ps: Vec<&Point> = self.measured_points().collect();
        if ps.is_empty() {
            return 0.0;
        }
        if bytes <= ps[0].bytes {
            return ps[0].mbps;
        }
        for w in ps.windows(2) {
            if bytes <= w[1].bytes {
                let f = (bytes - w[0].bytes) as f64 / (w[1].bytes - w[0].bytes) as f64;
                return w[0].mbps + f * (w[1].mbps - w[0].mbps);
            }
        }
        ps.last().map_or(0.0, |p| p.mbps)
    }

    /// The "dip" around a protocol threshold: throughput just above the
    /// threshold relative to just below (1.0 = no dip; 0.7 = 30 % dip).
    pub fn dip_ratio(&self, threshold: u64) -> f64 {
        let below = self.mbps_at(threshold.saturating_sub(threshold / 16).max(1));
        let above = self.mbps_at(threshold + threshold / 16);
        if below <= 0.0 {
            return 1.0;
        }
        above / below
    }
}

/// Measure one point under the (optional) resilience policy: retry a
/// failing measurement with [`Driver::recover`] in between, then either
/// mark it failed (sweep continues) or propagate the error (no policy /
/// `continue_on_failure` off).
fn resilient_point(
    driver: &mut dyn Driver,
    resilience: Option<&SweepPolicy>,
    measure: &mut dyn FnMut(&mut dyn Driver) -> Result<OnlineStats, DriverError>,
) -> Result<(Option<OnlineStats>, PointStatus), DriverError> {
    let Some(policy) = resilience else {
        return Ok((Some(measure(driver)?), PointStatus::Ok));
    };
    let mut retries = 0u32;
    loop {
        match measure(driver) {
            Ok(stats) => {
                let status = if retries == 0 {
                    PointStatus::Ok
                } else {
                    PointStatus::Degraded { retries }
                };
                return Ok((Some(stats), status));
            }
            Err(e) => {
                if retries < policy.point_retries {
                    retries += 1;
                    // Heal the transport if possible; a failed recovery
                    // just burns the retry (the next measure errors
                    // immediately and we land in the arms below).
                    let _ = driver.recover();
                } else if policy.continue_on_failure {
                    return Ok((
                        None,
                        PointStatus::Failed {
                            error: e.to_string(),
                        },
                    ));
                } else {
                    return Err(e);
                }
            }
        }
    }
}

/// Fold one resolved point into the signature accumulators.
fn push_point(
    points: &mut Vec<Point>,
    lat: &mut OnlineStats,
    latency_bound: u64,
    bytes: u64,
    resolved: (Option<OnlineStats>, PointStatus),
) {
    let (stats, status) = resolved;
    match stats {
        Some(stats) => {
            let best = stats.min();
            let jitter = if stats.min() > 0.0 {
                stats.max() / stats.min() - 1.0
            } else {
                0.0
            };
            if bytes <= latency_bound {
                lat.push(best);
            }
            points.push(Point {
                bytes,
                seconds: best,
                mbps: throughput_mbps(bytes, best),
                jitter,
                status,
            });
        }
        None => points.push(Point {
            bytes,
            seconds: 0.0,
            mbps: 0.0,
            jitter: 0.0,
            status,
        }),
    }
}

/// Run `driver` over the schedule and build its signature.
pub fn run(driver: &mut dyn Driver, opts: &RunOptions) -> Result<Signature, DriverError> {
    let deterministic = driver.is_deterministic();
    let trials = if deterministic { 1 } else { opts.trials.max(1) };
    let warmup = if deterministic { 0 } else { opts.warmup };

    for _ in 0..warmup {
        match driver.roundtrip(64) {
            Ok(_) => {}
            // Under a resilience policy a sick warm-up is survivable;
            // give the transport one healing attempt and move on.
            Err(_) if opts.resilience.is_some() => {
                let _ = driver.recover();
            }
            Err(e) => return Err(e),
        }
    }

    let mut points = Vec::new();
    let mut lat = OnlineStats::new();
    for bytes in sizes(&opts.schedule) {
        let resolved = resilient_point(driver, opts.resilience.as_ref(), &mut |d| {
            let mut stats = OnlineStats::new();
            for _ in 0..trials {
                let rt = d.roundtrip(bytes)?;
                stats.push(rt / 2.0);
            }
            Ok(stats)
        })?;
        push_point(&mut points, &mut lat, opts.latency_bound, bytes, resolved);
    }
    let max_mbps = points.iter().map(|p| p.mbps).fold(0.0, f64::max);
    Ok(Signature {
        name: driver.name(),
        points,
        latency_us: secs_to_us(lat.mean()),
        max_mbps,
    })
}

/// NetPIPE's `-s` streaming mode: instead of ping-pong, `burst_count`
/// messages flow one way per point; throughput amortizes per-message
/// latency and reveals the sustainable injection rate.
pub fn run_streaming(
    driver: &mut dyn Driver,
    opts: &RunOptions,
    burst_count: u32,
) -> Result<Signature, DriverError> {
    assert!(burst_count > 0);
    let deterministic = driver.is_deterministic();
    let trials = if deterministic { 1 } else { opts.trials.max(1) };
    let mut points = Vec::new();
    let mut lat = OnlineStats::new();
    for bytes in sizes(&opts.schedule) {
        let resolved = resilient_point(driver, opts.resilience.as_ref(), &mut |d| {
            let mut stats = OnlineStats::new();
            for _ in 0..trials {
                let total = d.burst(bytes, burst_count)?;
                stats.push(total / f64::from(burst_count));
            }
            Ok(stats)
        })?;
        push_point(&mut points, &mut lat, opts.latency_bound, bytes, resolved);
    }
    let max_mbps = points.iter().map(|p| p.mbps).fold(0.0, f64::max);
    Ok(Signature {
        name: format!("{} [stream x{burst_count}]", driver.name()),
        points,
        latency_us: secs_to_us(lat.mean()),
        max_mbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake: fixed latency plus rate-limited payload.
    struct FakeDriver {
        lat_s: f64,
        rate_bps: f64,
    }

    impl Driver for FakeDriver {
        fn name(&self) -> String {
            "fake".into()
        }
        fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
            Ok(2.0 * (self.lat_s + bytes as f64 / self.rate_bps))
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    #[test]
    fn signature_reports_latency_and_peak() {
        let mut d = FakeDriver {
            lat_s: 100e-6,
            rate_bps: 125e6 / 2.0,
        };
        let sig = run(&mut d, &RunOptions::quick(1 << 20)).unwrap();
        assert!((sig.latency_us - 100.0).abs() < 2.0, "{}", sig.latency_us);
        // Peak approaches the 500 Mbps (62.5 MB/s) asymptote.
        assert!(sig.max_mbps > 400.0, "{}", sig.max_mbps);
        assert!(sig.max_mbps < 500.0);
        // Monotone for this model.
        for w in sig.points.windows(2) {
            assert!(w[1].mbps >= w[0].mbps);
        }
    }

    #[test]
    fn interpolation_brackets_measured_points() {
        let mut d = FakeDriver {
            lat_s: 50e-6,
            rate_bps: 1e8,
        };
        let sig = run(&mut d, &RunOptions::quick(1 << 16)).unwrap();
        let exact = sig.points[5].mbps;
        assert_eq!(sig.mbps_at(sig.points[5].bytes), exact);
        let mid = sig.mbps_at((sig.points[5].bytes + sig.points[6].bytes) / 2);
        assert!(mid >= exact.min(sig.points[6].mbps));
        assert!(mid <= exact.max(sig.points[6].mbps));
    }

    #[test]
    fn deterministic_driver_has_zero_jitter() {
        let mut d = FakeDriver {
            lat_s: 10e-6,
            rate_bps: 1e8,
        };
        let sig = run(&mut d, &RunOptions::quick(4096)).unwrap();
        assert!(sig.points.iter().all(|p| p.jitter == 0.0));
    }

    #[test]
    fn streaming_signature_amortizes_latency() {
        // With the default burst() (half round trips), streaming equals
        // ping-pong; a pipelining driver must beat it. Use a fake that
        // models a pipeline: burst costs one latency plus n transfers.
        struct Pipelined;
        impl Driver for Pipelined {
            fn name(&self) -> String {
                "pipe".into()
            }
            fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
                Ok(2.0 * (100e-6 + bytes as f64 / 1e8))
            }
            fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
                Ok(100e-6 + f64::from(count) * bytes as f64 / 1e8)
            }
            fn is_deterministic(&self) -> bool {
                true
            }
        }
        let opts = RunOptions::quick(1 << 16);
        let pp = run(&mut Pipelined, &opts).unwrap();
        let st = run_streaming(&mut Pipelined, &opts, 16).unwrap();
        assert!(st.name.contains("stream"));
        // Small messages: streaming >> ping-pong.
        assert!(st.points[0].mbps > 5.0 * pp.points[0].mbps);
        // Large messages converge to the same asymptote.
        let ratio = st.final_mbps() / pp.final_mbps();
        assert!((0.9..1.6).contains(&ratio), "{ratio}");
    }

    /// A driver whose transport breaks at specific sizes: sizes in
    /// `flaky` error until `recover()` heals the link; sizes in `poison`
    /// error on every attempt, healed or not.
    struct BreakableDriver {
        flaky: Vec<u64>,
        poison: Vec<u64>,
        healthy: bool,
        recoveries: u32,
    }

    impl BreakableDriver {
        fn new(flaky: &[u64], poison: &[u64]) -> Self {
            BreakableDriver {
                flaky: flaky.to_vec(),
                poison: poison.to_vec(),
                healthy: true,
                recoveries: 0,
            }
        }
    }

    impl Driver for BreakableDriver {
        fn name(&self) -> String {
            "breakable".into()
        }
        fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
            if self.poison.contains(&bytes) {
                return Err(DriverError::Protocol("poisoned size".into()));
            }
            if let Some(i) = self.flaky.iter().position(|&b| b == bytes) {
                // First touch of a flaky size drops the connection; a
                // recovered link does not trip on it again.
                self.flaky.remove(i);
                self.healthy = false;
            }
            if !self.healthy {
                return Err(DriverError::Protocol("link down".into()));
            }
            Ok(2.0 * (10e-6 + bytes as f64 / 1e8))
        }
        fn recover(&mut self) -> Result<(), DriverError> {
            self.healthy = true;
            self.recoveries += 1;
            Ok(())
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    #[test]
    fn resilience_degrades_and_continues_past_failures() {
        let opts = RunOptions::quick(1 << 14);
        let all: Vec<u64> = sizes(&opts.schedule);
        let flaky = all[2];
        let poison = all[5];
        let mut d = BreakableDriver::new(&[flaky], &[poison]);
        let sig = run(
            &mut d,
            &opts.clone().with_resilience(SweepPolicy::default()),
        )
        .unwrap();

        assert!(sig.is_partial());
        assert_eq!(sig.degraded_count(), 1);
        assert_eq!(sig.failed_count(), 1);
        assert!(d.recoveries >= 1);

        let deg = sig.points.iter().find(|p| p.bytes == flaky).unwrap();
        assert!(matches!(deg.status, PointStatus::Degraded { retries } if retries >= 1));
        assert!(deg.mbps > 0.0, "degraded point still measured");

        let dead = sig.points.iter().find(|p| p.bytes == poison).unwrap();
        assert!(matches!(&dead.status, PointStatus::Failed { error } if error.contains("poison")));
        assert_eq!(dead.mbps, 0.0);

        // Failed points are gaps: interpolation and the final rate skip
        // them instead of averaging in zeros.
        assert!(sig.mbps_at(poison) > 0.0);
        assert!(sig.final_mbps() > 0.0);
        assert_eq!(sig.measured_points().count(), all.len() - 1);
    }

    #[test]
    fn without_resilience_first_error_aborts() {
        let opts = RunOptions::quick(1 << 14);
        let all: Vec<u64> = sizes(&opts.schedule);
        let mut d = BreakableDriver::new(&[all[2]], &[]);
        let err = run(&mut d, &opts).unwrap_err();
        assert!(err.to_string().contains("link down"), "{err}");
        assert_eq!(d.recoveries, 0, "no recovery without a policy");
    }

    #[test]
    fn streaming_respects_resilience_policy() {
        let opts = RunOptions::quick(1 << 14);
        let all: Vec<u64> = sizes(&opts.schedule);
        let mut d = BreakableDriver::new(&[], &[all[1]]);
        let sig = run_streaming(
            &mut d,
            &opts.clone().with_resilience(SweepPolicy::default()),
            4,
        )
        .unwrap();
        assert_eq!(sig.failed_count(), 1);
        assert!(sig.is_partial());
        assert!(sig.final_mbps() > 0.0);
    }

    #[test]
    fn dip_ratio_flags_discontinuities() {
        /// Fake with a 30% throughput dip above 64 kB.
        struct Dippy;
        impl Driver for Dippy {
            fn name(&self) -> String {
                "dippy".into()
            }
            fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
                let rate = if bytes > 65536 { 0.7e8 } else { 1e8 };
                Ok(2.0 * (1e-6 + bytes as f64 / rate))
            }
            fn is_deterministic(&self) -> bool {
                true
            }
        }
        let sig = run(&mut Dippy, &RunOptions::quick(1 << 20)).unwrap();
        let dip = sig.dip_ratio(65536);
        assert!((0.6..0.85).contains(&dip), "dip {dip}");
        let flat = sig.dip_ratio(32768);
        assert!(flat > 0.9, "no dip expected at 32k: {flat}");
    }
}
