//! The measurement loop: run a [`Driver`] over a size schedule and build
//! its latency/throughput signature.

use simcore::units::throughput_mbps;
use simcore::OnlineStats;

use crate::driver::{Driver, DriverError};
use crate::schedule::{sizes, ScheduleOptions};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Message-size schedule.
    pub schedule: ScheduleOptions,
    /// Trials per point for nondeterministic drivers (NetPIPE repeats
    /// each test "to provide an accurate timing"); the minimum is kept,
    /// the spread recorded. Deterministic (simulated) drivers run once.
    pub trials: u32,
    /// Warm-up round trips before the timed trials (real drivers only).
    pub warmup: u32,
    /// Sizes at or below this bound define the reported latency
    /// (the paper: "round trip time divided by two for messages smaller
    /// than 64 bytes").
    pub latency_bound: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            schedule: ScheduleOptions::default(),
            trials: 7,
            warmup: 2,
            latency_bound: 64,
        }
    }
}

impl RunOptions {
    /// Fast settings for unit tests.
    pub fn quick(max: u64) -> RunOptions {
        RunOptions {
            schedule: ScheduleOptions::quick(max),
            trials: 3,
            warmup: 1,
            ..Default::default()
        }
    }
}

/// One measured point of a signature.
#[derive(Debug, Clone)]
pub struct Point {
    /// Message size, bytes.
    pub bytes: u64,
    /// One-way transfer time, seconds (best trial).
    pub seconds: f64,
    /// Throughput, decimal megabits per second.
    pub mbps: f64,
    /// Relative spread across trials (max/min − 1); 0 for deterministic
    /// drivers.
    pub jitter: f64,
}

/// A full NetPIPE signature for one driver.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Driver display name.
    pub name: String,
    /// Measured points, in increasing size.
    pub points: Vec<Point>,
    /// Small-message one-way latency, microseconds.
    pub latency_us: f64,
    /// Peak throughput over the curve, Mbps.
    pub max_mbps: f64,
}

impl Signature {
    /// Throughput at the largest measured size, Mbps.
    pub fn final_mbps(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.mbps)
    }

    /// Linear interpolation of throughput at `bytes` (Mbps).
    pub fn mbps_at(&self, bytes: u64) -> f64 {
        let ps = &self.points;
        if ps.is_empty() {
            return 0.0;
        }
        if bytes <= ps[0].bytes {
            return ps[0].mbps;
        }
        for w in ps.windows(2) {
            if bytes <= w[1].bytes {
                let f = (bytes - w[0].bytes) as f64 / (w[1].bytes - w[0].bytes) as f64;
                return w[0].mbps + f * (w[1].mbps - w[0].mbps);
            }
        }
        ps.last().map_or(0.0, |p| p.mbps)
    }

    /// The "dip" around a protocol threshold: throughput just above the
    /// threshold relative to just below (1.0 = no dip; 0.7 = 30 % dip).
    pub fn dip_ratio(&self, threshold: u64) -> f64 {
        let below = self.mbps_at(threshold.saturating_sub(threshold / 16).max(1));
        let above = self.mbps_at(threshold + threshold / 16);
        if below <= 0.0 {
            return 1.0;
        }
        above / below
    }
}

/// Run `driver` over the schedule and build its signature.
pub fn run(driver: &mut dyn Driver, opts: &RunOptions) -> Result<Signature, DriverError> {
    let deterministic = driver.is_deterministic();
    let trials = if deterministic { 1 } else { opts.trials.max(1) };
    let warmup = if deterministic { 0 } else { opts.warmup };

    for _ in 0..warmup {
        driver.roundtrip(64)?;
    }

    let mut points = Vec::new();
    let mut lat = OnlineStats::new();
    for bytes in sizes(&opts.schedule) {
        let mut stats = OnlineStats::new();
        for _ in 0..trials {
            let rt = driver.roundtrip(bytes)?;
            stats.push(rt / 2.0);
        }
        let best = stats.min();
        let jitter = if stats.min() > 0.0 {
            stats.max() / stats.min() - 1.0
        } else {
            0.0
        };
        if bytes <= opts.latency_bound {
            lat.push(best);
        }
        points.push(Point {
            bytes,
            seconds: best,
            mbps: throughput_mbps(bytes, best),
            jitter,
        });
    }
    let max_mbps = points.iter().map(|p| p.mbps).fold(0.0, f64::max);
    Ok(Signature {
        name: driver.name(),
        points,
        latency_us: lat.mean() * 1e6,
        max_mbps,
    })
}

/// NetPIPE's `-s` streaming mode: instead of ping-pong, `burst_count`
/// messages flow one way per point; throughput amortizes per-message
/// latency and reveals the sustainable injection rate.
pub fn run_streaming(
    driver: &mut dyn Driver,
    opts: &RunOptions,
    burst_count: u32,
) -> Result<Signature, DriverError> {
    assert!(burst_count > 0);
    let deterministic = driver.is_deterministic();
    let trials = if deterministic { 1 } else { opts.trials.max(1) };
    let mut points = Vec::new();
    let mut lat = OnlineStats::new();
    for bytes in sizes(&opts.schedule) {
        let mut stats = OnlineStats::new();
        for _ in 0..trials {
            let total = driver.burst(bytes, burst_count)?;
            stats.push(total / f64::from(burst_count));
        }
        let per_msg = stats.min();
        if bytes <= opts.latency_bound {
            lat.push(per_msg);
        }
        let jitter = if stats.min() > 0.0 {
            stats.max() / stats.min() - 1.0
        } else {
            0.0
        };
        points.push(Point {
            bytes,
            seconds: per_msg,
            mbps: throughput_mbps(bytes, per_msg),
            jitter,
        });
    }
    let max_mbps = points.iter().map(|p| p.mbps).fold(0.0, f64::max);
    Ok(Signature {
        name: format!("{} [stream x{burst_count}]", driver.name()),
        points,
        latency_us: lat.mean() * 1e6,
        max_mbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake: fixed latency plus rate-limited payload.
    struct FakeDriver {
        lat_s: f64,
        rate_bps: f64,
    }

    impl Driver for FakeDriver {
        fn name(&self) -> String {
            "fake".into()
        }
        fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
            Ok(2.0 * (self.lat_s + bytes as f64 / self.rate_bps))
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    #[test]
    fn signature_reports_latency_and_peak() {
        let mut d = FakeDriver {
            lat_s: 100e-6,
            rate_bps: 125e6 / 2.0,
        };
        let sig = run(&mut d, &RunOptions::quick(1 << 20)).unwrap();
        assert!((sig.latency_us - 100.0).abs() < 2.0, "{}", sig.latency_us);
        // Peak approaches the 500 Mbps (62.5 MB/s) asymptote.
        assert!(sig.max_mbps > 400.0, "{}", sig.max_mbps);
        assert!(sig.max_mbps < 500.0);
        // Monotone for this model.
        for w in sig.points.windows(2) {
            assert!(w[1].mbps >= w[0].mbps);
        }
    }

    #[test]
    fn interpolation_brackets_measured_points() {
        let mut d = FakeDriver {
            lat_s: 50e-6,
            rate_bps: 1e8,
        };
        let sig = run(&mut d, &RunOptions::quick(1 << 16)).unwrap();
        let exact = sig.points[5].mbps;
        assert_eq!(sig.mbps_at(sig.points[5].bytes), exact);
        let mid = sig.mbps_at((sig.points[5].bytes + sig.points[6].bytes) / 2);
        assert!(mid >= exact.min(sig.points[6].mbps));
        assert!(mid <= exact.max(sig.points[6].mbps));
    }

    #[test]
    fn deterministic_driver_has_zero_jitter() {
        let mut d = FakeDriver {
            lat_s: 10e-6,
            rate_bps: 1e8,
        };
        let sig = run(&mut d, &RunOptions::quick(4096)).unwrap();
        assert!(sig.points.iter().all(|p| p.jitter == 0.0));
    }

    #[test]
    fn streaming_signature_amortizes_latency() {
        // With the default burst() (half round trips), streaming equals
        // ping-pong; a pipelining driver must beat it. Use a fake that
        // models a pipeline: burst costs one latency plus n transfers.
        struct Pipelined;
        impl Driver for Pipelined {
            fn name(&self) -> String {
                "pipe".into()
            }
            fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
                Ok(2.0 * (100e-6 + bytes as f64 / 1e8))
            }
            fn burst(&mut self, bytes: u64, count: u32) -> Result<f64, DriverError> {
                Ok(100e-6 + f64::from(count) * bytes as f64 / 1e8)
            }
            fn is_deterministic(&self) -> bool {
                true
            }
        }
        let opts = RunOptions::quick(1 << 16);
        let pp = run(&mut Pipelined, &opts).unwrap();
        let st = run_streaming(&mut Pipelined, &opts, 16).unwrap();
        assert!(st.name.contains("stream"));
        // Small messages: streaming >> ping-pong.
        assert!(st.points[0].mbps > 5.0 * pp.points[0].mbps);
        // Large messages converge to the same asymptote.
        let ratio = st.final_mbps() / pp.final_mbps();
        assert!((0.9..1.6).contains(&ratio), "{ratio}");
    }

    #[test]
    fn dip_ratio_flags_discontinuities() {
        /// Fake with a 30% throughput dip above 64 kB.
        struct Dippy;
        impl Driver for Dippy {
            fn name(&self) -> String {
                "dippy".into()
            }
            fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
                let rate = if bytes > 65536 { 0.7e8 } else { 1e8 };
                Ok(2.0 * (1e-6 + bytes as f64 / rate))
            }
            fn is_deterministic(&self) -> bool {
                true
            }
        }
        let sig = run(&mut Dippy, &RunOptions::quick(1 << 20)).unwrap();
        let dip = sig.dip_ratio(65536);
        assert!((0.6..0.85).contains(&dip), "dip {dip}");
        let flat = sig.dip_ratio(32768);
        assert!(flat > 0.9, "no dip expected at 32k: {flat}");
    }
}
