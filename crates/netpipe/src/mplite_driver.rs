//! NetPIPE module for the real `mplite` library — the analogue of the
//! paper's MP_Lite measurements, run over genuine loopback sockets.

use std::time::Instant;

use mplite::{Comm, Universe};

use crate::driver::{Driver, DriverError};

/// Tag used for the ping-pong payload.
const PP_TAG: i32 = 1;
/// Tag used to tell the echo rank to exit.
const QUIT_TAG: i32 = 2;

/// NetPIPE over the real `mplite` message-passing library (two in-process
/// ranks over loopback TCP; rank 1 echoes).
pub struct MpliteDriver {
    comm: Option<Comm>,
    echo: Option<std::thread::JoinHandle<()>>,
    buf: Vec<u8>,
}

impl MpliteDriver {
    /// Boot a two-rank job and start the echo rank.
    pub fn new() -> Result<MpliteDriver, DriverError> {
        let mut comms = Universe::local(2)
            .map_err(|e| DriverError::Io(std::io::Error::other(e.to_string())))?;
        let short_job =
            || DriverError::Io(std::io::Error::other("local(2) returned too few ranks"));
        let echo_comm = comms.pop().ok_or_else(short_job)?;
        let comm = comms.pop().ok_or_else(short_job)?;
        let echo = std::thread::Builder::new()
            .name("mplite-echo".into())
            .spawn(move || echo_rank(echo_comm))
            .map_err(DriverError::Io)?;
        Ok(MpliteDriver {
            comm: Some(comm),
            echo: Some(echo),
            buf: Vec::new(),
        })
    }
}

fn echo_rank(comm: Comm) {
    loop {
        match comm.recv(0, mplite::ANY_TAG) {
            Ok((data, st)) if st.tag == PP_TAG => {
                if comm.send(0, PP_TAG, &data).is_err() {
                    return;
                }
            }
            _ => return, // QUIT_TAG or error: job over
        }
    }
}

impl Driver for MpliteDriver {
    fn name(&self) -> String {
        "mplite (real sockets)".to_string()
    }

    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        let comm = self
            .comm
            .as_ref()
            .ok_or_else(|| DriverError::Io(std::io::Error::other("driver already shut down")))?;
        let n = bytes as usize;
        if self.buf.len() < n {
            self.buf = (0..n).map(|i| (i % 247) as u8).collect();
        }
        let start = Instant::now();
        comm.send(1, PP_TAG, &self.buf[..n])
            .map_err(|e| DriverError::Io(std::io::Error::other(e.to_string())))?;
        let (data, _) = comm
            .recv(1, PP_TAG)
            .map_err(|e| DriverError::Io(std::io::Error::other(e.to_string())))?;
        let elapsed = start.elapsed().as_secs_f64();
        if data.len() != n || data[..] != self.buf[..n] {
            return Err(DriverError::Io(std::io::Error::other(
                "mplite echo corrupted",
            )));
        }
        Ok(elapsed)
    }
}

impl Drop for MpliteDriver {
    fn drop(&mut self) {
        if let Some(comm) = self.comm.take() {
            let _ = comm.send(1, QUIT_TAG, b"");
            drop(comm);
        }
        if let Some(h) = self.echo.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, RunOptions};

    #[test]
    fn mplite_roundtrip_works() {
        let mut d = MpliteDriver::new().unwrap();
        for size in [0u64, 1, 100, 10_000, 1_000_000] {
            let t = d.roundtrip(size).unwrap();
            assert!(t > 0.0, "size {size}");
        }
    }

    #[test]
    fn mplite_signature_shape() {
        let mut d = MpliteDriver::new().unwrap();
        let sig = run(&mut d, &RunOptions::quick(128 * 1024)).unwrap();
        assert!(
            sig.latency_us > 1.0 && sig.latency_us < 5000.0,
            "{}",
            sig.latency_us
        );
        assert!(sig.max_mbps > 200.0, "peak {}", sig.max_mbps);
    }
}
