//! # netpipe — a Network Protocol Independent Performance Evaluator in Rust
//!
//! A faithful reimplementation of the NetPIPE methodology the paper is
//! built on (§2): ping-pong tests over an exponential size schedule with
//! perturbation points, repeated trials per point, small-message latency
//! extraction, and the classic throughput-signature output.
//!
//! Three driver families plug into the same runner:
//!
//! * [`SimDriver`] — any modeled library on any simulated 2002 cluster
//!   (this regenerates every figure of the paper);
//! * [`RealTcpDriver`] — genuine kernel TCP over loopback with tunable
//!   socket buffers (NetPIPE's TCP module, alive today);
//! * [`MpliteDriver`] — the real `mplite` message-passing library.
//!
//! ```
//! use netpipe::{run, RunOptions, SimDriver};
//! use hwmodel::presets::pcs_ga620;
//! use mpsim::libs::raw_tcp;
//!
//! let mut driver = SimDriver::new(pcs_ga620(), raw_tcp(512 * 1024));
//! let sig = run(&mut driver, &RunOptions::quick(1 << 20)).unwrap();
//! assert!(sig.latency_us > 50.0 && sig.max_mbps > 300.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod driver;
pub mod mplite_driver;
pub mod real_tcp;
pub mod report;
pub mod runner;
pub mod schedule;

pub use analysis::{analyze, fit_hockney, size_reaching, SignatureAnalysis};
pub use driver::{Driver, DriverError, NetpipeError, SimDriver};
pub use mplite_driver::MpliteDriver;
pub use real_tcp::{ChaosOptions, RealTcpDriver, RealTcpOptions};
pub use report::{ascii_figure, fault_report, summary_table, svg_figure, to_csv, to_plotfile};
pub use runner::{run, run_streaming, Point, PointStatus, RunOptions, Signature};
pub use schedule::{sizes, ScheduleOptions};
