//! Signature analysis: the derived metrics the original NetPIPE paper
//! (Snell, Mikler & Gustafson) reads off a throughput signature.
//!
//! * **saturation point** — the message size where the curve reaches a
//!   given fraction of its peak (the knee of the signature);
//! * **half-performance length n½** — the classic Hockney metric: the
//!   message size achieving half the asymptotic rate;
//! * **latency/bandwidth model fit** — least-squares fit of
//!   `t(n) = t0 + n/r∞` over the large-message tail, giving the effective
//!   start-up time `t0` and asymptotic rate `r∞`.

use crate::runner::Signature;

/// Derived metrics for one signature.
#[derive(Debug, Clone)]
pub struct SignatureAnalysis {
    /// Driver name.
    pub name: String,
    /// Half-performance length n½, bytes (first size reaching half the
    /// peak rate).
    pub n_half: u64,
    /// Size reaching 90 % of the peak rate, bytes.
    pub saturation_bytes: u64,
    /// Fitted start-up time, seconds.
    pub t0_s: f64,
    /// Fitted asymptotic rate, bytes/second.
    pub r_inf_bps: f64,
}

/// First message size whose throughput reaches `frac` of the peak.
pub fn size_reaching(sig: &Signature, frac: f64) -> Option<u64> {
    let target = sig.max_mbps * frac;
    sig.points
        .iter()
        .find(|p| p.mbps >= target)
        .map(|p| p.bytes)
}

/// Least-squares fit of `t(n) = t0 + n / r_inf` over all points.
///
/// Returns `(t0_seconds, r_inf_bytes_per_second)`. With fewer than two
/// points the fit degenerates to `(t, ∞)`.
pub fn fit_hockney(sig: &Signature) -> (f64, f64) {
    let n = sig.points.len() as f64;
    if sig.points.len() < 2 {
        return (sig.points.first().map_or(0.0, |p| p.seconds), f64::INFINITY);
    }
    // Linear regression of t on n (message size).
    let sx: f64 = sig.points.iter().map(|p| p.bytes as f64).sum();
    let sy: f64 = sig.points.iter().map(|p| p.seconds).sum();
    let sxx: f64 = sig.points.iter().map(|p| (p.bytes as f64).powi(2)).sum();
    let sxy: f64 = sig.points.iter().map(|p| p.bytes as f64 * p.seconds).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (sy / n, f64::INFINITY);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let r_inf = if slope > 0.0 {
        1.0 / slope
    } else {
        f64::INFINITY
    };
    (intercept.max(0.0), r_inf)
}

/// Compute the full analysis for a signature.
pub fn analyze(sig: &Signature) -> SignatureAnalysis {
    let (t0_s, r_inf_bps) = fit_hockney(sig);
    SignatureAnalysis {
        name: sig.name.clone(),
        n_half: size_reaching(sig, 0.5).unwrap_or(u64::MAX),
        saturation_bytes: size_reaching(sig, 0.9).unwrap_or(u64::MAX),
        t0_s,
        r_inf_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Point;
    use simcore::units::throughput_mbps;

    /// Synthesize a perfect Hockney signature t = t0 + n/r.
    fn hockney_sig(t0: f64, r: f64) -> Signature {
        let points: Vec<Point> = (0..24)
            .map(|i| {
                let bytes = 1u64 << i;
                let seconds = t0 + bytes as f64 / r;
                Point {
                    bytes,
                    seconds,
                    mbps: throughput_mbps(bytes, seconds),
                    jitter: 0.0,
                    status: crate::runner::PointStatus::Ok,
                }
            })
            .collect();
        let max_mbps = points.iter().map(|p| p.mbps).fold(0.0, f64::max);
        Signature {
            name: "hockney".into(),
            points,
            latency_us: t0 * 1e6,
            max_mbps,
        }
    }

    #[test]
    fn fit_recovers_parameters() {
        let sig = hockney_sig(100e-6, 68.75e6); // 100 us, 550 Mbps
        let (t0, r) = fit_hockney(&sig);
        assert!((t0 - 100e-6).abs() < 2e-6, "t0 {t0}");
        assert!((r - 68.75e6).abs() / 68.75e6 < 0.02, "r {r}");
    }

    #[test]
    fn n_half_matches_theory() {
        // For t = t0 + n/r, half rate is reached at n = t0 * r exactly;
        // the schedule quantizes to the next power of two.
        let sig = hockney_sig(100e-6, 68.75e6);
        let a = analyze(&sig);
        let theory = (100e-6 * 68.75e6) as u64; // 6875 bytes
        assert!(
            a.n_half >= theory && a.n_half <= theory * 4,
            "n_half {} vs theory {}",
            a.n_half,
            theory
        );
        assert!(a.saturation_bytes > a.n_half);
    }

    #[test]
    fn degenerate_signatures_are_safe() {
        let mut sig = hockney_sig(1e-6, 1e8);
        sig.points.truncate(1);
        sig.max_mbps = sig.points[0].mbps;
        let (t0, r) = fit_hockney(&sig);
        assert!(t0 >= 0.0);
        assert!(r.is_infinite());
        let a = analyze(&sig);
        // A single latency-bound point never reaches half of itself... it
        // is its own peak, so n_half is that point.
        assert_eq!(a.n_half, sig.points[0].bytes);
    }

    #[test]
    fn size_reaching_full_peak_exists() {
        let sig = hockney_sig(10e-6, 1e8);
        let at_peak = size_reaching(&sig, 1.0).unwrap();
        assert_eq!(at_peak, sig.points.last().unwrap().bytes);
    }
}
