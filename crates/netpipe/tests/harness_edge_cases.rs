//! Edge cases of the measurement harness itself.

use netpipe::{
    analyze, run, run_streaming, sizes, to_plotfile, Driver, DriverError, RunOptions,
    ScheduleOptions, SimDriver,
};

/// A driver with controllable noise, to exercise the repeated-trial path.
struct NoisyDriver {
    calls: u32,
}

impl Driver for NoisyDriver {
    fn name(&self) -> String {
        "noisy".into()
    }
    fn roundtrip(&mut self, bytes: u64) -> Result<f64, DriverError> {
        self.calls += 1;
        // Deterministic pseudo-noise: +0..20% depending on call parity.
        let jitter = 1.0 + 0.2 * f64::from(self.calls % 3) / 2.0;
        Ok(2.0 * (50e-6 + bytes as f64 / 1e8) * jitter)
    }
    fn is_deterministic(&self) -> bool {
        false
    }
}

#[test]
fn nondeterministic_drivers_get_repeated_trials_and_min() {
    let mut d = NoisyDriver { calls: 0 };
    let opts = RunOptions {
        schedule: ScheduleOptions::quick(4096),
        trials: 6,
        warmup: 2,
        ..Default::default()
    };
    let n_points = sizes(&opts.schedule).len() as u32;
    let sig = run(&mut d, &opts).unwrap();
    // warmup + trials * points calls.
    assert_eq!(d.calls, 2 + 6 * n_points);
    // Jitter recorded (max/min - 1 should be ~0.2).
    assert!(sig.points.iter().any(|p| p.jitter > 0.05));
    // The best (minimum) trial defines the curve: latency near the
    // noise-free 50 us.
    assert!((45.0..60.0).contains(&sig.latency_us), "{}", sig.latency_us);
}

#[test]
fn failing_driver_propagates_errors() {
    struct Failing;
    impl Driver for Failing {
        fn name(&self) -> String {
            "failing".into()
        }
        fn roundtrip(&mut self, _bytes: u64) -> Result<f64, DriverError> {
            Err(DriverError::Stalled)
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }
    assert!(run(&mut Failing, &RunOptions::quick(1024)).is_err());
    assert!(run_streaming(&mut Failing, &RunOptions::quick(1024), 4).is_err());
}

#[test]
fn plotfile_parses_back_numerically() {
    let mut d = SimDriver::new(
        hwmodel::presets::pcs_ga620(),
        mpsim::libs::raw_tcp(512 * 1024),
    );
    let sig = run(&mut d, &RunOptions::quick(65536)).unwrap();
    let pf = to_plotfile(&sig);
    let mut parsed = 0;
    for line in pf.lines().filter(|l| !l.starts_with('#')) {
        let cols: Vec<f64> = line
            .split_whitespace()
            .map(|c| c.parse().expect("numeric column"))
            .collect();
        assert_eq!(cols.len(), 3);
        // mbps == bytes*8/seconds/1e6 within rounding.
        let expect = cols[0] * 8.0 / cols[2] / 1e6;
        assert!((cols[1] - expect).abs() / expect < 0.01, "{line}");
        parsed += 1;
    }
    assert_eq!(parsed, sig.points.len());
}

#[test]
fn analysis_of_simulated_curves_is_consistent() {
    let mut d = SimDriver::new(
        hwmodel::presets::pcs_ga620(),
        mpsim::libs::raw_tcp(512 * 1024),
    );
    let sig = run(&mut d, &RunOptions::default()).unwrap();
    let a = analyze(&sig);
    // The fitted asymptote is within 20% of the observed plateau.
    let plateau_bps = sig.final_mbps() * 1e6 / 8.0;
    assert!(
        (a.r_inf_bps / plateau_bps - 1.0).abs() < 0.2,
        "fit {} vs plateau {}",
        a.r_inf_bps,
        plateau_bps
    );
    // The fitted startup time is of the latency's order.
    assert!(a.t0_s * 1e6 < 3.0 * sig.latency_us);
    // n_half sits between the latency floor and the saturation point.
    assert!(a.n_half > 64);
    assert!(a.n_half <= a.saturation_bytes);
}

#[test]
fn single_point_schedule_runs() {
    let opts = RunOptions {
        schedule: ScheduleOptions {
            start: 1024,
            max: 1024,
            perturbation: 0,
            midpoints: 0,
        },
        ..Default::default()
    };
    let mut d = SimDriver::new(
        hwmodel::presets::pcs_ga620(),
        mpsim::libs::raw_tcp(512 * 1024),
    );
    let sig = run(&mut d, &opts).unwrap();
    assert_eq!(sig.points.len(), 1);
    assert_eq!(sig.points[0].bytes, 1024);
}
