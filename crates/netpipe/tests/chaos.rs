//! Kill-the-peer chaos tests against the real TCP driver: when the echo
//! server murders connections (or itself) mid-sweep, a resilience policy
//! must turn that into a partial, annotated signature — never a hang,
//! never a panic, never an `Err` that throws the good points away.

use std::time::Duration;

use faultlab::{FaultPlan, RetryPolicy, SweepPolicy};
use netpipe::{
    fault_report, run, summary_table, to_csv, ChaosOptions, PointStatus, RealTcpDriver,
    RealTcpOptions, RunOptions,
};

fn chaotic_opts(chaos: ChaosOptions) -> RealTcpOptions {
    RealTcpOptions {
        // Short deadlines and a tight backoff keep a dead peer cheap:
        // the whole test must finish in seconds, not RTO-minutes.
        deadline: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(10),
            factor: 2.0,
            cap: Duration::from_millis(100),
        },
        chaos,
        ..RealTcpOptions::default()
    }
}

#[test]
fn killed_connections_degrade_but_the_sweep_survives() {
    let mut driver = RealTcpDriver::new(chaotic_opts(ChaosOptions {
        kill_after: Some(25),
        kill_listener: false,
    }))
    .expect("driver boots");
    let opts = RunOptions::quick(16 * 1024).with_resilience(SweepPolicy::default());
    let sig = run(&mut driver, &opts).expect("chaos sweep must not abort");

    // The server keeps accepting, so every point eventually lands — but
    // only through the reconnect path, which the signature must record.
    assert_eq!(sig.failed_count(), 0, "{}", fault_report(&[sig.clone()]));
    assert!(
        sig.degraded_count() > 0,
        "a kill-after=25 peer must force at least one reconnect"
    );
    assert!(
        driver.fault_counters().reconnects > 0,
        "{}",
        driver.fault_counters()
    );
    let report = fault_report(std::slice::from_ref(&sig));
    assert!(report.contains("degraded"), "{report}");
}

#[test]
fn peer_death_yields_partial_annotated_signature_not_a_hang() {
    let mut driver = RealTcpDriver::new(chaotic_opts(ChaosOptions {
        kill_after: Some(40),
        kill_listener: true,
    }))
    .expect("driver boots");
    let opts = RunOptions::quick(64 * 1024).with_resilience(SweepPolicy::default());
    let sig = run(&mut driver, &opts).expect("peer death must degrade, not error");

    assert!(
        sig.failed_count() > 0,
        "with the listener dead, later points cannot be measured"
    );
    assert!(sig.is_partial());
    // Early points (before the kill) still measured something real.
    assert!(
        sig.points.iter().any(|p| p.status == PointStatus::Ok),
        "points before the kill must survive untouched"
    );
    // Failures are annotated in the report and absent from the CSV.
    let report = fault_report(std::slice::from_ref(&sig));
    assert!(report.contains("FAILED"), "{report}");
    assert!(summary_table(std::slice::from_ref(&sig)).contains("(partial)"));
    let csv = to_csv(std::slice::from_ref(&sig));
    assert_eq!(csv.lines().count(), 1 + sig.measured_points().count());
}

#[test]
fn without_resilience_peer_death_is_a_typed_error() {
    let mut driver = RealTcpDriver::new(chaotic_opts(ChaosOptions {
        kill_after: Some(10),
        kill_listener: true,
    }))
    .expect("driver boots");
    let err = run(&mut driver, &RunOptions::quick(64 * 1024))
        .expect_err("legacy mode must propagate the failure");
    let msg = err.to_string();
    assert!(
        msg.contains("timed out") || msg.contains("connect") || msg.contains("reset"),
        "error should name the socket failure: {msg}"
    );
}

#[test]
fn fault_plan_kill_knobs_flow_into_real_options() {
    let plan =
        FaultPlan::parse("kill-after=40,kill-listener,deadline=250ms,backoff=5ms").expect("plan");
    let mut opts = RealTcpOptions::default();
    opts.apply_plan(&plan);
    assert_eq!(opts.chaos.kill_after, Some(40));
    assert!(opts.chaos.kill_listener);
    assert_eq!(opts.deadline, Duration::from_millis(250));
    assert_eq!(opts.retry.base, Duration::from_millis(5));
}
