//! The deterministic per-segment fault decision engine.

use simcore::SimRng;

use crate::counters::FaultCounters;
use crate::plan::FaultPlan;

/// What happens to one segment crossing the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegFault {
    /// The segment arrives, possibly late, possibly twice.
    Deliver {
        /// Extra one-way *latency* in microseconds (jitter and reorder
        /// hold-back): delays this segment without occupying the link.
        extra_us: f64,
        /// Extra wire *occupancy* in microseconds (degradation window:
        /// the link streams slower, so the segment holds it longer and
        /// every later segment queues behind it).
        slow_us: f64,
        /// A duplicate copy also crosses the wire (burning wire and
        /// receiver time) before being discarded by the receiver.
        duplicate: bool,
    },
    /// The segment is lost; the transport's recovery (retransmission
    /// timeout) kicks in.
    Drop,
}

/// Seeded decision engine: a [`FaultPlan`] plus the RNG state and event
/// counters for one world.
///
/// Decisions depend only on the plan, the seed and the *order of calls*
/// — never on wall time or map iteration — so a simulated run under a
/// plan is exactly reproducible. A lossless plan short-circuits without
/// drawing from the RNG at all, which keeps such a run byte-identical
/// to one with no lottery installed.
#[derive(Debug, Clone)]
pub struct FaultLottery {
    plan: FaultPlan,
    rng: SimRng,
    /// Event counts so far.
    pub counters: FaultCounters,
}

impl FaultLottery {
    /// Build the engine for `plan` (seeded from `plan.seed`).
    pub fn new(plan: FaultPlan) -> FaultLottery {
        let rng = SimRng::new(plan.seed);
        FaultLottery {
            plan,
            rng,
            counters: FaultCounters::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of a segment entering the wire at `now_us` whose
    /// nominal (fault-free) wire occupancy is `frame_us`.
    pub fn segment(&mut self, now_us: f64, frame_us: f64) -> SegFault {
        if self.plan.is_lossless() {
            return SegFault::Deliver {
                extra_us: 0.0,
                slow_us: 0.0,
                duplicate: false,
            };
        }
        if self.plan.loss > 0.0 && self.rng.next_f64() < self.plan.loss {
            self.counters.dropped += 1;
            return SegFault::Drop;
        }
        // Degradation window: the wire streams at `factor` of its rate,
        // so the segment occupies `frame/factor` instead of `frame`.
        let mut slow_us = 0.0;
        for w in &self.plan.degrade {
            if w.contains(now_us) {
                slow_us = frame_us * (1.0 / w.factor - 1.0);
                break;
            }
        }
        let mut extra_us = 0.0;
        if self.plan.jitter_us > 0.0 {
            extra_us += self.rng.uniform(0.0, self.plan.jitter_us);
        }
        if self.plan.reorder > 0.0 && self.rng.next_f64() < self.plan.reorder {
            // Hold the segment back past its successor's wire slot.
            extra_us += 2.0 * frame_us;
        }
        let duplicate = self.plan.dup > 0.0 && self.rng.next_f64() < self.plan.dup;
        if duplicate {
            self.counters.duplicated += 1;
        }
        if extra_us > 0.0 || slow_us > 0.0 {
            self.counters.delayed += 1;
        }
        SegFault::Deliver {
            extra_us,
            slow_us,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(s: &str) -> FaultPlan {
        FaultPlan::parse(s).expect("test plan parses")
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultLottery::new(plan("seed=5,loss=0.3,dup=0.2,jitter=10us"));
        let (mut a, mut b) = (mk(), mk());
        for i in 0..2000 {
            assert_eq!(a.segment(i as f64, 12.0), b.segment(i as f64, 12.0));
        }
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.dropped > 400, "{:?}", a.counters);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultLottery::new(plan("seed=1,loss=0.5"));
        let mut b = FaultLottery::new(plan("seed=2,loss=0.5"));
        let differs = (0..256).any(|i| a.segment(i as f64, 1.0) != b.segment(i as f64, 1.0));
        assert!(differs);
    }

    #[test]
    fn lossless_plan_never_draws() {
        let mut l = FaultLottery::new(plan("seed=3"));
        for i in 0..100 {
            assert_eq!(
                l.segment(i as f64, 5.0),
                SegFault::Deliver {
                    extra_us: 0.0,
                    slow_us: 0.0,
                    duplicate: false
                }
            );
        }
        assert!(!l.counters.any());
    }

    #[test]
    fn degradation_window_slows_only_inside() {
        let mut l = FaultLottery::new(plan("degrade=100us..200us@0.25"));
        match l.segment(150.0, 8.0) {
            SegFault::Deliver { slow_us, .. } => {
                // 8 us frame at quarter rate: 24 us of extra occupancy.
                assert!((slow_us - 24.0).abs() < 1e-9, "{slow_us}");
            }
            SegFault::Drop => unreachable!("no loss configured"),
        }
        match l.segment(250.0, 8.0) {
            SegFault::Deliver { slow_us, .. } => assert_eq!(slow_us, 0.0),
            SegFault::Drop => unreachable!("no loss configured"),
        }
        assert_eq!(l.counters.delayed, 1);
    }

    #[test]
    fn loss_rate_close_to_requested() {
        let mut l = FaultLottery::new(plan("seed=11,loss=0.1"));
        let n = 20_000;
        let drops = (0..n)
            .filter(|&i| l.segment(i as f64, 1.0) == SegFault::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "observed loss {rate}");
    }
}
