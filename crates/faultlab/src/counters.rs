//! Fault-event accounting, summarizable across runs.

use std::fmt;

/// Counts of injected and observed fault events.
///
/// The sim fabric fills these as its [`crate::FaultLottery`] decides;
/// real-mode drivers bump the timeout/reconnect counters as they retry.
/// `merge` lets a driver that builds a fresh world per measurement keep
/// a running total for the whole sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Segments dropped on the wire.
    pub dropped: u64,
    /// Segments duplicated on the wire.
    pub duplicated: u64,
    /// Segments delayed (jitter, reorder hold-back, degradation window).
    pub delayed: u64,
    /// TCP retransmissions performed.
    pub retransmits: u64,
    /// Connections declared dead after exhausting retransmissions.
    pub conn_deaths: u64,
    /// Real-mode operation timeouts.
    pub timeouts: u64,
    /// Real-mode reconnect attempts.
    pub reconnects: u64,
    /// Frames with a bit flipped by the byte-level proxy.
    pub corrupted: u64,
    /// Frames cut short by the proxy (mid-frame EOF downstream).
    pub truncated: u64,
    /// Frames held for the plan's stall duration before forwarding.
    pub stalled: u64,
    /// Frames delivered behind their successor by the proxy.
    pub reordered: u64,
    /// Frames blackholed inside an active partition window.
    pub partitioned: u64,
}

impl FaultCounters {
    /// Add another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.retransmits += other.retransmits;
        self.conn_deaths += other.conn_deaths;
        self.timeouts += other.timeouts;
        self.reconnects += other.reconnects;
        self.corrupted += other.corrupted;
        self.truncated += other.truncated;
        self.stalled += other.stalled;
        self.reordered += other.reordered;
        self.partitioned += other.partitioned;
    }

    /// Did anything at all happen?
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped={} duplicated={} delayed={} retransmits={} conn-deaths={} timeouts={} \
             reconnects={} corrupted={} truncated={} stalled={} reordered={} partitioned={}",
            self.dropped,
            self.duplicated,
            self.delayed,
            self.retransmits,
            self.conn_deaths,
            self.timeouts,
            self.reconnects,
            self.corrupted,
            self.truncated,
            self.stalled,
            self.reordered,
            self.partitioned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = FaultCounters {
            dropped: 1,
            retransmits: 2,
            ..Default::default()
        };
        let b = FaultCounters {
            dropped: 3,
            timeouts: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.timeouts, 4);
        assert!(a.any());
        assert!(!FaultCounters::default().any());
    }

    #[test]
    fn display_lists_every_field() {
        let s = FaultCounters::default().to_string();
        for key in [
            "dropped",
            "duplicated",
            "delayed",
            "retransmits",
            "conn-deaths",
            "timeouts",
            "reconnects",
            "corrupted",
            "truncated",
            "stalled",
            "reordered",
            "partitioned",
        ] {
            assert!(s.contains(key), "{s} missing {key}");
        }
    }
}
