//! Deadline-bounded socket I/O for real mode.
//!
//! `std::net` blocking calls (`read_exact`, `write_all`, `accept`) hang
//! forever on a dead peer — exactly the failure mode the workspace's
//! `blocking-hygiene` lint bans in real-mode crates. These helpers are
//! the sanctioned replacements: every operation carries an explicit
//! deadline (enforced with `SO_RCVTIMEO`/`SO_SNDTIMEO` and, for accept,
//! non-blocking polling), times out with `ErrorKind::TimedOut`, and
//! restores the socket's previous timeout configuration on the way out.
//!
//! This crate is the one place allowed to make the underlying calls —
//! the same exemption pattern `tracelab` enjoys for the wall-clock
//! tracing APIs it implements.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::retry::RetryPolicy;

/// Granularity of the accept poll loop.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Is this error a deadline expiry? (Linux reports `SO_RCVTIMEO` expiry
/// as `WouldBlock`; other platforms use `TimedOut`.)
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Is this error the peer going away (reset, broken pipe, early EOF)?
pub fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

fn timed_out(op: &str, deadline: Duration) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("{op} exceeded its {deadline:?} deadline"),
    )
}

/// Fill `buf` from `stream` or fail with `TimedOut` once `deadline` has
/// elapsed. The stream's previous read timeout is restored afterwards.
pub fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Duration,
) -> io::Result<()> {
    let prev = stream.read_timeout()?;
    let result = read_exact_inner(stream, buf, deadline);
    stream.set_read_timeout(prev)?;
    result
}

fn read_exact_inner(stream: &mut TcpStream, buf: &mut [u8], deadline: Duration) -> io::Result<()> {
    let mut got = 0usize;
    read_counted_inner(stream, buf, deadline, &mut got)
}

/// Like [`read_exact_deadline`], but a failure also reports how many
/// bytes had already arrived — receivers use the count to build accurate
/// truncation verdicts ("got 13 of 24 bytes") instead of guessing.
pub fn read_exact_counted(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Duration,
) -> std::result::Result<(), (usize, io::Error)> {
    let prev = stream.read_timeout().map_err(|e| (0, e))?;
    let mut got = 0usize;
    let result = read_counted_inner(stream, buf, deadline, &mut got);
    let restore = stream.set_read_timeout(prev);
    match result {
        Ok(()) => restore.map_err(|e| (got, e)),
        Err(e) => Err((got, e)),
    }
}

fn read_counted_inner(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Duration,
    got: &mut usize,
) -> io::Result<()> {
    let start = Instant::now();
    while *got < buf.len() {
        let left = deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| timed_out("read", deadline))?;
        if left.is_zero() {
            return Err(timed_out("read", deadline));
        }
        stream.set_read_timeout(Some(left))?;
        match stream.read(&mut buf[*got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection mid-read",
                ))
            }
            Ok(n) => *got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(timed_out("read", deadline)),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write all of `buf` to `stream` or fail with `TimedOut` once
/// `deadline` has elapsed. The previous write timeout is restored.
pub fn write_all_deadline(
    stream: &mut TcpStream,
    buf: &[u8],
    deadline: Duration,
) -> io::Result<()> {
    let prev = stream.write_timeout()?;
    let result = write_all_inner(stream, buf, deadline);
    stream.set_write_timeout(prev)?;
    result
}

fn write_all_inner(stream: &mut TcpStream, buf: &[u8], deadline: Duration) -> io::Result<()> {
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < buf.len() {
        let left = deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| timed_out("write", deadline))?;
        if left.is_zero() {
            return Err(timed_out("write", deadline));
        }
        stream.set_write_timeout(Some(left))?;
        match stream.write(&buf[sent..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => sent += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(timed_out("write", deadline)),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Accept one connection within `deadline`, polling non-blockingly so
/// the wait can also be abandoned early (`keep_waiting` returning false
/// fails with `ErrorKind::Other`). The listener is returned to blocking
/// mode afterwards.
pub fn accept_deadline(
    listener: &TcpListener,
    deadline: Duration,
    keep_waiting: impl Fn() -> bool,
) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let result = accept_inner(listener, deadline, keep_waiting);
    listener.set_nonblocking(false)?;
    result
}

fn accept_inner(
    listener: &TcpListener,
    deadline: Duration,
    keep_waiting: impl Fn() -> bool,
) -> io::Result<TcpStream> {
    let start = Instant::now();
    loop {
        // lint:allow(blocking-hygiene) -- non-blocking listener inside the deadline-enforcing wrapper itself
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !keep_waiting() {
                    return Err(io::Error::other("accept abandoned by shutdown"));
                }
                if start.elapsed() >= deadline {
                    return Err(timed_out("accept", deadline));
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Connect to `addr` with a per-attempt timeout under `policy`'s bounded
/// exponential backoff. Returns the first established stream or the last
/// connect error.
pub fn connect_retry(
    addr: SocketAddr,
    per_attempt: Duration,
    policy: &RetryPolicy,
) -> io::Result<TcpStream> {
    policy.run(|_| TcpStream::connect_timeout(&addr, per_attempt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpStream, TcpStream, TcpListener) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server, listener)
    }

    #[test]
    fn read_times_out_on_silent_peer() {
        let (mut client, _server, _l) = pair();
        let mut buf = [0u8; 4];
        let start = Instant::now();
        let err = read_exact_deadline(&mut client, &mut buf, Duration::from_millis(40))
            .expect_err("no data is coming");
        assert!(is_timeout(&err), "{err}");
        assert!(start.elapsed() >= Duration::from_millis(35));
        // Previous (unset) timeout restored.
        assert_eq!(client.read_timeout().expect("query"), None);
    }

    #[test]
    fn read_completes_across_partial_writes() {
        let (mut client, mut server, _l) = pair();
        let writer = std::thread::spawn(move || {
            for chunk in [&b"ab"[..], &b"cd"[..]] {
                server.write_all(chunk).expect("write");
                server.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let mut buf = [0u8; 4];
        read_exact_deadline(&mut client, &mut buf, Duration::from_secs(2)).expect("reads");
        assert_eq!(&buf, b"abcd");
        writer.join().expect("writer thread");
    }

    #[test]
    fn read_reports_eof_as_disconnect() {
        let (mut client, server, _l) = pair();
        drop(server);
        let mut buf = [0u8; 4];
        let err = read_exact_deadline(&mut client, &mut buf, Duration::from_secs(1))
            .expect_err("peer is gone");
        assert!(is_disconnect(&err), "{err}");
    }

    #[test]
    fn accept_times_out_and_recovers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let err = accept_deadline(&listener, Duration::from_millis(30), || true)
            .expect_err("nobody connects");
        assert!(is_timeout(&err), "{err}");
        // Still usable afterwards.
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let stream = accept_deadline(&listener, Duration::from_secs(2), || true).expect("accepts");
        assert!(stream.peer_addr().is_ok());
    }

    #[test]
    fn accept_abandons_on_shutdown_signal() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let err = accept_deadline(&listener, Duration::from_secs(10), || false)
            .expect_err("abandoned immediately");
        assert!(!is_timeout(&err), "{err}");
    }

    #[test]
    fn connect_retry_reaches_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = connect_retry(addr, Duration::from_millis(200), &RetryPolicy::default())
            .expect("connects");
        assert_eq!(stream.peer_addr().expect("peer"), addr);
    }

    #[test]
    fn connect_retry_gives_up_on_dead_port() {
        // Bind-then-drop: the port was just free, so connects fail fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            factor: 2.0,
            cap: Duration::from_millis(2),
        };
        assert!(connect_retry(addr, Duration::from_millis(100), &policy).is_err());
    }
}
