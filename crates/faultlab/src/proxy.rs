//! A deterministic byte-level chaos proxy for real TCP connections.
//!
//! The sim-side [`crate::FaultLottery`] injures *modelled* segments; this
//! module injures *actual bytes*. A [`ChaosProxy`] fronts an upstream
//! listener with its own loopback listener and pumps every connection
//! through seeded per-frame fault decisions taken from the byte-level
//! clauses of a [`FaultPlan`] (`corrupt=`, `truncate=`, `stall=`,
//! `partition=`, `reorder-frame`):
//!
//! * **corrupt** — flip one seeded bit anywhere in the frame (the
//!   receiver's CRC must catch it);
//! * **truncate** — forward a seeded prefix, then drop the connection,
//!   so the receiver sees a mid-frame EOF;
//! * **stall** — hold the frame for the plan's stall duration before
//!   forwarding (the receiver's deadline logic must absorb or time out);
//! * **partition** — blackhole whole frames between two rank groups
//!   during a timed window;
//! * **reorder-frame** — hold a frame back so it lands behind its
//!   successor.
//!
//! Determinism is the whole point: every pump direction owns a
//! [`SimRng`] derived from `(plan.seed, a, b, direction, connection)`,
//! the partition clock is a virtual per-direction frame counter (one
//! frame = [`FRAME_TICK_US`]), and the draw order per frame is fixed
//! (partition → corrupt → truncate → stall → reorder). Two runs of the
//! same workload under the same seed therefore produce byte-identical
//! fault counters and fault logs — a failing chaos run is its own
//! reproducer.
//!
//! The proxy is frame-*aware* but protocol-*agnostic*: a [`FrameFormat`]
//! tells it how many prelude bytes to pass through verbatim and where
//! the declared payload length sits in the header. It never validates
//! checksums — that is the receiver's job, and exactly what the fuzzer
//! and chaos tests are checking.

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use simcore::SimRng;

use crate::counters::FaultCounters;
use crate::io::{accept_deadline, connect_retry, read_exact_deadline, write_all_deadline};
use crate::plan::FaultPlan;
use crate::retry::RetryPolicy;

/// Virtual time one forwarded frame advances the partition clock by,
/// microseconds. Partition windows in a plan are expressed against this
/// clock, so `partition=0|1@1ms..4ms` means "frames 10..40 of each
/// direction are inside the window" — wall time never enters into it.
pub const FRAME_TICK_US: f64 = 100.0;

/// How often an idle pump re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// Byte layout the proxy needs to slice a stream into whole frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFormat {
    /// Bytes at the start of each direction forwarded verbatim (version
    /// preambles, hellos). Faults never touch the prelude: chaos tests
    /// target the framing layer, not the bootstrap.
    pub prelude: usize,
    /// Fixed header size in bytes.
    pub header_len: usize,
    /// Offset of the u64 little-endian payload length inside the header.
    pub len_at: usize,
    /// Declared payloads above this stream through unfaulted (and
    /// unbuffered) — the proxy refuses to allocate on a peer's say-so,
    /// same as the receivers it fronts.
    pub max_frame: u64,
}

impl FrameFormat {
    /// The mplite/netpipe v2 wire: 4-byte `MPv` preamble per direction,
    /// 24-byte header with the payload length at bytes 12..20.
    pub const MPLITE_V2: FrameFormat = FrameFormat {
        prelude: 4,
        header_len: 24,
        len_at: 12,
        max_frame: 1 << 28,
    };
}

/// One recorded fault event. Kept structured so logs sort and compare
/// deterministically; `Display` renders the human-readable line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Source rank of the injured direction.
    pub from: usize,
    /// Destination rank of the injured direction.
    pub to: usize,
    /// Connection index between the pair (0 for the first accept).
    pub conn: u64,
    /// Frame index within the direction when the fault fired.
    pub frame: u64,
    /// What happened (`corrupt bit 13`, `truncate to 7 of 31 bytes`…).
    pub what: String,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}->{} conn{} frame{}: {}",
            self.from, self.to, self.conn, self.frame, self.what
        )
    }
}

struct Shared {
    plan: FaultPlan,
    format: FrameFormat,
    counters: Mutex<FaultCounters>,
    log: Mutex<Vec<FaultEvent>>,
    shutdown: AtomicBool,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// An in-process TCP interposer applying a [`FaultPlan`]'s byte-level
/// clauses to every frame it forwards. See the module docs for the fault
/// menu and the determinism contract.
pub struct ChaosProxy {
    shared: Arc<Shared>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl ChaosProxy {
    /// Build a proxy for `plan`'s byte-level clauses over `format`
    /// frames. One proxy can front any number of (pair, upstream)
    /// connections; they share the counters and the log.
    pub fn new(plan: FaultPlan, format: FrameFormat) -> ChaosProxy {
        ChaosProxy {
            shared: Arc::new(Shared {
                plan,
                format,
                counters: Mutex::new(FaultCounters::default()),
                log: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                pumps: Mutex::new(Vec::new()),
            }),
            acceptors: Mutex::new(Vec::new()),
        }
    }

    /// Open a loopback front for the connection rank `a` is about to
    /// dial to rank `b` at `upstream`. Returns the address to dial
    /// instead. Every connection accepted on the front is pumped
    /// bidirectionally: `a → b` traffic is direction 0, `b → a` is
    /// direction 1, and each (direction, connection) gets its own
    /// derived RNG.
    pub fn front(&self, a: usize, b: usize, upstream: SocketAddr) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let acceptor = std::thread::spawn(move || {
            let conn_idx = AtomicU64::new(0);
            while !shared.shutdown.load(Ordering::SeqCst) {
                let shared_flag = Arc::clone(&shared);
                let down = match accept_deadline(&listener, Duration::from_secs(3600), || {
                    !shared_flag.shutdown.load(Ordering::SeqCst)
                }) {
                    Ok(s) => s,
                    Err(_) => continue, // shutdown or timeout: re-check the flag
                };
                let up = match connect_retry(
                    upstream,
                    Duration::from_secs(1),
                    &RetryPolicy::default(),
                ) {
                    Ok(s) => s,
                    Err(_) => {
                        let _ = down.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                let conn = conn_idx.fetch_add(1, Ordering::SeqCst);
                spawn_pumps(&shared, a, b, conn, down, up);
            }
        });
        relock(&self.acceptors).push(acceptor);
        Ok(addr)
    }

    /// Stop accepting, wait for every pump to drain (they exit on EOF or
    /// on this shutdown flag), and return the final counters and the
    /// sorted fault log. Call after the workload has released its
    /// sockets; the counters are then a pure function of (plan, traffic).
    pub fn finish(self) -> (FaultCounters, Vec<FaultEvent>) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in relock(&self.acceptors).drain(..) {
            let _ = h.join();
        }
        let pumps: Vec<_> = relock(&self.shared.pumps).drain(..).collect();
        for h in pumps {
            let _ = h.join();
        }
        let counters = *relock(&self.shared.counters);
        let mut log = relock(&self.shared.log).clone();
        log.sort();
        (counters, log)
    }

    /// Snapshot the counters mid-run (pumps may still be moving bytes;
    /// for the deterministic final numbers use [`ChaosProxy::finish`]).
    pub fn counters(&self) -> FaultCounters {
        *relock(&self.shared.counters)
    }
}

impl Drop for ChaosProxy {
    /// A proxy dropped without [`ChaosProxy::finish`] must not leave
    /// acceptor/pump threads spinning: raise the shutdown flag so they
    /// exit at their next poll (they are not joined — `finish` is the
    /// orderly path).
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Lock a registry even if some pump thread panicked while holding it —
/// chaos tooling must never compound a failure by poisoning itself.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Derive a per-(pair, direction, connection) seed from the plan seed.
/// Any good mixer works; what matters is that it is a pure function of
/// its inputs so reruns line up draw-for-draw.
fn derive_seed(seed: u64, a: u64, b: u64, dir: u64, conn: u64) -> u64 {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [a, b, dir, conn] {
        x = (x ^ v)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .rotate_left(27)
            .wrapping_add(0x94D0_49BB_1331_11EB);
    }
    x
}

fn spawn_pumps(
    shared: &Arc<Shared>,
    a: usize,
    b: usize,
    conn: u64,
    down: TcpStream,
    up: TcpStream,
) {
    let mut handles = Vec::with_capacity(2);
    for (dir, (src, dst)) in [(a, b), (b, a)].into_iter().enumerate() {
        let (from, to) = if dir == 0 {
            (down.try_clone(), up.try_clone())
        } else {
            (up.try_clone(), down.try_clone())
        };
        let (Ok(from), Ok(to)) = (from, to) else {
            let _ = down.shutdown(Shutdown::Both);
            let _ = up.shutdown(Shutdown::Both);
            return;
        };
        let shared = Arc::clone(shared);
        let rng = SimRng::new(derive_seed(
            shared.plan.seed,
            a as u64,
            b as u64,
            dir as u64,
            conn,
        ));
        handles.push(std::thread::spawn(move || {
            pump(&shared, src, dst, conn, from, to, rng);
        }));
    }
    relock(&shared.pumps).extend(handles);
}

/// Pump one direction of one connection, frame by frame, applying the
/// plan's byte-level faults in the fixed draw order.
fn pump(
    shared: &Shared,
    src: usize,
    dst: usize,
    conn: u64,
    mut from: TcpStream,
    mut to: TcpStream,
    mut rng: SimRng,
) {
    let plan = &shared.plan;
    let fmt = shared.format;
    let deadline = plan.io_deadline;
    let mut held: Option<Vec<u8>> = None;
    let mut frame_idx: u64 = 0;

    let record = |what: String, frame: u64| {
        relock(&shared.log).push(FaultEvent {
            from: src,
            to: dst,
            conn,
            frame,
            what,
        });
    };

    // Prelude: pass through verbatim, no faults, no clock ticks.
    if fmt.prelude > 0 {
        let mut pre = vec![0u8; fmt.prelude];
        if read_exact_deadline(&mut from, &mut pre, deadline).is_err()
            || write_all_deadline(&mut to, &pre, deadline).is_err()
        {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
    }

    loop {
        // Idle wait for the next frame's first byte: short read timeouts
        // so shutdown is honoured, EOF ends the direction cleanly.
        let mut first = [0u8; 1];
        match wait_first_byte(shared, &mut from, &mut first) {
            FirstByte::Got => {}
            FirstByte::Eof | FirstByte::Dead => {
                if let Some(h) = held.take() {
                    let _ = write_all_deadline(&mut to, &h, deadline);
                }
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
        }

        // Rest of the header, then the declared payload.
        let mut frame = vec![0u8; fmt.header_len];
        frame[0] = first[0];
        if read_exact_deadline(&mut from, &mut frame[1..], deadline).is_err() {
            break;
        }
        let mut lenb = [0u8; 8];
        lenb.copy_from_slice(&frame[fmt.len_at..fmt.len_at + 8]);
        let len = u64::from_le_bytes(lenb);
        if len > fmt.max_frame {
            // Refuse to buffer: forward header + payload in bounded
            // chunks, unfaulted. The receiver's own length check is the
            // one under test for frames like this.
            if let Some(h) = held.take() {
                if write_all_deadline(&mut to, &h, deadline).is_err() {
                    break;
                }
            }
            if write_all_deadline(&mut to, &frame, deadline).is_err()
                || !relay(&mut from, &mut to, len, deadline)
            {
                break;
            }
            frame_idx += 1;
            continue;
        }
        let hdr = fmt.header_len;
        frame.resize(hdr + len as usize, 0);
        if read_exact_deadline(&mut from, &mut frame[hdr..], deadline).is_err() {
            break;
        }

        let now_us = frame_idx as f64 * FRAME_TICK_US;
        frame_idx += 1;

        // 1. Partition: a blackhole needs no randomness, only the clock.
        if plan
            .partitions
            .iter()
            .any(|w| w.active(now_us) && w.crosses(src, dst))
        {
            relock(&shared.counters).partitioned += 1;
            record(format!("partitioned at t={now_us}us"), frame_idx - 1);
            continue;
        }
        // 2. Corrupt: flip one seeded bit, let the CRC catch it.
        if plan.corrupt > 0.0 && rng.next_f64() < plan.corrupt {
            let bit = rng.next_below(frame.len() as u64 * 8);
            frame[(bit / 8) as usize] ^= 1 << (bit % 8);
            relock(&shared.counters).corrupted += 1;
            record(format!("corrupt bit {bit}"), frame_idx - 1);
        }
        // 3. Truncate: a strict prefix, then kill the connection.
        if plan.trunc > 0.0 && rng.next_f64() < plan.trunc {
            let keep = rng.next_below(frame.len() as u64) as usize;
            let _ = write_all_deadline(&mut to, &frame[..keep], deadline);
            relock(&shared.counters).truncated += 1;
            record(
                format!("truncate to {keep} of {} bytes", frame.len()),
                frame_idx - 1,
            );
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        // 4. Stall: hold the frame, then deliver late.
        if plan.stall_rate > 0.0 && rng.next_f64() < plan.stall_rate {
            std::thread::sleep(Duration::from_micros(plan.stall_us as u64));
            relock(&shared.counters).stalled += 1;
            record(format!("stalled {}us", plan.stall_us), frame_idx - 1);
        }
        // 5. Reorder: hold this frame so the next one overtakes it.
        if plan.reorder_frame > 0.0 && rng.next_f64() < plan.reorder_frame && held.is_none() {
            relock(&shared.counters).reordered += 1;
            record("held for reorder".to_string(), frame_idx - 1);
            held = Some(frame);
            continue;
        }

        // Emit: the current frame first, then any held one — that is
        // the reorder taking effect.
        if write_all_deadline(&mut to, &frame, deadline).is_err() {
            break;
        }
        if let Some(h) = held.take() {
            if write_all_deadline(&mut to, &h, deadline).is_err() {
                break;
            }
        }
    }
    // An I/O failure mid-frame: drop both sides so neither end waits on
    // a half-dead pump.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Stream `len` bytes from `from` to `to` in bounded chunks. Returns
/// false on any I/O failure.
fn relay(from: &mut TcpStream, to: &mut TcpStream, len: u64, deadline: Duration) -> bool {
    let mut left = len;
    let mut chunk = vec![0u8; 64 * 1024];
    while left > 0 {
        let n = chunk.len().min(left as usize);
        if read_exact_deadline(from, &mut chunk[..n], deadline).is_err()
            || write_all_deadline(to, &chunk[..n], deadline).is_err()
        {
            return false;
        }
        left -= n as u64;
    }
    true
}

enum FirstByte {
    Got,
    Eof,
    Dead,
}

/// Block for the next frame's first byte with short poll timeouts, so an
/// idle pump still honours shutdown promptly.
fn wait_first_byte(shared: &Shared, from: &mut TcpStream, buf: &mut [u8; 1]) -> FirstByte {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return FirstByte::Dead;
        }
        if from.set_read_timeout(Some(IDLE_POLL)).is_err() {
            return FirstByte::Dead;
        }
        match from.read(buf) {
            Ok(0) => return FirstByte::Eof,
            Ok(_) => {
                let _ = from.set_read_timeout(None);
                return FirstByte::Got;
            }
            Err(e) if crate::io::is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FirstByte::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_all_deadline;
    use std::io::Write;

    const DL: Duration = Duration::from_secs(5);

    /// Build a valid MPLITE_V2-shaped frame: 4-byte prelude is NOT
    /// included; header is 24 bytes with len at 12..20. The CRC field is
    /// arbitrary — the proxy never checks it.
    fn test_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut f = vec![0u8; 24];
        f[0] = b'M';
        f[1] = b'P';
        f[2] = 2;
        f[8] = tag;
        f[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        f.extend_from_slice(payload);
        f
    }

    /// Start an upstream sink that records every byte it receives, front
    /// it with a proxy for `plan`, and push `frames` through from the
    /// client side. Returns (received bytes, counters, log).
    fn run_one_direction(
        plan: &str,
        frames: &[Vec<u8>],
    ) -> (Vec<u8>, FaultCounters, Vec<FaultEvent>) {
        let plan = FaultPlan::parse(plan).expect("plan parses");
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("addr");
        let sink = std::thread::spawn(move || {
            let mut s = accept_deadline(&upstream, DL, || true).expect("accept");
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                s.set_read_timeout(Some(DL)).expect("timeout");
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                }
            }
            got
        });

        let proxy = ChaosProxy::new(plan, FrameFormat::MPLITE_V2);
        let front = proxy.front(0, 1, up_addr).expect("front");
        let mut client = TcpStream::connect(front).expect("connect front");
        write_all_deadline(&mut client, b"MPv\x02", DL).expect("prelude");
        for f in frames {
            if write_all_deadline(&mut client, f, DL).is_err() {
                break; // truncation killed the connection mid-run
            }
        }
        let _ = client.shutdown(Shutdown::Write);
        let got = sink.join().expect("sink thread");
        let (counters, log) = proxy.finish();
        (got, counters, log)
    }

    #[test]
    fn lossless_plan_is_a_transparent_pipe() {
        let frames = vec![test_frame(1, b"hello"), test_frame(2, &[0xAA; 300])];
        let (got, counters, log) = run_one_direction("seed=1", &frames);
        let mut want = b"MPv\x02".to_vec();
        for f in &frames {
            want.extend_from_slice(f);
        }
        assert_eq!(got, want, "bytes must pass through unharmed");
        assert!(!counters.any(), "{counters}");
        assert!(log.is_empty());
    }

    #[test]
    fn corrupt_flips_exactly_one_bit_per_event() {
        let frames: Vec<_> = (0..50).map(|i| test_frame(i, &[i; 16])).collect();
        let (got, counters, log) = run_one_direction("seed=7,corrupt=0.3", &frames);
        assert!(counters.corrupted > 0, "{counters}");
        assert_eq!(counters.corrupted as usize, log.len());
        let mut want = b"MPv\x02".to_vec();
        for f in &frames {
            want.extend_from_slice(f);
        }
        assert_eq!(got.len(), want.len(), "corruption never changes length");
        let flipped: u32 = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped as u64, counters.corrupted, "one bit per event");
    }

    #[test]
    fn truncate_cuts_the_stream_and_kills_the_connection() {
        let frames: Vec<_> = (0..200).map(|i| test_frame(i as u8, &[7; 32])).collect();
        let (got, counters, _log) = run_one_direction("seed=3,truncate=0.05", &frames);
        assert_eq!(counters.truncated, 1, "first hit ends the run: {counters}");
        let full: usize = 4 + frames.iter().map(Vec::len).sum::<usize>();
        assert!(got.len() < full, "{} of {full} bytes arrived", got.len());
    }

    #[test]
    fn partition_blackholes_only_the_window() {
        // Window covers virtual time [0, 300)us = frames 0, 1 and 2.
        let frames: Vec<_> = (0..6).map(|i| test_frame(i, &[i; 8])).collect();
        let (got, counters, log) = run_one_direction("seed=5,partition=0|1@0us..300us", &frames);
        assert_eq!(counters.partitioned, 3, "{counters}\n{log:?}");
        let mut want = b"MPv\x02".to_vec();
        for f in &frames[3..] {
            want.extend_from_slice(f);
        }
        assert_eq!(got, want, "frames after the window pass untouched");
    }

    #[test]
    fn reorder_swaps_whole_frames() {
        let frames = vec![test_frame(1, b"first"), test_frame(2, b"second")];
        let (got, counters, _log) = run_one_direction("seed=1,reorder-frame", &frames);
        assert_eq!(counters.reordered, 1);
        let mut want = b"MPv\x02".to_vec();
        want.extend_from_slice(&frames[1]);
        want.extend_from_slice(&frames[0]);
        assert_eq!(got, want, "frame 1 overtakes frame 0");
    }

    #[test]
    fn stall_delays_but_delivers() {
        let frames = vec![test_frame(1, b"slow")];
        let (got, counters, _log) = run_one_direction("seed=2,stall=10ms@1", &frames);
        assert_eq!(counters.stalled, 1);
        let mut want = b"MPv\x02".to_vec();
        want.extend_from_slice(&frames[0]);
        assert_eq!(got, want, "stalled frames still arrive intact");
    }

    #[test]
    fn same_seed_same_traffic_same_verdicts() {
        let frames: Vec<_> = (0..80).map(|i| test_frame(i, &[i; 24])).collect();
        let plan = "seed=11,corrupt=0.1,stall=1ms@0.05,reorder-frame=0.1";
        let (got_a, counters_a, log_a) = run_one_direction(plan, &frames);
        let (got_b, counters_b, log_b) = run_one_direction(plan, &frames);
        assert_eq!(counters_a, counters_b);
        assert_eq!(log_a, log_b);
        assert_eq!(got_a, got_b, "byte-identical downstream streams");
        assert!(
            counters_a.any(),
            "the plan must actually fire: {counters_a}"
        );
    }

    #[test]
    fn derived_seeds_differ_per_lane() {
        let s = derive_seed(1, 0, 1, 0, 0);
        assert_ne!(s, derive_seed(1, 0, 1, 1, 0), "directions differ");
        assert_ne!(s, derive_seed(1, 0, 1, 0, 1), "connections differ");
        assert_ne!(s, derive_seed(2, 0, 1, 0, 0), "plan seeds differ");
        assert_eq!(s, derive_seed(1, 0, 1, 0, 0), "pure function");
    }

    #[test]
    fn oversized_declared_length_streams_through_unfaulted() {
        // Declared len over max_frame: proxy must not buffer it, but the
        // bytes still flow (the receiver's bound check owns the verdict).
        let fmt = FrameFormat {
            max_frame: 16,
            ..FrameFormat::MPLITE_V2
        };
        let plan = FaultPlan::parse("seed=1,corrupt=1").expect("plan");
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind");
        let up_addr = upstream.local_addr().expect("addr");
        let sink = std::thread::spawn(move || {
            let mut s = accept_deadline(&upstream, DL, || true).expect("accept");
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                s.set_read_timeout(Some(DL)).expect("timeout");
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                }
            }
            got
        });
        let proxy = ChaosProxy::new(plan, fmt);
        let front = proxy.front(0, 1, up_addr).expect("front");
        let mut client = TcpStream::connect(front).expect("connect");
        let big = test_frame(1, &[0x5A; 64]); // 64 > max_frame of 16
        write_all_deadline(&mut client, b"MPv\x02", DL).expect("prelude");
        write_all_deadline(&mut client, &big, DL).expect("frame");
        client.flush().expect("flush");
        let _ = client.shutdown(Shutdown::Write);
        let got = sink.join().expect("sink");
        let (counters, _log) = proxy.finish();
        let mut want = b"MPv\x02".to_vec();
        want.extend_from_slice(&big);
        assert_eq!(got, want, "oversized frames pass through byte-exact");
        assert_eq!(counters.corrupted, 0, "no faults on refused frames");
    }
}
