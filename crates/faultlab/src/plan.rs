//! The fault plan: a declarative, seeded description of what goes wrong.
//!
//! A plan is deliberately a plain-old-data struct with a flat `key=value`
//! text grammar (`FaultPlan::parse` / `Display` round-trip) so a chaos
//! scenario can ride a command line (`netpipe_cli --faults PLAN`), a CI
//! step, or a test, and mean exactly the same thing everywhere.

use std::fmt;
use std::time::Duration;

use crate::retry::{RetryPolicy, SweepPolicy};

/// A timed window during which the wire runs at a fraction of its rate
/// (cable degradation, duplex mismatch, a congested switch port).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeWindow {
    /// Window start, microseconds of simulated time.
    pub start_us: f64,
    /// Window end, microseconds of simulated time.
    pub end_us: f64,
    /// Remaining fraction of the nominal wire rate in `(0, 1]`.
    pub factor: f64,
}

impl DegradeWindow {
    /// Is `now_us` inside the window?
    pub fn contains(&self, now_us: f64) -> bool {
        now_us >= self.start_us && now_us < self.end_us
    }
}

/// A timed network partition: while active, frames between the two rank
/// groups are silently dropped (a blackhole, not a reset — exactly what
/// a misprogrammed switch ACL does). Used by the byte-level chaos proxy;
/// the clock is the proxy's virtual per-connection frame clock.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// One side of the cut.
    pub a: Vec<usize>,
    /// The other side of the cut.
    pub b: Vec<usize>,
    /// Window start, microseconds.
    pub start_us: f64,
    /// Window end, microseconds.
    pub end_us: f64,
}

impl PartitionWindow {
    /// Is the partition active at `now_us`?
    pub fn active(&self, now_us: f64) -> bool {
        now_us >= self.start_us && now_us < self.end_us
    }

    /// Does a frame between ranks `x` and `y` cross the cut?
    pub fn crosses(&self, x: usize, y: usize) -> bool {
        (self.a.contains(&x) && self.b.contains(&y)) || (self.a.contains(&y) && self.b.contains(&x))
    }
}

/// A scheduled rank death: rank `rank` stops participating at simulated
/// time `at_us`. Unlike the wire faults, a kill is an *endpoint* fault —
/// it never perturbs surviving traffic, so plans whose only clauses are
/// kills still count as lossless on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RankKill {
    /// The rank that dies.
    pub rank: usize,
    /// Simulated time of death, microseconds.
    pub at_us: f64,
}

/// A complete fault-injection and resilience scenario.
///
/// The sim-side knobs (`loss` … `max_retrans`) drive [`crate::FaultLottery`]
/// and the TCP retransmission model; the real-side knobs (`io_deadline`,
/// `retry`, `sweep`, `kill_after`, `kill_listener`) configure socket
/// deadlines, reconnect backoff, per-point sweep budgets, and the
/// kill-the-peer chaos hooks.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed: same seed + same plan ⇒ byte-identical runs.
    pub seed: u64,
    /// Per-segment drop probability in `[0, 1)`.
    pub loss: f64,
    /// Per-segment duplication probability in `[0, 1)` (the duplicate is
    /// discarded by the receiver but still burns wire and receiver time).
    pub dup: f64,
    /// Per-segment reorder probability in `[0, 1)`: the segment is held
    /// back long enough to land behind its successor.
    pub reorder: f64,
    /// Maximum uniform extra delay per segment, microseconds.
    pub jitter_us: f64,
    /// Timed link-degradation windows.
    pub degrade: Vec<DegradeWindow>,
    /// Scheduled rank deaths (`kill-rank=R@T`), at most one per rank.
    pub kills: Vec<RankKill>,
    /// TCP retransmission timeout, microseconds (Linux 2.4's 200 ms
    /// minimum RTO by default — the cliff behind the paper's
    /// large-message dropouts).
    pub rto_us: f64,
    /// Retransmissions of one segment before the connection is declared
    /// dead (the "MVICH run that simply dies").
    pub max_retrans: u32,
    /// Real mode: per-operation socket deadline.
    pub io_deadline: Duration,
    /// Real mode: reconnect/retry backoff policy.
    pub retry: RetryPolicy,
    /// Sweep budget: per-point retries and continue-on-failure.
    pub sweep: SweepPolicy,
    /// Real-mode chaos: the echo peer drops the connection after this
    /// many messages (each accepted connection gets a fresh count).
    pub kill_after: Option<u64>,
    /// Real-mode chaos: after the first kill the peer also stops
    /// accepting, so reconnects fail and the sweep tail degrades.
    pub kill_listener: bool,
    /// Byte-level chaos (proxy): per-frame probability of flipping one
    /// seeded bit anywhere in the frame.
    pub corrupt: f64,
    /// Byte-level chaos (proxy): per-frame probability of forwarding
    /// only a seeded prefix and then dropping the connection — the
    /// receiver sees a mid-frame EOF.
    pub trunc: f64,
    /// Byte-level chaos (proxy): how long a stalled frame is held,
    /// microseconds.
    pub stall_us: f64,
    /// Byte-level chaos (proxy): per-frame probability of stalling for
    /// [`FaultPlan::stall_us`] before forwarding.
    pub stall_rate: f64,
    /// Byte-level chaos (proxy): timed blackhole windows between rank
    /// groups (`partition=0+1|2+3@1ms..4ms`, repeatable).
    pub partitions: Vec<PartitionWindow>,
    /// Byte-level chaos (proxy): per-frame probability of holding a
    /// frame back so it lands *behind* its successor — a whole-frame
    /// reorder, legal for TCP proxies but fatal for FIFO assumptions.
    pub reorder_frame: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            jitter_us: 0.0,
            degrade: Vec::new(),
            kills: Vec::new(),
            rto_us: 200_000.0,
            max_retrans: 6,
            io_deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            sweep: SweepPolicy::default(),
            kill_after: None,
            kill_listener: false,
            corrupt: 0.0,
            trunc: 0.0,
            stall_us: 0.0,
            stall_rate: 0.0,
            partitions: Vec::new(),
            reorder_frame: 0.0,
        }
    }
}

/// A plan string that did not parse, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The token that failed.
    pub token: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault-plan token `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for PlanError {}

fn err(token: &str, reason: impl Into<String>) -> PlanError {
    PlanError {
        token: token.to_string(),
        reason: reason.into(),
    }
}

/// Parse `12us` / `3ms` / `2s` / bare microseconds into microseconds.
fn parse_us(token: &str, v: &str) -> Result<f64, PlanError> {
    let (num, scale) = if let Some(n) = v.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1e3)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1e6)
    } else {
        (v, 1.0)
    };
    let x: f64 = num
        .parse()
        .map_err(|_| err(token, "expected a duration like 50us, 3ms or 2s"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(err(token, "duration must be finite and non-negative"));
    }
    Ok(x * scale)
}

fn parse_prob(token: &str, v: &str) -> Result<f64, PlanError> {
    let p: f64 = v
        .parse()
        .map_err(|_| err(token, "expected a probability in [0, 1]"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err(token, "probability must be in [0, 1]"));
    }
    Ok(p)
}

impl FaultPlan {
    /// Parse the flat `key=value[,key=value...]` grammar.
    ///
    /// Keys: `seed=U64`, `loss=P`, `dup=P`, `reorder=P`, `jitter=DUR`,
    /// `degrade=DUR..DUR@FACTOR` (repeatable), `rto=DUR`, `retrans=N`,
    /// `deadline=DUR`, `retries=N` (per-point sweep budget),
    /// `backoff=DUR` (reconnect base delay), `kill-rank=R@TIME`
    /// (repeatable, at most one clause per rank), `kill-after=N`,
    /// `kill-listener`, plus the byte-level proxy clauses `corrupt=P`,
    /// `truncate=P`, `stall=DUR@P`, `partition=0+1|2+3@DUR..DUR`
    /// (repeatable) and `reorder-frame[=P]` (bare means every frame).
    /// Durations take `us`/`ms`/`s` suffixes (bare numbers are
    /// microseconds). An empty string is the lossless default plan.
    pub fn parse(s: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        for token in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => (token, ""),
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| err(token, "expected an unsigned integer seed"))?;
                }
                "loss" => plan.loss = parse_prob(token, value)?,
                "dup" => plan.dup = parse_prob(token, value)?,
                "reorder" => plan.reorder = parse_prob(token, value)?,
                "jitter" => plan.jitter_us = parse_us(token, value)?,
                "rto" => {
                    plan.rto_us = parse_us(token, value)?;
                    if plan.rto_us <= 0.0 {
                        return Err(err(token, "rto must be positive"));
                    }
                }
                "retrans" => {
                    plan.max_retrans = value
                        .parse()
                        .map_err(|_| err(token, "expected a retransmission count"))?;
                }
                "degrade" => {
                    let (range, factor) = value
                        .split_once('@')
                        .ok_or_else(|| err(token, "expected START..END@FACTOR"))?;
                    let (a, b) = range
                        .split_once("..")
                        .ok_or_else(|| err(token, "expected START..END@FACTOR"))?;
                    let start_us = parse_us(token, a)?;
                    let end_us = parse_us(token, b)?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| err(token, "factor must be a number in (0, 1]"))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(err(token, "factor must be in (0, 1]"));
                    }
                    if end_us <= start_us {
                        return Err(err(token, "window end must be after its start"));
                    }
                    plan.degrade.push(DegradeWindow {
                        start_us,
                        end_us,
                        factor,
                    });
                }
                "deadline" => {
                    plan.io_deadline = Duration::from_micros(parse_us(token, value)? as u64);
                    if plan.io_deadline.is_zero() {
                        return Err(err(token, "deadline must be positive"));
                    }
                }
                "retries" => {
                    plan.sweep.point_retries = value
                        .parse()
                        .map_err(|_| err(token, "expected a per-point retry count"))?;
                }
                "backoff" => {
                    plan.retry.base = Duration::from_micros(parse_us(token, value)? as u64);
                }
                "kill-rank" => {
                    let (r, t) = value
                        .split_once('@')
                        .ok_or_else(|| err(token, "expected RANK@TIME, like kill-rank=3@500us"))?;
                    let rank: usize = r
                        .trim()
                        .parse()
                        .map_err(|_| err(token, "expected an unsigned rank number"))?;
                    let at_us = parse_us(token, t.trim())?;
                    if plan.kills.iter().any(|k| k.rank == rank) {
                        return Err(err(
                            token,
                            format!("rank {rank} is already scheduled to die — one kill per rank"),
                        ));
                    }
                    plan.kills.push(RankKill { rank, at_us });
                }
                "kill-after" => {
                    plan.kill_after = Some(
                        value
                            .parse()
                            .map_err(|_| err(token, "expected a message count"))?,
                    );
                }
                "kill-listener" => plan.kill_listener = true,
                "corrupt" => plan.corrupt = parse_prob(token, value)?,
                "truncate" => plan.trunc = parse_prob(token, value)?,
                "stall" => {
                    let (dur, rate) = value
                        .split_once('@')
                        .ok_or_else(|| err(token, "expected DUR@RATE, like stall=5ms@0.01"))?;
                    plan.stall_us = parse_us(token, dur.trim())?;
                    plan.stall_rate = parse_prob(token, rate.trim())?;
                    if plan.stall_us <= 0.0 && plan.stall_rate > 0.0 {
                        return Err(err(token, "stall duration must be positive"));
                    }
                }
                "partition" => {
                    let (groups, range) = value
                        .split_once('@')
                        .ok_or_else(|| err(token, "expected A+A|B+B@START..END"))?;
                    let (ga, gb) = groups
                        .split_once('|')
                        .ok_or_else(|| err(token, "expected two rank groups split by `|`"))?;
                    let parse_group = |g: &str| -> Result<Vec<usize>, PlanError> {
                        let ranks: Vec<usize> = g
                            .split('+')
                            .map(|r| {
                                r.trim()
                                    .parse()
                                    .map_err(|_| err(token, "ranks must be unsigned integers"))
                            })
                            .collect::<Result<_, _>>()?;
                        if ranks.is_empty() {
                            return Err(err(token, "each side of the cut needs a rank"));
                        }
                        Ok(ranks)
                    };
                    let a = parse_group(ga)?;
                    let b = parse_group(gb)?;
                    if a.iter().any(|r| b.contains(r)) {
                        return Err(err(token, "a rank cannot sit on both sides of the cut"));
                    }
                    let (s, e) = range
                        .split_once("..")
                        .ok_or_else(|| err(token, "expected a START..END window"))?;
                    let start_us = parse_us(token, s.trim())?;
                    let end_us = parse_us(token, e.trim())?;
                    if end_us <= start_us {
                        return Err(err(token, "window end must be after its start"));
                    }
                    plan.partitions.push(PartitionWindow {
                        a,
                        b,
                        start_us,
                        end_us,
                    });
                }
                "reorder-frame" => {
                    plan.reorder_frame = if value.is_empty() {
                        1.0
                    } else {
                        parse_prob(token, value)?
                    };
                }
                _ => return Err(err(token, "unknown key")),
            }
        }
        Ok(plan)
    }

    /// Does the plan inject nothing on the wire? A lossless plan leaves
    /// a simulated run *byte-identical* to one without any plan
    /// installed (no RNG draws, no extra trace records, no timing
    /// perturbation) — an invariant the workspace tests enforce.
    pub fn is_lossless(&self) -> bool {
        self.loss == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.jitter_us == 0.0
            && self.degrade.is_empty()
    }

    /// Does the plan schedule any rank deaths? Kills are endpoint
    /// faults, so they are deliberately *not* part of
    /// [`FaultPlan::is_lossless`] — surviving traffic is unperturbed.
    pub fn has_rank_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// Does the plan ask for byte-level wire chaos? These clauses only
    /// take effect through [`crate::proxy::ChaosProxy`]; the sim lottery
    /// and the real-mode endpoint knobs ignore them, so they do not
    /// factor into [`FaultPlan::is_lossless`].
    pub fn has_byte_faults(&self) -> bool {
        self.corrupt > 0.0
            || self.trunc > 0.0
            || self.stall_rate > 0.0
            || !self.partitions.is_empty()
            || self.reorder_frame > 0.0
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.loss > 0.0 {
            write!(f, ",loss={}", self.loss)?;
        }
        if self.dup > 0.0 {
            write!(f, ",dup={}", self.dup)?;
        }
        if self.reorder > 0.0 {
            write!(f, ",reorder={}", self.reorder)?;
        }
        if self.jitter_us > 0.0 {
            write!(f, ",jitter={}us", self.jitter_us)?;
        }
        for w in &self.degrade {
            write!(f, ",degrade={}us..{}us@{}", w.start_us, w.end_us, w.factor)?;
        }
        if !self.is_lossless() {
            write!(f, ",rto={}us,retrans={}", self.rto_us, self.max_retrans)?;
        }
        for k in &self.kills {
            write!(f, ",kill-rank={}@{}us", k.rank, k.at_us)?;
        }
        if let Some(k) = self.kill_after {
            write!(f, ",kill-after={k}")?;
        }
        if self.kill_listener {
            write!(f, ",kill-listener")?;
        }
        if self.corrupt > 0.0 {
            write!(f, ",corrupt={}", self.corrupt)?;
        }
        if self.trunc > 0.0 {
            write!(f, ",truncate={}", self.trunc)?;
        }
        if self.stall_rate > 0.0 {
            write!(f, ",stall={}us@{}", self.stall_us, self.stall_rate)?;
        }
        for w in &self.partitions {
            let join = |g: &[usize]| {
                g.iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            };
            write!(
                f,
                ",partition={}|{}@{}us..{}us",
                join(&w.a),
                join(&w.b),
                w.start_us,
                w.end_us
            )?;
        }
        if self.reorder_frame > 0.0 {
            write!(f, ",reorder-frame={}", self.reorder_frame)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_lossless_default() {
        let p = FaultPlan::parse("").expect("empty parses");
        assert_eq!(p, FaultPlan::default());
        assert!(p.is_lossless());
    }

    #[test]
    fn full_grammar_round_trips() {
        let s = "seed=42,loss=0.01,dup=0.005,reorder=0.02,jitter=50us,\
                 degrade=1ms..4ms@0.25,rto=2ms,retrans=3,kill-after=10,kill-listener";
        let p = FaultPlan::parse(s).expect("parses");
        assert_eq!(p.seed, 42);
        assert_eq!(p.loss, 0.01);
        assert_eq!(p.jitter_us, 50.0);
        assert_eq!(p.degrade.len(), 1);
        assert_eq!(p.degrade[0].start_us, 1000.0);
        assert_eq!(p.degrade[0].end_us, 4000.0);
        assert_eq!(p.rto_us, 2000.0);
        assert_eq!(p.max_retrans, 3);
        assert_eq!(p.kill_after, Some(10));
        assert!(p.kill_listener);
        // Display → parse is the identity.
        let again = FaultPlan::parse(&p.to_string()).expect("round-trip parses");
        assert_eq!(p, again);
    }

    #[test]
    fn duration_suffixes() {
        let p = FaultPlan::parse("jitter=2ms").expect("ms");
        assert_eq!(p.jitter_us, 2000.0);
        let p = FaultPlan::parse("jitter=1s").expect("s");
        assert_eq!(p.jitter_us, 1e6);
        let p = FaultPlan::parse("jitter=7").expect("bare us");
        assert_eq!(p.jitter_us, 7.0);
    }

    #[test]
    fn real_mode_knobs() {
        let p = FaultPlan::parse("deadline=250ms,retries=4,backoff=10ms").expect("parses");
        assert_eq!(p.io_deadline, Duration::from_millis(250));
        assert_eq!(p.sweep.point_retries, 4);
        assert_eq!(p.retry.base, Duration::from_millis(10));
    }

    #[test]
    fn bad_tokens_are_rejected_with_context() {
        for bad in [
            "loss=1.5",
            "loss=x",
            "seed=-1",
            "degrade=5ms..1ms@0.5",
            "degrade=1ms..2ms@0",
            "degrade=1ms..2ms@1.5",
            "degrade=broken",
            "jitter=-3us",
            "rto=0",
            "deadline=0",
            "nonsense=1",
            "kill-rank=3",
            "kill-rank=x@1ms",
            "kill-rank=3@never",
            "corrupt=2",
            "truncate=-0.1",
            "stall=5ms",
            "stall=0@0.5",
            "partition=0+1@1ms..2ms",
            "partition=0|1@5ms..1ms",
            "partition=0+1|1+2@1ms..2ms",
            "partition=|1@1ms..2ms",
            "partition=a|b@1ms..2ms",
            "reorder-frame=1.5",
        ] {
            let e = FaultPlan::parse(bad).expect_err(bad);
            assert!(e.to_string().contains('`'), "{e}");
        }
    }

    #[test]
    fn kill_rank_clauses_repeat_and_round_trip() {
        let p = FaultPlan::parse("seed=7,kill-rank=3@500us,kill-rank=11@2ms").expect("parses");
        assert_eq!(
            p.kills,
            vec![
                RankKill {
                    rank: 3,
                    at_us: 500.0
                },
                RankKill {
                    rank: 11,
                    at_us: 2000.0
                },
            ]
        );
        assert!(p.has_rank_kills());
        // Kills are endpoint faults: the wire is still lossless.
        assert!(p.is_lossless());
        let again = FaultPlan::parse(&p.to_string()).expect("round-trip parses");
        assert_eq!(p, again);
    }

    #[test]
    fn duplicate_rank_kill_is_a_typed_parse_error() {
        let e = FaultPlan::parse("kill-rank=3@1ms,kill-rank=3@2ms").expect_err("must reject");
        assert_eq!(e.token, "kill-rank=3@2ms");
        assert!(e.reason.contains("one kill per rank"), "{e}");
    }

    #[test]
    fn byte_fault_clauses_parse_and_round_trip() {
        let s = "seed=9,corrupt=0.02,truncate=0.01,stall=3ms@0.05,\
                 partition=0+1|2+3@1ms..4ms,partition=0|3@6ms..7ms,reorder-frame=0.1";
        let p = FaultPlan::parse(s).expect("parses");
        assert_eq!(p.corrupt, 0.02);
        assert_eq!(p.trunc, 0.01);
        assert_eq!(p.stall_us, 3000.0);
        assert_eq!(p.stall_rate, 0.05);
        assert_eq!(p.partitions.len(), 2);
        assert_eq!(p.partitions[0].a, vec![0, 1]);
        assert_eq!(p.partitions[0].b, vec![2, 3]);
        assert_eq!(p.partitions[0].start_us, 1000.0);
        assert_eq!(p.partitions[0].end_us, 4000.0);
        assert_eq!(p.reorder_frame, 0.1);
        assert!(p.has_byte_faults());
        // Byte faults ride the proxy, not the sim wire: still lossless.
        assert!(p.is_lossless());
        let again = FaultPlan::parse(&p.to_string()).expect("round-trip parses");
        assert_eq!(p, again);
    }

    #[test]
    fn bare_reorder_frame_means_every_frame() {
        let p = FaultPlan::parse("reorder-frame").expect("parses");
        assert_eq!(p.reorder_frame, 1.0);
        assert!(p.has_byte_faults());
        assert!(!FaultPlan::parse("seed=5,kill-after=3")
            .expect("ok")
            .has_byte_faults());
    }

    #[test]
    fn partition_windows_know_their_cut_and_clock() {
        let w = PartitionWindow {
            a: vec![0, 1],
            b: vec![2, 3],
            start_us: 100.0,
            end_us: 200.0,
        };
        assert!(w.crosses(0, 2));
        assert!(w.crosses(3, 1), "cut is symmetric");
        assert!(!w.crosses(0, 1), "same side never crosses");
        assert!(!w.crosses(0, 7), "outsiders pass");
        assert!(!w.active(99.9));
        assert!(w.active(100.0));
        assert!(!w.active(200.0));
    }

    #[test]
    fn degrade_window_containment() {
        let w = DegradeWindow {
            start_us: 10.0,
            end_us: 20.0,
            factor: 0.5,
        };
        assert!(!w.contains(9.9));
        assert!(w.contains(10.0));
        assert!(w.contains(19.9));
        assert!(!w.contains(20.0));
    }

    #[test]
    fn lossless_detection_per_knob() {
        for s in [
            "loss=0.1",
            "dup=0.1",
            "reorder=0.1",
            "jitter=1us",
            "degrade=0..1ms@0.5",
        ] {
            assert!(!FaultPlan::parse(s).expect(s).is_lossless(), "{s}");
        }
        assert!(FaultPlan::parse("seed=9,retries=3")
            .expect("ok")
            .is_lossless());
    }
}
