//! Retry and degradation policies: bounded exponential backoff for real
//! sockets, per-point budgets for measurement sweeps.

use std::time::Duration;

/// Bounded exponential backoff.
///
/// Attempt `k` (0-based) sleeps `min(base * factor^k, cap)`; after
/// `max_attempts` failed attempts the operation gives up. The defaults
/// (4 attempts, 50 ms base, ×2, 1 s cap) keep a dead peer from stalling
/// a sweep for more than a couple of seconds while still riding out a
/// restarting one.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Multiplier per subsequent attempt.
    pub factor: f64,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            factor: 2.0,
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.factor.powi(attempt.min(62) as i32);
        let nanos = self.base.as_secs_f64() * exp;
        // A saturating conversion: overflow clamps at the cap.
        if !nanos.is_finite() || nanos >= self.cap.as_secs_f64() {
            self.cap
        } else {
            Duration::from_secs_f64(nanos)
        }
    }

    /// Run `op` up to `max_attempts` times, sleeping the backoff between
    /// attempts. Returns the first success or the last error.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff(attempt));
                    }
                }
            }
        }
        // lint:allow(expect) -- attempts >= 1, so the loop body ran and set last_err
        Err(last_err.expect("retry loop ran at least once"))
    }
}

/// Per-point budget for a measurement sweep (graceful degradation).
///
/// A failing size point is retried up to `point_retries` times (with a
/// driver `recover()` between tries); a point that then succeeds is
/// marked *degraded*, one that does not is marked *failed*, and — when
/// `continue_on_failure` — the sweep carries on and emits a partial,
/// annotated report instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Extra attempts per failing point.
    pub point_retries: u32,
    /// Keep sweeping past a failed point (partial report) instead of
    /// propagating the error.
    pub continue_on_failure: bool,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            point_retries: 2,
            continue_on_failure: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            factor: 2.0,
            cap: Duration::from_millis(100),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(5), Duration::from_millis(100));
        assert_eq!(p.backoff(62), Duration::from_millis(100));
        assert_eq!(p.backoff(u32::MAX), Duration::from_millis(100));
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_micros(1),
            factor: 1.0,
            cap: Duration::from_micros(1),
        };
        let mut calls = 0;
        let out: Result<u32, &str> = p.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_returns_last_error_when_exhausted() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(1),
            factor: 1.0,
            cap: Duration::from_micros(1),
        };
        let out: Result<(), u32> = p.run(|attempt| Err(attempt));
        assert_eq!(out, Err(2));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let out: Result<u32, &str> = p.run(|_| Ok(7));
        assert_eq!(out, Ok(7));
    }
}
