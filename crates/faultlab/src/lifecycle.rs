//! The segment RTO/retransmit/conn-death lifecycle, as an explicit
//! protocol specification.
//!
//! `protosim::tcp` drives every faulted segment through this machine:
//! a segment in flight faces the fault lottery; a drop parks the sender
//! in the RTO wait, from which it either retransmits (and faces the
//! lottery afresh) or — once `max_retrans` attempts are burned — kills
//! the connection for good. The spec below is the single source of
//! record; `xtask analyze`'s `protocol-*` rules cross-check the match
//! arms in `protosim::tcp::pump` against it.

protospec::protocol! {
    /// Per-segment fault lifecycle (Linux 2.4 TCP semantics: fixed RTO,
    /// bounded retransmissions, then the connection declares itself
    /// dead rather than deadlock the sweep).
    ///
    /// Events are internal (`~`): the peer never sees drops or timer
    /// expiries, only the delivered copy.
    pub SegLifeState of faultlab.segment;
    states InFlight, RtoWait, Delivered, Dead;
    terminal Delivered, Dead;
    InFlight --deliver~--> Delivered;
    InFlight --drop~--> RtoWait;
    RtoWait --retransmit~--> InFlight;
    RtoWait --exhaust~--> Dead;
}

#[cfg(test)]
mod tests {
    use super::SegLifeState;

    #[test]
    fn spec_is_well_formed() {
        let spec = SegLifeState::spec();
        assert!(spec.check().is_empty(), "{:?}", spec.check());
        assert_eq!(spec.name, "faultlab.segment");
        assert_eq!(SegLifeState::initial(), SegLifeState::InFlight);
    }

    #[test]
    fn lifecycle_paths_follow_the_table() {
        // Happy path.
        let s = SegLifeState::initial().step("deliver").expect("edge");
        assert!(s.is_terminal());
        // Drop → retransmit → deliver.
        let s = SegLifeState::InFlight
            .step("drop")
            .and_then(|s| s.step("retransmit"))
            .and_then(|s| s.step("deliver"))
            .expect("declared chain");
        assert_eq!(s, SegLifeState::Delivered);
        // Exhaustion is terminal and absorbing.
        let dead = SegLifeState::RtoWait.step("exhaust").expect("edge");
        assert_eq!(dead, SegLifeState::Dead);
        assert!(dead.is_terminal());
        assert!(dead.step("retransmit").is_err());
    }

    #[test]
    fn typestate_chain_compiles_for_the_happy_and_retry_paths() {
        use super::{InFlight, RtoWait};
        let _delivered = InFlight.deliver();
        let w: RtoWait = InFlight.drop();
        let _delivered = w.retransmit().deliver();
        let _dead = InFlight.drop().exhaust();
    }
}
