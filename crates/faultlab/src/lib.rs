//! # faultlab — deterministic fault injection and resilience policies
//!
//! The paper's most interesting curves are *failure signatures*: TCP
//! throughput dropouts at large message sizes, socket-buffer-dependent
//! stalls, MVICH runs that simply die. A perfect lossless fabric cannot
//! reproduce any of them, and a real-mode driver that blocks forever on a
//! dead peer cannot survive them. This crate supplies both halves of the
//! fix:
//!
//! * **Sim side** — a [`FaultPlan`] describes packet loss, duplication,
//!   reordering, delay jitter and timed link-degradation windows. A
//!   [`FaultLottery`] (seeded through [`simcore::SimRng`]) turns the plan
//!   into per-segment decisions, fully deterministically: the same seed
//!   and plan produce byte-identical sweeps and traces. `protosim`
//!   consults the lottery on every wire crossing and models TCP
//!   retransmission timeouts on loss.
//! * **Real side** — a [`RetryPolicy`] (bounded exponential backoff) and
//!   deadline-bounded socket I/O helpers ([`io`]) so `netpipe::real_tcp`
//!   and `mplite` never block forever on a dead peer, plus a
//!   [`SweepPolicy`] giving `netpipe::runner` per-point budgets for
//!   graceful degradation (retry, then mark the point `degraded`/`failed`
//!   and continue).
//!
//! Everything is dependency-free and the plan grammar is a flat
//! `key=value` list so fault scenarios travel on a command line:
//!
//! ```
//! use faultlab::FaultPlan;
//! let plan = FaultPlan::parse("seed=7,loss=0.02,jitter=50us,degrade=1ms..4ms@0.25")
//!     .expect("plan parses");
//! assert_eq!(plan.seed, 7);
//! assert!(!plan.is_lossless());
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod io;
pub mod lifecycle;
pub mod lottery;
pub mod plan;
pub mod proxy;
pub mod retry;

pub use counters::FaultCounters;
pub use lifecycle::SegLifeState;
pub use lottery::{FaultLottery, SegFault};
pub use plan::{DegradeWindow, FaultPlan, PartitionWindow, PlanError, RankKill};
pub use proxy::{ChaosProxy, FaultEvent, FrameFormat};
pub use retry::{RetryPolicy, SweepPolicy};
