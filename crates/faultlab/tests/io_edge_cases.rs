//! Edge-case coverage for the deadline-bounded I/O helpers: zero and
//! already-elapsed deadlines, partial progress followed by silence, the
//! byte-counting reader's accounting, and retry-policy exhaustion.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use faultlab::io::{
    accept_deadline, connect_retry, is_timeout, read_exact_counted, read_exact_deadline,
    write_all_deadline,
};
use faultlab::RetryPolicy;

fn pair() -> (TcpStream, TcpStream, TcpListener) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    (client, server, listener)
}

#[test]
fn zero_deadline_read_fails_immediately_not_eventually() {
    let (mut client, _server, _l) = pair();
    let mut buf = [0u8; 8];
    let start = Instant::now();
    let err = read_exact_deadline(&mut client, &mut buf, Duration::ZERO)
        .expect_err("zero budget, no bytes");
    assert!(is_timeout(&err), "{err}");
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "a zero deadline must not wait: {:?}",
        start.elapsed()
    );
    // Socket state restored: a real deadline still works afterwards.
    assert_eq!(client.read_timeout().expect("query"), None);
}

#[test]
fn zero_deadline_write_fails_immediately() {
    let (mut client, _server, _l) = pair();
    let err = write_all_deadline(&mut client, &[0u8; 16], Duration::ZERO)
        .expect_err("zero budget, no write");
    assert!(is_timeout(&err), "{err}");
    assert_eq!(client.write_timeout().expect("query"), None);
}

#[test]
fn zero_deadline_accept_fails_immediately() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let start = Instant::now();
    let err =
        accept_deadline(&listener, Duration::ZERO, || true).expect_err("zero budget, no accept");
    assert!(is_timeout(&err), "{err}");
    assert!(start.elapsed() < Duration::from_millis(200));
}

#[test]
fn partial_read_then_stall_times_out_with_the_deadline_message() {
    let (mut client, mut server, _l) = pair();
    server.write_all(b"abc").expect("partial write");
    server.flush().expect("flush");
    let mut buf = [0u8; 8];
    let err = read_exact_deadline(&mut client, &mut buf, Duration::from_millis(60))
        .expect_err("3 of 8 bytes, then silence");
    assert!(is_timeout(&err), "{err}");
    assert!(err.to_string().contains("deadline"), "{err}");
    // The partial bytes were consumed, not lost: keep the connection and
    // finish the read once the peer wakes up.
    server.write_all(b"defgh").expect("rest");
    let mut rest = [0u8; 5];
    read_exact_deadline(&mut client, &mut rest, Duration::from_secs(2)).expect("completes");
    assert_eq!(&rest, b"defgh");
}

#[test]
fn counted_read_reports_partial_progress_on_stall_and_on_eof() {
    // Stall: 3 bytes arrive, then nothing.
    let (mut client, mut server, _l) = pair();
    server.write_all(b"xyz").expect("partial");
    server.flush().expect("flush");
    let mut buf = [0u8; 10];
    let (got, err) = read_exact_counted(&mut client, &mut buf, Duration::from_millis(60))
        .expect_err("stalled mid-read");
    assert_eq!(got, 3, "must report exactly the bytes that arrived");
    assert!(is_timeout(&err), "{err}");
    assert_eq!(&buf[..3], b"xyz");

    // EOF: 5 bytes arrive, then the peer dies.
    let (mut client, mut server, _l) = pair();
    server.write_all(b"hello").expect("partial");
    drop(server);
    let mut buf = [0u8; 24];
    let (got, err) = read_exact_counted(&mut client, &mut buf, Duration::from_secs(2))
        .expect_err("peer died mid-read");
    assert_eq!(got, 5, "truncation verdicts need the exact count");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
}

#[test]
fn counted_read_succeeds_like_the_plain_helper() {
    let (mut client, mut server, _l) = pair();
    server.write_all(b"complete").expect("write");
    let mut buf = [0u8; 8];
    read_exact_counted(&mut client, &mut buf, Duration::from_secs(2)).expect("all bytes present");
    assert_eq!(&buf, b"complete");
    assert_eq!(
        client.read_timeout().expect("query"),
        None,
        "state restored"
    );
}

#[test]
fn connect_retry_exhausts_the_policy_with_counted_attempts() {
    // Bind-then-drop: the port was just free, so connects fail fast.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(1),
        factor: 2.0,
        cap: Duration::from_millis(4),
    };
    let attempts = AtomicU32::new(0);
    let result = policy.run(|_| {
        attempts.fetch_add(1, Ordering::SeqCst);
        TcpStream::connect_timeout(&addr, Duration::from_millis(50))
    });
    assert!(result.is_err(), "a dead port never connects");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        3,
        "the policy must spend its whole budget, then stop"
    );
    // And the public wrapper behaves the same way.
    assert!(connect_retry(addr, Duration::from_millis(50), &policy).is_err());
}
