//! # hwmodel — the CLUSTER 2002 testbed as data
//!
//! Parameterized models of every piece of hardware in Turner & Chen's
//! measurement study: the NICs (four Gigabit Ethernet families, Myrinet
//! PCI64A, Giganet cLAN), the PCI buses, the two host types (P4 PC and
//! Compaq DS20 Alpha), the Linux 2.2/2.4 kernels, and the two-node
//! cluster configurations of each figure.
//!
//! These are *pure data* — the protocol simulations in `protosim` turn
//! them into discrete-event pipelines. Every parameter is documented with
//! the paper mechanism it encodes; DESIGN.md §4 records the calibration.
//!
//! When a trace sink is installed (see `tracelab` and DESIGN.md §10),
//! each hardware unit described here — every host's CPU, PCI bus, and
//! NIC channels, and each wire direction — becomes one timeline *track*
//! in the recorded trace, so a [`ClusterSpec`]'s shape is also the
//! shape of its trace. The track numbering and labels live next to the
//! pipelines in `protosim` (`cpu_track`, `pci_track`, `nic_track`,
//! `wire_track`, `track_label`).

#![warn(missing_docs)]

pub mod cluster;
pub mod host;
pub mod kernel;
pub mod nic;

pub use cluster::ClusterSpec;
pub use host::{CpuModel, HostModel, PciModel};
pub use kernel::KernelModel;
pub use nic::{LinkKind, NicModel};

/// Convenience namespace mirroring the paper's testbeds.
pub mod presets {
    pub use crate::cluster::{
        ds20s_ga622, ds20s_syskonnect_jumbo, pcs_fast_ethernet, pcs_fast_ethernet_dual, pcs_ga620,
        pcs_ga620_dual, pcs_giganet, pcs_mvia_syskonnect, pcs_myrinet, pcs_syskonnect,
        pcs_syskonnect_jumbo, pcs_trendnet,
    };
    pub use crate::host::{compaq_ds20, pc_pentium4};
    pub use crate::kernel::{linux_2_2, linux_2_4, linux_2_4_2_mvia};
    pub use crate::nic::{
        all_ethernet, fast_ethernet, giganet_clan, myrinet_pci64a, netgear_ga620, netgear_ga622,
        netgear_ga622_new_driver, syskonnect_sk9843, syskonnect_sk9843_jumbo, trendnet_teg_pcitx,
    };
}
