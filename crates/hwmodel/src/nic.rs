//! Network interface card models.
//!
//! One preset per card family the paper tests (§2, §4–§6). Each parameter
//! maps onto a mechanism the paper names:
//!
//! * `nic_pkt_us` / `nic_byte_rate` — the NIC + driver per-frame pipeline
//!   stage. This is what separates a $55 TrendNet from a $565 SysKonnect
//!   at the same 1 Gb/s wire speed, and what the 66 MHz LANai RISC
//!   processor caps on Myrinet.
//! * `rx_coalesce_us` — receive interrupt mitigation: the dominant term of
//!   the "poor" 100+ µs small-message latencies the paper measures on the
//!   GigE cards under Linux 2.4.
//! * `ack_delay_us` — how long transmitted bytes stay unacknowledged after
//!   delivery (TX-descriptor recycling + delayed window updates). Together
//!   with the socket-buffer size this produces the paper's central effect:
//!   default buffers flatten the TrendNet cards at ~290 Mbps, and the
//!   hardwired 32 kB TCGMSG buffer caps the DS20/jumbo configuration.
//! * `driver_cap_bps` — immature-driver throughput ceiling (the Netgear
//!   GA622 is "poor even for raw TCP" in §7).

use simcore::units::{gbps_to_bytes_per_sec, mbps_to_bytes_per_sec, mbytes_to_bytes_per_sec};

/// Physical-layer family of a NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// IEEE 802.3 Ethernet (Fast or Gigabit).
    Ethernet,
    /// Myricom Myrinet (source-routed, cut-through).
    Myrinet,
    /// Giganet cLAN (hardware VIA).
    Giganet,
}

/// A network interface card plus its driver, as a set of pipeline-stage
/// costs. All rates are bytes/second; all times are microseconds.
#[derive(Debug, Clone)]
pub struct NicModel {
    /// Marketing name as used in the paper.
    pub name: &'static str,
    /// Link family.
    pub kind: LinkKind,
    /// Raw signalling rate of the wire in bytes/second.
    pub wire_bps: f64,
    /// Maximum transmission unit (payload bytes per frame). For Ethernet
    /// this is the IP MTU (1500, or 9000 with jumbo frames); message-based
    /// fabrics (GM, VIA) use their native packet size.
    pub mtu: u32,
    /// Per-frame wire overhead outside the MTU: preamble + interframe gap
    /// + MAC header + FCS for Ethernet.
    pub framing_bytes: u32,
    /// Fixed NIC+driver processing cost per frame (firmware, descriptor
    /// handling), microseconds.
    pub nic_pkt_us: f64,
    /// NIC DMA engine streaming rate, bytes/second (`f64::INFINITY` when
    /// the DMA engine is never the bottleneck).
    pub nic_byte_rate: f64,
    /// Receive interrupt-coalescing delay, microseconds (latency term).
    pub rx_coalesce_us: f64,
    /// Delay between a byte being delivered and the sender's socket-buffer
    /// space being reclaimed, microseconds (window-recycle term).
    pub ack_delay_us: f64,
    /// Hard throughput ceiling from an immature driver, bytes/second.
    pub driver_cap_bps: Option<f64>,
    /// Whether the card can use a 64-bit PCI slot.
    pub pci_64bit: bool,
    /// Fraction of the PCI bus's theoretical burst rate this card's DMA
    /// engine sustains. The Myrinet/Giganet engines use long bursts
    /// (~0.80); the 2002 GigE cards manage ~0.68 — which is why raw GM
    /// reaches 800 Mbps on the same 32-bit slot that caps SysKonnect
    /// jumbo-frame TCP at ~710 Mbps (§4, §5).
    pub dma_eff: f64,
    /// Approximate 2002 street price per card, USD (the paper quotes these
    /// to frame the price/performance discussion).
    pub price_usd: u32,
}

impl NicModel {
    /// Total bytes a frame with `payload` bytes of user data occupies on
    /// the wire, including protocol headers carried in-band (`headers`)
    /// and out-of-band framing.
    pub fn wire_bytes(&self, payload: u32, headers: u32) -> u32 {
        payload + headers + self.framing_bytes
    }

    /// Maximum user payload per frame when `headers` bytes of protocol
    /// headers ride inside the MTU (the TCP MSS for Ethernet).
    pub fn mss(&self, headers: u32) -> u32 {
        self.mtu.saturating_sub(headers).max(1)
    }

    /// Effective payload throughput of the *wire* stage alone, in
    /// bytes/second, for full-MTU frames carrying `headers` bytes of
    /// protocol headers inside the MTU.
    pub fn wire_payload_rate(&self, headers: u32) -> f64 {
        let total = f64::from(self.mtu + self.framing_bytes);
        self.wire_bps * f64::from(self.mss(headers)) / total
    }
}

/// Ethernet framing overhead: preamble(8) + IFG(12) + MAC header(14) + FCS(4).
pub const ETH_FRAMING: u32 = 38;
/// TCP/IP header bytes carried inside each frame (20 + 20 + 12 bytes of
/// timestamp options — Linux 2.4 enables timestamps by default, giving the
/// classic 1448-byte MSS).
pub const TCPIP_HEADERS: u32 = 52;

/// Netgear GA620 fiber Gigabit Ethernet (AceNIC/acenic driver, $220).
///
/// The paper's "mature hardware and drivers at a modest price" (fig. 1
/// testbed). Firmware-based NIC: moderate per-frame cost, high coalescing.
pub fn netgear_ga620() -> NicModel {
    NicModel {
        name: "Netgear GA620 fiber GigE",
        kind: LinkKind::Ethernet,
        wire_bps: gbps_to_bytes_per_sec(1.0),
        mtu: 1500,
        framing_bytes: ETH_FRAMING,
        nic_pkt_us: 19.0,
        nic_byte_rate: f64::INFINITY,
        rx_coalesce_us: 62.0,
        ack_delay_us: 50.0,
        driver_cap_bps: None,
        pci_64bit: true,
        dma_eff: 0.68,
        price_usd: 220,
    }
}

/// TrendNet TEG-PCITX copper Gigabit Ethernet (ns83820 driver, $55).
///
/// "The new wave of low cost GigE NICs" (fig. 2 testbed). Same wire speed
/// as the GA620 but a slow descriptor/ack recycle: it *needs* 512 kB
/// socket buffers, flattening at ~290 Mbps with the kernel defaults.
pub fn trendnet_teg_pcitx() -> NicModel {
    NicModel {
        name: "TrendNet TEG-PCITX copper GigE",
        kind: LinkKind::Ethernet,
        wire_bps: gbps_to_bytes_per_sec(1.0),
        mtu: 1500,
        framing_bytes: ETH_FRAMING,
        nic_pkt_us: 19.0,
        nic_byte_rate: f64::INFINITY,
        rx_coalesce_us: 47.0,
        ack_delay_us: 855.0,
        driver_cap_bps: None,
        pci_64bit: false,
        dma_eff: 0.68,
        price_usd: 55,
    }
}

/// Netgear GA622 copper Gigabit Ethernet ($90).
///
/// Identical silicon to the TrendNet but keyed for 64-bit PCI; the paper
/// found it "poor even for raw TCP" with the contemporary ns83820 driver
/// (§7), improving with the pre-2.4.13 drivers — modeled as a raw driver
/// ceiling that the `newer_driver` variant lifts.
pub fn netgear_ga622() -> NicModel {
    NicModel {
        name: "Netgear GA622 copper GigE",
        kind: LinkKind::Ethernet,
        wire_bps: gbps_to_bytes_per_sec(1.0),
        mtu: 1500,
        framing_bytes: ETH_FRAMING,
        nic_pkt_us: 19.0,
        nic_byte_rate: f64::INFINITY,
        rx_coalesce_us: 47.0,
        ack_delay_us: 855.0,
        driver_cap_bps: Some(mbps_to_bytes_per_sec(300.0)),
        pci_64bit: true,
        dma_eff: 0.68,
        price_usd: 90,
    }
}

/// Netgear GA622 with the improved ns83820/gam drivers from the
/// pre-2.4.13 kernels (§7: "show improved performance and stability").
pub fn netgear_ga622_new_driver() -> NicModel {
    NicModel {
        name: "Netgear GA622 (new driver)",
        driver_cap_bps: None,
        ack_delay_us: 300.0,
        ..netgear_ga622()
    }
}

/// SysKonnect SK-9843 Gigabit Ethernet (sk98lin driver, $565), standard
/// 1500-byte MTU.
pub fn syskonnect_sk9843() -> NicModel {
    NicModel {
        name: "SysKonnect SK-9843 GigE",
        kind: LinkKind::Ethernet,
        wire_bps: gbps_to_bytes_per_sec(1.0),
        mtu: 1500,
        framing_bytes: ETH_FRAMING,
        nic_pkt_us: 11.0,
        nic_byte_rate: f64::INFINITY,
        rx_coalesce_us: 7.0,
        ack_delay_us: 80.0,
        driver_cap_bps: None,
        pci_64bit: true,
        dma_eff: 0.68,
        price_usd: 565,
    }
}

/// SysKonnect SK-9843 with 9000-byte jumbo frames enabled — the paper's
/// high-bandwidth configuration (fig. 3): "very low latency and … high
/// bandwidth when jumbo frames of 9000 byte MTU size are enabled".
pub fn syskonnect_sk9843_jumbo() -> NicModel {
    NicModel {
        name: "SysKonnect SK-9843 GigE (9000 MTU)",
        mtu: 9000,
        ..syskonnect_sk9843()
    }
}

/// Myricom Myrinet PCI64A-2 (66 MHz LANai RISC processor, $1000 + switch).
///
/// OS-bypass message fabric (fig. 4): the slower 66 MHz LANai caps the
/// card around 800 Mbps; GM latency is 16 µs in polling mode.
pub fn myrinet_pci64a() -> NicModel {
    NicModel {
        name: "Myrinet PCI64A-2",
        kind: LinkKind::Myrinet,
        wire_bps: gbps_to_bytes_per_sec(1.28),
        mtu: 4096,
        framing_bytes: 16,
        nic_pkt_us: 5.0,
        nic_byte_rate: mbytes_to_bytes_per_sec(120.0),
        rx_coalesce_us: 0.0,
        ack_delay_us: 0.0,
        driver_cap_bps: None,
        pci_64bit: true,
        dma_eff: 0.80,
        price_usd: 1000,
    }
}

/// Giganet (Emulex) cLAN 1000 hardware-VIA card ($650 + $800/port switch).
///
/// Fig. 5: ~800 Mbps through an 8-port cLAN switch with ~10 µs latency for
/// the lean libraries.
pub fn giganet_clan() -> NicModel {
    NicModel {
        name: "Giganet cLAN",
        kind: LinkKind::Giganet,
        wire_bps: gbps_to_bytes_per_sec(1.25),
        mtu: 4096,
        framing_bytes: 16,
        nic_pkt_us: 2.5,
        nic_byte_rate: mbytes_to_bytes_per_sec(115.0),
        rx_coalesce_us: 0.0,
        ack_delay_us: 0.0,
        driver_cap_bps: None,
        pci_64bit: false,
        dma_eff: 0.80,
        price_usd: 650,
    }
}

/// 100 Mb/s Fast Ethernet — the "established technology" reference the
/// paper contrasts with GigE ("you cannot just slap in a Gigabit Ethernet
/// card and expect decent performance like you can with … Fast Ethernet").
pub fn fast_ethernet() -> NicModel {
    NicModel {
        name: "Fast Ethernet 100BASE-TX",
        kind: LinkKind::Ethernet,
        wire_bps: mbps_to_bytes_per_sec(100.0),
        mtu: 1500,
        framing_bytes: ETH_FRAMING,
        nic_pkt_us: 4.0,
        nic_byte_rate: f64::INFINITY,
        rx_coalesce_us: 20.0,
        ack_delay_us: 40.0,
        driver_cap_bps: None,
        pci_64bit: false,
        dma_eff: 0.68,
        price_usd: 15,
    }
}

/// All Ethernet NIC presets (for sweep-style tests and examples).
pub fn all_ethernet() -> Vec<NicModel> {
    vec![
        netgear_ga620(),
        trendnet_teg_pcitx(),
        netgear_ga622(),
        netgear_ga622_new_driver(),
        syskonnect_sk9843(),
        syskonnect_sk9843_jumbo(),
        fast_ethernet(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::bytes_per_sec_to_mbps;

    #[test]
    fn wire_bytes_includes_framing_and_headers() {
        let nic = netgear_ga620();
        assert_eq!(nic.wire_bytes(1448, TCPIP_HEADERS), 1448 + 52 + 38);
        assert_eq!(nic.mss(TCPIP_HEADERS), 1448);
    }

    #[test]
    fn wire_payload_rate_below_signalling_rate() {
        for nic in all_ethernet() {
            let rate = nic.wire_payload_rate(TCPIP_HEADERS);
            assert!(
                rate < nic.wire_bps,
                "{}: payload rate must be below wire rate",
                nic.name
            );
            assert!(
                rate > 0.85 * nic.wire_bps,
                "{}: framing too costly",
                nic.name
            );
        }
    }

    #[test]
    fn gige_wire_goodput_is_about_941_mbps() {
        let nic = netgear_ga620();
        let mbps = bytes_per_sec_to_mbps(nic.wire_payload_rate(TCPIP_HEADERS));
        assert!((935.0..947.0).contains(&mbps), "{mbps}");
    }

    #[test]
    fn jumbo_frames_raise_wire_goodput() {
        let std = syskonnect_sk9843();
        let jumbo = syskonnect_sk9843_jumbo();
        assert!(jumbo.wire_payload_rate(TCPIP_HEADERS) > std.wire_payload_rate(TCPIP_HEADERS));
        let mbps = bytes_per_sec_to_mbps(jumbo.wire_payload_rate(TCPIP_HEADERS));
        assert!(mbps > 985.0, "jumbo goodput {mbps}");
    }

    #[test]
    fn trendnet_is_the_slow_ack_card() {
        // The paper's central fig-2 pathology: TrendNet needs big buffers.
        assert!(trendnet_teg_pcitx().ack_delay_us > 5.0 * netgear_ga620().ack_delay_us);
    }

    #[test]
    fn ga622_has_driver_cap_until_new_driver() {
        assert!(netgear_ga622().driver_cap_bps.is_some());
        assert!(netgear_ga622_new_driver().driver_cap_bps.is_none());
    }

    #[test]
    fn proprietary_fabrics_have_low_latency_terms() {
        for nic in [myrinet_pci64a(), giganet_clan()] {
            assert_eq!(nic.rx_coalesce_us, 0.0, "{}", nic.name);
            assert!(nic.nic_pkt_us < 6.0, "{}", nic.name);
        }
    }

    #[test]
    fn syskonnect_is_premium_low_latency() {
        let sk = syskonnect_sk9843();
        let tn = trendnet_teg_pcitx();
        assert!(sk.rx_coalesce_us < tn.rx_coalesce_us);
        assert!(sk.price_usd > 10 * tn.price_usd);
    }
}
