//! Operating-system kernel models.
//!
//! The paper runs RedHat 7.2 with Linux 2.4.x for everything except the
//! M-VIA tests (2.4.2 kernel) and "some tests with the older kernel to
//! determine the difference in performance" (§2). Two kernel-level
//! behaviours matter to the measurements:
//!
//! * an extra receive-path wakeup cost in 2.4 relative to 2.2 — the paper
//!   calls the 2.4 GigE latencies "poor";
//! * the delayed-ACK interaction with *small* socket buffers: when the
//!   send buffer is well below the bandwidth-delay envelope, each window
//!   fill strands a sub-MSS tail segment that the receiver acknowledges
//!   only on its delayed-ACK timer. This is the mechanism behind MPICH's
//!   default `P4_SOCKBUFSIZE=32 kB` collapsing to ~75 Mbps (§4.1).
//!
//! The model also records the `net.core.rmem_max`/`wmem_max` sysctl
//! ceiling, which MP_Lite raises to get raw-TCP performance (§3.4).

use simcore::units::kib;

/// Kernel-dependent parameters of the TCP path.
#[derive(Debug, Clone)]
pub struct KernelModel {
    /// Version string.
    pub name: &'static str,
    /// Extra receive-path wakeup latency vs. the 2.2 baseline, µs.
    pub rx_extra_us: f64,
    /// Stall suffered once per window cycle when the effective window is
    /// below [`delack_window_bytes`](Self::delack_window_bytes), µs.
    pub delack_stall_us: f64,
    /// Windows smaller than this hit the delayed-ACK stall.
    pub delack_window_bytes: u64,
    /// Default socket-buffer size handed to unsuspecting applications.
    pub default_sockbuf: u64,
    /// `net.core.{r,w}mem_max`: the ceiling a process may request.
    pub sockbuf_max: u64,
}

impl KernelModel {
    /// Clamp a requested socket-buffer size to the sysctl ceiling.
    pub fn clamp_sockbuf(&self, requested: u64) -> u64 {
        requested.min(self.sockbuf_max)
    }

    /// Apply the paper's `/etc/sysctl.conf` tuning
    /// (`net.core.rmem_max = net.core.wmem_max = 4 MB`), which MP_Lite
    /// relies on (§3.4).
    pub fn with_raised_sockbuf_max(mut self) -> KernelModel {
        self.sockbuf_max = 4 * 1024 * 1024;
        self
    }
}

/// RedHat 7.2's Linux 2.4.x — the paper's main kernel.
pub fn linux_2_4() -> KernelModel {
    KernelModel {
        name: "Linux 2.4 (RedHat 7.2)",
        rx_extra_us: 15.0,
        delack_stall_us: 3000.0,
        delack_window_bytes: kib(64),
        default_sockbuf: kib(64),
        sockbuf_max: kib(128),
    }
}

/// The older Linux 2.2 kernel used for the latency comparison (§2).
pub fn linux_2_2() -> KernelModel {
    KernelModel {
        name: "Linux 2.2",
        rx_extra_us: 0.0,
        delack_stall_us: 3000.0,
        delack_window_bytes: kib(64),
        default_sockbuf: kib(64),
        sockbuf_max: kib(128),
    }
}

/// Linux 2.4.2 — required by the M-VIA beta (§2). TCP-path behaviour is
/// that of 2.4.
pub fn linux_2_4_2_mvia() -> KernelModel {
    KernelModel {
        name: "Linux 2.4.2 (M-VIA)",
        ..linux_2_4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_24_has_worse_rx_latency_than_22() {
        assert!(linux_2_4().rx_extra_us > linux_2_2().rx_extra_us);
    }

    #[test]
    fn sockbuf_clamping() {
        let k = linux_2_4();
        assert_eq!(k.clamp_sockbuf(kib(32)), kib(32));
        assert_eq!(k.clamp_sockbuf(kib(512)), kib(128));
        let tuned = k.with_raised_sockbuf_max();
        assert_eq!(tuned.clamp_sockbuf(kib(512)), kib(512));
        assert_eq!(tuned.clamp_sockbuf(16 * 1024 * 1024), 4 * 1024 * 1024);
    }

    #[test]
    fn default_buffers_are_small() {
        // The whole point of §4: "The default OS tuning levels have not
        // kept pace with what is needed to communicate at higher speeds."
        assert!(linux_2_4().default_sockbuf <= kib(64));
    }

    #[test]
    fn delack_threshold_spans_small_buffers() {
        let k = linux_2_4();
        assert!(kib(32) < k.delack_window_bytes);
        assert!(kib(256) > k.delack_window_bytes);
    }
}
