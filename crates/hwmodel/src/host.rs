//! Host models: CPU protocol-processing costs, memory-copy rates, and PCI
//! buses, for the paper's two machine types (§2): dual 1.8 GHz Pentium 4
//! PCs (32-bit 33 MHz PCI, PC133 memory) and Compaq DS20 Alphas (64-bit
//! 33 MHz PCI).

use simcore::units::{bus_bytes_per_sec, mbytes_to_bytes_per_sec};

/// CPU + memory system costs for protocol processing.
///
/// Two distinct copy rates matter (see DESIGN.md §4):
///
/// * `kernel_copy_bps` — the socket-buffer copies inside the TCP stack.
///   These overlap with NIC DMA across *different* packets (softirq vs
///   app thread), so they are pipeline stages, rarely the bottleneck.
/// * `memcpy_bps` — a bulk `memcpy` issued by a message-passing library
///   *after* data has landed (e.g. MPICH/p4 draining its receive buffer
///   into application memory, PVM unpacking). This is serial with the
///   transfer and is exactly the mechanism the paper blames for the
///   25–30 % MPICH/PVM large-message loss (§7).
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Human-readable description.
    pub name: &'static str,
    /// Kernel TCP/IP transmit cost per packet, microseconds.
    pub kernel_pkt_tx_us: f64,
    /// Kernel TCP/IP receive cost per packet (softirq), microseconds.
    pub kernel_pkt_rx_us: f64,
    /// One system-call / context-switch cost, microseconds.
    pub syscall_us: f64,
    /// Serial bulk-memcpy rate (cold buffers), bytes/second.
    pub memcpy_bps: f64,
    /// Pipelined kernel copy rate, bytes/second.
    pub kernel_copy_bps: f64,
}

/// A PCI bus: width, clock and effective efficiency.
#[derive(Debug, Clone, Copy)]
pub struct PciModel {
    /// Bus width in bits (32 or 64).
    pub width_bits: u32,
    /// Bus clock in MHz (33 or 66).
    pub mhz: f64,
    /// Fraction of the theoretical burst rate achieved by real DMA
    /// (arbitration, retries, latency timers). ~0.68 for the 2002-era
    /// chipsets in the paper's machines.
    pub efficiency: f64,
    /// Per-transaction setup cost, microseconds.
    pub per_txn_us: f64,
}

impl PciModel {
    /// Theoretical burst rate, bytes/second.
    pub fn raw_bps(&self) -> f64 {
        bus_bytes_per_sec(self.width_bits, self.mhz)
    }

    /// Effective sustained DMA rate, bytes/second.
    pub fn effective_bps(&self) -> f64 {
        self.raw_bps() * self.efficiency
    }

    /// The classic 32-bit 33 MHz slot of commodity PCs.
    pub fn pci32_33() -> PciModel {
        PciModel {
            width_bits: 32,
            mhz: 33.0,
            efficiency: 0.68,
            per_txn_us: 1.0,
        }
    }

    /// The 64-bit 33 MHz slots of the Compaq DS20s.
    pub fn pci64_33() -> PciModel {
        PciModel {
            width_bits: 64,
            mhz: 33.0,
            efficiency: 0.68,
            per_txn_us: 1.0,
        }
    }

    /// 64-bit 66 MHz (supported by the SysKonnect and Myrinet cards,
    /// though neither test machine had such a slot).
    pub fn pci64_66() -> PciModel {
        PciModel {
            width_bits: 64,
            mhz: 66.0,
            efficiency: 0.68,
            per_txn_us: 1.0,
        }
    }
}

/// A complete host: CPU/memory plus the PCI slot the NIC sits in.
#[derive(Debug, Clone)]
pub struct HostModel {
    /// Human-readable description.
    pub name: &'static str,
    /// Protocol-processing CPU model.
    pub cpu: CpuModel,
    /// The PCI slot the NIC occupies.
    pub pci: PciModel,
    /// Approximate 2002 price, USD (the paper: "costing around $1500 each").
    pub price_usd: u32,
}

/// The paper's commodity node: 1.8 GHz Pentium 4, 768 MB PC133, 32-bit
/// 33 MHz PCI, ~$1500.
pub fn pc_pentium4() -> HostModel {
    HostModel {
        name: "1.8 GHz Pentium 4 PC (PC133, 32-bit PCI)",
        cpu: CpuModel {
            name: "Pentium 4 1.8 GHz / PC133",
            kernel_pkt_tx_us: 7.0,
            kernel_pkt_rx_us: 7.0,
            syscall_us: 3.0,
            memcpy_bps: mbytes_to_bytes_per_sec(200.0),
            kernel_copy_bps: mbytes_to_bytes_per_sec(420.0),
        },
        pci: PciModel::pci32_33(),
        price_usd: 1500,
    }
}

/// The paper's comparison machine: dual 500 MHz Alpha 21264 Compaq DS20,
/// 64-bit 33 MHz PCI ("offering greater PCI performance").
pub fn compaq_ds20() -> HostModel {
    HostModel {
        name: "Compaq DS20 (Alpha 21264, 64-bit PCI)",
        cpu: CpuModel {
            name: "Alpha 21264 500 MHz",
            kernel_pkt_tx_us: 6.0,
            kernel_pkt_rx_us: 6.0,
            syscall_us: 2.0,
            memcpy_bps: mbytes_to_bytes_per_sec(300.0),
            kernel_copy_bps: mbytes_to_bytes_per_sec(600.0),
        },
        pci: PciModel::pci64_33(),
        price_usd: 12000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::bytes_per_sec_to_mbps;

    #[test]
    fn pci_rates_match_spec() {
        assert_eq!(PciModel::pci32_33().raw_bps(), 132e6);
        assert_eq!(PciModel::pci64_33().raw_bps(), 264e6);
        assert_eq!(PciModel::pci64_66().raw_bps(), 528e6);
    }

    #[test]
    fn pci_effective_below_raw() {
        for pci in [PciModel::pci32_33(), PciModel::pci64_33()] {
            assert!(pci.effective_bps() < pci.raw_bps());
            assert!(pci.effective_bps() > 0.5 * pci.raw_bps());
        }
    }

    #[test]
    fn pc_pci_limits_below_jumbo_wire_rate() {
        // §4: "On the PCs, the 32-bit PCI bus limits the bandwidth of these
        // SysKonnect cards to a maximum of ~710 Mbps".
        let pc = pc_pentium4();
        let mbps = bytes_per_sec_to_mbps(pc.pci.effective_bps());
        assert!((650.0..780.0).contains(&mbps), "PC PCI = {mbps} Mbps");
        // The DS20's 64-bit slot must clear 1 Gb/s.
        let ds20 = compaq_ds20();
        assert!(bytes_per_sec_to_mbps(ds20.pci.effective_bps()) > 1000.0);
    }

    #[test]
    fn serial_memcpy_slower_than_kernel_copy() {
        for host in [pc_pentium4(), compaq_ds20()] {
            assert!(
                host.cpu.memcpy_bps < host.cpu.kernel_copy_bps,
                "{}",
                host.name
            );
        }
    }

    #[test]
    fn ds20_copies_faster_than_pc() {
        assert!(compaq_ds20().cpu.memcpy_bps > pc_pentium4().cpu.memcpy_bps);
    }
}
