//! Two-node cluster configurations.
//!
//! A [`ClusterSpec`] bundles the host pair, the NIC, the kernel and the
//! interconnect topology into one named configuration. One preset exists
//! for each hardware setup the paper measures (§2): "All tests were done
//! back-to-back with no intervening switch, except for the Giganet VIA
//! tests" (8-port cLAN switch).

use simcore::units;

use crate::host::{compaq_ds20, pc_pentium4, HostModel};
use crate::kernel::{linux_2_4, linux_2_4_2_mvia, KernelModel};
use crate::nic::{
    fast_ethernet, giganet_clan, myrinet_pci64a, netgear_ga620, netgear_ga622, syskonnect_sk9843,
    syskonnect_sk9843_jumbo, trendnet_teg_pcitx, NicModel,
};

/// A two-node cluster: the unit of every NetPIPE measurement in the paper.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Configuration name used in reports.
    pub name: &'static str,
    /// Both nodes are identical in every paper configuration.
    pub host: HostModel,
    /// The NIC in each node.
    pub nic: NicModel,
    /// Kernel on both nodes.
    pub kernel: KernelModel,
    /// Number of switch hops between the nodes (0 = back-to-back).
    pub switch_hops: u32,
    /// Per-hop switch latency, microseconds.
    pub switch_latency_us: f64,
    /// Identical NICs installed per node (1 everywhere in the paper;
    /// more than 1 enables MP_Lite-style channel bonding across parallel
    /// wires — the authors' companion-paper feature).
    pub nic_count: u32,
}

impl ClusterSpec {
    /// Effective PCI DMA rate for this NIC/slot pairing: a 32-bit-only
    /// card in a 64-bit slot falls back to 32-bit transfers (the paper's
    /// GA622-vs-TrendNet comparison is exactly this distinction), and the
    /// card's DMA engine efficiency scales the burst rate.
    pub fn pci_effective_bps(&self) -> f64 {
        let width = if self.nic.pci_64bit {
            self.host.pci.width_bits
        } else {
            self.host.pci.width_bits.min(32)
        };
        units::bus_bytes_per_sec(width, self.host.pci.mhz) * self.nic.dma_eff
    }

    /// Total propagation + switching delay of the path, microseconds.
    pub fn path_latency_us(&self) -> f64 {
        // A couple of meters of copper/fiber is ~0.01 µs; negligible next
        // to the switch hops, but kept for completeness.
        0.05 + f64::from(self.switch_hops) * self.switch_latency_us
    }
}

/// Fig. 1 testbed: Netgear GA620 fiber GigE between two P4 PCs.
pub fn pcs_ga620() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, Netgear GA620 fiber GigE, back-to-back",
        host: pc_pentium4(),
        nic: netgear_ga620(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// MP_Lite channel-bonding testbed: two GA620 cards per PC, parallel
/// back-to-back wires (the companion MP_Lite paper's dual-NIC setup;
/// not in this paper's figures, used by the bonding extension).
pub fn pcs_ga620_dual() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, dual Netgear GA620 fiber GigE, back-to-back pairs",
        nic_count: 2,
        ..pcs_ga620()
    }
}

/// Fast Ethernet between two PCs — the "established technology" baseline
/// (§4: "like you can with more established Fast Ethernet technology").
pub fn pcs_fast_ethernet() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, Fast Ethernet, back-to-back",
        host: pc_pentium4(),
        nic: fast_ethernet(),
        kernel: linux_2_4(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// Dual Fast Ethernet per PC — the configuration where MP_Lite's channel
/// bonding historically paid off (100 Mb/s wires leave the PCI bus idle,
/// so two cards really double the rate).
pub fn pcs_fast_ethernet_dual() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, dual Fast Ethernet, back-to-back pairs",
        nic_count: 2,
        ..pcs_fast_ethernet()
    }
}

/// Fig. 2 testbed: TrendNet TEG-PCITX copper GigE between two P4 PCs.
pub fn pcs_trendnet() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, TrendNet TEG-PCITX copper GigE, back-to-back",
        host: pc_pentium4(),
        nic: trendnet_teg_pcitx(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// Fig. 3 testbed: SysKonnect SK-9843 with 9000-byte jumbo frames between
/// two Compaq DS20s (64-bit PCI).
pub fn ds20s_syskonnect_jumbo() -> ClusterSpec {
    ClusterSpec {
        name: "2x Compaq DS20, SysKonnect SK-9843 (9000 MTU), back-to-back",
        host: compaq_ds20(),
        nic: syskonnect_sk9843_jumbo(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// §7 comparison: SysKonnect with jumbo frames on the PCs, where the
/// 32-bit PCI bus caps raw TCP at ~710 Mbps.
pub fn pcs_syskonnect_jumbo() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, SysKonnect SK-9843 (9000 MTU), back-to-back",
        host: pc_pentium4(),
        nic: syskonnect_sk9843_jumbo(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// SysKonnect at the standard 1500-byte MTU on the PCs (used by the M-VIA
/// comparison and as a GigE reference in fig. 4).
pub fn pcs_syskonnect() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, SysKonnect SK-9843 (1500 MTU), back-to-back",
        host: pc_pentium4(),
        nic: syskonnect_sk9843(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// §7: Netgear GA622 copper cards on the DS20s — "showed poor performance
/// even for raw TCP" with the era's driver.
pub fn ds20s_ga622() -> ClusterSpec {
    ClusterSpec {
        name: "2x Compaq DS20, Netgear GA622 copper GigE, back-to-back",
        host: compaq_ds20(),
        nic: netgear_ga622(),
        kernel: linux_2_4().with_raised_sockbuf_max(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// Fig. 4 testbed: Myrinet PCI64A-2 between two PCs.
pub fn pcs_myrinet() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, Myrinet PCI64A-2, back-to-back",
        host: pc_pentium4(),
        nic: myrinet_pci64a(),
        kernel: linux_2_4(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

/// Fig. 5 testbed: Giganet cLAN cards through the 8-port cLAN switch.
pub fn pcs_giganet() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, Giganet cLAN, 8-port switch",
        host: pc_pentium4(),
        nic: giganet_clan(),
        kernel: linux_2_4(),
        switch_hops: 1,
        switch_latency_us: 0.5,
        nic_count: 1,
    }
}

/// Fig. 5 testbed: M-VIA (software VIA) over the SysKonnect cards between
/// PCs, on the 2.4.2 kernel the M-VIA beta requires.
pub fn pcs_mvia_syskonnect() -> ClusterSpec {
    ClusterSpec {
        name: "2x P4 PC, M-VIA over SysKonnect SK-9843, back-to-back",
        host: pc_pentium4(),
        nic: syskonnect_sk9843(),
        kernel: linux_2_4_2_mvia(),
        switch_hops: 0,
        switch_latency_us: 0.0,
        nic_count: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::bytes_per_sec_to_mbps;

    #[test]
    fn presets_cover_all_five_figures() {
        // fig1..fig5 testbeds all construct without panicking and are distinct.
        let names: Vec<&str> = [
            pcs_ga620(),
            pcs_trendnet(),
            ds20s_syskonnect_jumbo(),
            pcs_myrinet(),
            pcs_giganet(),
            pcs_mvia_syskonnect(),
        ]
        .iter()
        .map(|c| c.name)
        .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn trendnet_card_stuck_at_32bit_even_in_64bit_slot() {
        // GA622 == TrendNet silicon but 64-bit capable; in the DS20 the
        // GA622 gets the full 64-bit rate while a TrendNet would not.
        let ga622 = ds20s_ga622();
        assert!(bytes_per_sec_to_mbps(ga622.pci_effective_bps()) > 1000.0);
        let mut hypothetical = ds20s_ga622();
        hypothetical.nic = trendnet_teg_pcitx();
        assert!(hypothetical.pci_effective_bps() < ga622.pci_effective_bps());
    }

    #[test]
    fn pc_pci_is_the_jumbo_bottleneck() {
        let pc = pcs_syskonnect_jumbo();
        let ds20 = ds20s_syskonnect_jumbo();
        // §4: PC 32-bit PCI caps below the wire's ~990 Mbps goodput...
        assert!(bytes_per_sec_to_mbps(pc.pci_effective_bps()) < 950.0);
        // ...while the DS20 64-bit slot does not.
        assert!(bytes_per_sec_to_mbps(ds20.pci_effective_bps()) > 990.0);
    }

    #[test]
    fn only_giganet_uses_a_switch() {
        assert_eq!(pcs_giganet().switch_hops, 1);
        for c in [
            pcs_ga620(),
            pcs_trendnet(),
            pcs_myrinet(),
            ds20s_syskonnect_jumbo(),
        ] {
            assert_eq!(c.switch_hops, 0, "{}", c.name);
        }
    }

    #[test]
    fn path_latency_small_but_positive() {
        for c in [pcs_ga620(), pcs_giganet()] {
            assert!(c.path_latency_us() > 0.0);
            assert!(c.path_latency_us() < 2.0);
        }
    }
}
