//! Preset invariants: cluster configurations must stay internally
//! consistent as presets evolve (cloning is lossless; every rate is
//! physical; latency terms are sane).

use hwmodel::presets::*;

#[test]
fn specs_are_cloneable_and_stable() {
    for spec in [
        pcs_ga620(),
        pcs_ga620_dual(),
        pcs_trendnet(),
        ds20s_syskonnect_jumbo(),
        pcs_myrinet(),
        pcs_giganet(),
        pcs_mvia_syskonnect(),
        pcs_fast_ethernet_dual(),
    ] {
        let copy = spec.clone();
        assert_eq!(copy.name, spec.name);
        assert_eq!(copy.nic.name, spec.nic.name);
        assert_eq!(copy.nic_count, spec.nic_count);
        assert_eq!(copy.kernel.name, spec.kernel.name);
        assert_eq!(copy.pci_effective_bps(), spec.pci_effective_bps());
    }
}

#[test]
fn every_preset_has_positive_rates() {
    for spec in [
        pcs_ga620(),
        pcs_trendnet(),
        ds20s_ga622(),
        pcs_syskonnect(),
        pcs_syskonnect_jumbo(),
        ds20s_syskonnect_jumbo(),
        pcs_myrinet(),
        pcs_giganet(),
        pcs_mvia_syskonnect(),
        pcs_fast_ethernet(),
    ] {
        assert!(spec.nic.wire_bps > 0.0, "{}", spec.name);
        assert!(spec.pci_effective_bps() > 0.0, "{}", spec.name);
        assert!(spec.host.cpu.memcpy_bps > 0.0, "{}", spec.name);
        assert!(
            spec.kernel.sockbuf_max >= spec.kernel.default_sockbuf,
            "{}",
            spec.name
        );
        assert!(spec.nic_count >= 1, "{}", spec.name);
        assert!(
            spec.nic.mss(hwmodel::nic::TCPIP_HEADERS) > 0,
            "{}",
            spec.name
        );
    }
}

#[test]
fn latency_terms_are_nonnegative_everywhere() {
    for nic in all_ethernet() {
        assert!(nic.rx_coalesce_us >= 0.0, "{}", nic.name);
        assert!(nic.ack_delay_us >= 0.0, "{}", nic.name);
        assert!(nic.nic_pkt_us >= 0.0, "{}", nic.name);
        assert!((0.0..=1.0).contains(&nic.dma_eff), "{}", nic.name);
    }
}
